#!/usr/bin/env bash
# Continuous-integration driver: warnings-as-errors build, full test suite,
# a telemetry smoke check that the bench --profile reports are valid JSON,
# and the bench regression gate (tools/bench_gate.py).  Run from the
# repository root:
#
#   tools/ci.sh                    # build + ctest + bench smoke + bench gate
#   tools/ci.sh --asan             # additionally build and test under ASan+UBSan
#   tools/ci.sh --tsan             # additionally run the concurrency tests under TSan
#   tools/ci.sh --rebaseline-bench # refresh bench/baseline/ instead of gating
#
# Wall-time gate knobs (see tools/bench_gate.py): SKS_BENCH_TIME_TOL
# (relative tolerance, default 0.20) and SKS_BENCH_SKIP_TIME=1.
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
RUN_ASAN=0
RUN_TSAN=0
REBASELINE=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --rebaseline-bench) REBASELINE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== configure + build (ci preset: RelWithDebInfo, -Werror) ==="
cmake --preset ci
cmake --build build-ci -j "$JOBS"

echo "=== tier-1 tests ==="
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== bench --profile smoke check ==="
# A short figure run and a filtered perf_micro pass must both produce
# parseable run reports (schema_version 1, see EXPERIMENTS.md).  The fig2
# run also exercises the tracing/waveform exporters: Chrome trace JSON,
# VCD, and CSV.
SMOKE_DIR=build-ci/smoke
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" && ../bench/fig2_waveforms --profile \
    --trace-out fig2_trace.json --vcd-out fig2.vcd \
    --csv-out fig2_traces.csv > fig2.log)
(cd "$SMOKE_DIR" && ../bench/perf_micro --profile \
    --benchmark_filter=BM_DcOperatingPoint \
    --benchmark_min_time=0.01 > perf.log)
for report in "$SMOKE_DIR"/BENCH_fig2_waveforms.json \
              "$SMOKE_DIR"/BENCH_perf_micro.json; do
  [ -s "$report" ] || { echo "missing report: $report" >&2; exit 1; }
  python3 -m json.tool "$report" > /dev/null \
    || { echo "invalid JSON: $report" >&2; exit 1; }
  echo "ok: $report"
done
python3 - "$SMOKE_DIR/BENCH_fig2_waveforms.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc.get("schema_version")
assert int(doc["counters"]["esim.newton_iterations"]) > 0
assert "esim.run_transient" in doc["timers"]
print("ok: fig2 report carries solver counters and timers")
EOF

echo "=== tracing + waveform export smoke check ==="
# The Chrome trace must be valid trace-event JSON with span and instant
# events; the VCD and CSV dumps must be non-empty and well-formed.
python3 - "$SMOKE_DIR/fig2_trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
phases = {e["ph"] for e in events}
assert "M" in phases and "X" in phases, phases
spans = [e for e in events if e["ph"] == "X"]
assert all("ts" in e and "dur" in e and "tid" in e for e in spans)
assert any(e["name"] == "esim.run_transient" for e in spans)
print(f"ok: {len(events)} trace events ({len(spans)} spans)")
EOF
grep -q '$enddefinitions' "$SMOKE_DIR/fig2.vcd" \
  || { echo "invalid VCD: $SMOKE_DIR/fig2.vcd" >&2; exit 1; }
[ "$(head -1 "$SMOKE_DIR/fig2_traces.csv" | cut -c1-2)" = "t," ] \
  || { echo "invalid CSV: $SMOKE_DIR/fig2_traces.csv" >&2; exit 1; }
echo "ok: $SMOKE_DIR/fig2.vcd, $SMOKE_DIR/fig2_traces.csv"

echo "=== sks-report CLI smoke check ==="
SKS_REPORT=build-ci/tools/sks-report
"$SKS_REPORT" print "$SMOKE_DIR/BENCH_fig2_waveforms.json" > /dev/null
"$SKS_REPORT" diff "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > /dev/null
"$SKS_REPORT" merge "$SMOKE_DIR/merged.json" \
    "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/BENCH_perf_micro.json"
python3 -m json.tool "$SMOKE_DIR/merged.json" > /dev/null \
  || { echo "invalid JSON: $SMOKE_DIR/merged.json" >&2; exit 1; }
"$SKS_REPORT" trace "$SMOKE_DIR/journal_trace.json" \
    "$SMOKE_DIR/BENCH_fig2_waveforms.json"
python3 -m json.tool "$SMOKE_DIR/journal_trace.json" > /dev/null \
  || { echo "invalid JSON: $SMOKE_DIR/journal_trace.json" >&2; exit 1; }
echo "ok: sks-report print/diff/merge/trace"

echo "=== performance attribution smoke check ==="
# The traced fig2 run must embed a call-tree profile in its report and
# drop the collapsed-stack flamegraph file next to it; `sks-report flame`
# must rank it (from the report AND from the raw Chrome trace), and
# `sks-report attribute` must diff two profile sources (report vs its own
# trace: all deltas ~0, but the full parse/merge/rank path runs).
FLAME_FILE=$SMOKE_DIR/FLAME_fig2_waveforms.collapsed
[ -s "$FLAME_FILE" ] \
  || { echo "missing collapsed stacks: $FLAME_FILE" >&2; exit 1; }
grep -q "esim.run_transient" "$FLAME_FILE" \
  || { echo "collapsed stacks lack solver spans" >&2; exit 1; }
"$SKS_REPORT" flame "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    > "$SMOKE_DIR/flame_report.log"
grep -q "esim.run_transient" "$SMOKE_DIR/flame_report.log" \
  || { echo "flame table lacks solver spans" >&2; exit 1; }
"$SKS_REPORT" flame "$SMOKE_DIR/fig2_trace.json" --top 5 \
    --collapsed "$SMOKE_DIR/flame_from_trace.collapsed" > /dev/null
[ -s "$SMOKE_DIR/flame_from_trace.collapsed" ] \
  || { echo "flame --collapsed wrote nothing" >&2; exit 1; }
"$SKS_REPORT" attribute "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/fig2_trace.json" > "$SMOKE_DIR/attribute.log"
grep -q "esim" "$SMOKE_DIR/attribute.log" \
  || { echo "attribution table lacks solver paths" >&2; exit 1; }
echo "ok: sks-report flame/attribute + $FLAME_FILE"

echo "=== postmortem bundle smoke check ==="
# A deliberately singular netlist (two ideal sources pinning one node to
# different voltages) must fail, emit a self-contained bundle, explain to
# the singular_system class, and reproduce from the bundle alone.
PM_DIR=build-ci/postmortem
rm -rf "$PM_DIR"
mkdir -p "$PM_DIR"
cat > "$PM_DIR/singular.sp" <<'EOF'
* conflicting ideal sources: structurally singular MNA system
V1 n 0 DC 1.0
V2 n 0 DC 2.0
R1 n 0 1e3
.end
EOF
if "$SKS_REPORT" run "$PM_DIR/singular.sp" --dc \
    --postmortem "$PM_DIR/bundles" > "$PM_DIR/run.log" 2>&1; then
  echo "singular netlist unexpectedly converged" >&2; exit 1
fi
BUNDLE=$(ls -d "$PM_DIR"/bundles/pm_* | head -1)
[ -n "$BUNDLE" ] || { echo "no postmortem bundle written" >&2; exit 1; }
"$SKS_REPORT" explain "$BUNDLE" | tee "$PM_DIR/explain.log" \
    | grep -q "singular_system" \
  || { echo "explain did not classify singular_system" >&2; exit 1; }
"$SKS_REPORT" repro "$BUNDLE" \
  || { echo "bundle failure did not reproduce" >&2; exit 1; }
echo "ok: sks-report run/explain/repro on $BUNDLE"

echo "=== bench history smoke check ==="
"$SKS_REPORT" history "$PM_DIR/history.jsonl" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > /dev/null
# Capture to a file rather than `| grep -q`: under pipefail, grep -q
# closing the pipe at the first match SIGPIPEs sks-report mid-table.
"$SKS_REPORT" history "$PM_DIR/history.jsonl" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > "$PM_DIR/history_table.log"
grep -q "metric" "$PM_DIR/history_table.log" \
  || { echo "history trend table missing" >&2; exit 1; }
echo "ok: sks-report history"

echo "=== metrics timeline smoke check ==="
# A scaled-down fig5 Monte-Carlo run with the timeline enabled must emit
# >= 10 JSONL snapshots with strictly monotone seq, and the final snapshot
# must agree exactly with the end-of-run BENCH report's counters (the
# equality contract documented in obs/timeline.hpp).  `sks-report
# timeline`/`tail` must both render the file.
TL_DIR=build-ci/timeline
rm -rf "$TL_DIR"
mkdir -p "$TL_DIR"
(cd "$TL_DIR" && SKS_BENCH_SCALE=0.1 SKS_TIMELINE=fig5_timeline.jsonl \
    SKS_TIMELINE_EVERY=10 ../bench/fig5_montecarlo --profile > fig5.log)
python3 - "$TL_DIR/fig5_timeline.jsonl" "$TL_DIR/BENCH_fig5_montecarlo.json" <<'EOF'
import json, sys
snaps = []
with open(sys.argv[1]) as f:
    for line_no, line in enumerate(f, 1):
        if not line.strip():
            continue
        snap = json.loads(line)  # every line must parse
        assert isinstance(snap["seq"], int), f"line {line_no}: bad seq"
        snaps.append(snap)
assert len(snaps) >= 10, f"only {len(snaps)} snapshots"
seqs = [s["seq"] for s in snaps]
assert seqs == sorted(set(seqs)), "seq not strictly monotone"
final = snaps[-1]
assert final["label"] == "final", final["label"]
report = json.load(open(sys.argv[2]))
# Counter equality: the final snapshot is taken immediately before the
# registry capture, and bumps its own counters first.
assert final["counters"] == {k: int(v) for k, v in report["counters"].items()}, \
    "final snapshot counters != BENCH report counters"
# Stream summaries must match too (same registry, same instant).
assert set(final["streams"]) == set(report["streams"]), \
    (set(final["streams"]), set(report["streams"]))
for name, snap_s in final["streams"].items():
    rep_s = report["streams"][name]
    assert snap_s["count"] == rep_s["count"], name
    assert abs(snap_s["mean"] - rep_s["mean"]) <= 1e-9 * max(1.0, abs(rep_s["mean"])), name
# Progress snapshots rode the OrderedSink commit order.
with_progress = [s for s in snaps if "progress" in s]
assert with_progress, "no item-cadence progress snapshots"
assert with_progress[-1]["progress"]["done"] == with_progress[-1]["progress"]["total"]
# Drop counters are surfaced in every snapshot.
assert all("journal" in s and "trace" in s for s in snaps)
print(f"ok: {len(snaps)} monotone snapshots; final matches BENCH report")
EOF
"$SKS_REPORT" timeline "$TL_DIR/fig5_timeline.jsonl" > "$TL_DIR/timeline.log" \
  || { echo "sks-report timeline failed" >&2; exit 1; }
grep -q "monotone" "$TL_DIR/timeline.log" \
  || { echo "timeline summary missing" >&2; exit 1; }
"$SKS_REPORT" timeline "$TL_DIR/fig5_timeline.jsonl" \
    "$TL_DIR/fig5_timeline.jsonl" > /dev/null \
  || { echo "sks-report timeline diff failed" >&2; exit 1; }
"$SKS_REPORT" tail "$TL_DIR/fig5_timeline.jsonl" | grep -q "final" \
  || { echo "sks-report tail did not render the final snapshot" >&2; exit 1; }
echo "ok: timeline JSONL + sks-report timeline/tail"

echo "=== bench regression gate ==="
# perf_micro's deterministic fixed-workload pass yields exact solver work
# counts (values.fixed.*, machine-independent, gated at >0%); the
# google-benchmark JSON carries wall times (machine-dependent, gated at
# SKS_BENCH_TIME_TOL when a baseline exists).
BENCH_DIR=build-ci/bench-gate
mkdir -p "$BENCH_DIR"
# SKS_TRACE=1: the gate run records spans so its report embeds the span-tree
# profile — that is what `sks-report attribute` diffs against the baseline
# when a value drifts out of its window.  Span recording is outside the
# fixed counter windows, so the fixed.* counts (and the REQUIRED_ZERO
# obs.* guards) are identical with tracing on or off.
(cd "$BENCH_DIR" && SKS_TRACE=1 ../bench/perf_micro \
    --benchmark_min_time=0.05 \
    --benchmark_out=gbench_perf_micro.json \
    --benchmark_out_format=json > bench.log)
if [ "$REBASELINE" = 1 ]; then
  python3 tools/bench_gate.py rebaseline \
      --report "$BENCH_DIR/BENCH_perf_micro.json" \
      --timings "$BENCH_DIR/gbench_perf_micro.json"
else
  python3 tools/bench_gate.py check \
      --report "$BENCH_DIR/BENCH_perf_micro.json" \
      --timings "$BENCH_DIR/gbench_perf_micro.json" \
      --attribute-with "$SKS_REPORT"
fi

echo "=== bigtree scaling curve artifact ==="
# Fold the hierarchical-vs-flat wall-time-vs-size curve (and the Schur
# working-set bytes) out of the gate run's report into one CSV; CI uploads
# it next to bench/history.jsonl so the scaling trend is a downloadable
# artifact without parsing the full report.
python3 - "$BENCH_DIR/BENCH_perf_micro.json" \
    > "$BENCH_DIR/bigtree_scaling.csv" <<'EOF'
import json, sys
values = json.load(open(sys.argv[1]))["values"]
print("levels,unknowns_approx,hier_wall_s,sparse_wall_s,schur_bytes")
for lv, n in ((4, 2076), (5, 8732), (6, 33308), (7, 139804)):
    hier = values.get(f"solver.bigtree_l{lv}_hier_wall_s")
    flat = values.get(f"solver.bigtree_l{lv}_sparse_wall_s")
    mem = values.get(f"mem.bigtree_l{lv}_schur_bytes")
    assert hier is not None, f"report lacks the level-{lv} hier wall time"
    row = [str(lv), str(n), f"{hier:.6f}",
           "" if flat is None else f"{flat:.6f}",
           "" if mem is None else f"{mem:.0f}"]
    print(",".join(row))
EOF
cat "$BENCH_DIR/bigtree_scaling.csv"
echo "ok: $BENCH_DIR/bigtree_scaling.csv"

echo "=== bench history append ==="
# Every bench pass that reaches this point appends its perf_micro report to
# the running history log; CI uploads bench/history.jsonl as an artifact so
# the perf trajectory across runs is downloadable (render the trend table
# locally with `sks-report history bench/history.jsonl`).
"$SKS_REPORT" history bench/history.jsonl \
    "$BENCH_DIR/BENCH_perf_micro.json" > /dev/null
echo "ok: appended $BENCH_DIR/BENCH_perf_micro.json to bench/history.jsonl"

if [ "$RUN_ASAN" = 1 ]; then
  echo "=== ASan+UBSan build + tests ==="
  cmake --preset asan
  cmake --build build-asan -j "$JOBS"
  # -LE slow: the soak suites (integration, bigtree scaling) take minutes
  # under sanitizer instrumentation; the default job above ran them
  # uninstrumented.  Same policy as the tsan preset.
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" -LE slow
fi

if [ "$RUN_TSAN" = 1 ]; then
  echo "=== TSan build + concurrency tests ==="
  cmake --preset tsan
  cmake --build build-tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS"
fi

echo "=== CI OK ==="
