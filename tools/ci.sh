#!/usr/bin/env bash
# Continuous-integration driver: warnings-as-errors build, full test suite,
# a telemetry smoke check that the bench --profile reports are valid JSON,
# a live /metrics scrape of a running campaign, the EWMA regression
# sentinel, and the bench regression gate (tools/bench_gate.py).  Run from
# the repository root:
#
#   tools/ci.sh                    # build + ctest + bench smoke + bench gate
#   tools/ci.sh --asan             # additionally build and test under ASan+UBSan
#   tools/ci.sh --tsan             # additionally run the concurrency tests under TSan
#   tools/ci.sh --rebaseline-bench # refresh bench/baseline/ instead of gating
#
# Wall-time gate knobs (see tools/bench_gate.py): SKS_BENCH_TIME_TOL
# (relative tolerance, default 0.20) and SKS_BENCH_SKIP_TIME=1.
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
RUN_ASAN=0
RUN_TSAN=0
REBASELINE=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --rebaseline-bench) REBASELINE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== configure + build (ci preset: RelWithDebInfo, -Werror) ==="
cmake --preset ci
cmake --build build-ci -j "$JOBS"

echo "=== tier-1 tests ==="
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== bench --profile smoke check ==="
# A short figure run and a filtered perf_micro pass must both produce
# parseable run reports (schema_version 1, see EXPERIMENTS.md).  The fig2
# run also exercises the tracing/waveform exporters: Chrome trace JSON,
# VCD, and CSV.
SMOKE_DIR=build-ci/smoke
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" && ../bench/fig2_waveforms --profile \
    --trace-out fig2_trace.json --vcd-out fig2.vcd \
    --csv-out fig2_traces.csv > fig2.log)
(cd "$SMOKE_DIR" && ../bench/perf_micro --profile \
    --benchmark_filter=BM_DcOperatingPoint \
    --benchmark_min_time=0.01 > perf.log)
for report in "$SMOKE_DIR"/BENCH_fig2_waveforms.json \
              "$SMOKE_DIR"/BENCH_perf_micro.json; do
  [ -s "$report" ] || { echo "missing report: $report" >&2; exit 1; }
  python3 -m json.tool "$report" > /dev/null \
    || { echo "invalid JSON: $report" >&2; exit 1; }
  echo "ok: $report"
done
python3 - "$SMOKE_DIR/BENCH_fig2_waveforms.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc.get("schema_version")
assert int(doc["counters"]["esim.newton_iterations"]) > 0
assert "esim.run_transient" in doc["timers"]
print("ok: fig2 report carries solver counters and timers")
EOF

echo "=== tracing + waveform export smoke check ==="
# The Chrome trace must be valid trace-event JSON with span and instant
# events; the VCD and CSV dumps must be non-empty and well-formed.
python3 - "$SMOKE_DIR/fig2_trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
phases = {e["ph"] for e in events}
assert "M" in phases and "X" in phases, phases
spans = [e for e in events if e["ph"] == "X"]
assert all("ts" in e and "dur" in e and "tid" in e for e in spans)
assert any(e["name"] == "esim.run_transient" for e in spans)
print(f"ok: {len(events)} trace events ({len(spans)} spans)")
EOF
grep -q '$enddefinitions' "$SMOKE_DIR/fig2.vcd" \
  || { echo "invalid VCD: $SMOKE_DIR/fig2.vcd" >&2; exit 1; }
[ "$(head -1 "$SMOKE_DIR/fig2_traces.csv" | cut -c1-2)" = "t," ] \
  || { echo "invalid CSV: $SMOKE_DIR/fig2_traces.csv" >&2; exit 1; }
echo "ok: $SMOKE_DIR/fig2.vcd, $SMOKE_DIR/fig2_traces.csv"

echo "=== sks-report CLI smoke check ==="
SKS_REPORT=build-ci/tools/sks-report
"$SKS_REPORT" print "$SMOKE_DIR/BENCH_fig2_waveforms.json" > /dev/null
"$SKS_REPORT" diff "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > /dev/null
"$SKS_REPORT" merge "$SMOKE_DIR/merged.json" \
    "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/BENCH_perf_micro.json"
python3 -m json.tool "$SMOKE_DIR/merged.json" > /dev/null \
  || { echo "invalid JSON: $SMOKE_DIR/merged.json" >&2; exit 1; }
"$SKS_REPORT" trace "$SMOKE_DIR/journal_trace.json" \
    "$SMOKE_DIR/BENCH_fig2_waveforms.json"
python3 -m json.tool "$SMOKE_DIR/journal_trace.json" > /dev/null \
  || { echo "invalid JSON: $SMOKE_DIR/journal_trace.json" >&2; exit 1; }
echo "ok: sks-report print/diff/merge/trace"

echo "=== performance attribution smoke check ==="
# The traced fig2 run must embed a call-tree profile in its report and
# drop the collapsed-stack flamegraph file next to it; `sks-report flame`
# must rank it (from the report AND from the raw Chrome trace), and
# `sks-report attribute` must diff two profile sources (report vs its own
# trace: all deltas ~0, but the full parse/merge/rank path runs).
FLAME_FILE=$SMOKE_DIR/FLAME_fig2_waveforms.collapsed
[ -s "$FLAME_FILE" ] \
  || { echo "missing collapsed stacks: $FLAME_FILE" >&2; exit 1; }
grep -q "esim.run_transient" "$FLAME_FILE" \
  || { echo "collapsed stacks lack solver spans" >&2; exit 1; }
"$SKS_REPORT" flame "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    > "$SMOKE_DIR/flame_report.log"
grep -q "esim.run_transient" "$SMOKE_DIR/flame_report.log" \
  || { echo "flame table lacks solver spans" >&2; exit 1; }
"$SKS_REPORT" flame "$SMOKE_DIR/fig2_trace.json" --top 5 \
    --collapsed "$SMOKE_DIR/flame_from_trace.collapsed" > /dev/null
[ -s "$SMOKE_DIR/flame_from_trace.collapsed" ] \
  || { echo "flame --collapsed wrote nothing" >&2; exit 1; }
"$SKS_REPORT" attribute "$SMOKE_DIR/BENCH_fig2_waveforms.json" \
    "$SMOKE_DIR/fig2_trace.json" > "$SMOKE_DIR/attribute.log"
grep -q "esim" "$SMOKE_DIR/attribute.log" \
  || { echo "attribution table lacks solver paths" >&2; exit 1; }
echo "ok: sks-report flame/attribute + $FLAME_FILE"

echo "=== postmortem bundle smoke check ==="
# A deliberately singular netlist (two ideal sources pinning one node to
# different voltages) must fail, emit a self-contained bundle, explain to
# the singular_system class, and reproduce from the bundle alone.
PM_DIR=build-ci/postmortem
rm -rf "$PM_DIR"
mkdir -p "$PM_DIR"
cat > "$PM_DIR/singular.sp" <<'EOF'
* conflicting ideal sources: structurally singular MNA system
V1 n 0 DC 1.0
V2 n 0 DC 2.0
R1 n 0 1e3
.end
EOF
if "$SKS_REPORT" run "$PM_DIR/singular.sp" --dc \
    --postmortem "$PM_DIR/bundles" > "$PM_DIR/run.log" 2>&1; then
  echo "singular netlist unexpectedly converged" >&2; exit 1
fi
BUNDLE=$(ls -d "$PM_DIR"/bundles/pm_* | head -1)
[ -n "$BUNDLE" ] || { echo "no postmortem bundle written" >&2; exit 1; }
"$SKS_REPORT" explain "$BUNDLE" | tee "$PM_DIR/explain.log" \
    | grep -q "singular_system" \
  || { echo "explain did not classify singular_system" >&2; exit 1; }
"$SKS_REPORT" repro "$BUNDLE" \
  || { echo "bundle failure did not reproduce" >&2; exit 1; }
echo "ok: sks-report run/explain/repro on $BUNDLE"

echo "=== bench history smoke check ==="
"$SKS_REPORT" history "$PM_DIR/history.jsonl" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > /dev/null
# Capture to a file rather than `| grep -q`: under pipefail, grep -q
# closing the pipe at the first match SIGPIPEs sks-report mid-table.
# The second append hands over the SAME report, so dedup must skip it
# (keyed on the content hash) and the file must stay at one line.
"$SKS_REPORT" history "$PM_DIR/history.jsonl" \
    "$SMOKE_DIR/BENCH_perf_micro.json" > "$PM_DIR/history_table.log"
grep -q "metric" "$PM_DIR/history_table.log" \
  || { echo "history trend table missing" >&2; exit 1; }
grep -q "duplicate" "$PM_DIR/history_table.log" \
  || { echo "history dedup did not skip an identical report" >&2; exit 1; }
[ "$(wc -l < "$PM_DIR/history.jsonl")" = 1 ] \
  || { echo "duplicate report still appended to history" >&2; exit 1; }
# Every history line must carry its dedup hash and the provenance meta.
python3 - "$PM_DIR/history.jsonl" <<'EOF'
import json, sys
line = json.loads(open(sys.argv[1]).readline())
assert len(line["hash"]) == 16, line.get("hash")
assert "git_sha" in line["meta"] and "compiler" in line["meta"], line["meta"]
print("ok: history line carries hash", line["hash"],
      "and git_sha", line["meta"]["git_sha"])
EOF
echo "ok: sks-report history (dedup + provenance)"

echo "=== metrics timeline smoke check ==="
# A scaled-down fig5 Monte-Carlo run with the timeline enabled must emit
# >= 10 JSONL snapshots with strictly monotone seq, and the final snapshot
# must agree exactly with the end-of-run BENCH report's counters (the
# equality contract documented in obs/timeline.hpp).  `sks-report
# timeline`/`tail` must both render the file.
TL_DIR=build-ci/timeline
rm -rf "$TL_DIR"
mkdir -p "$TL_DIR"
(cd "$TL_DIR" && SKS_BENCH_SCALE=0.1 SKS_TIMELINE=fig5_timeline.jsonl \
    SKS_TIMELINE_EVERY=10 ../bench/fig5_montecarlo --profile > fig5.log)
python3 - "$TL_DIR/fig5_timeline.jsonl" "$TL_DIR/BENCH_fig5_montecarlo.json" <<'EOF'
import json, sys
snaps = []
with open(sys.argv[1]) as f:
    for line_no, line in enumerate(f, 1):
        if not line.strip():
            continue
        snap = json.loads(line)  # every line must parse
        assert isinstance(snap["seq"], int), f"line {line_no}: bad seq"
        snaps.append(snap)
assert len(snaps) >= 10, f"only {len(snaps)} snapshots"
seqs = [s["seq"] for s in snaps]
assert seqs == sorted(set(seqs)), "seq not strictly monotone"
final = snaps[-1]
assert final["label"] == "final", final["label"]
report = json.load(open(sys.argv[2]))
# Counter equality: the final snapshot is taken immediately before the
# registry capture, and bumps its own counters first.
assert final["counters"] == {k: int(v) for k, v in report["counters"].items()}, \
    "final snapshot counters != BENCH report counters"
# Stream summaries must match too (same registry, same instant).
assert set(final["streams"]) == set(report["streams"]), \
    (set(final["streams"]), set(report["streams"]))
for name, snap_s in final["streams"].items():
    rep_s = report["streams"][name]
    assert snap_s["count"] == rep_s["count"], name
    assert abs(snap_s["mean"] - rep_s["mean"]) <= 1e-9 * max(1.0, abs(rep_s["mean"])), name
# Progress snapshots rode the OrderedSink commit order.
with_progress = [s for s in snaps if "progress" in s]
assert with_progress, "no item-cadence progress snapshots"
assert with_progress[-1]["progress"]["done"] == with_progress[-1]["progress"]["total"]
# Drop counters are surfaced in every snapshot.
assert all("journal" in s and "trace" in s for s in snaps)
print(f"ok: {len(snaps)} monotone snapshots; final matches BENCH report")
EOF
"$SKS_REPORT" timeline "$TL_DIR/fig5_timeline.jsonl" > "$TL_DIR/timeline.log" \
  || { echo "sks-report timeline failed" >&2; exit 1; }
grep -q "monotone" "$TL_DIR/timeline.log" \
  || { echo "timeline summary missing" >&2; exit 1; }
"$SKS_REPORT" timeline "$TL_DIR/fig5_timeline.jsonl" \
    "$TL_DIR/fig5_timeline.jsonl" > /dev/null \
  || { echo "sks-report timeline diff failed" >&2; exit 1; }
"$SKS_REPORT" tail "$TL_DIR/fig5_timeline.jsonl" | grep -q "final" \
  || { echo "sks-report tail did not render the final snapshot" >&2; exit 1; }
echo "ok: timeline JSONL + sks-report timeline/tail"

echo "=== live metrics exposition smoke check ==="
# A fig5 campaign run with the exposer enabled must be scrapeable while it
# executes: /metrics parses as Prometheus text format 0.0.4, /healthz
# answers 200 — and after the run report lands, one final scrape's counter
# values must exactly equal the BENCH_*.json counters (excluding the
# scrape counter itself, which keeps counting the scrapes that happen
# after the report was captured).  SKS_EXPOSE=0 asks for an ephemeral
# port; the bench prints (and flushes) the bound port, and
# SKS_EXPOSE_LINGER_S holds the listener open after the report until the
# final scrape lands.
EXPO_DIR=build-ci/expose
rm -rf "$EXPO_DIR"
mkdir -p "$EXPO_DIR"
(cd "$EXPO_DIR" && SKS_BENCH_SCALE=0.1 SKS_EXPOSE=0 SKS_EXPOSE_LINGER_S=60 \
    ../bench/fig5_montecarlo --profile > fig5_expose.log 2>&1) &
EXPO_PID=$!
EXPO_PORT=""
for _ in $(seq 1 100); do
  EXPO_PORT=$(sed -n 's/.*serving .* on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$EXPO_DIR/fig5_expose.log" 2>/dev/null | head -1)
  [ -n "$EXPO_PORT" ] && break
  sleep 0.2
done
[ -n "$EXPO_PORT" ] || { echo "exposer never printed its port" >&2; \
                         kill "$EXPO_PID" 2>/dev/null; exit 1; }
echo "exposer up on port $EXPO_PORT"
# Mid-run scrape: full exposition syntax check + liveness probe.
python3 - "$EXPO_PORT" <<'EOF'
import re, sys, urllib.request, urllib.error
port = sys.argv[1]
body = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="0\.\d+"\})? \S+$')
names = set()
for line in body.splitlines():
    assert line, "blank line in exposition"
    if line.startswith("#"):
        continue
    assert sample.match(line), f"bad exposition line: {line!r}"
    name, value = line.rsplit(" ", 1)
    float(value)  # must parse as a number
    names.add(name.split("{")[0])
assert "obs_run_phase" in names and "obs_expose_scrapes" in names, names
health = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/healthz", timeout=10)
assert health.status == 200 and health.read() == b"ok\n"
try:
    ready = urllib.request.urlopen(
        f"http://127.0.0.1:{port}/readyz", timeout=10)
    phase = ready.read().decode()
except urllib.error.HTTPError as e:  # 503 while a phase is active
    phase = e.read().decode()
assert phase.startswith("phase="), phase
print(f"ok: mid-run /metrics ({len(names)} series), /healthz 200, "
      f"/readyz {phase.strip()}")
EOF
# Wait for the run report, then take the post-run scrape.
for _ in $(seq 1 600); do
  grep -q "run report written" "$EXPO_DIR/fig5_expose.log" && break
  sleep 0.5
done
grep -q "run report written" "$EXPO_DIR/fig5_expose.log" \
  || { echo "fig5 run never wrote its report" >&2; \
       kill "$EXPO_PID" 2>/dev/null; exit 1; }
python3 - "$EXPO_PORT" "$EXPO_DIR/BENCH_fig5_montecarlo.json" <<'EOF'
import json, re, sys, urllib.request
port, report_path = sys.argv[1], sys.argv[2]
body = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
scraped = {}
for line in body.splitlines():
    if line.startswith("#") or "{" in line:
        continue
    name, value = line.rsplit(" ", 1)
    scraped[name] = value
report = json.load(open(report_path))
sanitize = lambda k: re.sub(r"[^a-zA-Z0-9_:]", "_", k)
mismatches = []
for key, value in report["counters"].items():
    if key == "obs.expose_scrapes":
        continue  # keeps counting post-report scrapes by design
    got = scraped.get(sanitize(key))
    if got is None or int(got) != int(value):
        mismatches.append(f"{key}: report={int(value)} scrape={got}")
assert not mismatches, "post-run scrape != report: " + "; ".join(mismatches)
print(f"ok: post-run scrape matches all "
      f"{len(report['counters']) - 1} report counters exactly")
EOF
wait "$EXPO_PID" \
  || { echo "fig5 exposition run failed" >&2; exit 1; }
echo "ok: live exposition scraped mid-run and post-run on port $EXPO_PORT"

echo "=== regression sentinel fixture check ==="
# The EWMA sentinel must flag a synthetic slow drift that stays inside the
# hard gate's Shewhart-style windows, must exit 4 under --strict on that
# fixture, and must stay quiet on the real checked-in history.
SENT_DIR=build-ci/sentinel
rm -rf "$SENT_DIR"
mkdir -p "$SENT_DIR"
python3 - "$SENT_DIR/drift_history.jsonl" <<'EOF'
import json, sys
# 8 stable runs at 1.20 s, then +0.3 sigma (sigma=0.02) per run: each
# increment is far below any per-run tolerance (the EWMA's steady-state
# ramp lag, r*(1-lambda)/lambda = 0.024, stays under the 3*sigma step
# threshold of 0.036), but the EWMA walks out of its control band.
rows, level = [], 1.20
for i in range(18):
    if i >= 8:
        level += 0.3 * 0.02
    rows.append({"report": "perf_micro", "hash": f"{i:016x}",
                 "values": {"leaky.wall_s": round(level, 6)}})
with open(sys.argv[1], "w") as f:
    for row in rows:
        f.write(json.dumps(row) + "\n")
print(f"wrote {len(rows)}-run drift fixture")
EOF
"$SKS_REPORT" sentinel "$SENT_DIR/drift_history.jsonl" \
    > "$SENT_DIR/sentinel.log"
grep -q "SENTINEL_FLAG" "$SENT_DIR/sentinel.log" \
  || { echo "sentinel missed the synthetic drift" >&2;
       cat "$SENT_DIR/sentinel.log" >&2; exit 1; }
SENT_RC=0
"$SKS_REPORT" sentinel "$SENT_DIR/drift_history.jsonl" --strict \
    > /dev/null || SENT_RC=$?
[ "$SENT_RC" = 4 ] \
  || { echo "sentinel --strict exited $SENT_RC, expected 4" >&2; exit 1; }
if [ -s bench/history.jsonl ]; then
  "$SKS_REPORT" sentinel bench/history.jsonl > "$SENT_DIR/baseline.log"
  if grep -q "SENTINEL_FLAG" "$SENT_DIR/baseline.log"; then
    echo "warning: sentinel flags the checked-in history:" >&2
    grep "SENTINEL_FLAG" "$SENT_DIR/baseline.log" >&2
  fi
fi
echo "ok: sentinel flags the drift fixture (and --strict exits 4)"

echo "=== bench regression gate ==="
# perf_micro's deterministic fixed-workload pass yields exact solver work
# counts (values.fixed.*, machine-independent, gated at >0%); the
# google-benchmark JSON carries wall times (machine-dependent, gated at
# SKS_BENCH_TIME_TOL when a baseline exists).
BENCH_DIR=build-ci/bench-gate
mkdir -p "$BENCH_DIR"
# SKS_TRACE=1: the gate run records spans so its report embeds the span-tree
# profile — that is what `sks-report attribute` diffs against the baseline
# when a value drifts out of its window.  Span recording is outside the
# fixed counter windows, so the fixed.* counts (and the REQUIRED_ZERO
# obs.* guards) are identical with tracing on or off.
(cd "$BENCH_DIR" && SKS_TRACE=1 ../bench/perf_micro \
    --benchmark_min_time=0.05 \
    --benchmark_out=gbench_perf_micro.json \
    --benchmark_out_format=json > bench.log)
# Append this run to the history BEFORE gating so the sentinel's EWMA
# window includes the fresh point (identical re-runs dedup by hash).  CI
# uploads bench/history.jsonl as an artifact and restores it across runs;
# render the trend table with `sks-report history bench/history.jsonl`.
"$SKS_REPORT" history bench/history.jsonl \
    "$BENCH_DIR/BENCH_perf_micro.json" > /dev/null
if [ "$REBASELINE" = 1 ]; then
  python3 tools/bench_gate.py rebaseline \
      --report "$BENCH_DIR/BENCH_perf_micro.json" \
      --timings "$BENCH_DIR/gbench_perf_micro.json"
else
  python3 tools/bench_gate.py check \
      --report "$BENCH_DIR/BENCH_perf_micro.json" \
      --timings "$BENCH_DIR/gbench_perf_micro.json" \
      --attribute-with "$SKS_REPORT" \
      --sentinel bench/history.jsonl
fi

echo "=== bigtree scaling curve artifact ==="
# Fold the hierarchical-vs-flat wall-time-vs-size curve (and the Schur
# working-set bytes) out of the gate run's report into one CSV; CI uploads
# it next to bench/history.jsonl so the scaling trend is a downloadable
# artifact without parsing the full report.
python3 - "$BENCH_DIR/BENCH_perf_micro.json" \
    > "$BENCH_DIR/bigtree_scaling.csv" <<'EOF'
import json, sys
values = json.load(open(sys.argv[1]))["values"]
print("levels,unknowns_approx,hier_wall_s,sparse_wall_s,schur_bytes")
for lv, n in ((4, 2076), (5, 8732), (6, 33308), (7, 139804)):
    hier = values.get(f"solver.bigtree_l{lv}_hier_wall_s")
    flat = values.get(f"solver.bigtree_l{lv}_sparse_wall_s")
    mem = values.get(f"mem.bigtree_l{lv}_schur_bytes")
    assert hier is not None, f"report lacks the level-{lv} hier wall time"
    row = [str(lv), str(n), f"{hier:.6f}",
           "" if flat is None else f"{flat:.6f}",
           "" if mem is None else f"{mem:.0f}"]
    print(",".join(row))
EOF
cat "$BENCH_DIR/bigtree_scaling.csv"
echo "ok: $BENCH_DIR/bigtree_scaling.csv"

if [ "$RUN_ASAN" = 1 ]; then
  echo "=== ASan+UBSan build + tests ==="
  cmake --preset asan
  cmake --build build-asan -j "$JOBS"
  # -LE slow: the soak suites (integration, bigtree scaling) take minutes
  # under sanitizer instrumentation; the default job above ran them
  # uninstrumented.  Same policy as the tsan preset.
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" -LE slow
fi

if [ "$RUN_TSAN" = 1 ]; then
  echo "=== TSan build + concurrency tests ==="
  cmake --preset tsan
  cmake --build build-tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS"
fi

echo "=== CI OK ==="
