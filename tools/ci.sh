#!/usr/bin/env bash
# Continuous-integration driver: warnings-as-errors build, full test suite,
# and a telemetry smoke check that the bench --profile reports are valid
# JSON.  Run from the repository root:
#
#   tools/ci.sh           # RelWithDebInfo -Werror build + ctest + bench smoke
#   tools/ci.sh --asan    # additionally build and test under ASan+UBSan
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
RUN_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== configure + build (ci preset: RelWithDebInfo, -Werror) ==="
cmake --preset ci
cmake --build build-ci -j "$JOBS"

echo "=== tier-1 tests ==="
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== bench --profile smoke check ==="
# A short figure run and a filtered perf_micro pass must both produce
# parseable run reports (schema_version 1, see EXPERIMENTS.md).
SMOKE_DIR=build-ci/smoke
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" && ../bench/fig2_waveforms --profile > fig2.log)
(cd "$SMOKE_DIR" && ../bench/perf_micro --profile \
    --benchmark_filter=BM_DcOperatingPoint \
    --benchmark_min_time=0.01 > perf.log)
for report in "$SMOKE_DIR"/BENCH_fig2_waveforms.json \
              "$SMOKE_DIR"/BENCH_perf_micro.json; do
  [ -s "$report" ] || { echo "missing report: $report" >&2; exit 1; }
  python3 -m json.tool "$report" > /dev/null \
    || { echo "invalid JSON: $report" >&2; exit 1; }
  echo "ok: $report"
done
python3 - "$SMOKE_DIR/BENCH_fig2_waveforms.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc.get("schema_version")
assert int(doc["counters"]["esim.newton_iterations"]) > 0
assert "esim.run_transient" in doc["timers"]
print("ok: fig2 report carries solver counters and timers")
EOF

if [ "$RUN_ASAN" = 1 ]; then
  echo "=== ASan+UBSan build + tests ==="
  cmake --preset asan
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "=== CI OK ==="
