// sks-report: inspect the BENCH_*.json run reports written by the obs
// telemetry layer (schema documented in obs/report.hpp and EXPERIMENTS.md).
//
//   sks-report print   REPORT... [--top N]  pretty-print reports
//   sks-report diff    A B              values/counters/timers deltas
//   sks-report merge   OUT A B...       sum shards into one schema-1 report
//   sks-report trace   OUT REPORT...    journal events -> Chrome trace JSON
//   sks-report flame   INPUT [flags]    top self-time spans + collapsed stacks
//   sks-report attribute BASE CURRENT   rank span-tree wall-time deltas
//   sks-report explain BUNDLE           diagnose a postmortem bundle
//   sks-report repro   BUNDLE           re-run a bundle, check it reproduces
//   sks-report run     NETLIST [flags]  solve a netlist; bundle on failure
//   sks-report history JSONL [REPORT..] append summaries, print trend table
//   sks-report sentinel JSONL [flags]   EWMA drift/step flags over history
//   sks-report timeline FILE [B]        summarize a metrics timeline JSONL
//                                       (two files: diff final snapshots)
//   sks-report tail    FILE [--follow]  render the latest timeline snapshot
//
// `timeline` validates the file (every line parses, seq strictly monotone
// — exit 1 otherwise) and prints the snapshot ladder plus the final stream
// statistics; `tail` renders the newest snapshot as a live progress view
// and with `--follow` keeps polling until the run writes its "final"
// snapshot (schema in obs/timeline.hpp).
//
// `trace` renders each report's journal section as instant events on its
// own track, with simulation time mapped 1 ns -> 1 us so ns-scale
// transients are visible at Perfetto's microsecond zoom levels.
//
// `flame` and `attribute` consume the call-tree `profile` section a traced
// run embeds in its report (obs/profile.hpp) — or, for `flame`, a raw
// Chrome trace JSON, whose spans are re-aggregated on the fly.  `flame`
// prints the top self-time table plus per-worker utilization and can write
// the collapsed-stack text flamegraph.pl/speedscope take directly;
// `attribute` diffs two runs' profiles and ranks nodes by wall-time delta
// (the bench gate invokes it automatically on an out-of-window failure).
//
// `explain`/`repro` operate on the failure postmortem bundles the engine
// writes (esim/postmortem.hpp): `explain` re-derives the failure class from
// the recorded evidence and prints a diagnosis plus the iteration tail;
// `repro` re-runs the embedded netlist with the embedded options and exits 0
// iff the same failure class reproduces.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "esim/engine.hpp"
#include "esim/postmortem.hpp"
#include "esim/spice_io.hpp"
#include "obs/diag.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/sentinel.hpp"
#include "obs/stream.hpp"
#include "util/error.hpp"

namespace {

using sks::obs::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  sks::check(in.good(), "cannot open '", path, "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Json load_report(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  sks::check(doc.is_object(), path, ": not a JSON object");
  sks::check(doc.has("report"), path, ": missing \"report\" field");
  return doc;
}

std::string fmt(double v) { return sks::obs::json_number(v); }

// Flat name -> number view of one report section ("values", "counters").
std::map<std::string, double> number_section(const Json& doc,
                                             const std::string& section) {
  std::map<std::string, double> out;
  if (const Json* s = doc.find(section); s != nullptr && s->is_object()) {
    for (const auto& [key, value] : s->object()) {
      if (value.is_number()) out[key] = value.number();
    }
  }
  return out;
}

// name -> (count, total_s) of the timers section.
std::map<std::string, std::pair<double, double>> timer_section(
    const Json& doc) {
  std::map<std::string, std::pair<double, double>> out;
  if (const Json* s = doc.find("timers"); s != nullptr && s->is_object()) {
    for (const auto& [key, value] : s->object()) {
      if (!value.is_object()) continue;
      const Json* count = value.find("count");
      const Json* total = value.find("total_s");
      out[key] = {count != nullptr ? count->number() : 0.0,
                  total != nullptr ? total->number() : 0.0};
    }
  }
  return out;
}

void print_report(const std::string& path, std::size_t top = 0) {
  const Json doc = load_report(path);
  std::cout << path << ": report \"" << doc.at("report").str() << "\"";
  if (const Json* v = doc.find("schema_version")) {
    std::cout << " (schema " << fmt(v->number()) << ")";
  }
  std::cout << "\n";
  if (const Json* meta = doc.find("meta"); meta != nullptr) {
    for (const auto& [key, value] : meta->object()) {
      std::cout << "  meta  " << key << " = "
                << (value.is_string() ? value.str() : fmt(value.number()))
                << "\n";
    }
  }
  for (const char* section : {"values", "counters", "gauges"}) {
    const auto rows = number_section(doc, section);
    if (rows.empty()) continue;
    // Key column sized to the longest name so long keys (the per-size
    // fixed.bigtree_* counter windows, the schur.* family) keep the value
    // column aligned instead of overflowing a hard-coded width.
    std::size_t width = 0;
    for (const auto& [key, value] : rows) {
      (void)value;
      width = std::max(width, key.size());
    }
    std::cout << "  " << section << ":\n";
    for (const auto& [key, value] : rows) {
      std::printf("    %-*s = %s\n", static_cast<int>(width), key.c_str(),
                  fmt(value).c_str());
    }
  }
  const auto timers = timer_section(doc);
  if (!timers.empty()) {
    // Largest total first: the profile question is "where did time go".
    std::vector<std::pair<std::string, std::pair<double, double>>> rows(
        timers.begin(), timers.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.second > b.second.second;
    });
    if (top > 0 && rows.size() > top) {
      std::cout << "  timers (top " << top << " of " << rows.size()
                << " by total):\n";
      rows.resize(top);
    } else {
      std::cout << "  timers (by total):\n";
    }
    for (const auto& [key, ct] : rows) {
      std::printf("    %-32s count=%-8.0f total=%.6fs\n", key.c_str(),
                  ct.first, ct.second);
    }
  }
  if (const Json* streams = doc.find("streams");
      streams != nullptr && streams->is_object() &&
      !streams->object().empty()) {
    std::cout << "  streams:\n";
    std::printf("    %-28s %8s %12s %12s %12s %12s\n", "name", "count",
                "mean", "p50", "p90", "p99");
    for (const auto& [key, s] : streams->object()) {
      if (!s.is_object()) continue;
      auto field = [&s](const char* name) {
        const Json* f = s.find(name);
        return f != nullptr && f->is_number() ? f->number() : 0.0;
      };
      std::printf("    %-28s %8.0f %12s %12s %12s %12s\n", key.c_str(),
                  field("count"), fmt(field("mean")).c_str(),
                  fmt(field("p50")).c_str(), fmt(field("p90")).c_str(),
                  fmt(field("p99")).c_str());
    }
  }
  if (const Json* journal = doc.find("journal"); journal != nullptr) {
    std::cout << "  journal: recorded="
              << fmt(journal->at("recorded").number())
              << " dropped=" << fmt(journal->at("dropped").number()) << "\n";
    if (const Json* counts = journal->find("counts")) {
      for (const auto& [key, value] : counts->object()) {
        std::cout << "    " << key << " = " << fmt(value.number()) << "\n";
      }
    }
  }
  if (const Json* trace = doc.find("trace"); trace != nullptr) {
    std::cout << "  trace: events=" << fmt(trace->at("events").number())
              << " dropped=" << fmt(trace->at("dropped").number()) << "\n";
  }
  // Saturation at a glance: any nonzero drop means a bounded buffer lost
  // data and the sections above undercount.
  double journal_drops = 0.0, trace_drops = 0.0;
  if (const Json* journal = doc.find("journal")) {
    journal_drops = journal->at("dropped").number();
  }
  if (const Json* trace = doc.find("trace")) {
    trace_drops = trace->at("dropped").number();
  }
  if (journal_drops > 0.0 || trace_drops > 0.0) {
    std::cout << "  DROPS: journal=" << fmt(journal_drops)
              << " trace=" << fmt(trace_drops)
              << " (bounded buffers saturated; raise their capacity)\n";
  }
}

void diff_section(const std::string& title,
                  const std::map<std::string, double>& a,
                  const std::map<std::string, double>& b) {
  bool header = false;
  auto ensure_header = [&] {
    if (!header) std::cout << title << ":\n";
    header = true;
  };
  for (const auto& [key, va] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      ensure_header();
      std::cout << "  " << key << " = " << fmt(va) << " -> (absent)\n";
      continue;
    }
    if (it->second == va) continue;
    ensure_header();
    std::cout << "  " << key << " = " << fmt(va) << " -> " << fmt(it->second);
    if (va != 0.0) {
      std::printf("  (%+.1f%%)", 100.0 * (it->second - va) / va);
    }
    std::cout << "\n";
  }
  for (const auto& [key, vb] : b) {
    if (a.count(key) != 0) continue;
    ensure_header();
    std::cout << "  " << key << " = (absent) -> " << fmt(vb) << "\n";
  }
}

int diff_reports(const std::string& path_a, const std::string& path_b) {
  const Json a = load_report(path_a);
  const Json b = load_report(path_b);
  std::cout << "diff " << path_a << " -> " << path_b << "\n";
  diff_section("values", number_section(a, "values"),
               number_section(b, "values"));
  diff_section("counters", number_section(a, "counters"),
               number_section(b, "counters"));
  std::map<std::string, double> ta, tb;
  for (const auto& [key, ct] : timer_section(a)) ta[key + ".total_s"] = ct.second;
  for (const auto& [key, ct] : timer_section(b)) tb[key + ".total_s"] = ct.second;
  diff_section("timers", ta, tb);
  return 0;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  sks::check(out.good(), "cannot open '", path, "' for writing");
  out << content;
  out.flush();
  sks::check(out.good(), "write to '", path, "' failed");
}

// Merge semantics for sharded runs of the same workload: values, counters
// and journal tallies are summed; timers sum count/total (min/mean/max are
// recomputed or dropped — total is what sharded profiling compares).
int merge_reports(const std::string& out_path,
                  const std::vector<std::string>& inputs) {
  std::map<std::string, double> values, counters;
  std::map<std::string, std::pair<double, double>> timers;
  double recorded = 0.0, dropped = 0.0;
  std::map<std::string, double> journal_counts;
  std::string name;
  for (const std::string& path : inputs) {
    const Json doc = load_report(path);
    if (name.empty()) name = doc.at("report").str();
    for (const auto& [key, v] : number_section(doc, "values")) values[key] += v;
    for (const auto& [key, v] : number_section(doc, "counters")) {
      counters[key] += v;
    }
    for (const auto& [key, ct] : timer_section(doc)) {
      timers[key].first += ct.first;
      timers[key].second += ct.second;
    }
    if (const Json* journal = doc.find("journal")) {
      recorded += journal->at("recorded").number();
      dropped += journal->at("dropped").number();
      if (const Json* counts = journal->find("counts")) {
        for (const auto& [key, v] : counts->object()) {
          journal_counts[key] += v.number();
        }
      }
    }
  }

  std::ostringstream out;
  out << "{\n  \"report\": \"" << sks::obs::json_escape(name)
      << "\",\n  \"schema_version\": 1,\n  \"meta\": {\"merged_from\": \""
      << inputs.size() << " reports\"}";
  auto emit_map = [&out](const char* section,
                         const std::map<std::string, double>& rows) {
    if (rows.empty()) return;
    out << ",\n  \"" << section << "\": {";
    bool first = true;
    for (const auto& [key, v] : rows) {
      out << (first ? "" : ", ") << '"' << sks::obs::json_escape(key)
          << "\": " << fmt(v);
      first = false;
    }
    out << "}";
  };
  emit_map("values", values);
  emit_map("counters", counters);
  if (!timers.empty()) {
    out << ",\n  \"timers\": {";
    bool first = true;
    for (const auto& [key, ct] : timers) {
      const double mean = ct.first > 0.0 ? ct.second / ct.first : 0.0;
      out << (first ? "" : ", ") << '"' << sks::obs::json_escape(key)
          << "\": {\"count\": " << fmt(ct.first)
          << ", \"total_s\": " << fmt(ct.second)
          << ", \"mean_s\": " << fmt(mean) << ", \"min_s\": 0, \"max_s\": "
          << fmt(ct.second) << "}";
      first = false;
    }
    out << "}";
  }
  if (recorded > 0.0 || !journal_counts.empty()) {
    out << ",\n  \"journal\": {\"recorded\": " << fmt(recorded)
        << ", \"dropped\": " << fmt(dropped) << ", \"counts\": {";
    bool first = true;
    for (const auto& [key, v] : journal_counts) {
      out << (first ? "" : ", ") << '"' << sks::obs::json_escape(key)
          << "\": " << fmt(v);
      first = false;
    }
    out << "}, \"events\": []}";
  }
  out << "\n}\n";
  write_file(out_path, out.str());
  std::cout << "merged " << inputs.size() << " reports into " << out_path
            << "\n";
  return 0;
}

// Journal section -> Chrome trace instant events, one track per report.
int journal_to_trace(const std::string& out_path,
                     const std::vector<std::string>& inputs) {
  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"sks-report\"}}";
  std::size_t emitted = 0;
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    const Json doc = load_report(inputs[r]);
    const int tid = static_cast<int>(r) + 1;
    out << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        << "\"tid\": " << tid << ", \"args\": {\"name\": \""
        << sks::obs::json_escape(doc.at("report").str()) << "\"}}";
    const Json* journal = doc.find("journal");
    if (journal == nullptr) continue;
    const Json* events = journal->find("events");
    if (events == nullptr || !events->is_array()) continue;
    for (const Json& e : events->array()) {
      // Simulation seconds -> trace microseconds at 1000x (1 sim ns shows
      // as 1 us), so Perfetto's zoom range fits a transient.
      const double ts_us = e.at("t").number() * 1e9;
      out << ",\n{\"name\": \"" << sks::obs::json_escape(e.at("type").str())
          << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " << tid
          << ", \"ts\": " << fmt(ts_us) << ", \"args\": {\"value\": "
          << fmt(e.at("value").number())
          << ", \"iterations\": " << fmt(e.at("iterations").number())
          << ", \"detail\": \"" << sks::obs::json_escape(e.at("detail").str())
          << "\"}}";
      ++emitted;
    }
  }
  out << "\n]\n}\n";
  write_file(out_path, out.str());
  std::cout << "wrote " << emitted << " journal instant events to " << out_path
            << " (open in Perfetto or chrome://tracing)\n";
  return 0;
}

// ---- postmortem bundles -------------------------------------------------

void print_iteration_tail(const std::vector<sks::obs::DiagRecord>& records,
                          std::size_t max_rows) {
  if (records.empty()) {
    std::cout << "  (no iteration records in bundle)\n";
    return;
  }
  const std::size_t first =
      records.size() > max_rows ? records.size() - max_rows : 0;
  std::printf("  %-5s %-12s %-12s %-12s %-7s %-10s %-12s %-12s\n", "iter",
              "t", "residual", "max|dx|", "damp", "lu", "pivot_growth",
              "cond_est");
  for (std::size_t i = first; i < records.size(); ++i) {
    const sks::obs::DiagRecord& r = records[i];
    std::printf("  %-5d %-12.4g %-12.4g %-12.4g %-7.3f %-10s %-12.4g %-12.4g\n",
                r.iteration, r.t, r.residual, r.max_dx, r.damping,
                sks::obs::to_string(
                    static_cast<sks::obs::DiagLuStatus>(r.lu_status)),
                r.pivot_growth, r.cond_est);
  }
  if (first > 0) {
    std::cout << "  (" << first << " older records omitted)\n";
  }
}

int explain_bundle(const std::string& bundle_dir) {
  const auto manifest = sks::esim::read_postmortem_manifest(bundle_dir);
  const auto tail = sks::esim::read_postmortem_iterations(bundle_dir);
  const sks::obs::FailureClass derived =
      sks::esim::classify_bundle(manifest, tail);

  std::cout << "bundle: " << bundle_dir << "\n"
            << "  phase:        " << manifest.phase << " (t = "
            << fmt(manifest.t) << " s, " << manifest.iterations
            << " Newton iterations)\n"
            << "  solver:       " << manifest.solver_mode << "\n"
            << "  class:        " << sks::obs::to_string(derived);
  if (!manifest.failure_class.empty() &&
      manifest.failure_class != sks::obs::to_string(derived)) {
    std::cout << "  (manifest recorded: " << manifest.failure_class << ")";
  }
  std::cout << "\n";
  if (!manifest.worst_node.empty()) {
    std::cout << "  worst node:   " << manifest.worst_node << "\n";
  }
  std::cout << "  lu bailouts:  singular=" << manifest.lu_singular
            << " nonfinite=" << manifest.lu_nonfinite << "\n";
  if (manifest.has_transient) {
    std::cout << "  dt halvings:  " << manifest.dt_halvings
              << (manifest.dt_at_floor ? " (gave up at dt_min)" : "") << "\n";
  }
  if (!manifest.message.empty()) {
    std::cout << "  error:        " << manifest.message << "\n";
  }
  std::cout << "\ndiagnosis:\n  "
            << sks::obs::describe(derived, manifest.worst_node) << "\n"
            << "\niteration tail:\n";
  print_iteration_tail(tail, 12);
  std::cout << "\nreproduce with:\n  sks-report repro " << bundle_dir << "\n";
  return 0;
}

sks::esim::SolverMode parse_solver_mode(const std::string& name) {
  if (name == "dense") return sks::esim::SolverMode::kDense;
  if (name == "sparse") return sks::esim::SolverMode::kSparse;
  if (name == "hierarchical") return sks::esim::SolverMode::kHierarchical;
  sks::check(name == "auto", "unknown solver mode '", name,
             "' (use dense/sparse/hierarchical/auto)");
  return sks::esim::SolverMode::kAuto;
}

// Re-run one netlist the way the failing engine ran it; returns the failure
// class name ("" when the solve converged).
std::string rerun_failure_class(sks::esim::Simulator& sim,
                                const sks::esim::BundleManifest& manifest) {
  try {
    if (manifest.has_transient && manifest.phase != "dc") {
      sim.run_transient(manifest.transient);
    } else {
      sim.dc_solution(manifest.t);
    }
  } catch (const sks::ConvergenceError& e) {
    sks::obs::FailureEvidence evidence;
    evidence.phase = e.phase();
    evidence.lu_singular = sim.last_stats().lu_singular;
    evidence.lu_nonfinite = sim.last_stats().lu_nonfinite;
    evidence.dt_halvings = sim.last_stats().dt_halvings;
    // The transient loop only throws once dt has collapsed to the floor.
    evidence.dt_at_floor = e.phase() == "transient";
    if (sim.diag_ring() != nullptr) {
      evidence.tail = sim.diag_ring()->snapshot();
    }
    return sks::obs::to_string(sks::obs::classify_failure(evidence));
  }
  return "";
}

int repro_bundle(const std::string& bundle_dir) {
  const auto manifest = sks::esim::read_postmortem_manifest(bundle_dir);
  const std::string netlist =
      read_file(bundle_dir + "/" + manifest.netlist_file);
  sks::esim::Simulator sim(sks::esim::parse_spice(netlist));
  sim.set_solver_mode(parse_solver_mode(manifest.solver_mode));
  sim.set_diagnostics(true);

  const std::string got = rerun_failure_class(sim, manifest);
  if (got.empty()) {
    std::cout << "repro: solve CONVERGED — bundle failure ("
              << manifest.failure_class << ") did not reproduce\n";
    return 1;
  }
  if (got == manifest.failure_class) {
    std::cout << "repro: reproduced failure class '" << got << "' on the "
              << manifest.solver_mode << " path\n";
    return 0;
  }
  std::cout << "repro: failure class mismatch — bundle says '"
            << manifest.failure_class << "', re-run produced '" << got
            << "'\n";
  return 1;
}

int run_netlist(const std::vector<std::string>& args) {
  std::string netlist_path;
  std::string solver;
  std::string postmortem_dir;
  bool transient = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--dc") {
      transient = false;
    } else if (a == "--tran") {
      transient = true;
    } else if (a == "--solver" && i + 1 < args.size()) {
      solver = args[++i];
    } else if (a == "--postmortem" && i + 1 < args.size()) {
      postmortem_dir = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      sks::check(false, "run: unknown flag '", a, "'");
    } else {
      sks::check(netlist_path.empty(), "run: more than one netlist given");
      netlist_path = a;
    }
  }
  sks::check(!netlist_path.empty(), "run: no netlist given");

  sks::esim::Simulator sim(sks::esim::parse_spice(read_file(netlist_path)));
  // No --solver flag leaves the simulator's own selection (auto threshold
  // or the SKS_SOLVER environment override) in force.
  if (!solver.empty()) sim.set_solver_mode(parse_solver_mode(solver));
  if (!postmortem_dir.empty()) sim.set_postmortem_dir(postmortem_dir);
  try {
    if (transient) {
      const auto result = sim.run_transient({});
      std::cout << "run: transient OK, " << result.steps()
                << " steps recorded\n";
    } else {
      const auto dc = sim.dc_solution(0.0);
      std::cout << "run: dc OK, " << dc.node_v.size() << " node voltages\n";
    }
  } catch (const sks::ConvergenceError& e) {
    std::cerr << "run: solve failed: " << e.what() << "\n";
    if (!e.bundle_path().empty()) {
      std::cerr << "run: postmortem bundle: " << e.bundle_path() << "\n"
                << "run: diagnose with: sks-report explain " << e.bundle_path()
                << "\n";
    }
    return 3;
  }
  return 0;
}

// ---- metrics timelines --------------------------------------------------

// Parse a timeline JSONL file (obs/timeline.hpp schema).  Hard-fails (via
// sks::check) on an unparsable line or a non-monotone seq — a corrupt
// timeline must not summarize as if it were healthy.
std::vector<Json> load_timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  sks::check(in.good(), "cannot open '", path, "'");
  std::vector<Json> out;
  std::string line;
  std::size_t line_no = 0;
  double prev_seq = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Json snap;
    try {
      snap = Json::parse(line);
    } catch (const sks::Error& e) {
      sks::check(false, path, ":", line_no, ": unparsable snapshot: ",
                 e.what());
    }
    sks::check(snap.is_object() && snap.has("seq"), path, ":", line_no,
               ": snapshot has no \"seq\"");
    const double seq = snap.at("seq").number();
    sks::check(seq > prev_seq, path, ":", line_no, ": seq ", fmt(seq),
               " not strictly greater than ", fmt(prev_seq));
    prev_seq = seq;
    out.push_back(std::move(snap));
  }
  return out;
}

double opt_number(const Json& obj, const char* key, double fallback = 0.0) {
  const Json* f = obj.find(key);
  return f != nullptr && f->is_number() ? f->number() : fallback;
}

void print_stream_table(const Json& snap, const char* indent) {
  const Json* streams = snap.find("streams");
  if (streams == nullptr || !streams->is_object() ||
      streams->object().empty()) {
    return;
  }
  std::printf("%s%-24s %8s %12s %12s %12s %12s %12s\n", indent, "stream",
              "count", "mean", "min", "p50", "p99", "max");
  for (const auto& [key, s] : streams->object()) {
    if (!s.is_object()) continue;
    std::printf("%s%-24s %8.0f %12s %12s %12s %12s %12s\n", indent,
                key.c_str(), opt_number(s, "count"),
                fmt(opt_number(s, "mean")).c_str(),
                fmt(opt_number(s, "min")).c_str(),
                fmt(opt_number(s, "p50")).c_str(),
                fmt(opt_number(s, "p99")).c_str(),
                fmt(opt_number(s, "max")).c_str());
  }
}

// One ladder row per snapshot: seq, label, wall clock, progress and the
// drop counters (so saturation mid-run is visible in the summary).
void print_timeline_row(const Json& snap) {
  std::string progress_text = "-";
  if (const Json* p = snap.find("progress"); p != nullptr && p->is_object()) {
    std::ostringstream text;
    text << static_cast<std::uint64_t>(opt_number(*p, "done")) << "/"
         << static_cast<std::uint64_t>(opt_number(*p, "total")) << " @"
         << fmt(opt_number(*p, "rate_per_s")) << "/s eta "
         << fmt(opt_number(*p, "eta_s")) << "s";
    progress_text = text.str();
  }
  double drops = 0.0;
  if (const Json* j = snap.find("journal")) drops += opt_number(*j, "dropped");
  if (const Json* t = snap.find("trace")) drops += opt_number(*t, "dropped");
  const Json* label = snap.find("label");
  std::printf("  %6.0f %-18s %10ss %-28s %8.0f\n", opt_number(snap, "seq"),
              label != nullptr && label->is_string() ? label->str().c_str()
                                                     : "?",
              fmt(opt_number(snap, "wall_s")).c_str(), progress_text.c_str(),
              drops);
}

int summarize_timeline(const std::string& path) {
  const std::vector<Json> snaps = load_timeline(path);
  if (snaps.empty()) {
    std::cout << path << ": no snapshots\n";
    return 0;
  }
  const Json& last = snaps.back();
  std::cout << "timeline " << path << ": " << snaps.size()
            << " snapshots over " << fmt(opt_number(last, "wall_s"))
            << "s (seq " << fmt(opt_number(snaps.front(), "seq")) << ".."
            << fmt(opt_number(last, "seq")) << ", monotone)\n";
  std::printf("  %6s %-18s %11s %-28s %8s\n", "seq", "label", "wall",
              "progress", "drops");
  // Middle rows elided on long timelines; the ends carry the story.
  constexpr std::size_t kHead = 8, kTail = 8;
  if (snaps.size() <= kHead + kTail + 1) {
    for (const Json& snap : snaps) print_timeline_row(snap);
  } else {
    for (std::size_t i = 0; i < kHead; ++i) print_timeline_row(snaps[i]);
    std::cout << "  ... (" << snaps.size() - kHead - kTail
              << " snapshots elided)\n";
    for (std::size_t i = snaps.size() - kTail; i < snaps.size(); ++i) {
      print_timeline_row(snaps[i]);
    }
  }
  std::cout << "final snapshot streams:\n";
  print_stream_table(last, "  ");
  double journal_drops = 0.0, trace_drops = 0.0;
  if (const Json* j = last.find("journal")) {
    journal_drops = opt_number(*j, "dropped");
  }
  if (const Json* t = last.find("trace")) trace_drops = opt_number(*t, "dropped");
  if (journal_drops > 0.0 || trace_drops > 0.0) {
    std::cout << "DROPS: journal=" << fmt(journal_drops)
              << " trace=" << fmt(trace_drops) << "\n";
  }
  return 0;
}

std::map<std::string, double> snapshot_section(const Json& snap,
                                               const std::string& section) {
  return number_section(snap, section);
}

// Two timelines: diff their FINAL snapshots (counters, gauges, stream
// means) — "did the overnight run end in the same place as yesterday's".
int diff_timelines(const std::string& path_a, const std::string& path_b) {
  const std::vector<Json> a = load_timeline(path_a);
  const std::vector<Json> b = load_timeline(path_b);
  sks::check(!a.empty(), path_a, ": no snapshots");
  sks::check(!b.empty(), path_b, ": no snapshots");
  std::cout << "timeline diff (final snapshots) " << path_a << " -> "
            << path_b << "\n";
  diff_section("counters", snapshot_section(a.back(), "counters"),
               snapshot_section(b.back(), "counters"));
  diff_section("gauges", snapshot_section(a.back(), "gauges"),
               snapshot_section(b.back(), "gauges"));
  auto stream_means = [](const Json& snap) {
    std::map<std::string, double> out;
    if (const Json* streams = snap.find("streams");
        streams != nullptr && streams->is_object()) {
      for (const auto& [key, s] : streams->object()) {
        if (!s.is_object()) continue;
        out[key + ".mean"] = opt_number(s, "mean");
        out[key + ".p99"] = opt_number(s, "p99");
      }
    }
    return out;
  };
  diff_section("streams", stream_means(a.back()), stream_means(b.back()));
  return 0;
}

// Latest-snapshot view for a live run: progress bar, rates, streams.
void render_tail_snapshot(const Json& snap, std::size_t total_snapshots) {
  const Json* label = snap.find("label");
  std::cout << "snapshot #" << fmt(opt_number(snap, "seq")) << " \""
            << (label != nullptr && label->is_string() ? label->str() : "?")
            << "\" at wall " << fmt(opt_number(snap, "wall_s")) << "s ("
            << total_snapshots << " snapshots so far)\n";
  if (const Json* sim_t = snap.find("sim_t")) {
    std::cout << "  sim time: " << fmt(sim_t->number()) << "s\n";
  }
  if (const Json* p = snap.find("progress"); p != nullptr && p->is_object()) {
    const double done = opt_number(*p, "done");
    const double total = opt_number(*p, "total");
    const double frac = total > 0.0 ? done / total : 0.0;
    constexpr int kBarWidth = 40;
    const int filled = static_cast<int>(frac * kBarWidth + 0.5);
    std::string bar(static_cast<std::size_t>(filled), '#');
    bar.resize(kBarWidth, '.');
    const Json* name = p->find("name");
    std::printf("  %s [%s] %.0f/%.0f (%.1f%%)\n",
                name != nullptr && name->is_string() ? name->str().c_str()
                                                     : "progress",
                bar.c_str(), done, total, 100.0 * frac);
    std::printf("  rate %s/s (recent %s/s), eta %ss\n",
                fmt(opt_number(*p, "rate_per_s")).c_str(),
                fmt(opt_number(*p, "recent_rate_per_s")).c_str(),
                fmt(opt_number(*p, "eta_s")).c_str());
    if (const Json* partial = p->find("partial");
        partial != nullptr && partial->is_object()) {
      std::cout << "  partial:";
      for (const auto& [key, v] : partial->object()) {
        std::cout << " " << key << "=" << fmt(v.number());
      }
      std::cout << "\n";
    }
  }
  print_stream_table(snap, "  ");
  double journal_drops = 0.0, trace_drops = 0.0;
  if (const Json* j = snap.find("journal")) {
    journal_drops = opt_number(*j, "dropped");
  }
  if (const Json* t = snap.find("trace")) trace_drops = opt_number(*t, "dropped");
  if (journal_drops > 0.0 || trace_drops > 0.0) {
    std::cout << "  DROPS: journal=" << fmt(journal_drops)
              << " trace=" << fmt(trace_drops) << "\n";
  }
}

int tail_timeline(const std::string& path, bool follow) {
  // Poll-and-render loop; one pass when not following.  The writer flushes
  // whole lines, so re-reading the file always sees complete snapshots.
  constexpr auto kPoll = std::chrono::milliseconds(500);
  constexpr int kIdleExit = 60;  // ~30 s without a new snapshot
  double last_seq = -1.0;
  int idle = 0;
  while (true) {
    std::vector<Json> snaps;
    try {
      snaps = load_timeline(path);
    } catch (const sks::Error& e) {
      // A partially-written first line right at startup is not an error
      // in follow mode — retry; bare tail reports it.
      if (!follow) throw;
      std::cerr << "tail: " << e.what() << " (retrying)\n";
      std::this_thread::sleep_for(kPoll);
      continue;
    }
    if (!snaps.empty()) {
      const Json& last = snaps.back();
      const double seq = opt_number(last, "seq");
      if (seq != last_seq) {
        last_seq = seq;
        idle = 0;
        render_tail_snapshot(last, snaps.size());
        const Json* label = last.find("label");
        if (label != nullptr && label->is_string() &&
            label->str() == "final") {
          if (follow) std::cout << "tail: run finished (final snapshot)\n";
          return 0;
        }
      } else {
        ++idle;
      }
    } else {
      ++idle;
    }
    if (!follow) return snaps.empty() ? 1 : 0;
    if (idle >= kIdleExit) {
      std::cout << "tail: no new snapshot for a while; giving up\n";
      return 1;
    }
    std::this_thread::sleep_for(kPoll);
  }
}

// ---- bench history ------------------------------------------------------

// FNV-1a over the canonical (report name + sorted flat values) rendering:
// the dedup key for history lines.  Two appends of the same BENCH_*.json
// hash identically; meta (hostname, SHA) is deliberately excluded so a
// re-run that produced bit-identical numbers still dedups.
std::string history_hash(const std::string& report,
                         const std::map<std::string, double>& rows) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix(report);
  for (const auto& [key, v] : rows) {
    mix(key);
    mix(fmt(v));
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Flat name -> number view of one report doc: values + counters + gauges.
// Gauges fold in the mem.* rows (peak RSS, page faults, byte accounting)
// so the history accumulates a memory trend alongside walls.
std::map<std::string, double> history_rows(const Json& doc) {
  std::map<std::string, double> rows = number_section(doc, "values");
  for (const auto& [key, v] : number_section(doc, "counters")) {
    rows.emplace(key, v);
  }
  for (const auto& [key, v] : number_section(doc, "gauges")) {
    rows.emplace(key, v);
  }
  return rows;
}

// One history line: report name, dedup hash, provenance meta and the flat
// numeric rows.
std::string history_line(const Json& doc, const std::string& path) {
  const std::map<std::string, double> rows = history_rows(doc);
  std::ostringstream out;
  out << "{\"report\": \"" << sks::obs::json_escape(doc.at("report").str())
      << "\", \"source\": \"" << sks::obs::json_escape(path)
      << "\", \"hash\": \""
      << history_hash(doc.at("report").str(), rows) << "\"";
  if (const Json* meta = doc.find("meta");
      meta != nullptr && meta->is_object()) {
    out << ", \"meta\": {";
    bool first = true;
    for (const auto& [key, value] : meta->object()) {
      if (!value.is_string()) continue;
      out << (first ? "" : ", ") << '"' << sks::obs::json_escape(key)
          << "\": \"" << sks::obs::json_escape(value.str()) << '"';
      first = false;
    }
    out << "}";
  }
  out << ", \"values\": {";
  bool first = true;
  for (const auto& [key, v] : rows) {
    out << (first ? "" : ", ") << '"' << sks::obs::json_escape(key)
        << "\": " << fmt(v);
    first = false;
  }
  out << "}}";
  return out.str();
}

// Dedup hash of an already-written history line; legacy lines without a
// "hash" field get it recomputed from their report + values so pre-dedup
// history still participates.
std::string history_line_hash(const Json& doc) {
  if (const Json* h = doc.find("hash"); h != nullptr && h->is_string()) {
    return h->str();
  }
  return history_hash(doc.at("report").str(), number_section(doc, "values"));
}

int history_command(const std::string& jsonl_path,
                    const std::vector<std::string>& reports) {
  if (!reports.empty()) {
    // Existing hashes first: a CI re-run appending the identical report
    // must not pollute the sentinel's trend window with duplicate points.
    std::set<std::string> seen;
    {
      std::ifstream in(jsonl_path);
      std::string line;
      while (in.good() && std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        seen.insert(history_line_hash(Json::parse(line)));
      }
    }
    std::ofstream out(jsonl_path, std::ios::app);
    sks::check(out.good(), "cannot open '", jsonl_path, "' for appending");
    std::size_t appended = 0, skipped = 0;
    for (const std::string& path : reports) {
      const Json doc = load_report(path);
      const std::string hash =
          history_hash(doc.at("report").str(), history_rows(doc));
      if (!seen.insert(hash).second) {
        std::cout << "skipped " << path << ": duplicate of an existing "
                  << "history entry (hash " << hash << ")\n";
        ++skipped;
        continue;
      }
      out << history_line(doc, path) << "\n";
      ++appended;
    }
    out.flush();
    sks::check(out.good(), "append to '", jsonl_path, "' failed");
    std::cout << "appended " << appended << " report(s) to " << jsonl_path;
    if (skipped > 0) std::cout << " (" << skipped << " duplicate(s) skipped)";
    std::cout << "\n";
  }

  std::ifstream in(jsonl_path);
  sks::check(in.good(), "cannot open '", jsonl_path, "'");
  std::vector<std::pair<std::string, std::map<std::string, double>>> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Json doc = Json::parse(line);
    entries.emplace_back(doc.at("report").str(),
                         number_section(doc, "values"));
  }
  if (entries.empty()) {
    std::cout << jsonl_path << ": no history entries\n";
    return 0;
  }

  // Trend table: the latest entry's metrics as rows, the most recent runs
  // as columns (newest right), closed by p50/p99 columns computed over the
  // WHOLE history with the streaming P² estimator — bounded memory no
  // matter how many runs the file has accumulated.
  constexpr std::size_t kMaxColumns = 6;
  const std::size_t first =
      entries.size() > kMaxColumns ? entries.size() - kMaxColumns : 0;
  // Metric column sized to the longest key in the latest entry (36 min):
  // the folded fixed.bigtree_* counter names run past 40 characters and
  // must not shear the run columns out of alignment.
  std::size_t key_width = 36;
  std::size_t val_width = 12;
  for (const auto& [key, latest] : entries.back().second) {
    key_width = std::max(key_width, key.size());
    for (std::size_t c = first; c < entries.size(); ++c) {
      const auto it = entries[c].second.find(key);
      if (it != entries[c].second.end()) {
        val_width = std::max(val_width, fmt(it->second).size());
      }
    }
    (void)latest;
  }
  const int kw = static_cast<int>(key_width);
  const int vw = static_cast<int>(val_width);
  std::cout << "history " << jsonl_path << " (" << entries.size()
            << " entries, showing last " << entries.size() - first
            << "; p50/p99 over all)\n";
  std::printf("  %-*s", kw, "metric");
  for (std::size_t c = first; c < entries.size(); ++c) {
    std::printf(" %*s", vw, ("run " + std::to_string(c + 1)).c_str());
  }
  std::printf(" %*s %*s\n", vw, "p50", vw, "p99");
  for (const auto& [key, latest] : entries.back().second) {
    (void)latest;
    std::printf("  %-*s", kw, key.c_str());
    for (std::size_t c = first; c < entries.size(); ++c) {
      const auto it = entries[c].second.find(key);
      if (it == entries[c].second.end()) {
        std::printf(" %*s", vw, "-");
      } else {
        std::printf(" %*s", vw, fmt(it->second).c_str());
      }
    }
    sks::obs::stream::P2Quantile p50(0.50), p99(0.99);
    for (const auto& [name, values] : entries) {
      (void)name;
      const auto it = values.find(key);
      if (it != values.end()) {
        p50.add(it->second);
        p99.add(it->second);
      }
    }
    std::printf(" %*s %*s\n", vw, fmt(p50.value()).c_str(), vw,
                fmt(p99.value()).c_str());
  }
  return 0;
}

// ---- regression sentinel ------------------------------------------------

// EWMA control charts (obs/sentinel.hpp) over every per-metric series in
// a history JSONL.  Series are keyed on (report name, metric) so a file
// mixing perf_micro and fig5 entries never splices their trends together.
// Flags print as grep-able `SENTINEL_FLAG kind=...` lines; --strict turns
// any flag into exit code 4 (tools/bench_gate.py EXIT_SENTINEL).
int sentinel_command(const std::vector<std::string>& args) {
  std::string jsonl_path;
  std::string metric_prefix;
  sks::obs::SentinelOptions opt;
  bool strict = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--lambda" && i + 1 < args.size()) {
      opt.lambda = std::atof(args[++i].c_str());
    } else if (args[i] == "--k" && i + 1 < args.size()) {
      opt.k = std::atof(args[++i].c_str());
    } else if (args[i] == "--warmup" && i + 1 < args.size()) {
      opt.warmup = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--metric" && i + 1 < args.size()) {
      metric_prefix = args[++i];
    } else if (args[i] == "--strict") {
      strict = true;
    } else if (jsonl_path.empty()) {
      jsonl_path = args[i];
    } else {
      sks::check(false, "sentinel: unexpected argument '", args[i], "'");
    }
  }
  sks::check(!jsonl_path.empty(), "sentinel: missing HISTORY.jsonl");
  sks::check(opt.lambda > 0.0 && opt.lambda <= 1.0,
             "sentinel: --lambda must be in (0, 1]");
  sks::check(opt.k > 0.0, "sentinel: --k must be positive");

  std::ifstream in(jsonl_path);
  sks::check(in.good(), "cannot open '", jsonl_path, "'");
  // (report, metric) -> series in file order (file order == run order:
  // history_command only ever appends).
  std::map<std::pair<std::string, std::string>, std::vector<double>> series;
  std::set<std::string> report_names;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Json doc = Json::parse(line);
    const std::string report = doc.at("report").str();
    report_names.insert(report);
    ++lines;
    for (const auto& [key, v] : number_section(doc, "values")) {
      if (!metric_prefix.empty() && key.rfind(metric_prefix, 0) != 0) {
        continue;
      }
      series[{report, key}].push_back(v);
    }
  }

  std::vector<sks::obs::SentinelFinding> flagged;
  std::size_t charted = 0;
  for (const auto& [key, values] : series) {
    const std::string label = report_names.size() > 1
                                  ? key.first + "/" + key.second
                                  : key.second;
    const sks::obs::SentinelFinding f =
        sks::obs::sentinel_check(label, values, opt);
    if (f.runs > opt.warmup) ++charted;
    if (f.verdict != sks::obs::SentinelVerdict::kOk) flagged.push_back(f);
  }

  std::cout << "sentinel " << jsonl_path << ": " << lines << " run(s), "
            << series.size() << " metric series (" << charted
            << " past warm-up), lambda=" << fmt(opt.lambda)
            << " k=" << fmt(opt.k) << " warmup=" << opt.warmup << "\n";
  for (const auto& f : flagged) {
    std::cout << "SENTINEL_FLAG kind=" << sks::obs::to_string(f.verdict)
              << " key=" << f.metric << " last=" << fmt(f.value)
              << " baseline=" << fmt(f.baseline_mean)
              << " sigma=" << fmt(f.baseline_sigma)
              << " ewma=" << fmt(f.ewma) << " band=[" << fmt(f.band_lo)
              << ", " << fmt(f.band_hi) << "] runs=" << f.runs << "\n";
  }
  if (flagged.empty()) {
    std::cout << "sentinel: no drift or step flags\n";
    return 0;
  }
  std::cout << "sentinel: " << flagged.size() << " metric(s) flagged"
            << (strict ? " (strict: exit 4)" : " (warn-only)") << "\n";
  return strict ? 4 : 0;
}

// ---- performance attribution --------------------------------------------

// Re-hydrate an obs::Profile from a report's aggregated `profile` section.
sks::obs::Profile profile_from_report_doc(const Json& doc,
                                          const std::string& path) {
  const Json* prof = doc.find("profile");
  sks::check(prof != nullptr && prof->is_object(), path,
             ": no \"profile\" section (re-run with --profile and tracing "
             "enabled: SKS_TRACE=1 or --trace-out)");
  sks::obs::Profile p;
  p.set_window_ns(
      static_cast<std::uint64_t>(opt_number(*prof, "window_s") * 1e9));
  if (const Json* nodes = prof->find("nodes");
      nodes != nullptr && nodes->is_array()) {
    for (const Json& jn : nodes->array()) {
      sks::obs::ProfileNode n;
      n.path = jn.at("path").str();
      n.name = jn.at("name").str();
      n.depth = static_cast<std::size_t>(opt_number(jn, "depth"));
      n.count = static_cast<std::uint64_t>(opt_number(jn, "count"));
      n.total_ns = static_cast<std::uint64_t>(opt_number(jn, "total_s") * 1e9);
      n.self_ns = static_cast<std::uint64_t>(opt_number(jn, "self_s") * 1e9);
      n.min_ns = static_cast<std::uint64_t>(opt_number(jn, "min_s") * 1e9);
      n.max_ns = static_cast<std::uint64_t>(opt_number(jn, "max_s") * 1e9);
      if (const Json* threads = jn.find("threads");
          threads != nullptr && threads->is_object()) {
        for (const auto& [thread, slice] : threads->object()) {
          if (!slice.is_object()) continue;
          n.threads[thread] = {
              static_cast<std::uint64_t>(opt_number(slice, "count")),
              static_cast<std::uint64_t>(opt_number(slice, "total_s") * 1e9)};
        }
      }
      p.add_node(std::move(n));
    }
  }
  if (const Json* workers = prof->find("workers");
      workers != nullptr && workers->is_array()) {
    for (const Json& jw : workers->array()) {
      sks::obs::WorkerUtil w;
      const Json* thread = jw.find("thread");
      if (thread == nullptr || !thread->is_string()) continue;
      w.thread = thread->str();
      w.spans = static_cast<std::uint64_t>(opt_number(jw, "spans"));
      w.busy_ns = static_cast<std::uint64_t>(opt_number(jw, "busy_s") * 1e9);
      w.util = opt_number(jw, "util");
      p.add_worker(std::move(w));
    }
  }
  p.seal();
  return p;
}

// Rebuild a profile from a raw Chrome trace (--trace-out output, or any
// trace-event JSON): thread_name metadata labels the tracks, complete
// ('X') events become spans.  ts/dur are microseconds in that format.
sks::obs::Profile profile_from_chrome_trace(const Json& doc,
                                            const std::string& path) {
  const Json* events = doc.find("traceEvents");
  sks::check(events != nullptr && events->is_array(), path,
             ": no \"traceEvents\" array");
  std::map<double, std::string> thread_names;
  for (const Json& e : events->array()) {
    const Json* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str() != "M") continue;
    const Json* name = e.find("name");
    if (name == nullptr || !name->is_string() ||
        name->str() != "thread_name") {
      continue;
    }
    const Json* args = e.find("args");
    if (args == nullptr) continue;
    const Json* tname = args->find("name");
    if (tname == nullptr || !tname->is_string()) continue;
    thread_names[opt_number(e, "tid")] = tname->str();
  }
  std::vector<sks::obs::ProfileSpan> spans;
  for (const Json& e : events->array()) {
    const Json* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str() != "X") continue;
    const Json* name = e.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const double tid = opt_number(e, "tid");
    const auto it = thread_names.find(tid);
    spans.push_back({it != thread_names.end() ? it->second : "tid-" + fmt(tid),
                     name->str(),
                     static_cast<std::uint64_t>(opt_number(e, "ts") * 1000.0),
                     static_cast<std::uint64_t>(opt_number(e, "dur") * 1000.0)});
  }
  return sks::obs::build_profile(std::move(spans));
}

// Accept either input kind: a BENCH report with a `profile` section, or a
// Chrome trace JSON to aggregate on the fly.
sks::obs::Profile load_profile_any(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  sks::check(doc.is_object(), path, ": not a JSON object");
  if (doc.has("traceEvents")) return profile_from_chrome_trace(doc, path);
  sks::check(doc.has("report"), path,
             ": neither a run report nor a Chrome trace");
  return profile_from_report_doc(doc, path);
}

int flame_command(const std::vector<std::string>& args) {
  std::string input, collapsed_path;
  std::size_t top = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (a == "--collapsed" && i + 1 < args.size()) {
      collapsed_path = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      sks::check(false, "flame: unknown flag '", a, "'");
    } else {
      sks::check(input.empty(), "flame: more than one input given");
      input = a;
    }
  }
  sks::check(!input.empty(), "flame: no input given");

  const sks::obs::Profile profile = load_profile_any(input);
  if (profile.empty()) {
    std::cout << input << ": profile is empty (no spans recorded)\n";
    return 1;
  }

  std::vector<const sks::obs::ProfileNode*> rows;
  rows.reserve(profile.nodes().size());
  for (const auto& n : profile.nodes()) rows.push_back(&n);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
    return a->path < b->path;
  });

  std::cout << "flame " << input << ": " << profile.nodes().size()
            << " tree nodes over " << fmt(profile.window_ns() * 1e-9)
            << "s window\n";
  const std::size_t shown = top > 0 ? std::min(top, rows.size()) : rows.size();
  std::printf("  %12s %12s %10s  %s\n", "self", "total", "count", "path");
  for (std::size_t i = 0; i < shown; ++i) {
    const sks::obs::ProfileNode& n = *rows[i];
    std::printf("  %11ss %11ss %10llu  %s\n",
                fmt(static_cast<double>(n.self_ns) * 1e-9).c_str(),
                fmt(static_cast<double>(n.total_ns) * 1e-9).c_str(),
                static_cast<unsigned long long>(n.count), n.path.c_str());
  }
  if (shown < rows.size()) {
    std::cout << "  ... (" << rows.size() - shown << " nodes below --top "
              << top << ")\n";
  }
  if (!profile.workers().empty()) {
    std::cout << "  workers (busy over window):\n";
    for (const auto& w : profile.workers()) {
      std::printf("    %-20s spans=%-8llu busy=%ss util=%.1f%%\n",
                  w.thread.c_str(), static_cast<unsigned long long>(w.spans),
                  fmt(static_cast<double>(w.busy_ns) * 1e-9).c_str(),
                  100.0 * w.util);
    }
  }
  if (!collapsed_path.empty()) {
    write_file(collapsed_path, profile.collapsed_stacks());
    std::cout << "wrote collapsed stacks to " << collapsed_path
              << " (feed to flamegraph.pl or speedscope)\n";
  }
  return 0;
}

int attribute_command(const std::vector<std::string>& args) {
  std::vector<std::string> inputs;
  std::size_t top = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (!a.empty() && a[0] == '-') {
      sks::check(false, "attribute: unknown flag '", a, "'");
    } else {
      inputs.push_back(a);
    }
  }
  sks::check(inputs.size() == 2, "attribute: expected BASE and CURRENT");

  const sks::obs::Profile base = load_profile_any(inputs[0]);
  const sks::obs::Profile cur = load_profile_any(inputs[1]);
  const auto ranked = sks::obs::attribute_profiles(base, cur);
  if (ranked.empty()) {
    std::cout << "attribution: both profiles are empty\n";
    return 1;
  }

  // Overall movement = summed root-node delta (roots cover the tree once).
  double overall = 0.0;
  for (const auto& a : ranked) {
    if (a.path.find(';') == std::string::npos) overall += a.delta_total_s;
  }
  std::cout << "attribution " << inputs[0] << " -> " << inputs[1] << " ("
            << ranked.size() << " nodes, overall "
            << (overall >= 0.0 ? "+" : "") << fmt(overall)
            << "s across roots)\n";
  const std::size_t shown = top > 0 ? std::min(top, ranked.size())
                                    : ranked.size();
  for (std::size_t i = 0; i < shown; ++i) {
    const sks::obs::Attribution& a = ranked[i];
    std::printf("  #%-2zu %+.6fs total (%s -> %s)  self %+.6fs  "
                "count %llu -> %llu  %s\n",
                i + 1, a.delta_total_s, fmt(a.base_total_s).c_str(),
                fmt(a.cur_total_s).c_str(), a.delta_self_s,
                static_cast<unsigned long long>(a.base_count),
                static_cast<unsigned long long>(a.cur_count), a.path.c_str());
  }
  if (shown < ranked.size()) {
    std::cout << "  ... (" << ranked.size() - shown << " nodes below --top "
              << top << ")\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  sks-report print   REPORT.json... [--top N]\n"
               "  sks-report diff    A.json B.json\n"
               "  sks-report merge   OUT.json A.json B.json...\n"
               "  sks-report trace   OUT.json REPORT.json...\n"
               "  sks-report flame   REPORT.json|TRACE.json [--top N] "
               "[--collapsed OUT.txt]\n"
               "  sks-report attribute BASE.json CURRENT.json [--top N]\n"
               "  sks-report explain BUNDLE_DIR\n"
               "  sks-report repro   BUNDLE_DIR\n"
               "  sks-report run     NETLIST.sp [--dc|--tran] "
               "[--solver dense|sparse|hierarchical|auto] "
               "[--postmortem DIR]\n"
               "  sks-report history HISTORY.jsonl [REPORT.json...]\n"
               "  sks-report sentinel HISTORY.jsonl [--lambda L] [--k K] "
               "[--warmup N] [--metric PREFIX] [--strict]\n"
               "  sks-report timeline TIMELINE.jsonl [B.jsonl]\n"
               "  sks-report tail    TIMELINE.jsonl [--follow]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  std::vector<std::string> paths(argv + 2, argv + argc);
  try {
    if (command == "print") {
      std::size_t top = 0;
      std::vector<std::string> files;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (paths[i] == "--top" && i + 1 < paths.size()) {
          top = static_cast<std::size_t>(std::atol(paths[++i].c_str()));
        } else {
          files.push_back(paths[i]);
        }
      }
      for (const std::string& path : files) print_report(path, top);
      return 0;
    }
    if (command == "flame") {
      return flame_command(paths);
    }
    if (command == "attribute") {
      return attribute_command(paths);
    }
    if (command == "diff" && paths.size() == 2) {
      return diff_reports(paths[0], paths[1]);
    }
    if (command == "merge" && paths.size() >= 2) {
      return merge_reports(paths[0], {paths.begin() + 1, paths.end()});
    }
    if (command == "trace" && paths.size() >= 2) {
      return journal_to_trace(paths[0], {paths.begin() + 1, paths.end()});
    }
    if (command == "explain" && paths.size() == 1) {
      return explain_bundle(paths[0]);
    }
    if (command == "repro" && paths.size() == 1) {
      return repro_bundle(paths[0]);
    }
    if (command == "run") {
      return run_netlist(paths);
    }
    if (command == "history") {
      return history_command(paths[0], {paths.begin() + 1, paths.end()});
    }
    if (command == "sentinel") {
      return sentinel_command(paths);
    }
    if (command == "timeline" && paths.size() == 1) {
      return summarize_timeline(paths[0]);
    }
    if (command == "timeline" && paths.size() == 2) {
      return diff_timelines(paths[0], paths[1]);
    }
    if (command == "tail" && !paths.empty()) {
      const bool follow = paths.size() > 1 && paths[1] == "--follow";
      return tail_timeline(paths[0], follow);
    }
    return usage();
  } catch (const sks::Error& e) {
    std::cerr << "sks-report: " << e.what() << "\n";
    return 1;
  }
}
