#!/usr/bin/env python3
"""Bench regression gate: diff a fresh perf_micro run against the
checked-in baseline under bench/baseline/.

Two kinds of signal, gated differently:

* deterministic work counters (`values.fixed.*` of BENCH_perf_micro.json):
  perf_micro runs every hot kernel a fixed number of times with the obs
  registry zeroed, so these are exact solver work counts (NR iterations,
  LU factorizations, accepted steps) independent of machine and of
  google-benchmark's adaptive iteration counts.  ANY increase fails the
  gate (a >0%% solver-work regression); decreases pass with a note to
  re-baseline so the improvement is locked in.

* wall times (google-benchmark JSON via --benchmark_out): compared per
  benchmark against the baseline's real_time with a relative tolerance,
  default 20%% (SKS_BENCH_TIME_TOL=0.3 widens it to 30%%).  Wall times are
  machine-dependent, so this check only runs when the baseline records the
  same machine profile (SKS_BENCH_MACHINE, default "ci") and can be
  disabled outright with SKS_BENCH_SKIP_TIME=1 for ad-hoc local runs.

Usage:
  tools/bench_gate.py check --report BENCH_perf_micro.json \
      [--timings gbench.json] [--baseline-dir bench/baseline] \
      [--attribute-with build/sks-report]
  tools/bench_gate.py rebaseline --report BENCH_perf_micro.json \
      [--timings gbench.json] [--baseline-dir bench/baseline]

* gate windows (WINDOWS below): report values that must stay inside an
  absolute [lo, hi] band — e.g. solver.mc_batch_speedup, the batched
  Monte-Carlo fast path's margin over the scalar path.

Every failure is one grep-able "BENCH_GATE_FAIL kind=... key=..." line
naming the offending key and both values.  Exit codes: 0 OK; 2 a gated
key is missing from the report; 3 a value violated REQUIRED_ZERO or its
window; 4 the EWMA trend sentinel flagged under --sentinel-strict; 1
everything else (counter/time regressions, file problems).

* trend sentinel (--sentinel bench/history.jsonl): appends `sks-report
  sentinel` EWMA drift/step verdicts after the hard-gate results — warn
  only by default, exit 4 with --sentinel-strict on an otherwise-green
  run (hard-gate failures always win).

Re-baselining (after an intentional perf-relevant change): run the check,
review the printed deltas, then re-run with `rebaseline` and commit the
updated bench/baseline/ files in the same PR as the change that moved
them.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

COUNTER_BASELINE = "BENCH_perf_micro.json"
TIMING_BASELINE = "gbench_perf_micro.json"

# Counters that must exist in the report AND be exactly zero: perf_micro
# pre-creates them before its fixed workload, so a nonzero value proves a
# streaming accumulator, timeline snapshot, profile build, or instrumented
# memory-gauge update leaked onto the solver hot path with streaming
# disabled (obs/metrics.hpp documents the guarantee).
REQUIRED_ZERO = ("obs.stream_updates", "obs.timeline_snapshots",
                 "obs.profile_builds", "obs.mem_gauge_updates",
                 # Live exposition guard: gate runs never pass --expose, so
                 # the /metrics scrape counter must stay exactly zero — the
                 # listener (obs/expose.hpp) costs nothing unless asked for.
                 "obs.expose_scrapes",
                 # Hierarchical Schur path steady-state guard: doubling the
                 # simulated time on the same companion configs must add
                 # exactly zero linear-block factorizations (they are paid
                 # once per config, then only the interface re-solves).
                 "bigtree_steady.extra_block_factorizations")

# Report values (full "values.*" keys, not fixed counters) that must land
# inside [lo, hi] (None = that side open).  These are wall-derived ratios,
# so like the gbench timings they are skipped under SKS_BENCH_SKIP_TIME=1.
WINDOWS = {
    # Batched SoA Monte-Carlo: the fast path must keep a real margin over
    # the scalar path.  Measured ~1.8-1.9x at 32 lanes on the fig5
    # population (1-core CI class hardware; see EXPERIMENTS.md "Batched
    # Monte-Carlo" for the phase breakdown and why the aspirational 4x is
    # out of reach on this n=25 circuit).  The 1.4 floor leaves headroom
    # for loaded or slower CI machines while still failing if batching
    # ever stops paying for itself.
    "solver.mc_batch_speedup": (1.4, None),
    # Hierarchical Schur path on the 33k-unknown synthesized clock tree
    # (bigtree level 6, one clock edge) against flat sparse — the largest
    # size flat sparse still runs in CI time.  Measured ~6.7x (the flat
    # path's one-shot global min-degree ordering dominates its wall time at
    # this size); the 5.0 floor is the ISSUE's acceptance bar and still
    # leaves margin for machine noise.
    "solver.bigtree_hier_speedup": (5.0, None),
}

# Distinct exit codes so CI can tell a structural problem (a gated key the
# report no longer produces) from a value drifting out of its window.
EXIT_FAIL = 1            # counter/time regression, file problems
EXIT_MISSING_KEY = 2     # a gated key is absent from the report
EXIT_OUT_OF_WINDOW = 3   # REQUIRED_ZERO violated or WINDOWS value outside
EXIT_SENTINEL = 4        # --sentinel-strict and the EWMA sentinel flagged

REBASELINE_HINT = ("re-create it with `tools/bench_gate.py rebaseline "
                   "--report BENCH_perf_micro.json "
                   "[--timings gbench_perf_micro.json]` "
                   "and commit bench/baseline/")


def run_attribution(sks_report, baseline_path, report_path):
    """Best-effort `sks-report attribute BASELINE CURRENT` on a gate trip.

    Ranks the span-tree paths whose wall time moved the most between the
    baseline and the failing run, so an out-of-window failure arrives with
    its likely cause attached.  Printed AFTER the one-line grep-able
    failures so those stay machine-parseable; any problem (missing binary,
    reports without profile sections) degrades to a one-line note, never a
    second failure.
    """
    print("\nattribution (baseline -> this run):", file=sys.stderr)
    try:
        proc = subprocess.run(
            [sks_report, "attribute", baseline_path, report_path],
            capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"  attribution unavailable: {e}", file=sys.stderr)
        return
    out = (proc.stdout + proc.stderr).strip()
    if proc.returncode != 0:
        print("  attribution unavailable (no profile sections? run "
              "perf_micro with SKS_TRACE=1 and rebaseline)", file=sys.stderr)
    for line in out.splitlines():
        print(f"  {line}", file=sys.stderr)


def run_sentinel(sks_report, history_path):
    """`sks-report sentinel HISTORY.jsonl`: EWMA drift/step verdicts.

    Returns True when the sentinel flagged at least one metric.  The
    verdict table prints after the hard-gate results either way (a trend
    warning is useful context even on a green run); any problem running
    the binary degrades to a one-line note — the sentinel layer must
    never turn a healthy gate run red on its own.
    """
    print("\nsentinel (EWMA trend over bench history):")
    try:
        proc = subprocess.run(
            [sks_report, "sentinel", history_path],
            capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"  sentinel unavailable: {e}")
        return False
    out = (proc.stdout + proc.stderr).strip()
    for line in out.splitlines():
        print(f"  {line}")
    if proc.returncode not in (0, EXIT_SENTINEL):
        print(f"  sentinel unavailable (exit {proc.returncode})")
        return False
    return "SENTINEL_FLAG" in out


class GateError(Exception):
    """A file problem the gate reports as one line, not a traceback."""


def fmt_window(lo, hi):
    return f"[{'-inf' if lo is None else lo}, {'inf' if hi is None else hi}]"


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise GateError(f"{what} not found: {path}")
    except json.JSONDecodeError as e:
        raise GateError(f"{what} is not valid JSON: {path} (line {e.lineno}: "
                        f"{e.msg})")
    except OSError as e:
        raise GateError(f"cannot read {what} {path}: {e.strerror}")


def load_fixed_counters(path, what):
    doc = load_json(path, what)
    values = doc.get("values") if isinstance(doc, dict) else None
    if not isinstance(values, dict):
        raise GateError(f"{what} {path} has no \"values\" object "
                        "(not a perf_micro run report)")
    return {
        k[len("fixed."):]: v
        for k, v in values.items()
        if k.startswith("fixed.") and isinstance(v, (int, float))
    }


def load_timings(path, what):
    doc = load_json(path, what)
    rows = doc.get("benchmarks") if isinstance(doc, dict) else None
    if not isinstance(rows, list):
        raise GateError(f"{what} {path} has no \"benchmarks\" list "
                        "(not a google-benchmark --benchmark_out file)")
    out = {}
    for row in rows:
        if row.get("run_type", "iteration") != "iteration":
            continue
        try:
            out[row["name"]] = float(row["real_time"])
        except (KeyError, TypeError, ValueError):
            raise GateError(f"{what} {path} has a benchmark row without "
                            "name/real_time")
    return out


def check_counters(baseline_path, report_path):
    base = load_fixed_counters(baseline_path, "counter baseline")
    new = load_fixed_counters(report_path, "report")
    # Failures are (exit_code, one_line) pairs; every line is a single
    # grep-able "BENCH_GATE_FAIL kind=... key=..." record naming the
    # offending key and both values.
    failures = []
    improvements = []
    for name, base_v in sorted(base.items()):
        if name not in new:
            failures.append((
                EXIT_MISSING_KEY,
                f"BENCH_GATE_FAIL kind=missing-key key=fixed.{name} "
                f"baseline={base_v:.0f} actual=absent"))
            continue
        new_v = new[name]
        if new_v > base_v:
            failures.append((
                EXIT_FAIL,
                f"BENCH_GATE_FAIL kind=counter-regression key=fixed.{name} "
                f"baseline={base_v:.0f} actual={new_v:.0f} "
                f"(+{100.0 * (new_v - base_v) / max(base_v, 1):.1f}%)"))
        elif new_v < base_v:
            improvements.append(
                f"fixed.{name} {base_v:.0f} -> {new_v:.0f}")
    for name in sorted(set(new) - set(base)):
        print(f"note: new fixed counter not in baseline: {name} = "
              f"{new[name]:.0f} (rebaseline to start tracking it)")
    for line in improvements:
        print(f"improved: {line} (rebaseline to lock in)")
    for name in REQUIRED_ZERO:
        if name not in new:
            failures.append((
                EXIT_MISSING_KEY,
                f"BENCH_GATE_FAIL kind=missing-key key=fixed.{name} "
                f"required=0 actual=absent (perf_micro must pre-create it)"))
        elif new[name] != 0:
            failures.append((
                EXIT_OUT_OF_WINDOW,
                f"BENCH_GATE_FAIL kind=required-zero key=fixed.{name} "
                f"required=0 actual={new[name]:.0f}"))
    return failures


def check_windows(report_path):
    doc = load_json(report_path, "report")
    values = doc.get("values") if isinstance(doc, dict) else {}
    if not isinstance(values, dict):
        values = {}
    failures = []
    for name, (lo, hi) in sorted(WINDOWS.items()):
        if name not in values or not isinstance(values[name], (int, float)):
            failures.append((
                EXIT_MISSING_KEY,
                f"BENCH_GATE_FAIL kind=missing-key key={name} "
                f"window={fmt_window(lo, hi)} actual=absent"))
            continue
        v = float(values[name])
        if (lo is not None and v < lo) or (hi is not None and v > hi):
            failures.append((
                EXIT_OUT_OF_WINDOW,
                f"BENCH_GATE_FAIL kind=out-of-window key={name} "
                f"window={fmt_window(lo, hi)} actual={v:.3f}"))
        else:
            print(f"window ok: {name} = {v:.3f} in {fmt_window(lo, hi)}")
    return failures


def check_timings(baseline_path, timings_path, tolerance):
    base = load_timings(baseline_path, "timing baseline")
    new = load_timings(timings_path, "timings")
    failures = []
    for name, base_t in sorted(base.items()):
        if name not in new:
            print(f"note: benchmark missing from this run: {name}")
            continue
        new_t = new[name]
        rel = (new_t - base_t) / base_t
        marker = "regressed" if rel > tolerance else "ok"
        print(f"time {marker}: {name} {base_t:.0f} -> {new_t:.0f} ns "
              f"({100.0 * rel:+.1f}%, tol {100.0 * tolerance:.0f}%)")
        if rel > tolerance:
            failures.append((
                EXIT_FAIL,
                f"BENCH_GATE_FAIL kind=time-regression key={name} "
                f"baseline={base_t:.0f}ns actual={new_t:.0f}ns "
                f"({100.0 * rel:+.1f}% > {100.0 * tolerance:.0f}%)"))
    return failures


def cmd_check(args):
    counter_baseline = os.path.join(args.baseline_dir, COUNTER_BASELINE)
    failures = check_counters(counter_baseline, args.report)

    timing_baseline = os.path.join(args.baseline_dir, TIMING_BASELINE)
    skip_time = os.environ.get("SKS_BENCH_SKIP_TIME") == "1"
    # The WINDOWS values are wall-derived ratios; skip them alongside the
    # gbench timings on ad-hoc runs.
    if not skip_time:
        failures += check_windows(args.report)
    if args.timings and not skip_time and os.path.exists(timing_baseline):
        tolerance = float(os.environ.get("SKS_BENCH_TIME_TOL", "0.20"))
        failures += check_timings(timing_baseline, args.timings, tolerance)
    elif skip_time:
        print("wall-time gate skipped (SKS_BENCH_SKIP_TIME=1)")
    elif not args.timings:
        print("wall-time gate skipped (no --timings file)")
    else:
        print(f"wall-time gate skipped (no baseline at {timing_baseline})")

    # Trend watchdog: the hard gates above catch window violations; the
    # sentinel catches consistent in-window movement.  Warn-only unless
    # --sentinel-strict, and only able to fail an otherwise-green run —
    # hard-gate exit codes always win.
    sentinel_flagged = False
    if args.sentinel:
        sentinel_bin = args.sentinel_with or args.attribute_with
        if sentinel_bin:
            sentinel_flagged = run_sentinel(sentinel_bin, args.sentinel)
        else:
            print("sentinel skipped (--sentinel needs --sentinel-with or "
                  "--attribute-with to locate the sks-report binary)")

    if failures:
        print("\nBENCH GATE FAILED:", file=sys.stderr)
        for _, line in failures:
            print(f"  {line}", file=sys.stderr)
        print("(intentional change? re-baseline with "
              "`tools/bench_gate.py rebaseline` and commit bench/baseline/)",
              file=sys.stderr)
        codes = {code for code, _ in failures}
        # A value drifted out of its window or a wall time regressed: diff
        # the two runs' span-tree profiles so the failure names a suspect,
        # not just a number.
        if args.attribute_with and (EXIT_OUT_OF_WINDOW in codes or
                                    EXIT_FAIL in codes):
            run_attribution(args.attribute_with, counter_baseline,
                            args.report)
        # Missing keys are the more structural problem; report that code
        # first, then out-of-window, then the generic failure.
        for code in (EXIT_MISSING_KEY, EXIT_OUT_OF_WINDOW, EXIT_FAIL):
            if code in codes:
                return code
        return EXIT_FAIL
    if sentinel_flagged and args.sentinel_strict:
        print("\nBENCH GATE FAILED: sentinel flagged a trend "
              "(--sentinel-strict)", file=sys.stderr)
        return EXIT_SENTINEL
    if sentinel_flagged:
        print("bench gate OK (sentinel warnings above are advisory)")
    else:
        print("bench gate OK")
    return 0


def cmd_rebaseline(args):
    # Validate before copying so a bad file can't become the baseline.
    load_fixed_counters(args.report, "report")
    if args.timings:
        load_timings(args.timings, "timings")
    os.makedirs(args.baseline_dir, exist_ok=True)
    shutil.copy(args.report, os.path.join(args.baseline_dir, COUNTER_BASELINE))
    print(f"baselined counters: {args.report}")
    if args.timings:
        shutil.copy(args.timings,
                    os.path.join(args.baseline_dir, TIMING_BASELINE))
        print(f"baselined timings: {args.timings}")
    print(f"commit the updated files under {args.baseline_dir}/")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["check", "rebaseline"])
    parser.add_argument("--report", required=True,
                        help="fresh BENCH_perf_micro.json")
    parser.add_argument("--timings",
                        help="fresh google-benchmark JSON (--benchmark_out)")
    parser.add_argument("--baseline-dir", default="bench/baseline")
    parser.add_argument("--attribute-with", metavar="SKS_REPORT_BIN",
                        help="path to the sks-report binary; on an "
                             "out-of-window or time-regression failure the "
                             "gate runs `sks-report attribute BASELINE "
                             "CURRENT` and appends the ranked wall-time "
                             "deltas below the failure lines")
    parser.add_argument("--sentinel", metavar="HISTORY_JSONL",
                        help="bench history file; appends `sks-report "
                             "sentinel` EWMA drift/step verdicts after the "
                             "gate results (warn-only by default)")
    parser.add_argument("--sentinel-with", metavar="SKS_REPORT_BIN",
                        help="sks-report binary for --sentinel (defaults "
                             "to --attribute-with)")
    parser.add_argument("--sentinel-strict", action="store_true",
                        help=f"exit {EXIT_SENTINEL} when the sentinel flags "
                             "a drift or step on an otherwise-green gate "
                             "run")
    args = parser.parse_args()
    try:
        if args.command == "check":
            sys.exit(cmd_check(args))
        sys.exit(cmd_rebaseline(args))
    except GateError as e:
        print(f"bench gate error: {e}; {REBASELINE_HINT}", file=sys.stderr)
        sys.exit(EXIT_FAIL)


if __name__ == "__main__":
    main()
