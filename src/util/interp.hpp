// Interpolation and curve utilities shared by waveform post-processing
// (threshold-crossing detection, V_min extraction) and by the behavioural
// sensor model's calibration tables.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace sks::util {

// Piecewise-linear function y(x) over a strictly increasing x grid.
// Evaluation clamps outside the grid (constant extrapolation), which is the
// right behaviour for calibration tables.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;
  bool empty() const { return xs_.empty(); }
  std::size_t size() const { return xs_.size(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  // First x (scanning left to right) at which the curve crosses `level`.
  // Interpolates between samples.  std::nullopt when no crossing exists.
  std::optional<double> first_crossing(double level) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// Linear interpolation between two points.
double lerp(double a, double b, double t);

// Given samples (x[i], y[i]) with x increasing, find the first x where y
// crosses `level` going in either direction, starting from index `from`.
std::optional<double> first_crossing(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     double level,
                                     std::size_t from = 0);

// Same, but restricted to crossings in the given direction:
// rising = true  -> y goes from below `level` to >= `level`;
// rising = false -> y goes from above `level` to <= `level`.
std::optional<double> first_directional_crossing(const std::vector<double>& x,
                                                 const std::vector<double>& y,
                                                 double level, bool rising,
                                                 std::size_t from = 0);

}  // namespace sks::util
