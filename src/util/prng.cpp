#include "util/prng.hpp"

#include <cmath>

namespace sks::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A zero state would be a fixed point; splitmix64 cannot produce four
  // zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Prng::vary(double nominal, double rel) {
  return nominal * (1.0 + uniform(-rel, rel));
}

double Prng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Prng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

std::uint64_t Prng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = 0;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

Prng Prng::split() { return Prng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // Two rounds of splitmix64 over a golden-ratio-spaced lattice: adjacent
  // indices land in unrelated Prng states (the Prng constructor adds a
  // third mixing pass over the result).
  std::uint64_t state = base_seed ^ (index * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t a = splitmix64(state);
  return splitmix64(state) ^ rotl(a, 32);
}

}  // namespace sks::util
