// ASCII plotting of waveforms and scatterplots.  The bench binaries that
// regenerate the paper's figures print both the numeric series (CSV-style
// rows) and a quick-look ASCII rendering of the figure.
#pragma once

#include <string>
#include <vector>

namespace sks::util {

struct Series {
  std::string name;        // one-character marks are taken from the name
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 78;          // characters
  int height = 22;         // characters
  std::string x_label;
  std::string y_label;
  // If both are zero the range is auto-fitted to the data.
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
  bool connect = true;     // line plot (true) vs scatter (false)
};

// Render one or more series into a multi-line string.  Each series is drawn
// with a distinct mark ('a', 'b', ... or the first letter of its name).
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

}  // namespace sks::util
