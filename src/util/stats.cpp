#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sks::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

double Proportion::estimate() const {
  if (trials == 0) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(trials);
}

namespace {
constexpr double kZ95 = 1.959963984540054;

double wilson_center(double p, double n, double z) {
  return (p + z * z / (2.0 * n)) / (1.0 + z * z / n);
}

double wilson_halfwidth(double p, double n, double z) {
  return (z / (1.0 + z * z / n)) *
         std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
}
}  // namespace

double Proportion::wilson_low() const {
  if (trials == 0) return 0.0;
  const double p = estimate();
  const double n = static_cast<double>(trials);
  return std::max(0.0, wilson_center(p, n, kZ95) - wilson_halfwidth(p, n, kZ95));
}

double Proportion::wilson_high() const {
  if (trials == 0) return 1.0;
  const double p = estimate();
  const double n = static_cast<double>(trials);
  return std::min(1.0, wilson_center(p, n, kZ95) + wilson_halfwidth(p, n, kZ95));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  check(bins > 0, "Histogram needs at least one bin");
  check(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long>(t * static_cast<double>(counts_.size()));
  i = std::clamp(i, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double percentile(std::vector<double> samples, double q) {
  check(!samples.empty(), "percentile of empty sample");
  check(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  check(x.size() == y.size(), "correlation: size mismatch");
  if (x.size() < 2) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

}  // namespace sks::util
