// Console table / CSV output used by every bench binary to print the rows of
// the paper's tables and the series of its figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sks::util {

// A simple aligned text table: set headers, add rows of strings (use the
// fmt_* helpers for numbers), then stream it.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

// Number formatting helpers (fixed precision / scientific / SI-scaled).
std::string fmt_fixed(double v, int precision);
std::string fmt_sci(double v, int precision);
// Value printed in the given unit, e.g. fmt_unit(1.6e-10, units::ns, 2, "ns")
// -> "0.16 ns".
std::string fmt_unit(double v, double unit, int precision,
                     const std::string& suffix);
std::string fmt_percent(double fraction, int precision);

}  // namespace sks::util
