// Deterministic pseudo-random number generation for Monte-Carlo campaigns.
//
// We ship our own xoshiro256++ so that every experiment in the repository is
// bit-reproducible across standard libraries (std::mt19937 is portable but
// the std distributions are not).  All distribution sampling here is
// implemented from scratch on top of the raw generator.
#pragma once

#include <cstdint>
#include <vector>

namespace sks::util {

// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference algorithm).
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform relative variation: returns nominal * (1 + U[-rel, +rel]).
  // This is the paper's Monte-Carlo recipe ("uniform distribution with 0.15
  // as relative variation from the nominal value").
  double vary(double nominal, double rel);

  // Standard normal via Box-Muller (spare value cached).
  double normal();
  double normal(double mean, double sigma);

  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream (for per-sample generators).
  Prng split();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

// Stateless seed derivation for index-addressed sample streams: the seed of
// sample `index` depends only on (base_seed, index), never on how many
// samples other workers drew before it.  Campaign layers build one
// `Prng(derive_seed(seed, i))` per sample so that an N-thread run and a
// 1-thread run consume bit-identical random streams.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

}  // namespace sks::util
