// Error handling helpers.
//
// Library errors are reported with exceptions derived from `sks::Error`
// (itself a `std::runtime_error`).  `check()` is the standard precondition /
// invariant guard; it is kept enabled in release builds because every use in
// this library sits far from any hot inner loop.  `check()` accepts either a
// prebuilt message or a sequence of streamable parts — the parts are only
// assembled on failure, so context-rich guards cost nothing on the happy
// path:
//
//   sks::check(h > 0, "transient: bad step h=", h, " at t=", t);
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace sks {

namespace detail {

template <typename... Parts>
std::string concat_parts(Parts&&... parts) {
  std::ostringstream oss;
  (oss << ... << std::forward<Parts>(parts));
  return oss.str();
}

}  // namespace detail

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when a numerical routine fails to converge (DC operating point,
// Newton-Raphson step, singular MNA matrix, ...).  Beyond the message it
// carries the solver context needed for a useful post-mortem: which solve
// phase failed, the simulation time, how many Newton iterations were spent
// in the failing run, and the node carrying the worst KCL residual when the
// solver gave up (the usual culprit for a floating or contended net).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}

  ConvergenceError(const std::string& what, std::string phase, double sim_time,
                   long iterations, std::string worst_node)
      : Error(what),
        phase_(std::move(phase)),
        sim_time_(sim_time),
        iterations_(iterations),
        worst_node_(std::move(worst_node)) {}

  // Solve phase: "dc", "transient", "dc_sweep", ... ("" when unknown).
  const std::string& phase() const { return phase_; }
  // Simulation time of the failing solve [s]; negative when not applicable.
  double sim_time() const { return sim_time_; }
  // Newton iterations spent in the failing run (0 when unknown).
  long iterations() const { return iterations_; }
  // Name of the node with the largest |KCL residual| at give-up ("" when
  // unknown).
  const std::string& worst_node() const { return worst_node_; }

  // Directory of the postmortem bundle written for this failure ("" when
  // postmortem capture was off).  Set by the engine after construction so
  // the bundle writer can serialize the error message into the manifest.
  const std::string& bundle_path() const { return bundle_path_; }
  void set_bundle_path(std::string path) { bundle_path_ = std::move(path); }

 private:
  std::string phase_;
  double sim_time_ = -1.0;
  long iterations_ = 0;
  std::string worst_node_;
  std::string bundle_path_;
};

// Thrown on malformed netlists / trees (dangling node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

inline void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

// Formatted variant: the message parts are streamed together only when the
// check fails.
template <typename First, typename... Rest>
inline void check(bool condition, First&& first, Rest&&... rest) {
  if (!condition) {
    throw Error(detail::concat_parts(std::forward<First>(first),
                                     std::forward<Rest>(rest)...));
  }
}

}  // namespace sks
