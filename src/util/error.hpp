// Error handling helpers.
//
// Library errors are reported with exceptions derived from `sks::Error`
// (itself a `std::runtime_error`).  `check()` is the standard precondition /
// invariant guard; it is kept enabled in release builds because every use in
// this library sits far from any hot inner loop.
#pragma once

#include <stdexcept>
#include <string>

namespace sks {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when a numerical routine fails to converge (DC operating point,
// Newton-Raphson step, singular MNA matrix, ...).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// Thrown on malformed netlists / trees (dangling node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

inline void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace sks
