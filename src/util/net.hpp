// Minimal blocking TCP helpers for the obs exposition listener (and, down
// the road, the sks-serve daemon): a move-only RAII fd wrapper plus
// listen / accept / connect / send / recv free functions.
//
// Scope is deliberately tiny — loopback-only listeners, blocking sockets
// with poll()-based timeouts, no TLS, no address resolution beyond
// 127.0.0.1.  The exposition server is a diagnostics side-channel, not a
// traffic plane; keeping this layer boring means the single-threaded
// accept loop in obs::Exposer is auditable at a glance.
//
// Error reporting: the listen/connect entry points return an invalid
// Socket and fill *error instead of throwing, because the exposer must
// degrade to "disabled with a warning" rather than kill a running bench
// when a port is taken.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sks::util::net {

// Move-only owner of a file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

// Listening socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned
// ephemeral port).  On success *bound_port holds the actual port; on
// failure the returned Socket is invalid and *error describes why.
Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
                  std::string* error);

// One accepted connection, or an invalid Socket when `timeout_ms` elapsed
// (or the listener failed) — the caller's accept loop distinguishes the
// two by polling a stop flag between calls.
Socket accept_tcp(const Socket& listener, int timeout_ms);

// Blocking loopback connect with a poll() timeout (test clients and the
// ci.sh scrape helper path).  Invalid Socket + *error on failure.
Socket connect_tcp(std::uint16_t port, int timeout_ms, std::string* error);

// Write the whole buffer; false on any error (EPIPE included — SIGPIPE is
// suppressed per-call).
bool send_all(const Socket& s, const char* data, std::size_t size);
inline bool send_all(const Socket& s, const std::string& data) {
  return send_all(s, data.data(), data.size());
}

// One recv() of at most `max_bytes`, waiting up to `timeout_ms` for
// readability.  Empty string on timeout, peer close, or error.
std::string recv_some(const Socket& s, std::size_t max_bytes, int timeout_ms);

}  // namespace sks::util::net
