#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace sks::util {

namespace {

char mark_for(const Series& s, std::size_t index) {
  if (!s.name.empty() && std::isalnum(static_cast<unsigned char>(s.name[0]))) {
    return s.name[0];
  }
  return static_cast<char>('a' + static_cast<char>(index % 26));
}

}  // namespace

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  const int w = std::max(16, options.width);
  const int h = std::max(6, options.height);

  double xmin = options.x_min;
  double xmax = options.x_max;
  double ymin = options.y_min;
  double ymax = options.y_max;
  const bool auto_x = (xmin == 0.0 && xmax == 0.0);
  const bool auto_y = (ymin == 0.0 && ymax == 0.0);
  if (auto_x || auto_y) {
    double axmin = std::numeric_limits<double>::infinity();
    double axmax = -axmin;
    double aymin = axmin;
    double aymax = -axmin;
    for (const auto& s : series) {
      for (double v : s.x) {
        axmin = std::min(axmin, v);
        axmax = std::max(axmax, v);
      }
      for (double v : s.y) {
        aymin = std::min(aymin, v);
        aymax = std::max(aymax, v);
      }
    }
    if (!std::isfinite(axmin)) {
      axmin = 0.0;
      axmax = 1.0;
      aymin = 0.0;
      aymax = 1.0;
    }
    if (auto_x) {
      xmin = axmin;
      xmax = axmax;
    }
    if (auto_y) {
      ymin = aymin;
      ymax = aymax;
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    const double t = (x - xmin) / (xmax - xmin);
    return static_cast<int>(std::lround(t * (w - 1)));
  };
  auto to_row = [&](double y) {
    const double t = (y - ymin) / (ymax - ymin);
    return (h - 1) - static_cast<int>(std::lround(t * (h - 1)));
  };
  auto put = [&](int col, int row, char mark) {
    if (col < 0 || col >= w || row < 0 || row >= h) return;
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char mark = mark_for(s, si);
    const std::size_t n = std::min(s.x.size(), s.y.size());
    int prev_col = 0;
    int prev_row = 0;
    bool have_prev = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int col = to_col(s.x[i]);
      const int row = to_row(s.y[i]);
      if (options.connect && have_prev) {
        // Bresenham-ish interpolation between consecutive samples.
        const int steps = std::max(std::abs(col - prev_col),
                                   std::abs(row - prev_row));
        for (int k = 1; k <= steps; ++k) {
          const double t = static_cast<double>(k) / std::max(1, steps);
          put(prev_col + static_cast<int>(std::lround(t * (col - prev_col))),
              prev_row + static_cast<int>(std::lround(t * (row - prev_row))),
              mark);
        }
      } else {
        put(col, row, mark);
      }
      prev_col = col;
      prev_row = row;
      have_prev = true;
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << '\n';
  os << fmt_sci(ymax, 2) << '\n';
  for (const auto& line : canvas) os << '|' << line << '\n';
  os << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  os << fmt_sci(ymin, 2) << "  x: [" << fmt_sci(xmin, 2) << ", "
     << fmt_sci(xmax, 2) << "] " << options.x_label << '\n';
  if (series.size() > 1) {
    os << "legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
      os << ' ' << mark_for(series[si], si) << '=' << series[si].name;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sks::util
