#include "util/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sks::util {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check(xs_.size() == ys_.size(), "PiecewiseLinear: size mismatch");
  check(!xs_.empty(), "PiecewiseLinear: empty table");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    check(xs_[i] > xs_[i - 1], "PiecewiseLinear: x grid must be increasing");
  }
}

double PiecewiseLinear::operator()(double x) const {
  check(!xs_.empty(), "PiecewiseLinear: evaluating empty table");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto i = static_cast<std::size_t>(it - xs_.begin());
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return lerp(ys_[i - 1], ys_[i], t);
}

std::optional<double> PiecewiseLinear::first_crossing(double level) const {
  return sks::util::first_crossing(xs_, ys_, level);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

namespace {

std::optional<double> crossing_impl(const std::vector<double>& x,
                                    const std::vector<double>& y, double level,
                                    std::size_t from, int direction) {
  check(x.size() == y.size(), "first_crossing: size mismatch");
  if (x.size() < 2 || from + 1 >= x.size()) return std::nullopt;
  for (std::size_t i = from + 1; i < x.size(); ++i) {
    const double a = y[i - 1] - level;
    const double b = y[i] - level;
    const bool crosses = (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
    if (!crosses || a == b) continue;
    const bool rising_here = b > a;
    if (direction > 0 && !rising_here) continue;
    if (direction < 0 && rising_here) continue;
    const double t = -a / (b - a);
    return lerp(x[i - 1], x[i], t);
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> first_crossing(const std::vector<double>& x,
                                     const std::vector<double>& y, double level,
                                     std::size_t from) {
  return crossing_impl(x, y, level, from, 0);
}

std::optional<double> first_directional_crossing(const std::vector<double>& x,
                                                 const std::vector<double>& y,
                                                 double level, bool rising,
                                                 std::size_t from) {
  return crossing_impl(x, y, level, from, rising ? 1 : -1);
}

}  // namespace sks::util
