// Small statistics toolkit used by the Monte-Carlo experiments
// (Fig. 5 scatterplot, Table 1 probabilities) and by the test suite.
#pragma once

#include <cstddef>
#include <vector>

namespace sks::util {

// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Binomial proportion with a Wilson score confidence interval.  Used for
// p_loose / p_false in Table 1, where the point estimates are small and a
// naive normal interval would be misleading.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  double estimate() const;
  // Wilson score interval at ~95% (z = 1.96).
  double wilson_low() const;
  double wilson_high() const;
};

// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the edge
// bins so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();  // zero every bin, keep the binning
  std::size_t bin_count(std::size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t i) const;
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Percentile of a sample (linear interpolation between order statistics).
// `q` in [0,1].  The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

// Pearson correlation coefficient; returns 0 when either side is constant.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace sks::util
