#include "util/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sks::util::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

// Wait until `fd` is ready for `events` (POLLIN/POLLOUT); false on
// timeout or poll error.  EINTR retries within the same budget — close
// enough for a diagnostics listener.
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
                  std::string* error) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) *error = errno_string("bind");
    return Socket();
  }
  if (::listen(s.fd(), 16) != 0) {
    if (error != nullptr) *error = errno_string("listen");
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      if (error != nullptr) *error = errno_string("getsockname");
      return Socket();
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return s;
}

Socket accept_tcp(const Socket& listener, int timeout_ms) {
  if (!listener.valid()) return Socket();
  if (!wait_ready(listener.fd(), POLLIN, timeout_ms)) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  return Socket(fd);
}

Socket connect_tcp(std::uint16_t port, int timeout_ms, std::string* error) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return Socket();
  }
  sockaddr_in addr = loopback_addr(port);
  // Loopback connects complete essentially immediately, but keep the
  // timeout honest: connect non-blocking style would add complexity for
  // no observable benefit on 127.0.0.1, so rely on the kernel default and
  // verify writability within the budget afterwards.
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) *error = errno_string("connect");
    return Socket();
  }
  if (!wait_ready(s.fd(), POLLOUT, timeout_ms)) {
    if (error != nullptr) *error = "connect: not writable within timeout";
    return Socket();
  }
  return s;
}

bool send_all(const Socket& s, const char* data, std::size_t size) {
  if (!s.valid()) return false;
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE
    // the bench process the exposer is embedded in.
    const ssize_t n =
        ::send(s.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string recv_some(const Socket& s, std::size_t max_bytes, int timeout_ms) {
  if (!s.valid() || max_bytes == 0) return {};
  if (!wait_ready(s.fd(), POLLIN, timeout_ms)) return {};
  std::string buf(max_bytes, '\0');
  for (;;) {
    const ssize_t n = ::recv(s.fd(), buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return {};
    buf.resize(static_cast<std::size_t>(n));
    return buf;
  }
}

}  // namespace sks::util::net
