#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace sks::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "TextTable: row width does not match header count");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&]() {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  t.print(os);
  return os;
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_unit(double v, double unit, int precision,
                     const std::string& suffix) {
  return fmt_fixed(v / unit, precision) + ' ' + suffix;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_fixed(fraction * 100.0, precision) + '%';
}

}  // namespace sks::util
