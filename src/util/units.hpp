// SI unit constants and conversion helpers.
//
// The whole library works internally in plain SI units (volts, seconds,
// farads, ohms, amperes, metres) held in `double`.  These constants make call
// sites read like the paper: `0.16 * units::ns`, `80 * units::fF`.
#pragma once

namespace sks::units {

// --- time ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- capacitance ---
inline constexpr double F = 1.0;
inline constexpr double uF = 1e-6;
inline constexpr double nF = 1e-9;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// --- voltage / current / resistance ---
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double Mohm = 1e6;

// --- length (layout geometry) ---
inline constexpr double m = 1.0;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Convert a value expressed in SI into the given unit (for printing).
inline constexpr double in(double value, double unit) { return value / unit; }

}  // namespace sks::units
