// Fault descriptors for transistor-level fault injection.
//
// The fault universe follows the paper's Section 3 ("a set of realistic
// faults, including stuck-ats, transistor faults and bridgings", after
// Abraham & Fuchs' classical VLSI fault models):
//
//  * node stuck-at-0 / stuck-at-1 — a low-resistance short of a circuit
//    node to GND / VDD;
//  * transistor stuck-open  — the channel never conducts;
//  * transistor stuck-on    — the channel conducts with full overdrive
//    regardless of the gate voltage;
//  * bridging — a resistive short between two circuit nodes (the paper uses
//    a bridging resistance of 100 ohm).
#pragma once

#include <string>

namespace sks::fault {

enum class FaultKind {
  kNodeStuckAt0,
  kNodeStuckAt1,
  kStuckOpen,
  kStuckOn,
  kBridge,
};

std::string to_string(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kNodeStuckAt0;
  std::string node;       // stuck-at target (node name)
  std::string device;     // stuck-open / stuck-on target (MOSFET name)
  std::string node_a;     // bridge endpoints
  std::string node_b;
  double bridge_resistance = 100.0;  // [ohm]

  // Human-readable id, e.g. "SA1(y1)", "SOP(c)", "BR(y1,y2)".
  std::string label() const;

  static Fault stuck_at0(std::string node);
  static Fault stuck_at1(std::string node);
  static Fault stuck_open(std::string device);
  static Fault stuck_on(std::string device);
  static Fault bridge(std::string a, std::string b, double resistance = 100.0);
};

}  // namespace sks::fault
