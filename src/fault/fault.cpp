#include "fault/fault.hpp"

namespace sks::fault {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeStuckAt0:
      return "stuck-at-0";
    case FaultKind::kNodeStuckAt1:
      return "stuck-at-1";
    case FaultKind::kStuckOpen:
      return "stuck-open";
    case FaultKind::kStuckOn:
      return "stuck-on";
    case FaultKind::kBridge:
      return "bridging";
  }
  return "?";
}

std::string Fault::label() const {
  switch (kind) {
    case FaultKind::kNodeStuckAt0:
      return "SA0(" + node + ")";
    case FaultKind::kNodeStuckAt1:
      return "SA1(" + node + ")";
    case FaultKind::kStuckOpen:
      return "SOP(" + device + ")";
    case FaultKind::kStuckOn:
      return "SON(" + device + ")";
    case FaultKind::kBridge:
      return "BR(" + node_a + "," + node_b + ")";
  }
  return "?";
}

Fault Fault::stuck_at0(std::string node) {
  Fault f;
  f.kind = FaultKind::kNodeStuckAt0;
  f.node = std::move(node);
  return f;
}

Fault Fault::stuck_at1(std::string node) {
  Fault f;
  f.kind = FaultKind::kNodeStuckAt1;
  f.node = std::move(node);
  return f;
}

Fault Fault::stuck_open(std::string device) {
  Fault f;
  f.kind = FaultKind::kStuckOpen;
  f.device = std::move(device);
  return f;
}

Fault Fault::stuck_on(std::string device) {
  Fault f;
  f.kind = FaultKind::kStuckOn;
  f.device = std::move(device);
  return f;
}

Fault Fault::bridge(std::string a, std::string b, double resistance) {
  Fault f;
  f.kind = FaultKind::kBridge;
  f.node_a = std::move(a);
  f.node_b = std::move(b);
  f.bridge_resistance = resistance;
  return f;
}

}  // namespace sks::fault
