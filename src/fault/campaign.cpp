#include "fault/campaign.hpp"

namespace sks::fault {

std::map<FaultKind, KindSummary> CampaignReport::by_kind() const {
  std::map<FaultKind, KindSummary> summary;
  for (const auto& v : verdicts) {
    KindSummary& s = summary[v.fault.kind];
    ++s.total;
    if (!v.simulated) ++s.unsimulated;
    if (v.logic_detected) {
      ++s.logic_detected;
    } else if (v.iddq_detected) {
      ++s.iddq_only;
    }
  }
  return summary;
}

KindSummary CampaignReport::overall() const {
  KindSummary s;
  for (const auto& [kind, ks] : by_kind()) {
    (void)kind;
    s.total += ks.total;
    s.logic_detected += ks.logic_detected;
    s.iddq_only += ks.iddq_only;
    s.unsimulated += ks.unsimulated;
  }
  return s;
}

std::vector<std::string> CampaignReport::escapes(bool with_iddq) const {
  std::vector<std::string> out;
  for (const auto& v : verdicts) {
    if (!v.detected(with_iddq)) out.push_back(v.fault.label());
  }
  return out;
}

util::TextTable CampaignReport::summary_table() const {
  util::TextTable table({"fault kind", "total", "logic cov.", "+IDDQ cov.",
                         "unsimulated"});
  const auto summary = by_kind();
  for (const auto& [kind, s] : summary) {
    table.add_row({to_string(kind), std::to_string(s.total),
                   util::fmt_percent(s.logic_coverage(), 1),
                   util::fmt_percent(s.combined_coverage(), 1),
                   std::to_string(s.unsimulated)});
  }
  const KindSummary all = overall();
  table.add_row({"ALL", std::to_string(all.total),
                 util::fmt_percent(all.logic_coverage(), 1),
                 util::fmt_percent(all.combined_coverage(), 1),
                 std::to_string(all.unsimulated)});
  return table;
}

CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const InjectOptions& inject_options) {
  const Observation good_observation = observe(good_circuit, plan);
  CampaignReport report;
  report.verdicts.reserve(universe.size());
  for (const Fault& f : universe) {
    report.verdicts.push_back(
        test_fault(good_circuit, good_observation, f, plan, inject_options));
  }
  return report;
}

}  // namespace sks::fault
