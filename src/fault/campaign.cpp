#include "fault/campaign.hpp"

#include <algorithm>

#include "esim/batch.hpp"
#include "obs/expose.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "par/pool.hpp"

namespace sks::fault {

std::map<FaultKind, KindSummary> CampaignReport::by_kind() const {
  std::map<FaultKind, KindSummary> summary;
  for (const auto& v : verdicts) {
    KindSummary& s = summary[v.fault.kind];
    ++s.total;
    if (!v.simulated) ++s.unsimulated;
    if (v.logic_detected) {
      ++s.logic_detected;
    } else if (v.iddq_detected) {
      ++s.iddq_only;
    }
  }
  return summary;
}

KindSummary CampaignReport::overall() const {
  KindSummary s;
  for (const auto& [kind, ks] : by_kind()) {
    (void)kind;
    s.total += ks.total;
    s.logic_detected += ks.logic_detected;
    s.iddq_only += ks.iddq_only;
    s.unsimulated += ks.unsimulated;
  }
  return s;
}

std::vector<std::string> CampaignReport::escapes(bool with_iddq) const {
  std::vector<std::string> out;
  for (const auto& v : verdicts) {
    if (!v.detected(with_iddq)) out.push_back(v.fault.label());
  }
  return out;
}

util::TextTable CampaignReport::summary_table() const {
  util::TextTable table({"fault kind", "total", "logic cov.", "+IDDQ cov.",
                         "unsimulated"});
  const auto summary = by_kind();
  for (const auto& [kind, s] : summary) {
    table.add_row({to_string(kind), std::to_string(s.total),
                   util::fmt_percent(s.logic_coverage(), 1),
                   util::fmt_percent(s.combined_coverage(), 1),
                   std::to_string(s.unsimulated)});
  }
  const KindSummary all = overall();
  table.add_row({"ALL", std::to_string(all.total),
                 util::fmt_percent(all.logic_coverage(), 1),
                 util::fmt_percent(all.combined_coverage(), 1),
                 std::to_string(all.unsimulated)});
  return table;
}

obs::Report CampaignReport::run_report(const std::string& name) const {
  obs::Report report(name);
  const KindSummary all = overall();
  report.set_value("faults.total", static_cast<double>(all.total));
  report.set_value("faults.logic_detected",
                   static_cast<double>(all.logic_detected));
  report.set_value("faults.iddq_only", static_cast<double>(all.iddq_only));
  report.set_value("faults.unsimulated", static_cast<double>(all.unsimulated));
  report.set_value("coverage.logic", all.logic_coverage());
  report.set_value("coverage.combined", all.combined_coverage());
  report.set_value("wall_seconds", stats.wall_seconds);
  report.set_value("good_sim_seconds", stats.good_sim_seconds);
  if (stats.fault_seconds.count() > 0) {
    report.set_value("fault_seconds.mean", stats.fault_seconds.mean());
    report.set_value("fault_seconds.max", stats.fault_seconds.max());
  }
  report.set_value("solve.newton_iterations",
                   static_cast<double>(stats.solve.newton_iterations));
  report.set_value("solve.newton_failures",
                   static_cast<double>(stats.solve.newton_failures));
  report.set_value("solve.lu_factorizations",
                   static_cast<double>(stats.solve.lu_factorizations));
  report.set_value("solve.dc_gmin_ladders",
                   static_cast<double>(stats.solve.dc_gmin_ladders));
  report.set_value("solve.dc_source_ladders",
                   static_cast<double>(stats.solve.dc_source_ladders));
  report.set_value("solve.dt_halvings",
                   static_cast<double>(stats.solve.dt_halvings));
  report.set_value("solve.be_fallbacks",
                   static_cast<double>(stats.solve.be_fallbacks));
  report.set_value("solve.min_dt_used", stats.solve.min_dt_used);
  return report;
}

CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const CampaignOptions& options,
                            const CampaignProgress& progress) {
  const obs::Stopwatch wall;
  static obs::TimerStat& campaign_timer =
      obs::registry().timer("fault.run_campaign");
  obs::ScopedTimer timer(campaign_timer);
  const std::size_t threads =
      options.threads == 0 ? par::default_threads() : options.threads;
  obs::Span campaign_span("fault.run_campaign");
  obs::ScopedRunPhase phase(obs::RunPhase::kCampaign);
  campaign_span.arg("faults", static_cast<double>(universe.size()))
      .arg("threads", static_cast<double>(threads));
  const obs::Stopwatch good_wall;
  const Observation good_observation = observe(good_circuit, plan);
  CampaignReport report;
  report.stats.good_sim_seconds = good_wall.seconds();
  report.verdicts.resize(universe.size());

  // Aggregation and the progress callback run strictly in universe order
  // (via OrderedSink), so every CampaignStats field — including the
  // floating-point RunningStats sums — is bit-identical for any thread
  // count.  The same ordering makes the live progress tracker and the
  // registry stream deterministic at any thread count.
  static obs::StreamStat& seconds_stream =
      obs::registry().stream("fault.seconds");
  obs::ProgressTracker tracker("fault_campaign", universe.size());
  par::OrderedSink sink(universe.size(), [&](std::size_t i) {
    const FaultVerdict& v = report.verdicts[i];
    report.stats.fault_seconds.add(v.seconds);
    report.stats.solve.merge(v.stats);
    if (!v.simulated) ++report.stats.unsimulated;
    seconds_stream.record(v.seconds);
    if (v.logic_detected) {
      tracker.add_partial("logic_detected");
    } else if (v.iddq_detected) {
      tracker.add_partial("iddq_only");
    }
    if (!v.simulated) tracker.add_partial("unsimulated");
    tracker.on_item();
    if (progress) progress(i + 1, universe.size(), v);
  });
  auto test_one = [&](std::size_t i) {
    obs::Span span("fault.test");
    span.arg("fault", universe[i].label())
        .arg("index", static_cast<double>(i));
    report.verdicts[i] = test_fault(good_circuit, good_observation,
                                    universe[i], plan, options.inject);
    span.arg("nr_iters",
             static_cast<double>(report.verdicts[i].stats.newton_iterations))
        .arg("detected",
             static_cast<double>(report.verdicts[i].detected(true)));
    sink.complete(i);
  };

  const std::size_t lanes =
      esim::resolve_batch_lanes(options.batch, esim::kDefaultBatchLanes);
  campaign_span.arg("batch_lanes", static_cast<double>(lanes));
  if (lanes <= 1) {
    // Scalar golden path: one Simulator per fault.
    if (threads <= 1 || universe.size() <= 1) {
      for (std::size_t i = 0; i < universe.size(); ++i) test_one(i);
    } else {
      par::ThreadPool pool(std::min(threads, universe.size()));
      par::parallel_for(pool, 0, universe.size(), test_one);
    }
  } else {
    // Batched fast path.  Injection is cheap next to simulation, so inject
    // every fault up front; consecutive faults whose circuits share the
    // good circuit's structure batch together, while topology-changing
    // faults (opens splitting nodes, bridges adding devices) break the run
    // of compatibility and start a new group.
    std::vector<esim::Circuit> faulty;
    faulty.reserve(universe.size());
    for (const Fault& f : universe) {
      faulty.push_back(inject(good_circuit, f, options.inject));
    }
    struct Group {
      std::size_t lo, hi;
    };
    std::vector<Group> groups;
    for (std::size_t i = 0; i < faulty.size(); ++i) {
      if (groups.empty() || groups.back().hi - groups.back().lo >= lanes ||
          !esim::BatchSimulator::structure_compatible(
              faulty[groups.back().lo], faulty[i])) {
        groups.push_back({i, i + 1});
      } else {
        groups.back().hi = i + 1;
      }
    }
    auto run_group = [&](std::size_t g) {
      const std::size_t lo = groups[g].lo;
      const std::size_t hi = groups[g].hi;
      const obs::Stopwatch group_wall;
      obs::Span span("fault.test_batch");
      span.arg("first", static_cast<double>(lo))
          .arg("lanes", static_cast<double>(hi - lo));
      std::vector<esim::Circuit> lanes_c(faulty.begin() +
                                             static_cast<std::ptrdiff_t>(lo),
                                         faulty.begin() +
                                             static_cast<std::ptrdiff_t>(hi));
      esim::BatchSimulator batch(std::move(lanes_c));
      const auto outcomes =
          batch.run_transients({observation_options(plan)});
      for (std::size_t l = 0; l < hi - lo; ++l) {
        const std::size_t i = lo + l;
        FaultVerdict& v = report.verdicts[i];
        const esim::BatchLaneOutcome& oc = outcomes[l];
        if (oc.simulated) {
          const Observation faulty_obs =
              interpret_observation(oc.result, faulty[i], plan);
          v = classify_fault(universe[i], good_observation, faulty_obs, plan);
        } else {
          v = FaultVerdict{};
          v.fault = universe[i];
          v.failure = oc.failure;
          v.bundle = oc.bundle;
          if (obs::journal().enabled()) {
            obs::journal().record({obs::EventType::kFaultVerdict, 0.0, 0.0, 0,
                                   universe[i].label() + ": unsimulated"});
          }
        }
      }
      const double per_fault =
          group_wall.seconds() / static_cast<double>(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        report.verdicts[i].seconds = per_fault;
        sink.complete(i);
      }
      span.arg("fallbacks",
               static_cast<double>(batch.last_batch_stats().fallbacks));
    };
    if (threads <= 1 || groups.size() <= 1) {
      for (std::size_t g = 0; g < groups.size(); ++g) run_group(g);
    } else {
      par::ThreadPool pool(std::min(threads, groups.size()));
      par::parallel_for(pool, 0, groups.size(), run_group);
    }
  }
  report.stats.wall_seconds = wall.seconds();
  return report;
}

CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const InjectOptions& inject_options,
                            const CampaignProgress& progress) {
  CampaignOptions options;
  options.inject = inject_options;
  return run_campaign(good_circuit, universe, plan, options, progress);
}

}  // namespace sks::fault
