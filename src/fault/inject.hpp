// Fault injection: apply a Fault to a copy of a fault-free master netlist.
#pragma once

#include "esim/netlist.hpp"
#include "fault/fault.hpp"

namespace sks::fault {

struct InjectOptions {
  // Resistance of the short realizing node stuck-at faults.  1 ohm beats
  // any driver impedance in the library (clock drivers are ~100 ohm), as a
  // hard defect would.
  double stuck_at_resistance = 1.0;
  // Name of the supply node stuck-at-1 faults short to.
  std::string vdd_node = "vdd";
};

// Returns a faulty copy of `master`.  Throws NetlistError when the fault
// references a node or device that does not exist in the netlist.
esim::Circuit inject(const esim::Circuit& master, const Fault& fault,
                     const InjectOptions& options = {});

}  // namespace sks::fault
