#include "fault/detect.hpp"

#include <algorithm>
#include <cmath>

#include "cell/measure.hpp"
#include "esim/engine.hpp"
#include "esim/trace.hpp"
#include "obs/journal.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace sks::fault {

TestPlan default_sensor_test_plan(const cell::SensorBench& bench, double vth,
                                  int cycles) {
  sks::check(cycles >= 1, "default_sensor_test_plan: need >= 1 cycle");
  TestPlan plan;
  plan.stimulus = bench.stimulus;
  plan.stimulus.full_clock = true;
  plan.stimulus.skew = 0.0;  // fault-free clocks: the inputs move together
  plan.vth = vth;
  plan.observed_nodes = {bench.cell.qualified("y1"),
                         bench.cell.qualified("y2")};
  plan.supply_name = bench.cell.options.prefix + "Vdd";

  const double t0 = plan.stimulus.edge_time;
  const double period = plan.stimulus.period;
  const double high = plan.stimulus.duty * period;
  // High-phase and low-phase strobes in each cycle: dynamic faults
  // (floating nodes holding stale charge, feedback-amplified asymmetries)
  // may need later cycles to show.
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const double base = t0 + cycle * period;
    plan.logic_strobes.push_back(base + 0.6 * high);          // high phase
    plan.logic_strobes.push_back(base + period - 0.1 * period);  // low phase
  }
  plan.iddq_strobes = plan.logic_strobes;
  plan.t_end = t0 + cycles * period;
  return plan;
}

esim::TransientOptions observation_options(const TestPlan& plan) {
  esim::TransientOptions options;
  options.dt = plan.dt;
  options.t_end = plan.t_end > 0.0
                      ? plan.t_end
                      : *std::max_element(plan.logic_strobes.begin(),
                                          plan.logic_strobes.end()) +
                            1e-9;
  return options;
}

Observation observe(const esim::Circuit& circuit, const TestPlan& plan) {
  const auto result = esim::simulate(circuit, observation_options(plan));
  return interpret_observation(result, circuit, plan);
}

Observation interpret_observation(const esim::TransientResult& result,
                                  const esim::Circuit& circuit,
                                  const TestPlan& plan) {
  Observation obs;
  obs.stats = result.stats;
  obs.values.reserve(plan.logic_strobes.size());
  std::vector<esim::Trace> traces;
  traces.reserve(plan.observed_nodes.size());
  for (const auto& node : plan.observed_nodes) {
    traces.push_back(esim::Trace::node_voltage(result, circuit, node));
  }
  for (double t : plan.logic_strobes) {
    std::vector<double> row;
    row.reserve(traces.size());
    for (const auto& trace : traces) row.push_back(trace.value_at(t));
    obs.values.push_back(std::move(row));
  }
  const auto supply =
      esim::Trace::supply_current(result, circuit, plan.supply_name);
  for (double t : plan.iddq_strobes) {
    obs.iddq.push_back(std::fabs(supply.value_at(t)));
  }
  return obs;
}

FaultVerdict test_fault(const esim::Circuit& good_circuit,
                        const Observation& good_observation,
                        const Fault& fault_to_test, const TestPlan& plan,
                        const InjectOptions& inject_options) {
  FaultVerdict verdict;
  verdict.fault = fault_to_test;
  const obs::Stopwatch stopwatch;

  esim::Circuit faulty = inject(good_circuit, fault_to_test, inject_options);
  Observation faulty_observation;
  try {
    faulty_observation = observe(faulty, plan);
  } catch (const ConvergenceError& e) {
    // A defect that defeats the solver is reported unsimulated (counted as
    // undetected, the conservative choice).  The error context (phase,
    // time, worst-residual node) is preserved on the verdict so campaign
    // reports can say *why* coverage was lost.
    verdict.seconds = stopwatch.seconds();
    verdict.failure = e.what();
    verdict.bundle = e.bundle_path();
    if (obs::journal().enabled()) {
      obs::journal().record({obs::EventType::kFaultVerdict, e.sim_time(), 0.0,
                             static_cast<int>(e.iterations()),
                             fault_to_test.label() + ": unsimulated"});
    }
    return verdict;
  }
  verdict = classify_fault(fault_to_test, good_observation,
                           faulty_observation, plan);
  verdict.seconds = stopwatch.seconds();
  return verdict;
}

FaultVerdict classify_fault(const Fault& fault_to_test,
                            const Observation& good_observation,
                            const Observation& faulty_observation,
                            const TestPlan& plan) {
  FaultVerdict verdict;
  verdict.fault = fault_to_test;
  verdict.simulated = true;
  verdict.stats = faulty_observation.stats;

  for (std::size_t s = 0; s < plan.logic_strobes.size(); ++s) {
    for (std::size_t n = 0; n < plan.observed_nodes.size(); ++n) {
      const bool good_high = good_observation.values[s][n] > plan.vth;
      const bool faulty_high = faulty_observation.values[s][n] > plan.vth;
      if (good_high != faulty_high) verdict.logic_detected = true;
    }
  }
  for (std::size_t s = 0; s < plan.iddq_strobes.size(); ++s) {
    const double excess = faulty_observation.iddq[s] - good_observation.iddq[s];
    verdict.max_excess_iddq = std::max(verdict.max_excess_iddq, excess);
  }
  verdict.iddq_detected = verdict.max_excess_iddq > plan.iddq_threshold;
  if (obs::journal().enabled()) {
    obs::journal().record(
        {obs::EventType::kFaultVerdict, 0.0, verdict.max_excess_iddq, 0,
         fault_to_test.label() + (verdict.logic_detected  ? ": logic"
                                  : verdict.iddq_detected ? ": iddq"
                                                          : ": escape")});
  }
  return verdict;
}

bool sensor_detects_skew_under_fault(const cell::Technology& tech,
                                     const cell::SensorOptions& options,
                                     const cell::ClockPairStimulus& stimulus,
                                     const Fault& fault_to_test,
                                     const InjectOptions& inject_options,
                                     double dt) {
  cell::SensorBench bench = cell::make_sensor_bench(tech, options, stimulus);
  InjectOptions inj = inject_options;
  inj.vdd_node = options.prefix + "vdd";
  bench.circuit = inject(bench.circuit, fault_to_test, inj);
  try {
    const auto m =
        cell::measure_bench(bench, tech.interpretation_threshold(), dt);
    return m.error();
  } catch (const ConvergenceError&) {
    return false;
  }
}

}  // namespace sks::fault
