#include "fault/ifa.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace sks::fault {

double LayoutModel::adjacency(const std::string& a,
                              const std::string& b) const {
  double total = 0.0;
  for (const auto& sa : segments) {
    if (sa.node != a) continue;
    for (const auto& sb : segments) {
      if (sb.node != b) continue;
      const int dist = std::abs(sa.track - sb.track);
      if (dist > max_track_distance) continue;
      const double overlap =
          std::min(sa.x_max, sb.x_max) - std::max(sa.x_min, sb.x_min);
      if (overlap <= 0.0) continue;
      // Closer tracks are likelier to be bridged by the same spot defect.
      total += overlap / static_cast<double>(1 + dist);
    }
  }
  return total;
}

double LayoutModel::wire_length(const std::string& node) const {
  double total = 0.0;
  for (const auto& s : segments) {
    if (s.node == node) total += s.length();
  }
  return total;
}

LayoutModel synthetic_sensor_layout(const cell::SensorCell& cell) {
  // Standard-cell style floorplan of the ten-transistor cell.  Device
  // columns (x, in transistor pitches):
  //   PMOS row:  a=0  b=1  c=2 | f=3  g=4  h=5
  //   NMOS row:  d=1  e=2      | i=4  l=5
  // Horizontal routing tracks between the rows (top to bottom):
  //   7: VDD rail          6: n1 / n3 (split)       5: y1
  //   4: y2                3: n2 / n4 (split)       2: phi1
  //   1: phi2              0: GND rail
  //
  // The structure encodes the physically meaningful adjacencies: y1-y2 are
  // neighbours (the bridge the paper singles out as undetectable), so are
  // phi1-phi2; n1 and n3 share a track but do not overlap.
  LayoutModel layout;
  auto add = [&layout](const std::string& node, int track, double x0,
                       double x1) {
    layout.segments.push_back(WireSegment{node, track, x0, x1});
  };
  const auto q = [&cell](const char* local) { return cell.qualified(local); };

  add(cell.options.prefix + "vdd", 7, 0.0, 6.0);
  add(q("n1"), 6, 0.0, 2.5);
  add(q("n3"), 6, 3.0, 5.5);
  add(q("y1"), 5, 0.5, 5.5);   // b/c drains, d drain, gates of g and l
  add(q("y2"), 4, 1.5, 5.5);   // g/h drains, i drain, gates of c and e
  add(q("n2"), 3, 1.0, 2.0);
  add(q("n4"), 3, 4.0, 5.0);
  add(q("phi1"), 2, 0.0, 5.2); // gates of a, d, h
  add(q("phi2"), 1, 0.0, 5.5); // gates of b, f, i
  add("0", 0, 0.0, 6.0);
  return layout;
}

std::vector<WeightedFault> weighted_sensor_universe(
    const cell::SensorCell& cell, const LayoutModel& layout,
    const IfaOptions& options) {
  const std::string vdd_name = cell.options.prefix + "vdd";
  const std::vector<std::string> signal_nodes = {
      cell.qualified("phi1"), cell.qualified("phi2"), cell.qualified("y1"),
      cell.qualified("y2"),   cell.qualified("n1"),   cell.qualified("n2"),
      cell.qualified("n3"),   cell.qualified("n4")};

  std::vector<WeightedFault> universe;

  // Signal-to-signal bridges, adjacency-weighted.
  double max_bridge_weight = 0.0;
  std::vector<WeightedFault> bridges;
  for (std::size_t i = 0; i < signal_nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < signal_nodes.size(); ++j) {
      const double w = layout.bridge_density *
                       layout.adjacency(signal_nodes[i], signal_nodes[j]);
      if (w <= 0.0) continue;
      bridges.push_back({Fault::bridge(signal_nodes[i], signal_nodes[j],
                                       options.bridge_resistance),
                         w});
      max_bridge_weight = std::max(max_bridge_weight, w);
    }
  }
  for (auto& b : bridges) {
    if (b.weight >= options.prune_below * max_bridge_weight) {
      universe.push_back(std::move(b));
    }
  }

  // Rail bridges = node stuck-ats, weighted by rail adjacency.
  for (const auto& node : signal_nodes) {
    const double w1 = layout.bridge_density * layout.adjacency(node, vdd_name);
    if (w1 > 0.0) universe.push_back({Fault::stuck_at1(node), w1});
    const double w0 = layout.bridge_density * layout.adjacency(node, "0");
    if (w0 > 0.0) universe.push_back({Fault::stuck_at0(node), w0});
  }

  // Device defects: uniform per present device.
  for (const char* name : cell::kSensorDeviceNames) {
    if (!cell.has_device(name)) continue;
    universe.push_back(
        {Fault::stuck_open(cell.qualified(name)), layout.gate_defect_density});
    universe.push_back(
        {Fault::stuck_on(cell.qualified(name)), layout.gate_defect_density});
  }

  sks::check(!universe.empty(), "weighted_sensor_universe: empty layout");
  return universe;
}

double weighted_coverage(const std::vector<FaultVerdict>& verdicts,
                         const std::vector<WeightedFault>& universe,
                         bool with_iddq) {
  sks::check(verdicts.size() == universe.size(),
             "weighted_coverage: verdict/universe size mismatch");
  double detected = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    sks::check(verdicts[i].fault.label() == universe[i].fault.label(),
               "weighted_coverage: verdicts out of order");
    total += universe[i].weight;
    if (verdicts[i].detected(with_iddq)) detected += universe[i].weight;
  }
  return total > 0.0 ? detected / total : 0.0;
}

}  // namespace sks::fault
