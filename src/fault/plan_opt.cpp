#include "fault/plan_opt.hpp"

#include "util/error.hpp"

namespace sks::fault {

std::size_t StrobeMatrix::detectable() const {
  std::size_t count = 0;
  for (const auto& row : detected) {
    for (const bool hit : row) {
      if (hit) {
        ++count;
        break;
      }
    }
  }
  return count;
}

StrobeMatrix build_strobe_matrix(const esim::Circuit& good_circuit,
                                 const std::vector<Fault>& universe,
                                 const TestPlan& plan,
                                 const InjectOptions& inject_options) {
  sks::check(!plan.logic_strobes.empty(),
             "build_strobe_matrix: plan has no strobes");
  StrobeMatrix matrix;
  matrix.strobes = plan.logic_strobes;
  matrix.faults = universe;

  const Observation good = observe(good_circuit, plan);
  for (const Fault& f : universe) {
    std::vector<bool> row(plan.logic_strobes.size(), false);
    esim::Circuit faulty = inject(good_circuit, f, inject_options);
    try {
      const Observation obs = observe(faulty, plan);
      for (std::size_t s = 0; s < plan.logic_strobes.size(); ++s) {
        for (std::size_t n = 0; n < plan.observed_nodes.size(); ++n) {
          const bool good_high = good.values[s][n] > plan.vth;
          const bool bad_high = obs.values[s][n] > plan.vth;
          if (good_high != bad_high) row[s] = true;
        }
      }
    } catch (const ConvergenceError&) {
      ++matrix.unsimulated;
    }
    matrix.detected.push_back(std::move(row));
  }
  return matrix;
}

double StrobeSelection::coverage(const StrobeMatrix& matrix) const {
  return matrix.faults.empty()
             ? 0.0
             : static_cast<double>(covered) /
                   static_cast<double>(matrix.faults.size());
}

StrobeSelection select_strobes(const StrobeMatrix& matrix) {
  StrobeSelection selection;
  std::vector<bool> covered(matrix.faults.size(), false);
  std::vector<bool> used(matrix.strobes.size(), false);

  while (true) {
    std::size_t best_strobe = matrix.strobes.size();
    std::size_t best_gain = 0;
    for (std::size_t s = 0; s < matrix.strobes.size(); ++s) {
      if (used[s]) continue;
      std::size_t gain = 0;
      for (std::size_t f = 0; f < matrix.faults.size(); ++f) {
        if (!covered[f] && matrix.detected[f][s]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_strobe = s;
      }
    }
    if (best_strobe == matrix.strobes.size()) break;
    used[best_strobe] = true;
    selection.selected.push_back(best_strobe);
    selection.marginal_gain.push_back(best_gain);
    for (std::size_t f = 0; f < matrix.faults.size(); ++f) {
      if (matrix.detected[f][best_strobe]) covered[f] = true;
    }
    selection.covered += best_gain;
  }
  return selection;
}

}  // namespace sks::fault
