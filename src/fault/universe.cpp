#include "fault/universe.hpp"

namespace sks::fault {

std::vector<Fault> enumerate_faults(const std::vector<std::string>& nodes,
                                    const std::vector<std::string>& devices,
                                    const UniverseOptions& options) {
  std::vector<Fault> faults;
  if (options.stuck_at) {
    for (const auto& n : nodes) faults.push_back(Fault::stuck_at0(n));
    for (const auto& n : nodes) faults.push_back(Fault::stuck_at1(n));
  }
  if (options.stuck_open) {
    for (const auto& d : devices) faults.push_back(Fault::stuck_open(d));
  }
  if (options.stuck_on) {
    for (const auto& d : devices) faults.push_back(Fault::stuck_on(d));
  }
  if (options.bridges) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        faults.push_back(
            Fault::bridge(nodes[i], nodes[j], options.bridge_resistance));
      }
    }
    if (options.bridges_to_rails) {
      for (const auto& n : nodes) {
        faults.push_back(Fault::bridge(n, "vdd", options.bridge_resistance));
        faults.push_back(Fault::bridge(n, "0", options.bridge_resistance));
      }
    }
  }
  return faults;
}

std::vector<Fault> sensor_fault_universe(const cell::SensorCell& cell,
                                         const UniverseOptions& options) {
  std::vector<std::string> nodes;
  for (const char* local :
       {"phi1", "phi2", "y1", "y2", "n1", "n2", "n3", "n4"}) {
    nodes.push_back(cell.qualified(local));
  }
  std::vector<std::string> devices;
  for (const char* name : cell::kSensorDeviceNames) {
    // The ablation variant omits a/f; enumerate only devices present.
    if (cell.has_device(name)) devices.push_back(cell.qualified(name));
  }
  return enumerate_faults(nodes, devices, options);
}

}  // namespace sks::fault
