// Test-plan optimization: which strobe instants are actually worth
// observing?
//
// The off-line test cannot choose its stimuli (the clocks are what they
// are), so the only degrees of freedom are WHERE (observed nodes) and WHEN
// (strobe instants) to look.  This module builds the per-strobe detection
// matrix for a fault universe and greedily selects a minimal strobe subset
// achieving the full (logic) coverage of the candidate set — showing, for
// the sensing circuit, that one high-phase and one low-phase strobe carry
// almost all of the information, and that a second cycle adds exactly the
// feedback-amplified stuck-ons (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <vector>

#include "fault/detect.hpp"

namespace sks::fault {

struct StrobeMatrix {
  std::vector<double> strobes;  // candidate instants (copy of plan's)
  // detected[f][s]: fault f flips an observed node at strobe s.
  std::vector<std::vector<bool>> detected;
  std::vector<Fault> faults;
  std::size_t unsimulated = 0;

  // Faults detectable by at least one candidate strobe.
  std::size_t detectable() const;
};

// Simulate every fault once and fill the per-strobe detection matrix.
// `plan.logic_strobes` are the candidates; IDDQ is ignored here.
StrobeMatrix build_strobe_matrix(const esim::Circuit& good_circuit,
                                 const std::vector<Fault>& universe,
                                 const TestPlan& plan,
                                 const InjectOptions& inject_options = {});

struct StrobeSelection {
  std::vector<std::size_t> selected;      // indices into matrix.strobes
  std::vector<std::size_t> marginal_gain; // newly covered faults per pick
  std::size_t covered = 0;                // faults covered by the selection

  double coverage(const StrobeMatrix& matrix) const;
};

// Greedy minimum-strobe cover: repeatedly pick the strobe detecting the
// most not-yet-covered faults, until no strobe adds coverage.
StrobeSelection select_strobes(const StrobeMatrix& matrix);

}  // namespace sks::fault
