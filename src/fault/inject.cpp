#include "fault/inject.hpp"

#include "util/error.hpp"

namespace sks::fault {

namespace {

esim::NodeId require_node(const esim::Circuit& circuit,
                          const std::string& name) {
  const auto id = circuit.find_node(name);
  if (!id) throw NetlistError("inject: unknown node '" + name + "'");
  return *id;
}

esim::MosfetId require_mosfet(const esim::Circuit& circuit,
                              const std::string& name) {
  const auto id = circuit.find_mosfet(name);
  if (!id) throw NetlistError("inject: unknown MOSFET '" + name + "'");
  return *id;
}

}  // namespace

esim::Circuit inject(const esim::Circuit& master, const Fault& fault,
                     const InjectOptions& options) {
  esim::Circuit faulty = master;
  switch (fault.kind) {
    case FaultKind::kNodeStuckAt0: {
      const auto target = require_node(faulty, fault.node);
      faulty.add_resistor("flt." + fault.label(), target, faulty.ground(),
                          options.stuck_at_resistance);
      break;
    }
    case FaultKind::kNodeStuckAt1: {
      const auto target = require_node(faulty, fault.node);
      const auto rail = require_node(faulty, options.vdd_node);
      faulty.add_resistor("flt." + fault.label(), target, rail,
                          options.stuck_at_resistance);
      break;
    }
    case FaultKind::kStuckOpen: {
      faulty.mosfet(require_mosfet(faulty, fault.device)).fault =
          esim::MosFault::kStuckOpen;
      break;
    }
    case FaultKind::kStuckOn: {
      faulty.mosfet(require_mosfet(faulty, fault.device)).fault =
          esim::MosFault::kStuckOn;
      break;
    }
    case FaultKind::kBridge: {
      const auto a = require_node(faulty, fault.node_a);
      const auto b = require_node(faulty, fault.node_b);
      sks::check(!(a == b), "inject: bridge endpoints must differ");
      faulty.add_resistor("flt." + fault.label(), a, b,
                          fault.bridge_resistance);
      break;
    }
  }
  return faulty;
}

}  // namespace sks::fault
