// Inductive fault analysis (IFA-lite), after Shen, Maly & Ferguson
// ("Inductive Fault Analysis of MOS Integrated Circuits", IEEE D&T 1985 —
// the paper's ref. [13] for "bridging faults ... the most common kind of
// failures in CMOS ICs").
//
// Classical IFA extracts realistic faults and their likelihoods from the
// layout: a spot defect can only bridge wires that run close to each other,
// with likelihood growing with their shared run length and shrinking with
// their separation.  We do not have the authors' layout, so we provide:
//
//  * a `LayoutModel` abstraction: per-node wire segments on routing tracks;
//  * a synthetic but structurally faithful standard-cell layout of the
//    sensing circuit (PMOS row / NMOS row, devices in schematic order) —
//    the same style the paper's layout-level DFT references [11,14] assume;
//  * weighted fault universes: bridges weighted by adjacency (critical-area
//    style), opens/stuck-ats weighted by wire length and device area;
//  * defect-weighted coverage: the fraction of *likely* defects detected,
//    which is the number IFA argues matters — not the uniform count.
#pragma once

#include <string>
#include <vector>

#include "cell/skew_sensor.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"

namespace sks::fault {

// One horizontal wire segment owned by a node: track index (vertical
// position, in track pitches) and an x span (in arbitrary length units).
struct WireSegment {
  std::string node;
  int track = 0;
  double x_min = 0.0;
  double x_max = 0.0;

  double length() const { return x_max - x_min; }
};

struct LayoutModel {
  std::vector<WireSegment> segments;
  // Bridges are considered between segments at most this many tracks
  // apart (1 = only adjacent tracks; 0 = same track only).
  int max_track_distance = 1;
  // Relative defect densities (arbitrary units; only ratios matter).
  double bridge_density = 1.0;   // per unit shared length, adjacent tracks
  double open_density = 0.35;    // per unit wire length
  double gate_defect_density = 0.2;  // per device (stuck-open/stuck-on)

  // Total x overlap between two nodes' segments within track distance.
  double adjacency(const std::string& a, const std::string& b) const;
  // Total wire length of a node.
  double wire_length(const std::string& node) const;
};

// A synthetic standard-cell layout of the sensing circuit: PMOS devices
// (a, b, c, f, g, h) on the top row, NMOS (d, e, i, l) on the bottom,
// nodes routed on horizontal tracks between them.  Node names are the
// cell-qualified ones, so faults built from this layout inject directly
// into a bench built with the same prefix.
LayoutModel synthetic_sensor_layout(const cell::SensorCell& cell);

struct WeightedFault {
  Fault fault;
  double weight = 1.0;  // relative likelihood
};

struct IfaOptions {
  // Bridges with adjacency-derived weight below this fraction of the
  // largest bridge weight are pruned (they would need a huge defect).
  double prune_below = 0.01;
  double bridge_resistance = 100.0;
};

// Build the weighted universe: bridges from layout adjacency; node
// stuck-ats weighted by wire length (shorts to rails run everywhere);
// transistor stuck-open/stuck-on weighted by the gate defect density.
std::vector<WeightedFault> weighted_sensor_universe(
    const cell::SensorCell& cell, const LayoutModel& layout,
    const IfaOptions& options = {});

// Defect-weighted coverage: sum of weights of detected faults over the
// total weight.  `verdicts` must come from a campaign over exactly the
// faults of `universe` (in order).
double weighted_coverage(const std::vector<FaultVerdict>& verdicts,
                         const std::vector<WeightedFault>& universe,
                         bool with_iddq);

}  // namespace sks::fault
