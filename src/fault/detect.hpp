// Fault detection criteria and single-fault electrical test execution.
//
// Off-line test of the sensing circuit (paper Sec. 3): the clock inputs
// "cannot be controlled independently from each other", so the test stimulus
// is just the fault-free clock pair; detection relies on the circuit's
// self-testing behaviour.  A fault is
//
//  * logic-detected when, at any strobe instant, an observed node's voltage
//    is interpreted (against V_th) as the opposite logic value of the
//    fault-free circuit's ("the faulty voltage lies from the opposite side
//    of V_th with respect to the fault-free value");
//  * IDDQ-detected when the quiescent supply current at a measurement
//    instant exceeds the fault-free value by more than the IDDQ threshold
//    (Malaiya & Su's classical criterion the paper points to).
#pragma once

#include <string>
#include <vector>

#include "cell/stimuli.hpp"
#include "esim/engine.hpp"
#include "esim/netlist.hpp"
#include "fault/fault.hpp"
#include "fault/inject.hpp"

namespace sks::fault {

struct TestPlan {
  cell::ClockPairStimulus stimulus;     // fault-free clocks (full_clock)
  std::vector<std::string> observed_nodes;
  std::vector<double> logic_strobes;    // [s]
  std::vector<double> iddq_strobes;     // [s]
  double vth = 2.75;                    // logic interpretation threshold [V]
  double iddq_threshold = 50e-6;        // excess quiescent current [A]
  std::string supply_name = "Vdd";
  double dt = 5e-12;                    // simulation base step [s]
  double t_end = 0.0;                   // 0 => derived from the strobes
};

// The standard test plan for a sensor bench: observe y1/y2 in the high
// phase and in the low phase of each clock cycle; measure IDDQ at the same
// instants.  `cycles = 1` reproduces the paper's single-cycle test;
// `cycles = 2` (default) additionally catches faults whose effect builds up
// across cycles — the sensing circuit amplifies fault-induced asymmetries
// through its feedback loop, so a second observed cycle strictly improves
// stuck-on coverage (see bench/sec3_testability).
TestPlan default_sensor_test_plan(const cell::SensorBench& bench, double vth,
                                  int cycles = 2);

struct Observation {
  // values[strobe_index][node_index], voltages at the logic strobes.
  std::vector<std::vector<double>> values;
  // Supply current magnitude at each IDDQ strobe.
  std::vector<double> iddq;
  // Solver telemetry of the underlying transient run.
  esim::SolveStats stats;
};

// Simulate the circuit under the plan's stimulus and sample it.
Observation observe(const esim::Circuit& circuit, const TestPlan& plan);

// The transient options observe() runs — exposed so the batched campaign
// path (esim::BatchSimulator over a group of faulty circuits) drives its
// lanes with exactly the scalar schedule.
esim::TransientOptions observation_options(const TestPlan& plan);

// Sample an already-computed transient of `circuit` (the second half of
// observe()); shared by the scalar and batched campaign paths.
Observation interpret_observation(const esim::TransientResult& result,
                                  const esim::Circuit& circuit,
                                  const TestPlan& plan);

struct FaultVerdict {
  Fault fault;
  bool simulated = false;       // electrical simulation converged
  bool logic_detected = false;
  bool iddq_detected = false;
  double max_excess_iddq = 0.0;  // [A]
  // Telemetry: wall time spent testing this fault and the solver stats of
  // its (possibly failed) transient run.
  double seconds = 0.0;
  esim::SolveStats stats;
  // Why the simulation was abandoned ("" when `simulated`).
  std::string failure;
  // Postmortem bundle directory for the failed run ("" unless postmortems
  // are enabled on the engine, see Simulator::set_postmortem_dir).
  std::string bundle;

  bool detected(bool with_iddq) const {
    return logic_detected || (with_iddq && iddq_detected);
  }
};

// Test one fault against a fault-free reference observation.
FaultVerdict test_fault(const esim::Circuit& good_circuit,
                        const Observation& good_observation,
                        const Fault& fault_to_test, const TestPlan& plan,
                        const InjectOptions& inject_options = {});

// Classify an already-observed faulty circuit against the fault-free
// reference: the detection-criteria half of test_fault (including the
// journal record), shared by the scalar and batched campaign paths.  The
// returned verdict carries the fault, the detection flags and the solver
// stats of `faulty_observation`; the caller fills `seconds`.
FaultVerdict classify_fault(const Fault& fault_to_test,
                            const Observation& good_observation,
                            const Observation& faulty_observation,
                            const TestPlan& plan);

// Does the (possibly faulty) sensor still flag an abnormal skew?  Used to
// check the paper's claim that stuck-opens on c/g "do not mask the presence
// of abnormal skews".  Builds a fresh bench with the given skewed stimulus,
// injects the fault, and returns true when an error indication appears.
bool sensor_detects_skew_under_fault(const cell::Technology& tech,
                                     const cell::SensorOptions& options,
                                     const cell::ClockPairStimulus& stimulus,
                                     const Fault& fault_to_test,
                                     const InjectOptions& inject_options = {},
                                     double dt = 5e-12);

}  // namespace sks::fault
