// Fault-universe enumeration.
//
// Generic enumeration over a netlist region (a set of nodes and devices),
// plus the specific universe of the paper's Section 3: every node stuck-at,
// every transistor stuck-open/stuck-on, and every pairwise bridge among the
// sensing circuit's nodes (bridging resistance 100 ohm).
#pragma once

#include <string>
#include <vector>

#include "cell/skew_sensor.hpp"
#include "esim/netlist.hpp"
#include "fault/fault.hpp"

namespace sks::fault {

struct UniverseOptions {
  bool stuck_at = true;
  bool stuck_open = true;
  bool stuck_on = true;
  bool bridges = true;
  double bridge_resistance = 100.0;
  // Bridges to the rails duplicate the stuck-at faults; keep them out of
  // the bridge list by default (the paper counts them once, as stuck-ats).
  bool bridges_to_rails = false;
};

// Enumerate faults over an explicit region: `nodes` get stuck-at faults and
// pairwise bridges, `devices` get stuck-open/stuck-on.  Order is
// deterministic: SA0s, SA1s, SOPs, SONs, bridges (lexicographic pairs).
std::vector<Fault> enumerate_faults(const std::vector<std::string>& nodes,
                                    const std::vector<std::string>& devices,
                                    const UniverseOptions& options = {});

// The sensing-circuit universe of Section 3: nodes {phi1, phi2, y1, y2,
// n1..n4} and devices {a..e, f..i, l} of the given sensor instance, plus
// (optionally) rail bridges.
std::vector<Fault> sensor_fault_universe(const cell::SensorCell& cell,
                                         const UniverseOptions& options = {});

}  // namespace sks::fault
