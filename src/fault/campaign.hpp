// Fault-simulation campaign: run a whole fault universe through the
// electrical test and aggregate coverage, per fault kind, with and without
// IDDQ — the numbers of the paper's Section 3.
//
// Beyond the verdicts, a campaign aggregates run telemetry (per-fault wall
// times, solver convergence health) into `CampaignStats` and can export the
// whole run as a machine-readable obs::Report.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "esim/netlist.hpp"
#include "fault/detect.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sks::fault {

struct KindSummary {
  std::size_t total = 0;
  std::size_t logic_detected = 0;
  std::size_t iddq_only = 0;   // detected by IDDQ but not logically
  std::size_t unsimulated = 0;

  double logic_coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(logic_detected) /
                            static_cast<double>(total);
  }
  double combined_coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(logic_detected + iddq_only) /
                            static_cast<double>(total);
  }
};

// Aggregated telemetry of one campaign run.
struct CampaignStats {
  double wall_seconds = 0.0;       // whole campaign, including the good run
  double good_sim_seconds = 0.0;   // fault-free reference simulation
  util::RunningStats fault_seconds;  // per-fault wall time distribution
  esim::SolveStats solve;          // engine stats summed over faulty runs
  std::size_t unsimulated = 0;     // faults abandoned on ConvergenceError
};

// Called after every tested fault; `done` counts tested faults, `total` is
// the universe size.  The verdict reference is valid only for the duration
// of the call.  Parallel campaigns fire the callback in universe order
// (done = 1, 2, ..., total) from whichever worker completed the gap, under
// an internal lock — callbacks need no synchronization of their own but
// must not re-enter the campaign.
using CampaignProgress =
    std::function<void(std::size_t done, std::size_t total,
                       const FaultVerdict& last)>;

struct CampaignOptions {
  InjectOptions inject;
  // Worker threads testing faults concurrently.  0 = par::default_threads()
  // (bench --threads flag, then SKS_THREADS, then hardware_concurrency);
  // 1 = fully serial in the calling thread.  Any value produces
  // bit-identical verdicts, stats aggregates and progress order: each fault
  // test is share-nothing (its Simulator owns a circuit snapshot) and
  // results are committed in universe order.
  std::size_t threads = 0;
  // Batched-solver lane width: consecutive faults whose injected circuits
  // are structure-compatible are simulated together by esim::BatchSimulator
  // (faults that change topology — opens splitting a node, bridges adding a
  // resistor — start a new group).  0 = resolve from SKS_BATCH, defaulting
  // to esim::kDefaultBatchLanes; 1 disables batching.  Verdicts and
  // aggregation order are identical either way.
  std::size_t batch = 0;
};

struct CampaignReport {
  std::vector<FaultVerdict> verdicts;
  CampaignStats stats;

  std::map<FaultKind, KindSummary> by_kind() const;
  KindSummary overall() const;
  // Labels of faults escaping logic detection (and, optionally, IDDQ too).
  std::vector<std::string> escapes(bool with_iddq) const;

  util::TextTable summary_table() const;

  // Machine-readable run report: coverage + timing + convergence health
  // (schema documented in obs/report.hpp and EXPERIMENTS.md).
  obs::Report run_report(const std::string& name = "fault_campaign") const;
};

// Simulate the fault-free circuit once, then every fault in the universe
// (in parallel across options.threads workers).  `progress` (optional) is
// invoked after each fault — campaign drivers use it for live reporting
// without holding the whole verdict list.  An exception thrown by the
// progress callback cancels the remaining faults and propagates.
CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const CampaignOptions& options,
                            const CampaignProgress& progress = nullptr);
// (The options parameter has no default so 3-argument calls keep resolving
// to the InjectOptions overload below.)

// Back-compat entry point: inject options only, default parallelism.
CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const InjectOptions& inject_options = {},
                            const CampaignProgress& progress = nullptr);

}  // namespace sks::fault
