// Fault-simulation campaign: run a whole fault universe through the
// electrical test and aggregate coverage, per fault kind, with and without
// IDDQ — the numbers of the paper's Section 3.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "esim/netlist.hpp"
#include "fault/detect.hpp"
#include "util/table.hpp"

namespace sks::fault {

struct KindSummary {
  std::size_t total = 0;
  std::size_t logic_detected = 0;
  std::size_t iddq_only = 0;   // detected by IDDQ but not logically
  std::size_t unsimulated = 0;

  double logic_coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(logic_detected) /
                            static_cast<double>(total);
  }
  double combined_coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(logic_detected + iddq_only) /
                            static_cast<double>(total);
  }
};

struct CampaignReport {
  std::vector<FaultVerdict> verdicts;

  std::map<FaultKind, KindSummary> by_kind() const;
  KindSummary overall() const;
  // Labels of faults escaping logic detection (and, optionally, IDDQ too).
  std::vector<std::string> escapes(bool with_iddq) const;

  util::TextTable summary_table() const;
};

// Simulate the fault-free circuit once, then every fault in the universe.
CampaignReport run_campaign(const esim::Circuit& good_circuit,
                            const std::vector<Fault>& universe,
                            const TestPlan& plan,
                            const InjectOptions& inject_options = {});

}  // namespace sks::fault
