#include "scheme/placement.hpp"

#include <algorithm>
#include <cmath>

namespace sks::scheme {

bool Placement::covers(std::size_t sink) const {
  return std::any_of(sensors.begin(), sensors.end(),
                     [sink](const PlacedSensor& s) {
                       return s.sink_a == sink || s.sink_b == sink;
                     });
}

Placement place_sensors(const clocktree::ClockTree& tree,
                        const clocktree::AnalysisOptions& analysis_options,
                        const PlacementOptions& options,
                        const SensorCalibration& calibration) {
  Placement placement;
  placement.ranking = clocktree::rank_critical_pairs(tree, analysis_options,
                                                     options.criticality);
  const BehavioralSensorModel model =
      calibration.model_for_load(options.sensor_load);

  for (const auto& pair : placement.ranking) {
    if (placement.sensors.size() >= options.max_sensors) break;
    if (pair.distance > options.max_pair_distance) continue;  // criterion 2
    if (pair.exceed_probability < options.min_exceed_probability) continue;
    if (std::fabs(pair.nominal_skew) >
        options.max_nominal_skew_fraction * model.tau_min) {
      continue;  // statically skewed by design: not a monitorable couple
    }
    // Spread the sensors: one per sink until everything critical is covered.
    if (placement.covers(pair.a) || placement.covers(pair.b)) continue;
    PlacedSensor s;
    s.sink_a = pair.a;
    s.sink_b = pair.b;
    s.distance = pair.distance;
    s.exceed_probability = pair.exceed_probability;
    s.model = model;
    placement.sensors.push_back(s);
  }
  return placement;
}

}  // namespace sks::scheme
