// The testing scheme, end to end (paper Fig. 6): sensors placed on couples
// of clock wires, error indicators latching their responses, a scan path
// for off-line readout and an on-line checker for self-checking operation.
//
// The orchestrator simulates the scheme cycle by cycle at the behavioural
// level: every cycle it computes per-sink clock arrivals (nominal tree +
// permanent defects + transient defects active that cycle + random jitter),
// feeds every placed sensor the skew it would see, and collects the
// indications.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "clocktree/defects.hpp"
#include "scheme/indicator.hpp"
#include "scheme/placement.hpp"

namespace sks::scheme {

struct SchemeOptions {
  PlacementOptions placement;
  // Gaussian per-sink, per-cycle timing noise (PLL jitter, supply noise).
  double cycle_jitter_sigma = 1e-12;  // [s]
  std::uint64_t seed = 12345;
};

struct CampaignResult {
  bool detected = false;
  std::optional<std::size_t> first_detection_cycle;
  std::optional<std::size_t> detecting_sensor;
  std::vector<bool> scan_out;          // latched indicators (off-line view)
  std::size_t cycles = 0;
  double max_true_skew = 0.0;          // largest |sensor-pair skew| seen
  std::size_t indication_cycles = 0;   // cycles with >= 1 indication
};

class TestingScheme {
 public:
  TestingScheme(clocktree::ClockTree tree,
                clocktree::AnalysisOptions analysis_options,
                SensorCalibration calibration, SchemeOptions options);

  // Use an externally computed placement (e.g. coverage-driven, see
  // scheme/coverage_placement.hpp) instead of the default criticality one.
  TestingScheme(clocktree::ClockTree tree,
                clocktree::AnalysisOptions analysis_options,
                SensorCalibration calibration, SchemeOptions options,
                Placement placement);

  const Placement& placement() const { return placement_; }
  const clocktree::ClockTree& tree() const { return tree_; }

  // Simulate `cycles` clock cycles with the given defects present.
  // Permanent defects apply to every cycle; transient ones are activated
  // per cycle with their activation probability.
  CampaignResult run(const std::vector<clocktree::TreeDefect>& defects,
                     std::size_t cycles);

  // False-alarm rate: run with no defects and report the fraction of
  // cycles with an indication (jitter-induced).
  double false_alarm_rate(std::size_t cycles);

 private:
  clocktree::ClockTree tree_;
  clocktree::AnalysisOptions analysis_options_;
  SensorCalibration calibration_;
  SchemeOptions options_;
  Placement placement_;
  util::Prng prng_;
};

}  // namespace sks::scheme
