// Behavioural model of the sensing circuit, calibrated against the
// electrical simulation.
//
// Tree-level campaigns (Fig. 6, the on-line experiments) need thousands of
// sensor evaluations per run; simulating every one at the electrical level
// would be wasteful and adds nothing, because at that granularity the
// sensor is fully characterized by its sensitivity tau_min(C_L) plus a
// small metastable band around it.  This module provides that abstraction
// and the calibration path back to `esim` (tests cross-validate the two).
#pragma once

#include <cstdint>
#include <vector>

#include "cell/measure.hpp"
#include "cell/technology.hpp"
#include "util/interp.hpp"
#include "util/prng.hpp"

namespace sks::scheme {

struct BehavioralSensorModel {
  double tau_min = 0.11e-9;        // smallest detected |skew| [s]
  // Around tau_min the electrical outcome is slew/noise dependent; within
  // +/- band/2 the model resolves the indication pseudo-randomly.
  double metastable_band = 5e-12;  // [s]

  // Classify a signed skew (phi2 late = positive -> indication 01, the
  // paper's convention).  `prng` resolves the metastable band; pass nullptr
  // for the deterministic (threshold-exact) variant.
  cell::Indication classify(double skew, util::Prng* prng = nullptr) const;
};

// tau_min as a function of the sensor's output load C_L.
class SensorCalibration {
 public:
  SensorCalibration() = default;
  SensorCalibration(std::vector<double> loads, std::vector<double> tau_mins);

  // Table measured from the shipped Technology defaults (regenerate with
  // from_simulation; tests assert the two agree).
  static SensorCalibration default_table();

  // Calibrate by electrical simulation: one find_tau_min bisection per load.
  static SensorCalibration from_simulation(const cell::Technology& tech,
                                           const cell::SensorOptions& options,
                                           const std::vector<double>& loads,
                                           double dt = 5e-12);

  double tau_min(double load) const;
  BehavioralSensorModel model_for_load(double load) const;
  const util::PiecewiseLinear& table() const { return table_; }

 private:
  util::PiecewiseLinear table_;
};

}  // namespace sks::scheme
