// Sensor-pair placement on a clock tree — the paper's two criteria:
//
//   1. the skew between the monitored wires must be critical (here:
//      Monte-Carlo skew statistics from clocktree::rank_critical_pairs);
//   2. the wires must be close enough for a balanced connection (Manhattan
//      distance cut).
//
// Selection is greedy over the criticality ranking, spreading sensors so no
// sink is monitored twice before every critical region has one.
#pragma once

#include <cstddef>
#include <vector>

#include "clocktree/skew_analysis.hpp"
#include "scheme/behavioral_sensor.hpp"

namespace sks::scheme {

struct PlacementOptions {
  std::size_t max_sensors = 8;
  double max_pair_distance = 2e-3;   // criterion 2 [m]
  double sensor_load = 80e-15;       // C_L at the sensor outputs [F]
  // Require at least this exceed-probability (criterion 1); pairs below it
  // are not worth a sensor.
  double min_exceed_probability = 0.0;
  // A sensor on a pair whose NOMINAL (design) skew already approaches
  // tau_min would alarm on every cycle; such pairs are design bugs to fix,
  // not couples to monitor.  Pairs with |nominal skew| above this fraction
  // of the sensor's tau_min are skipped.
  double max_nominal_skew_fraction = 0.5;
  clocktree::CriticalityOptions criticality;
};

struct PlacedSensor {
  std::size_t sink_a = 0, sink_b = 0;  // tree node indices
  double distance = 0.0;               // [m]
  double exceed_probability = 0.0;     // from the criticality analysis
  BehavioralSensorModel model;
};

struct Placement {
  std::vector<PlacedSensor> sensors;
  // The full ranking the selection was made from (for reporting).
  std::vector<clocktree::PairCriticality> ranking;

  // Is either wire of any sensor attached to this sink?
  bool covers(std::size_t sink) const;
};

Placement place_sensors(const clocktree::ClockTree& tree,
                        const clocktree::AnalysisOptions& analysis_options,
                        const PlacementOptions& options,
                        const SensorCalibration& calibration);

}  // namespace sks::scheme
