#include "scheme/coverage_placement.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace sks::scheme {

std::vector<std::size_t> observable_edges(const clocktree::ClockTree& tree,
                                          std::size_t sink_a,
                                          std::size_t sink_b) {
  const auto path_a = tree.path_to_root(sink_a);
  const auto path_b = tree.path_to_root(sink_b);
  const std::set<std::size_t> set_a(path_a.begin(), path_a.end());
  const std::set<std::size_t> set_b(path_b.begin(), path_b.end());
  std::vector<std::size_t> edges;
  for (const std::size_t n : path_a) {
    if (n != tree.root() && set_b.find(n) == set_b.end()) edges.push_back(n);
  }
  for (const std::size_t n : path_b) {
    if (n != tree.root() && set_a.find(n) == set_a.end()) edges.push_back(n);
  }
  return edges;
}

double placement_edge_coverage(const clocktree::ClockTree& tree,
                               const Placement& placement) {
  std::set<std::size_t> covered;
  for (const auto& s : placement.sensors) {
    const auto edges = observable_edges(tree, s.sink_a, s.sink_b);
    covered.insert(edges.begin(), edges.end());
  }
  double covered_length = 0.0;
  for (const std::size_t n : covered) {
    covered_length += tree.node(n).wire_length;
  }
  const double total = tree.total_wire_length();
  return total > 0.0 ? covered_length / total : 0.0;
}

Placement place_sensors_by_coverage(
    const clocktree::ClockTree& tree,
    const clocktree::AnalysisOptions& analysis_options,
    const PlacementOptions& options, const SensorCalibration& calibration) {
  Placement placement;
  const BehavioralSensorModel model =
      calibration.model_for_load(options.sensor_load);
  const clocktree::ArrivalAnalysis nominal =
      clocktree::analyze(tree, analysis_options);
  const auto sinks = tree.sinks();

  // Admissible candidate pairs with their observable edges.
  struct Candidate {
    std::size_t a, b;
    double distance;
    std::vector<std::size_t> edges;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (std::size_t j = i + 1; j < sinks.size(); ++j) {
      const double distance =
          manhattan(tree.node(sinks[i]).pos, tree.node(sinks[j]).pos);
      if (distance > options.max_pair_distance) continue;
      const double skew = nominal.skew(sinks[i], sinks[j]);
      if (std::fabs(skew) > options.max_nominal_skew_fraction * model.tau_min) {
        continue;
      }
      candidates.push_back({sinks[i], sinks[j], distance,
                            observable_edges(tree, sinks[i], sinks[j])});
    }
  }

  std::set<std::size_t> covered;
  std::set<std::size_t> used_sinks;
  while (placement.sensors.size() < options.max_sensors) {
    double best_gain = 0.0;
    const Candidate* best = nullptr;
    for (const auto& c : candidates) {
      if (used_sinks.count(c.a) != 0 || used_sinks.count(c.b) != 0) continue;
      double gain = 0.0;
      for (const std::size_t e : c.edges) {
        if (covered.find(e) == covered.end()) {
          gain += tree.node(e).wire_length;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = &c;
      }
    }
    if (best == nullptr) break;  // nothing adds coverage

    PlacedSensor s;
    s.sink_a = best->a;
    s.sink_b = best->b;
    s.distance = best->distance;
    s.model = model;
    placement.sensors.push_back(s);
    covered.insert(best->edges.begin(), best->edges.end());
    used_sinks.insert(best->a);
    used_sinks.insert(best->b);
  }
  return placement;
}

}  // namespace sks::scheme
