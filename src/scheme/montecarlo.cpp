#include "scheme/montecarlo.hpp"

#include "esim/engine.hpp"
#include "esim/trace.hpp"
#include "util/prng.hpp"

namespace sks::scheme {

std::vector<McSample> run_vmin_montecarlo(const cell::Technology& tech,
                                          const cell::SensorOptions& base,
                                          const McOptions& options) {
  util::Prng prng(options.seed);
  std::vector<McSample> samples;
  samples.reserve(options.samples);

  for (std::size_t i = 0; i < options.samples; ++i) {
    McSample s;
    s.tau = prng.uniform(options.tau_lo, options.tau_hi);
    s.slew1 = prng.uniform(options.slew_lo, options.slew_hi);
    s.slew2 = options.common_slew
                  ? s.slew1
                  : prng.uniform(options.slew_lo, options.slew_hi);

    cell::SensorOptions opt = base;
    opt.load_y1 = opt.load_y2 = options.load;
    cell::ClockPairStimulus stimulus;
    stimulus.vdd = tech.vdd;
    stimulus.skew = s.tau;
    stimulus.slew1 = s.slew1;
    stimulus.slew2 = s.slew2;

    cell::SensorBench bench = cell::make_sensor_bench(tech, opt, stimulus);
    cell::VariationSpec spec;
    spec.rel = options.rel;
    cell::apply_random_variation(bench.circuit, spec, prng);

    const cell::SensorMeasurement m = cell::measure_bench(
        bench, tech.interpretation_threshold(), options.dt);
    // Positive tau delays phi2, so the late output is y2.
    s.vmin_late = m.vmin_y2;
    s.indication = m.indication;
    s.detected = m.error();
    samples.push_back(s);
  }
  return samples;
}

ProbabilityEstimates estimate_probabilities(const std::vector<McSample>& mc,
                                            double tau_min_nominal,
                                            double vth) {
  ProbabilityEstimates est;
  est.tau_min_nominal = tau_min_nominal;
  for (const McSample& s : mc) {
    ++est.loose_joint.trials;
    ++est.false_alarm_joint.trials;
    if (s.tau > tau_min_nominal) {
      ++est.loose.trials;
      if (s.vmin_late < vth) {
        ++est.loose.successes;
        ++est.loose_joint.successes;
      }
    } else {
      ++est.false_alarm.trials;
      if (s.vmin_late > vth) {
        ++est.false_alarm.successes;
        ++est.false_alarm_joint.successes;
      }
    }
  }
  return est;
}

}  // namespace sks::scheme
