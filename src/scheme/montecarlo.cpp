#include "scheme/montecarlo.hpp"

#include <algorithm>

#include "esim/batch.hpp"
#include "esim/engine.hpp"
#include "obs/expose.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "par/pool.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace sks::scheme {

namespace {

// One measured sample plus its telemetry, produced entirely on one worker.
// Per-sample solver stats come straight from the transient result (via the
// measure_bench out-param), never from global counter deltas — those
// interleave across threads.
struct SampleResult {
  McSample sample;
  double seconds = 0.0;
  esim::SolveStats solve;
};

// A drawn sample and its ready-to-simulate bench.  Splitting the draw from
// the measurement lets the scalar path and the batched path share one
// randomness protocol: sample i's circuit and stimulus depend only on
// (options.seed, i), never on the execution schedule or the lane width.
struct PreparedSample {
  McSample sample;
  cell::SensorBench bench;
};

PreparedSample prepare_one(const cell::Technology& tech,
                           const cell::SensorOptions& base,
                           const McOptions& options, std::size_t index) {
  // Index-addressed stream: sample i's randomness depends only on
  // (options.seed, i), so any schedule across any thread count draws the
  // exact same circuits and stimuli.
  util::Prng prng(util::derive_seed(options.seed, index));

  PreparedSample out;
  McSample& s = out.sample;
  s.tau = prng.uniform(options.tau_lo, options.tau_hi);
  s.slew1 = prng.uniform(options.slew_lo, options.slew_hi);
  s.slew2 = options.common_slew
                ? s.slew1
                : prng.uniform(options.slew_lo, options.slew_hi);

  cell::SensorOptions opt = base;
  opt.load_y1 = opt.load_y2 = options.load;
  cell::ClockPairStimulus stimulus;
  stimulus.vdd = tech.vdd;
  stimulus.skew = s.tau;
  stimulus.slew1 = s.slew1;
  stimulus.slew2 = s.slew2;

  out.bench = cell::make_sensor_bench(tech, opt, stimulus);
  cell::VariationSpec spec;
  spec.rel = options.rel;
  cell::apply_random_variation(out.bench.circuit, spec, prng);
  return out;
}

void fill_measurement(McSample& s, const cell::SensorMeasurement& m) {
  // Positive tau delays phi2, so the late output is y2.
  s.vmin_late = m.vmin_y2;
  s.indication = m.indication;
  s.detected = m.error();
}

SampleResult measure_one(const cell::Technology& tech,
                         const cell::SensorOptions& base,
                         const McOptions& options, std::size_t index) {
  const obs::Stopwatch sample_wall;
  obs::Span span("scheme.mc_sample");
  span.arg("index", static_cast<double>(index));
  PreparedSample prepared = prepare_one(tech, base, options, index);

  SampleResult out;
  out.sample = prepared.sample;
  McSample& s = out.sample;
  try {
    const cell::SensorMeasurement m =
        cell::measure_bench(prepared.bench, tech.interpretation_threshold(),
                            options.dt, &out.solve);
    fill_measurement(s, m);
  } catch (const ConvergenceError& e) {
    // A pathological random draw must not abort the whole population: mark
    // the sample unsimulated and keep the failure context (plus the
    // postmortem bundle path when bundles are enabled) for the report.
    s.simulated = false;
    s.failure = e.what();
    s.bundle = e.bundle_path();
  }
  out.seconds = sample_wall.seconds();
  span.arg("tau", s.tau)
      .arg("vmin_late", s.vmin_late)
      .arg("detected", static_cast<double>(s.detected))
      .arg("nr_iters", static_cast<double>(out.solve.newton_iterations));
  return out;
}

// Measure samples [lo, hi) as one BatchSimulator run (the SoA fast path).
// A lane the batch retires is re-run on the scalar Simulator inside
// run_transients, so the verdicts here match the scalar path sample for
// sample; per-sample seconds are the block's wall time split evenly (the
// lanes advance in lockstep, so there is no meaningful per-lane split).
void measure_block(const cell::Technology& tech,
                   const cell::SensorOptions& base, const McOptions& options,
                   std::size_t lo, std::size_t hi,
                   std::vector<SampleResult>& results) {
  const obs::Stopwatch block_wall;
  const std::size_t lanes = hi - lo;
  obs::Span span("scheme.mc_block");
  span.arg("first", static_cast<double>(lo))
      .arg("lanes", static_cast<double>(lanes));

  std::vector<PreparedSample> prepared;
  prepared.reserve(lanes);
  std::vector<esim::Circuit> circuits;
  circuits.reserve(lanes);
  std::vector<esim::TransientOptions> sim_options;
  sim_options.reserve(lanes);
  for (std::size_t i = lo; i < hi; ++i) {
    prepared.push_back(prepare_one(tech, base, options, i));
    circuits.push_back(prepared.back().bench.circuit);
    sim_options.push_back(
        cell::sensor_sim_options(prepared.back().bench.stimulus, options.dt));
  }

  esim::BatchSimulator batch(std::move(circuits));
  const auto outcomes = batch.run_transients(sim_options);
  for (std::size_t l = 0; l < lanes; ++l) {
    SampleResult out;
    out.sample = prepared[l].sample;
    McSample& s = out.sample;
    const esim::BatchLaneOutcome& oc = outcomes[l];
    if (oc.simulated) {
      out.solve = oc.result.stats;
      fill_measurement(
          s, cell::measure_result(prepared[l].bench, oc.result,
                                  tech.interpretation_threshold()));
    } else {
      s.simulated = false;
      s.failure = oc.failure;
      s.bundle = oc.bundle;
    }
    results[lo + l] = std::move(out);
  }
  // Split the block's wall time evenly across its samples so the
  // mc.sample_seconds stream and McRunStats keep their meaning.
  const double per_sample = block_wall.seconds() / static_cast<double>(lanes);
  for (std::size_t i = lo; i < hi; ++i) results[i].seconds = per_sample;
  span.arg("fallbacks",
           static_cast<double>(batch.last_batch_stats().fallbacks));
}

}  // namespace

obs::Report McRunStats::run_report(const std::string& name) const {
  obs::Report report(name);
  report.set_value("samples", static_cast<double>(sample_seconds.count()));
  report.set_value("detected", static_cast<double>(detected));
  report.set_value("unsimulated", static_cast<double>(unsimulated));
  report.set_value("wall_seconds", wall_seconds);
  if (sample_seconds.count() > 0) {
    report.set_value("sample_seconds.mean", sample_seconds.mean());
    report.set_value("sample_seconds.max", sample_seconds.max());
  }
  report.set_value("solve.newton_iterations",
                   static_cast<double>(solve.newton_iterations));
  report.set_value("solve.newton_failures",
                   static_cast<double>(solve.newton_failures));
  report.set_value("solve.lu_factorizations",
                   static_cast<double>(solve.lu_factorizations));
  report.set_value("solve.steps_accepted",
                   static_cast<double>(solve.steps_accepted));
  report.set_value("solve.dt_halvings",
                   static_cast<double>(solve.dt_halvings));
  report.set_value("solve.be_fallbacks",
                   static_cast<double>(solve.be_fallbacks));
  report.set_value("solve.dc_gmin_ladders",
                   static_cast<double>(solve.dc_gmin_ladders));
  report.set_value("solve.dc_source_ladders",
                   static_cast<double>(solve.dc_source_ladders));
  return report;
}

std::vector<McSample> run_vmin_montecarlo(const cell::Technology& tech,
                                          const cell::SensorOptions& base,
                                          const McOptions& options,
                                          McRunStats* stats,
                                          const McProgress& progress) {
  const obs::Stopwatch wall;
  static obs::TimerStat& mc_timer =
      obs::registry().timer("scheme.vmin_montecarlo");
  obs::ScopedTimer timer(mc_timer);
  obs::Span mc_span("scheme.run_vmin_montecarlo");
  obs::ScopedRunPhase phase(obs::RunPhase::kCampaign);
  mc_span.arg("samples", static_cast<double>(options.samples));

  std::vector<SampleResult> results(options.samples);
  // Telemetry aggregation and progress fire strictly in sample order so the
  // RunningStats sums (and the callback sequence) match the serial run
  // bit-for-bit.  Registry streams and the live progress tracker ride the
  // same commit order, so their content is thread-count-invariant too.
  static obs::StreamStat& seconds_stream =
      obs::registry().stream("mc.sample_seconds");
  static obs::StreamStat& vmin_stream = obs::registry().stream("mc.vmin");
  static obs::StreamStat& tau_stream = obs::registry().stream("mc.tau");
  obs::ProgressTracker tracker("vmin_montecarlo", options.samples);
  par::OrderedSink sink(options.samples, [&](std::size_t i) {
    if (stats != nullptr) {
      stats->sample_seconds.add(results[i].seconds);
      stats->solve.merge(results[i].solve);
      if (results[i].sample.detected) ++stats->detected;
      if (!results[i].sample.simulated) ++stats->unsimulated;
    }
    const McSample& s = results[i].sample;
    seconds_stream.record(results[i].seconds);
    if (s.simulated) {
      vmin_stream.record(s.vmin_late);
      tau_stream.record(s.tau);
    }
    if (s.detected) tracker.add_partial("detected");
    if (!s.simulated) tracker.add_partial("unsimulated");
    tracker.on_item();
    if (progress) progress(i + 1, options.samples);
  });
  const std::size_t threads =
      options.threads == 0 ? par::default_threads() : options.threads;
  const std::size_t lanes =
      esim::resolve_batch_lanes(options.batch, esim::kDefaultBatchLanes);
  mc_span.arg("threads", static_cast<double>(threads))
      .arg("batch_lanes", static_cast<double>(lanes));
  if (lanes <= 1) {
    // Scalar golden path: one Simulator per sample.
    auto run_one = [&](std::size_t i) {
      results[i] = measure_one(tech, base, options, i);
      sink.complete(i);
    };
    if (threads <= 1 || options.samples <= 1) {
      for (std::size_t i = 0; i < options.samples; ++i) run_one(i);
    } else {
      par::ThreadPool pool(std::min(threads, options.samples));
      par::parallel_for(pool, 0, options.samples, run_one);
    }
  } else {
    // Batched fast path: consecutive index blocks share one BatchSimulator.
    // Draws are still per-index, and the sink still commits per sample, so
    // the population and every aggregate are lane-width-invariant.
    const std::size_t blocks = (options.samples + lanes - 1) / lanes;
    auto run_block = [&](std::size_t b) {
      const std::size_t lo = b * lanes;
      const std::size_t hi = std::min(lo + lanes, options.samples);
      measure_block(tech, base, options, lo, hi, results);
      for (std::size_t i = lo; i < hi; ++i) sink.complete(i);
    };
    if (threads <= 1 || blocks <= 1) {
      for (std::size_t b = 0; b < blocks; ++b) run_block(b);
    } else {
      par::ThreadPool pool(std::min(threads, blocks));
      par::parallel_for(pool, 0, blocks, run_block);
    }
  }

  std::vector<McSample> samples;
  samples.reserve(options.samples);
  for (const SampleResult& r : results) samples.push_back(r.sample);
  if (stats != nullptr) stats->wall_seconds = wall.seconds();
  return samples;
}

ProbabilityEstimates estimate_probabilities(const std::vector<McSample>& mc,
                                            double tau_min_nominal,
                                            double vth) {
  ProbabilityEstimates est;
  est.tau_min_nominal = tau_min_nominal;
  for (const McSample& s : mc) {
    if (!s.simulated) continue;  // no measurement to classify
    ++est.loose_joint.trials;
    ++est.false_alarm_joint.trials;
    if (s.tau > tau_min_nominal) {
      ++est.loose.trials;
      if (s.vmin_late < vth) {
        ++est.loose.successes;
        ++est.loose_joint.successes;
      }
    } else {
      ++est.false_alarm.trials;
      if (s.vmin_late > vth) {
        ++est.false_alarm.successes;
        ++est.false_alarm_joint.successes;
      }
    }
  }
  return est;
}

}  // namespace sks::scheme
