#include "scheme/montecarlo.hpp"

#include "esim/engine.hpp"
#include "esim/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/prng.hpp"

namespace sks::scheme {

namespace {

// The electrical measurement happens inside cell::measure_bench, which
// discards the TransientResult (and its SolveStats).  The engine mirrors
// every run into the global `esim.*` counters, so per-sample deltas of
// those counters recover the aggregate convergence stats without widening
// the cell-layer API.
struct EsimCounters {
  obs::Counter& iterations = obs::registry().counter("esim.newton_iterations");
  obs::Counter& failures = obs::registry().counter("esim.newton_failures");
  obs::Counter& lu = obs::registry().counter("esim.lu_factorizations");
  obs::Counter& halvings = obs::registry().counter("esim.dt_halvings");
  obs::Counter& be = obs::registry().counter("esim.be_fallbacks");
  obs::Counter& gmin = obs::registry().counter("esim.dc_gmin_ladders");
  obs::Counter& source = obs::registry().counter("esim.dc_source_ladders");
  obs::Counter& accepted = obs::registry().counter("esim.steps_accepted");
};

struct CounterMark {
  std::uint64_t iterations, failures, lu, halvings, be, gmin, source, accepted;

  explicit CounterMark(const EsimCounters& c)
      : iterations(c.iterations.value()),
        failures(c.failures.value()),
        lu(c.lu.value()),
        halvings(c.halvings.value()),
        be(c.be.value()),
        gmin(c.gmin.value()),
        source(c.source.value()),
        accepted(c.accepted.value()) {}

  void accumulate_delta(const EsimCounters& c, esim::SolveStats& out) const {
    out.newton_iterations += c.iterations.value() - iterations;
    out.newton_failures += c.failures.value() - failures;
    out.lu_factorizations += c.lu.value() - lu;
    out.dt_halvings += c.halvings.value() - halvings;
    out.be_fallbacks += c.be.value() - be;
    out.dc_gmin_ladders += c.gmin.value() - gmin;
    out.dc_source_ladders += c.source.value() - source;
    out.steps_accepted += c.accepted.value() - accepted;
  }
};

}  // namespace

obs::Report McRunStats::run_report(const std::string& name) const {
  obs::Report report(name);
  report.set_value("samples", static_cast<double>(sample_seconds.count()));
  report.set_value("detected", static_cast<double>(detected));
  report.set_value("wall_seconds", wall_seconds);
  if (sample_seconds.count() > 0) {
    report.set_value("sample_seconds.mean", sample_seconds.mean());
    report.set_value("sample_seconds.max", sample_seconds.max());
  }
  report.set_value("solve.newton_iterations",
                   static_cast<double>(solve.newton_iterations));
  report.set_value("solve.newton_failures",
                   static_cast<double>(solve.newton_failures));
  report.set_value("solve.lu_factorizations",
                   static_cast<double>(solve.lu_factorizations));
  report.set_value("solve.steps_accepted",
                   static_cast<double>(solve.steps_accepted));
  report.set_value("solve.dt_halvings",
                   static_cast<double>(solve.dt_halvings));
  report.set_value("solve.be_fallbacks",
                   static_cast<double>(solve.be_fallbacks));
  report.set_value("solve.dc_gmin_ladders",
                   static_cast<double>(solve.dc_gmin_ladders));
  report.set_value("solve.dc_source_ladders",
                   static_cast<double>(solve.dc_source_ladders));
  return report;
}

std::vector<McSample> run_vmin_montecarlo(const cell::Technology& tech,
                                          const cell::SensorOptions& base,
                                          const McOptions& options,
                                          McRunStats* stats,
                                          const McProgress& progress) {
  const obs::Stopwatch wall;
  obs::ScopedTimer timer("scheme.vmin_montecarlo");
  EsimCounters counters;
  util::Prng prng(options.seed);
  std::vector<McSample> samples;
  samples.reserve(options.samples);

  for (std::size_t i = 0; i < options.samples; ++i) {
    const obs::Stopwatch sample_wall;
    const CounterMark mark(counters);
    McSample s;
    s.tau = prng.uniform(options.tau_lo, options.tau_hi);
    s.slew1 = prng.uniform(options.slew_lo, options.slew_hi);
    s.slew2 = options.common_slew
                  ? s.slew1
                  : prng.uniform(options.slew_lo, options.slew_hi);

    cell::SensorOptions opt = base;
    opt.load_y1 = opt.load_y2 = options.load;
    cell::ClockPairStimulus stimulus;
    stimulus.vdd = tech.vdd;
    stimulus.skew = s.tau;
    stimulus.slew1 = s.slew1;
    stimulus.slew2 = s.slew2;

    cell::SensorBench bench = cell::make_sensor_bench(tech, opt, stimulus);
    cell::VariationSpec spec;
    spec.rel = options.rel;
    cell::apply_random_variation(bench.circuit, spec, prng);

    const cell::SensorMeasurement m = cell::measure_bench(
        bench, tech.interpretation_threshold(), options.dt);
    // Positive tau delays phi2, so the late output is y2.
    s.vmin_late = m.vmin_y2;
    s.indication = m.indication;
    s.detected = m.error();
    samples.push_back(s);

    if (stats != nullptr) {
      stats->sample_seconds.add(sample_wall.seconds());
      mark.accumulate_delta(counters, stats->solve);
      if (s.detected) ++stats->detected;
    }
    if (progress) progress(i + 1, options.samples);
  }
  if (stats != nullptr) stats->wall_seconds = wall.seconds();
  return samples;
}

ProbabilityEstimates estimate_probabilities(const std::vector<McSample>& mc,
                                            double tau_min_nominal,
                                            double vth) {
  ProbabilityEstimates est;
  est.tau_min_nominal = tau_min_nominal;
  for (const McSample& s : mc) {
    ++est.loose_joint.trials;
    ++est.false_alarm_joint.trials;
    if (s.tau > tau_min_nominal) {
      ++est.loose.trials;
      if (s.vmin_late < vth) {
        ++est.loose.successes;
        ++est.loose_joint.successes;
      }
    } else {
      ++est.false_alarm.trials;
      if (s.vmin_late > vth) {
        ++est.false_alarm.successes;
        ++est.false_alarm_joint.successes;
      }
    }
  }
  return est;
}

}  // namespace sks::scheme
