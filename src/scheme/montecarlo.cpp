#include "scheme/montecarlo.hpp"

#include <algorithm>

#include "esim/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "par/pool.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace sks::scheme {

namespace {

// One measured sample plus its telemetry, produced entirely on one worker.
// Per-sample solver stats come straight from the transient result (via the
// measure_bench out-param), never from global counter deltas — those
// interleave across threads.
struct SampleResult {
  McSample sample;
  double seconds = 0.0;
  esim::SolveStats solve;
};

SampleResult measure_one(const cell::Technology& tech,
                         const cell::SensorOptions& base,
                         const McOptions& options, std::size_t index) {
  const obs::Stopwatch sample_wall;
  obs::Span span("scheme.mc_sample");
  span.arg("index", static_cast<double>(index));
  // Index-addressed stream: sample i's randomness depends only on
  // (options.seed, i), so any schedule across any thread count draws the
  // exact same circuits and stimuli.
  util::Prng prng(util::derive_seed(options.seed, index));

  SampleResult out;
  McSample& s = out.sample;
  s.tau = prng.uniform(options.tau_lo, options.tau_hi);
  s.slew1 = prng.uniform(options.slew_lo, options.slew_hi);
  s.slew2 = options.common_slew
                ? s.slew1
                : prng.uniform(options.slew_lo, options.slew_hi);

  cell::SensorOptions opt = base;
  opt.load_y1 = opt.load_y2 = options.load;
  cell::ClockPairStimulus stimulus;
  stimulus.vdd = tech.vdd;
  stimulus.skew = s.tau;
  stimulus.slew1 = s.slew1;
  stimulus.slew2 = s.slew2;

  cell::SensorBench bench = cell::make_sensor_bench(tech, opt, stimulus);
  cell::VariationSpec spec;
  spec.rel = options.rel;
  cell::apply_random_variation(bench.circuit, spec, prng);

  try {
    const cell::SensorMeasurement m = cell::measure_bench(
        bench, tech.interpretation_threshold(), options.dt, &out.solve);
    // Positive tau delays phi2, so the late output is y2.
    s.vmin_late = m.vmin_y2;
    s.indication = m.indication;
    s.detected = m.error();
  } catch (const ConvergenceError& e) {
    // A pathological random draw must not abort the whole population: mark
    // the sample unsimulated and keep the failure context (plus the
    // postmortem bundle path when bundles are enabled) for the report.
    s.simulated = false;
    s.failure = e.what();
    s.bundle = e.bundle_path();
  }
  out.seconds = sample_wall.seconds();
  span.arg("tau", s.tau)
      .arg("vmin_late", s.vmin_late)
      .arg("detected", static_cast<double>(s.detected))
      .arg("nr_iters", static_cast<double>(out.solve.newton_iterations));
  return out;
}

}  // namespace

obs::Report McRunStats::run_report(const std::string& name) const {
  obs::Report report(name);
  report.set_value("samples", static_cast<double>(sample_seconds.count()));
  report.set_value("detected", static_cast<double>(detected));
  report.set_value("unsimulated", static_cast<double>(unsimulated));
  report.set_value("wall_seconds", wall_seconds);
  if (sample_seconds.count() > 0) {
    report.set_value("sample_seconds.mean", sample_seconds.mean());
    report.set_value("sample_seconds.max", sample_seconds.max());
  }
  report.set_value("solve.newton_iterations",
                   static_cast<double>(solve.newton_iterations));
  report.set_value("solve.newton_failures",
                   static_cast<double>(solve.newton_failures));
  report.set_value("solve.lu_factorizations",
                   static_cast<double>(solve.lu_factorizations));
  report.set_value("solve.steps_accepted",
                   static_cast<double>(solve.steps_accepted));
  report.set_value("solve.dt_halvings",
                   static_cast<double>(solve.dt_halvings));
  report.set_value("solve.be_fallbacks",
                   static_cast<double>(solve.be_fallbacks));
  report.set_value("solve.dc_gmin_ladders",
                   static_cast<double>(solve.dc_gmin_ladders));
  report.set_value("solve.dc_source_ladders",
                   static_cast<double>(solve.dc_source_ladders));
  return report;
}

std::vector<McSample> run_vmin_montecarlo(const cell::Technology& tech,
                                          const cell::SensorOptions& base,
                                          const McOptions& options,
                                          McRunStats* stats,
                                          const McProgress& progress) {
  const obs::Stopwatch wall;
  static obs::TimerStat& mc_timer =
      obs::registry().timer("scheme.vmin_montecarlo");
  obs::ScopedTimer timer(mc_timer);
  obs::Span mc_span("scheme.run_vmin_montecarlo");
  mc_span.arg("samples", static_cast<double>(options.samples));

  std::vector<SampleResult> results(options.samples);
  // Telemetry aggregation and progress fire strictly in sample order so the
  // RunningStats sums (and the callback sequence) match the serial run
  // bit-for-bit.  Registry streams and the live progress tracker ride the
  // same commit order, so their content is thread-count-invariant too.
  static obs::StreamStat& seconds_stream =
      obs::registry().stream("mc.sample_seconds");
  static obs::StreamStat& vmin_stream = obs::registry().stream("mc.vmin");
  static obs::StreamStat& tau_stream = obs::registry().stream("mc.tau");
  obs::ProgressTracker tracker("vmin_montecarlo", options.samples);
  par::OrderedSink sink(options.samples, [&](std::size_t i) {
    if (stats != nullptr) {
      stats->sample_seconds.add(results[i].seconds);
      stats->solve.merge(results[i].solve);
      if (results[i].sample.detected) ++stats->detected;
      if (!results[i].sample.simulated) ++stats->unsimulated;
    }
    const McSample& s = results[i].sample;
    seconds_stream.record(results[i].seconds);
    if (s.simulated) {
      vmin_stream.record(s.vmin_late);
      tau_stream.record(s.tau);
    }
    if (s.detected) tracker.add_partial("detected");
    if (!s.simulated) tracker.add_partial("unsimulated");
    tracker.on_item();
    if (progress) progress(i + 1, options.samples);
  });
  auto run_one = [&](std::size_t i) {
    results[i] = measure_one(tech, base, options, i);
    sink.complete(i);
  };

  const std::size_t threads =
      options.threads == 0 ? par::default_threads() : options.threads;
  mc_span.arg("threads", static_cast<double>(threads));
  if (threads <= 1 || options.samples <= 1) {
    for (std::size_t i = 0; i < options.samples; ++i) run_one(i);
  } else {
    par::ThreadPool pool(std::min(threads, options.samples));
    par::parallel_for(pool, 0, options.samples, run_one);
  }

  std::vector<McSample> samples;
  samples.reserve(options.samples);
  for (const SampleResult& r : results) samples.push_back(r.sample);
  if (stats != nullptr) stats->wall_seconds = wall.seconds();
  return samples;
}

ProbabilityEstimates estimate_probabilities(const std::vector<McSample>& mc,
                                            double tau_min_nominal,
                                            double vth) {
  ProbabilityEstimates est;
  est.tau_min_nominal = tau_min_nominal;
  for (const McSample& s : mc) {
    if (!s.simulated) continue;  // no measurement to classify
    ++est.loose_joint.trials;
    ++est.false_alarm_joint.trials;
    if (s.tau > tau_min_nominal) {
      ++est.loose.trials;
      if (s.vmin_late < vth) {
        ++est.loose.successes;
        ++est.loose_joint.successes;
      }
    } else {
      ++est.false_alarm.trials;
      if (s.vmin_late > vth) {
        ++est.false_alarm.successes;
        ++est.false_alarm_joint.successes;
      }
    }
  }
  return est;
}

}  // namespace sks::scheme
