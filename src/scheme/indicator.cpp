#include "scheme/indicator.hpp"

#include "util/error.hpp"

namespace sks::scheme {

void ErrorIndicatorLatch::observe(cell::Indication indication) {
  if (indication == cell::Indication::kNone) return;
  ++error_count_;
  if (!latched_) {
    latched_ = true;
    first_ = indication;
  }
}

void ErrorIndicatorLatch::reset() {
  latched_ = false;
  error_count_ = 0;
  first_ = cell::Indication::kNone;
}

std::vector<bool> ScanChain::scan_out() const {
  std::vector<bool> bits;
  bits.reserve(latches_.size());
  for (const auto& l : latches_) bits.push_back(l.latched());
  return bits;
}

void ScanChain::reset_all() {
  for (auto& l : latches_) l.reset();
}

bool ScanChain::any_latched() const {
  for (const auto& l : latches_) {
    if (l.latched()) return true;
  }
  return false;
}

TwoRail two_rail_merge(const TwoRail& a, const TwoRail& b) {
  // The classical 4-gate two-rail checker module:
  //   out0 = (a0 & b0) | (a1 & b1)
  //   out1 = (a0 & b1) | (a1 & b0)
  // Valid inputs yield a valid output; any invalid input (or an internal
  // single fault, in the gate-level realization) yields an invalid output.
  TwoRail out;
  out.rail0 = (a.rail0 && b.rail0) || (a.rail1 && b.rail1);
  out.rail1 = (a.rail0 && b.rail1) || (a.rail1 && b.rail0);
  return out;
}

TwoRail two_rail_reduce(const std::vector<TwoRail>& inputs) {
  sks::check(!inputs.empty(), "two_rail_reduce: no inputs");
  TwoRail acc = inputs.front();
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    acc = two_rail_merge(acc, inputs[i]);
  }
  return acc;
}

void OnlineChecker::observe_cycle(
    const std::vector<cell::Indication>& indications) {
  sks::check(indications.size() == sensor_count_,
             "OnlineChecker: indication count mismatch");
  for (std::size_t s = 0; s < indications.size(); ++s) {
    if (indications[s] != cell::Indication::kNone && !alarm_cycle_) {
      alarm_cycle_ = cycle_;
      alarm_sensor_ = s;
    }
  }
  ++cycle_;
}

}  // namespace sks::scheme
