#include "scheme/behavioral_sensor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sks::scheme {

cell::Indication BehavioralSensorModel::classify(double skew,
                                                 util::Prng* prng) const {
  const double magnitude = std::fabs(skew);
  bool detected = false;
  if (prng != nullptr && metastable_band > 0.0 &&
      std::fabs(magnitude - tau_min) <= metastable_band / 2.0) {
    // Inside the metastable band: detection probability ramps linearly
    // across the band (matches the electrical V_min crossing Vth).
    const double p =
        (magnitude - (tau_min - metastable_band / 2.0)) / metastable_band;
    detected = prng->uniform01() < p;
  } else {
    detected = magnitude >= tau_min;
  }
  if (!detected) return cell::Indication::kNone;
  // Positive skew = phi2 late -> y2 stays high -> (y1,y2) = 01.
  return skew > 0.0 ? cell::Indication::k01 : cell::Indication::k10;
}

SensorCalibration::SensorCalibration(std::vector<double> loads,
                                     std::vector<double> tau_mins)
    : table_(std::move(loads), std::move(tau_mins)) {}

SensorCalibration SensorCalibration::default_table() {
  // Measured with find_tau_min() on the shipped Technology defaults
  // (wn = 1.2 um, wp = 2.4 um, VDD = 5 V, V_th = 2.75 V; slew 0.2 ns;
  // half-period observation window).  Matches the paper's 0.09-0.16 ns
  // span over the 80-240 fF load sweep.
  return SensorCalibration(
      {40e-15, 80e-15, 120e-15, 160e-15, 200e-15, 240e-15, 320e-15},
      {0.0404e-9, 0.0618e-9, 0.0854e-9, 0.1105e-9, 0.1365e-9, 0.1630e-9,
       0.2164e-9});
}

SensorCalibration SensorCalibration::from_simulation(
    const cell::Technology& tech, const cell::SensorOptions& options,
    const std::vector<double>& loads, double dt) {
  std::vector<double> tau_mins;
  tau_mins.reserve(loads.size());
  for (const double load : loads) {
    cell::SensorOptions opt = options;
    opt.load_y1 = opt.load_y2 = load;
    cell::ClockPairStimulus stimulus;
    stimulus.vdd = tech.vdd;
    tau_mins.push_back(
        cell::find_tau_min(tech, opt, stimulus, 0.0, 1e-9, 2e-13, dt));
  }
  return SensorCalibration(loads, std::move(tau_mins));
}

double SensorCalibration::tau_min(double load) const {
  sks::check(!table_.empty(), "SensorCalibration: empty table");
  return table_(load);
}

BehavioralSensorModel SensorCalibration::model_for_load(double load) const {
  BehavioralSensorModel model;
  model.tau_min = tau_min(load);
  model.metastable_band = 0.05 * model.tau_min;
  return model;
}

}  // namespace sks::scheme
