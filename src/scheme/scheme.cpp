#include "scheme/scheme.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace sks::scheme {

TestingScheme::TestingScheme(clocktree::ClockTree tree,
                             clocktree::AnalysisOptions analysis_options,
                             SensorCalibration calibration,
                             SchemeOptions options)
    : tree_(std::move(tree)),
      analysis_options_(std::move(analysis_options)),
      calibration_(std::move(calibration)),
      options_(std::move(options)),
      placement_(place_sensors(tree_, analysis_options_, options_.placement,
                               calibration_)),
      prng_(options_.seed) {}

TestingScheme::TestingScheme(clocktree::ClockTree tree,
                             clocktree::AnalysisOptions analysis_options,
                             SensorCalibration calibration,
                             SchemeOptions options, Placement placement)
    : tree_(std::move(tree)),
      analysis_options_(std::move(analysis_options)),
      calibration_(std::move(calibration)),
      options_(std::move(options)),
      placement_(std::move(placement)),
      prng_(options_.seed) {}

CampaignResult TestingScheme::run(
    const std::vector<clocktree::TreeDefect>& defects, std::size_t cycles) {
  obs::ScopedTimer timer("scheme.run");
  static obs::Counter& cycle_counter = obs::registry().counter("scheme.cycles");
  static obs::Counter& indication_counter =
      obs::registry().counter("scheme.indication_cycles");
  cycle_counter.inc(cycles);
  CampaignResult result;
  result.cycles = cycles;
  const std::size_t n_sensors = placement_.sensors.size();
  ScanChain scan(n_sensors);
  OnlineChecker checker(n_sensors);

  // Split defects into permanent and transient.
  clocktree::AnalysisOptions permanent = analysis_options_;
  std::vector<const clocktree::TreeDefect*> transient;
  for (const auto& d : defects) {
    if (d.transient) {
      transient.push_back(&d);
    } else {
      permanent = clocktree::apply_defect(tree_, permanent, d);
    }
  }
  const clocktree::ArrivalAnalysis base_analysis =
      clocktree::analyze(tree_, permanent);

  std::vector<cell::Indication> indications(n_sensors);
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    // Activate transient defects for this cycle.
    const clocktree::ArrivalAnalysis* analysis = &base_analysis;
    clocktree::ArrivalAnalysis cycle_analysis;
    bool any_transient = false;
    clocktree::AnalysisOptions cycle_options = permanent;
    for (const auto* d : transient) {
      if (prng_.uniform01() < d->activation_probability) {
        cycle_options = clocktree::apply_defect(tree_, cycle_options, *d);
        any_transient = true;
      }
    }
    if (any_transient) {
      cycle_analysis = clocktree::analyze(tree_, cycle_options);
      analysis = &cycle_analysis;
    }

    bool any_indication = false;
    for (std::size_t s = 0; s < n_sensors; ++s) {
      const PlacedSensor& sensor = placement_.sensors[s];
      const double jitter =
          options_.cycle_jitter_sigma > 0.0
              ? prng_.normal(0.0, options_.cycle_jitter_sigma) -
                    prng_.normal(0.0, options_.cycle_jitter_sigma)
              : 0.0;
      // Sensor convention: positive = phi2 (wire b) late.
      const double skew =
          analysis->arrival[sensor.sink_b] - analysis->arrival[sensor.sink_a] +
          jitter;
      result.max_true_skew = std::max(result.max_true_skew, std::fabs(skew));
      indications[s] = sensor.model.classify(skew, &prng_);
      scan.latch(s).observe(indications[s]);
      if (indications[s] != cell::Indication::kNone) any_indication = true;
    }
    checker.observe_cycle(indications);
    if (any_indication) ++result.indication_cycles;
  }

  indication_counter.inc(result.indication_cycles);
  result.detected = scan.any_latched();
  result.first_detection_cycle = checker.alarm_cycle();
  result.detecting_sensor = checker.alarm_sensor();
  result.scan_out = scan.scan_out();
  return result;
}

double TestingScheme::false_alarm_rate(std::size_t cycles) {
  const CampaignResult r = run({}, cycles);
  return cycles == 0 ? 0.0
                     : static_cast<double>(r.indication_cycles) /
                           static_cast<double>(cycles);
}

}  // namespace sks::scheme
