// Error-indication collection: latching indicators, the off-line scan path
// and the on-line checker (paper Sec. 2, last paragraph: "simple error
// indicators capable of latching on error indications can be used, and
// their response could be driven through a scan path (in the case of
// off-line testing) or could feed a checker (in the case of on-line
// applications)").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cell/measure.hpp"

namespace sks::scheme {

// Behavioural counterpart of cell::build_error_indicator: latches the first
// error indication and holds it until reset.
class ErrorIndicatorLatch {
 public:
  void observe(cell::Indication indication);
  void reset();

  bool latched() const { return latched_; }
  std::size_t error_count() const { return error_count_; }
  cell::Indication first_indication() const { return first_; }

 private:
  bool latched_ = false;
  std::size_t error_count_ = 0;
  cell::Indication first_ = cell::Indication::kNone;
};

// Off-line readout: the indicators' states shifted out as a bit vector.
class ScanChain {
 public:
  explicit ScanChain(std::size_t length) : latches_(length) {}

  ErrorIndicatorLatch& latch(std::size_t i) { return latches_.at(i); }
  const ErrorIndicatorLatch& latch(std::size_t i) const {
    return latches_.at(i);
  }
  std::size_t size() const { return latches_.size(); }

  // Serial shift-out, bit 0 = latch 0.
  std::vector<bool> scan_out() const;
  void reset_all();
  bool any_latched() const;

 private:
  std::vector<ErrorIndicatorLatch> latches_;
};

// Standard self-checking two-rail checker (Carter & Schneider [6]):
// combines dual-rail pairs (a, b) that encode valid data as complementary
// values.  The output pair is itself dual-rail; (0,0)/(1,1) at the output
// signals an error in any input pair or in the checker itself.
//
// In the testing scheme the full-swing sensor's outputs are turned into a
// dual-rail pair per sensor (y_high = y1 OR y2, together with its
// complement rail) and reduced by a checker tree.
struct TwoRail {
  bool rail0 = false;
  bool rail1 = true;

  bool valid() const { return rail0 != rail1; }
};

TwoRail two_rail_merge(const TwoRail& a, const TwoRail& b);
TwoRail two_rail_reduce(const std::vector<TwoRail>& inputs);

// On-line alarm: feeds per-cycle indications, reports first-alarm latency.
class OnlineChecker {
 public:
  explicit OnlineChecker(std::size_t sensors) : sensor_count_(sensors) {}

  // Called once per cycle with all sensors' indications for that cycle.
  void observe_cycle(const std::vector<cell::Indication>& indications);

  bool alarmed() const { return alarm_cycle_.has_value(); }
  std::optional<std::size_t> alarm_cycle() const { return alarm_cycle_; }
  std::optional<std::size_t> alarm_sensor() const { return alarm_sensor_; }
  std::size_t cycles_observed() const { return cycle_; }

 private:
  std::size_t sensor_count_ = 0;
  std::size_t cycle_ = 0;
  std::optional<std::size_t> alarm_cycle_;
  std::optional<std::size_t> alarm_sensor_;
};

}  // namespace sks::scheme
