// Coverage-driven sensor placement — an alternative to the paper's
// criticality ranking (scheme/placement.hpp).
//
// A sensor on the couple (a, b) observes a defect only if the defect
// shifts a's and b's arrivals *differently*: the observable region of a
// couple is the symmetric difference of the two sinks' root paths (the
// common prefix is common-mode and cancels).  Placement then becomes a
// weighted maximum-coverage problem over tree edges, solved greedily:
// each added sensor is the admissible pair that observes the most
// not-yet-covered wire length.
//
// This formalizes the trade-off buried in the paper's two criteria: nearby
// pairs (criterion 2) share most of their path, so each sensor observes
// little; distant pairs observe a lot but cannot be connected in a
// balanced way.  bench/ablation_placement quantifies the difference.
#pragma once

#include <cstddef>
#include <vector>

#include "scheme/placement.hpp"

namespace sks::scheme {

// Tree edges (identified by their lower node) observable by a sensor on
// (a, b): the symmetric difference of the root paths.
std::vector<std::size_t> observable_edges(const clocktree::ClockTree& tree,
                                          std::size_t sink_a,
                                          std::size_t sink_b);

// Fraction of the tree's total wire length lying on edges observable by at
// least one placed sensor.
double placement_edge_coverage(const clocktree::ClockTree& tree,
                               const Placement& placement);

// Greedy maximum-coverage placement under the same admissibility rules as
// place_sensors (distance cut, nominal-skew cut, one sensor per sink).
Placement place_sensors_by_coverage(
    const clocktree::ClockTree& tree,
    const clocktree::AnalysisOptions& analysis_options,
    const PlacementOptions& options, const SensorCalibration& calibration);

}  // namespace sks::scheme
