// Electrical-level Monte-Carlo characterization of the sensing circuit —
// the machinery behind the paper's Fig. 5 (V_min vs tau scatterplot under
// random parameter variation) and Table 1 (p_loose / p_false).
//
// The paper's recipe, followed exactly: every circuit parameter and the
// load capacitance vary uniformly within +/-15% of nominal, independently;
// the two input slews are independent and uniform in [0.1, 0.4] ns
// ("in order to account for asymmetric conditions").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cell/measure.hpp"
#include "cell/technology.hpp"
#include "esim/engine.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"

namespace sks::scheme {

struct McOptions {
  double load = 80e-15;        // nominal C_L [F]
  std::size_t samples = 400;
  double rel = 0.15;           // uniform relative parameter variation
  double slew_lo = 0.1e-9;     // [s]
  double slew_hi = 0.4e-9;     // [s]
  // The paper samples the two input slews independently "to account for
  // asymmetric conditions".  A slew mismatch of 0.3 ns acts on the sensor
  // like an extra ~0.1-0.25 ns skew (the slow input keeps its block's
  // pull-up conducting longer), so the independent-slew population is a
  // *stress* recipe that mixes slew faults into the statistics.  Set
  // common_slew to sample one slew per trial (process-only population).
  bool common_slew = false;
  double tau_lo = 0.0;         // skew sampling range [s]
  double tau_hi = 0.3e-9;
  double dt = 5e-12;           // transient base step [s]
  std::uint64_t seed = 7;
  // Worker threads measuring samples concurrently.  0 = use
  // par::default_threads() (bench --threads flag, then SKS_THREADS, then
  // hardware_concurrency); 1 = serial.  Sample i draws from its own
  // Prng(util::derive_seed(seed, i)) stream, so the McSample vector and
  // every aggregate are bit-identical for any thread count.
  std::size_t threads = 0;
  // Batched-solver lane width: consecutive samples are evaluated together
  // by esim::BatchSimulator (SoA Monte-Carlo fast path).  0 = resolve from
  // the SKS_BATCH environment variable, defaulting to
  // esim::kDefaultBatchLanes; 1 disables batching (scalar golden path).
  // Sample draws, verdicts and aggregation order are identical either way
  // (a lane the batch cannot hold falls back to the scalar solver).
  std::size_t batch = 0;
};

struct McSample {
  double tau = 0.0;        // applied skew [s]
  double slew1 = 0.0, slew2 = 0.0;
  double vmin_late = 0.0;  // V_min of the LATE phase's output (y2) [V]
  cell::Indication indication = cell::Indication::kNone;
  bool detected = false;   // any error indication produced
  // Electrical simulation converged.  An unsimulated sample carries the
  // solver's failure message (and, when postmortems are enabled via
  // SKS_POSTMORTEM, the bundle directory) and is excluded from the
  // probability estimates instead of aborting the whole population.
  bool simulated = true;
  std::string failure;
  std::string bundle;
};

// Aggregated telemetry of one Monte-Carlo population run.
struct McRunStats {
  double wall_seconds = 0.0;
  util::RunningStats sample_seconds;  // per-sample wall time distribution
  esim::SolveStats solve;             // engine stats summed over all samples
  std::size_t detected = 0;           // samples with an error indication
  std::size_t unsimulated = 0;        // samples whose solve did not converge

  // Machine-readable run report (schema: obs/report.hpp, EXPERIMENTS.md).
  obs::Report run_report(const std::string& name = "vmin_montecarlo") const;
};

// Called after every measured sample.  Parallel runs fire it in sample
// order (done = 1, 2, ..., total) under an internal lock.
using McProgress = std::function<void(std::size_t done, std::size_t total)>;

// Draw `samples` random circuits/stimuli and measure each electrically.
// `stats` (optional) receives per-run telemetry; `progress` (optional) is
// invoked after each sample.
std::vector<McSample> run_vmin_montecarlo(const cell::Technology& tech,
                                          const cell::SensorOptions& base,
                                          const McOptions& options,
                                          McRunStats* stats = nullptr,
                                          const McProgress& progress = nullptr);

struct ProbabilityEstimates {
  double tau_min_nominal = 0.0;  // sensitivity of the nominal circuit [s]
  // Conditional rates: among samples with tau > tau_min, the fraction with
  // V_min < V_th (an abnormal skew whose indication is lost), and among
  // samples with tau < tau_min, the fraction with V_min > V_th (a
  // tolerable skew flagged).
  util::Proportion loose;
  util::Proportion false_alarm;
  // Joint (unconditional) rates over the full population — the Table-1
  // convention most consistent with the paper's "small" qualifier.
  util::Proportion loose_joint;
  util::Proportion false_alarm_joint;
};

// Table 1: classify an MC population against the nominal sensitivity.
ProbabilityEstimates estimate_probabilities(const std::vector<McSample>& mc,
                                            double tau_min_nominal,
                                            double vth);

}  // namespace sks::scheme
