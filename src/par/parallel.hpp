// Structured parallel loops on top of par::ThreadPool: chunked
// parallel_for, index-ordered parallel_map, cooperative cancellation, and
// the OrderedSink used by campaign drivers to keep progress callbacks and
// statistics aggregation in deterministic index order.
//
// Exception contract: the first failing item cancels the remaining work,
// every in-flight item finishes, and the exception with the LOWEST item
// index among those actually thrown is rethrown on the calling thread.
// The pool stays healthy afterwards — a campaign whose one fault blows up
// with ConvergenceError neither deadlocks nor leaks worker threads.
//
// Nesting: the calling thread blocks until the loop finishes, so a
// parallel_for body must not start another loop on the SAME pool (the
// worker it would block on may be the one expected to run the inner loop).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "par/pool.hpp"

namespace sks::par {

// Cooperative cancellation flag, shared between a loop and its caller.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

struct ForOptions {
  // Items handed to a worker per grab.  0 = auto: one item per grab, the
  // right choice when each item is an electrical simulation (milliseconds)
  // and scheduling costs microseconds; set larger chunks for cheap items.
  std::size_t chunk = 0;
  // Optional external cancellation: checked between items, the loop stops
  // issuing new work once cancelled.
  CancelToken* cancel = nullptr;
};

// Run body(i) for every i in [begin, end) across the pool; the calling
// thread blocks until every issued item has finished.  Returns false when
// an external CancelToken stopped the loop early, true otherwise.  Throws
// the lowest-index exception if any body threw (see header comment).
bool parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ForOptions& options = {});

// Map [0, n) through fn into an index-ordered vector.  T must be default-
// constructible (results are written into a pre-sized vector, so no
// synchronization beyond the loop itself is needed).
template <typename T>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n,
                            const std::function<T(std::size_t)>& fn,
                            const ForOptions& options = {}) {
  std::vector<T> out(n);
  parallel_for(
      pool, 0, n, [&](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

// Deterministic in-order completion drain: workers call complete(i) in any
// order; `fn(i)` fires for i = 0, 1, 2, ... exactly once, under an internal
// mutex, as soon as every item <= i has completed.  This is how the
// campaign drivers keep progress callbacks and RunningStats aggregation
// bit-identical across thread counts.
class OrderedSink {
 public:
  OrderedSink(std::size_t n, std::function<void(std::size_t)> fn);

  void complete(std::size_t index);

 private:
  std::mutex mutex_;
  std::vector<char> ready_;
  std::size_t next_ = 0;
  std::function<void(std::size_t)> fn_;
};

}  // namespace sks::par
