#include "par/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>

namespace sks::par {

namespace {

// Shared state of one parallel_for invocation.  Runner tasks pull chunk
// start indices from `next` until the range is exhausted, an item throws,
// or the external token cancels.
struct LoopState {
  std::atomic<std::size_t> next;
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  CancelToken* external_cancel = nullptr;
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t active_runners = 0;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  bool cancelled() const {
    return failed.load(std::memory_order_relaxed) ||
           (external_cancel != nullptr && external_cancel->cancelled());
  }

  void run_chunks() {
    while (!cancelled()) {
      const std::size_t start =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) break;
      const std::size_t stop = std::min(end, start + chunk);
      for (std::size_t i = start; i < stop; ++i) {
        if (cancelled()) break;
        try {
          (*body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
  }

  void runner_done() {
    std::lock_guard<std::mutex> lock(mutex);
    --active_runners;
    if (active_runners == 0) done.notify_all();
  }
};

}  // namespace

bool parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ForOptions& options) {
  if (begin >= end) return true;

  LoopState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.chunk = options.chunk == 0 ? 1 : options.chunk;
  state.body = &body;
  state.external_cancel = options.cancel;

  const std::size_t items = end - begin;
  const std::size_t chunks = (items + state.chunk - 1) / state.chunk;
  // One runner per worker is enough: runners self-balance by pulling
  // chunks; extra tasks would only queue behind each other.
  const std::size_t runners = std::min(pool.size(), chunks);
  state.active_runners = runners;
  for (std::size_t r = 0; r < runners; ++r) {
    pool.submit([&state] {
      state.run_chunks();
      state.runner_done();
    });
  }

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.active_runners == 0; });
  if (state.error) std::rethrow_exception(state.error);
  return !(options.cancel != nullptr && options.cancel->cancelled());
}

OrderedSink::OrderedSink(std::size_t n, std::function<void(std::size_t)> fn)
    : ready_(n, 0), fn_(std::move(fn)) {}

void OrderedSink::complete(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  ready_[index] = 1;
  while (next_ < ready_.size() && ready_[next_]) {
    // Advance before invoking: if fn throws, the index still counts as
    // drained, so no later complete() can fire it a second time.
    const std::size_t i = next_++;
    fn_(i);
  }
}

}  // namespace sks::par
