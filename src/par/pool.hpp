// Fixed-size work-stealing thread pool — the execution substrate of the
// parallel campaign drivers (fault::run_campaign, scheme::run_vmin_montecarlo).
//
// Design:
//
//  * one task deque per worker; `submit()` round-robins across deques, a
//    worker pops its own deque LIFO (cache-warm) and steals FIFO from the
//    others when its deque runs dry, so a burst of uneven tasks still keeps
//    every core busy;
//  * workers sleep on a condition variable when the whole pool is empty —
//    an idle pool costs nothing;
//  * the destructor drains every queued task, then joins.  Tasks must not
//    throw (the loop helpers in parallel.hpp catch and forward exceptions
//    before they reach the pool);
//  * pool threads are plain std::threads sharing the process-wide obs
//    registry/journal, which are concurrency-safe (see obs/metrics.hpp).
//
// Thread-count resolution (`default_threads()`), strongest first: an
// explicit `set_default_threads()` override (bench `--threads` flag), the
// SKS_THREADS environment variable, std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sks::par {

std::size_t default_threads();
// Process-wide override for `default_threads()`; 0 restores automatic
// resolution (SKS_THREADS, then hardware_concurrency).
void set_default_threads(std::size_t n);

class ThreadPool {
 public:
  // `threads == 0` resolves via default_threads().
  explicit ThreadPool(std::size_t threads = 0);

  // Drains every already-submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue one task.  Tasks must be noexcept in effect: an escaping
  // exception would terminate the process (std::thread semantics).
  void submit(std::function<void()> task);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace sks::par
