#include "par/pool.hpp"

#include <cstdlib>
#include <string>

#include "obs/trace.hpp"

namespace sks::par {

namespace {

std::atomic<std::size_t> g_default_override{0};

std::size_t env_threads() {
  const char* env = std::getenv("SKS_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  const long n = std::atol(env);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

}  // namespace

std::size_t default_threads() {
  if (const std::size_t n = g_default_override.load(std::memory_order_relaxed);
      n > 0) {
    return n;
  }
  if (const std::size_t n = env_threads(); n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void set_default_threads(std::size_t n) {
  g_default_override.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_threads() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  // The pending count is bumped under the sleep mutex so a worker checking
  // its wait predicate cannot miss the notification.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO keeps the working set warm) ...
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from a sibling (FIFO spreads the large,
  // long-queued chunks of an uneven burst).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  // Name this worker's trace track before any span records, so a traced
  // campaign shows one labelled timeline per worker in Perfetto.
  obs::set_trace_thread_name("par.worker-" + std::to_string(self));
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      {
        // Top-level span per executed task: obs::Profile derives each
        // worker's busy/idle utilization from the summed duration of its
        // top-level spans, so tasks without spans of their own still
        // account as busy time.  One relaxed load when tracing is off.
        SKS_TRACE_SPAN("par.task");
        task();
      }
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stopping_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      return;  // drained: no task can arrive after stopping_ is set
    }
  }
}

}  // namespace sks::par
