// Gate-level netlist with pin-to-pin delays and edge-triggered flip-flops.
//
// Clocks are deliberately NOT nets here: each flip-flop's sampling instants
// are scheduled externally from the clock-tree arrival analysis
// (clocktree::analyze).  That is the whole point of this module — it lets
// the experiments couple a *distribution-level* clock fault to its
// *logic-level* consequence (delayed sampling), which the paper's intro
// argues cannot be folded into ordinary combinational delay faults.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "logic/value.hpp"

namespace sks::logic {

struct NetId {
  std::size_t index = 0;
  friend bool operator==(NetId, NetId) = default;
};
struct GateId {
  std::size_t index = 0;
  friend bool operator==(GateId, GateId) = default;
};
struct DffId {
  std::size_t index = 0;
  friend bool operator==(DffId, DffId) = default;
};

enum class GateKind { kBuf, kInv, kAnd2, kNand2, kOr2, kNor2, kXor2 };

std::string to_string(GateKind kind);

Value evaluate_gate(GateKind kind, Value a, Value b);

struct Gate {
  std::string name;
  GateKind kind = GateKind::kBuf;
  NetId a, b;        // b ignored for single-input kinds
  NetId output;
  double delay = 100e-12;        // nominal propagation delay [s]
  double extra_delay = 0.0;      // delay-fault injection hook [s]

  bool single_input() const {
    return kind == GateKind::kBuf || kind == GateKind::kInv;
  }
  double total_delay() const { return delay + extra_delay; }
};

struct Dff {
  std::string name;
  NetId d, q;
  double clk_to_q = 150e-12;  // [s]
  double setup = 80e-12;      // [s]
  double hold = 40e-12;       // [s]
};

class GateNetlist {
 public:
  NetId add_net(const std::string& name);
  NetId net(const std::string& name);  // find-or-create
  GateId add_gate(const std::string& name, GateKind kind, NetId a, NetId b,
                  NetId output, double delay);
  GateId add_gate1(const std::string& name, GateKind kind, NetId a,
                   NetId output, double delay);
  DffId add_dff(const std::string& name, NetId d, NetId q);

  std::size_t net_count() const { return net_names_.size(); }
  const std::string& net_name(NetId n) const { return net_names_.at(n.index); }
  const std::vector<Gate>& gates() const { return gates_; }
  std::vector<Gate>& gates() { return gates_; }
  const std::vector<Dff>& dffs() const { return dffs_; }
  Gate& gate(GateId g) { return gates_.at(g.index); }
  const Dff& dff(DffId f) const { return dffs_.at(f.index); }

  // Gates whose input a/b is this net (fanout list), built lazily.
  const std::vector<std::size_t>& fanout(NetId n) const;

 private:
  std::vector<std::string> net_names_;
  std::vector<Gate> gates_;
  std::vector<Dff> dffs_;
  mutable std::vector<std::vector<std::size_t>> fanout_;
  mutable bool fanout_valid_ = false;
};

}  // namespace sks::logic
