// Gate-level scan chain (mux-D style) — the off-line readout path of the
// paper's scheme realized at the logic level.
//
// Each scan cell is a D flip-flop with a 2:1 input mux: in functional mode
// it captures its functional D (here: an error indicator's output); in scan
// mode the flops form a shift register clocked by the scan clock, and the
// captured bits are shifted out serially — "their response could be driven
// through a scan path (in the case of off-line testing)".
//
// Built on the event-driven simulator (logic/simulator.hpp); the behavioural
// twin is scheme::ScanChain, and the tests cross-validate them.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/netlist.hpp"
#include "logic/simulator.hpp"

namespace sks::logic {

struct ScanCell {
  NetId functional_d;  // captured in functional mode
  NetId scan_in;       // previous cell's output (or the chain input)
  NetId q;             // cell output / next cell's scan_in
  DffId dff;
  GateId mux_and_f, mux_and_s, mux_or;  // the 2:1 mux gates
};

struct ScanChainNetlist {
  std::vector<ScanCell> cells;
  NetId scan_enable;   // 1 = shift, 0 = capture
  NetId scan_in;       // serial input of the whole chain
  NetId scan_out;      // serial output (last cell's q)
};

// Build an n-bit scan chain into the netlist.  The functional D inputs are
// fresh nets named "<prefix>d<i>"; drive them before capturing.
ScanChainNetlist build_scan_chain(GateNetlist& netlist, std::size_t bits,
                                  const std::string& prefix = "scan/");

// Drive a full capture-then-shift sequence on the simulator:
//  1. apply `functional_values` to the functional D nets and let them settle;
//  2. one capture clock with scan_enable = 0;
//  3. `bits` shift clocks with scan_enable = 1, sampling scan_out after each.
// Returns the serial readout, last chain bit first (standard shift order).
std::vector<Value> capture_and_shift(EventSimulator& sim,
                                     const ScanChainNetlist& chain,
                                     const std::vector<Value>& functional_values,
                                     double t_start, double clock_period);

}  // namespace sks::logic
