// The masking experiment behind the paper's motivation (Sec. 1):
//
//   "a clock distribution fault resulting in one or more flip-flops'
//    delayed sampling cannot be immediately assimilated to delay faults
//    inside the combinational part of the circuit, because a delayed
//    flip-flop's response may be masked by its delayed sampling."
//
// Scenario: a two-flop ring, FF1 -> chain -> FF2 -> chain -> FF1.  An
// at-speed launch-capture test of the forward path is run (a) fault-free,
// (b) with a combinational delay fault, (c) with the same delay fault PLUS
// a clock-distribution fault delaying FF2's clock.  Case (c) shows the
// masking: the delayed capture hides the slow data, so the conventional
// delay test PASSES — while the reverse path silently loses exactly the
// slack the forward path gained, which no combinational test of the forward
// path will ever see.  The skew sensor watches the clock wires themselves
// and flags case (c) directly.
#pragma once

#include <cstddef>

#include "logic/netlist.hpp"
#include "logic/timing.hpp"

namespace sks::logic {

struct MaskingScenario {
  double period = 2e-9;          // at-speed test period [s]
  std::size_t chain_length = 8;  // inverters per direction
  double gate_delay = 150e-12;   // per inverter [s]
  double delay_fault = 0.0;      // extra delay injected in the forward chain
  double clock_delay_ff2 = 0.0;  // clock-distribution fault at FF2 [s]
};

struct MaskingResult {
  // Dynamic at-speed launch-capture test of the forward path (FF1 -> FF2):
  // true when FF2 captured the launched transition in time.
  bool forward_test_passes = false;
  // STA view with the (faulty) clock arrivals.
  double forward_setup_slack = 0.0;
  double reverse_setup_slack = 0.0;
  double worst_hold = 0.0;
  // The skew between the two flops' clocks — what the sensing circuit sees.
  double clock_skew = 0.0;
};

// Build the two-flop ring and run both the event-driven at-speed test and
// the STA.
MaskingResult run_masking_experiment(const MaskingScenario& scenario);

}  // namespace sks::logic
