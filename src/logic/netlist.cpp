#include "logic/netlist.hpp"

#include "util/error.hpp"

namespace sks::logic {

std::string to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kBuf:
      return "BUF";
    case GateKind::kInv:
      return "INV";
    case GateKind::kAnd2:
      return "AND2";
    case GateKind::kNand2:
      return "NAND2";
    case GateKind::kOr2:
      return "OR2";
    case GateKind::kNor2:
      return "NOR2";
    case GateKind::kXor2:
      return "XOR2";
  }
  return "?";
}

Value evaluate_gate(GateKind kind, Value a, Value b) {
  switch (kind) {
    case GateKind::kBuf:
      return a;
    case GateKind::kInv:
      return v_not(a);
    case GateKind::kAnd2:
      return v_and(a, b);
    case GateKind::kNand2:
      return v_not(v_and(a, b));
    case GateKind::kOr2:
      return v_or(a, b);
    case GateKind::kNor2:
      return v_not(v_or(a, b));
    case GateKind::kXor2:
      return v_xor(a, b);
  }
  return Value::kX;
}

NetId GateNetlist::add_net(const std::string& name) {
  for (std::size_t i = 0; i < net_names_.size(); ++i) {
    sks::check(net_names_[i] != name,
               "GateNetlist::add_net: duplicate net '" + name + "'");
  }
  net_names_.push_back(name);
  fanout_valid_ = false;
  return NetId{net_names_.size() - 1};
}

NetId GateNetlist::net(const std::string& name) {
  for (std::size_t i = 0; i < net_names_.size(); ++i) {
    if (net_names_[i] == name) return NetId{i};
  }
  net_names_.push_back(name);
  fanout_valid_ = false;
  return NetId{net_names_.size() - 1};
}

GateId GateNetlist::add_gate(const std::string& name, GateKind kind, NetId a,
                             NetId b, NetId output, double delay) {
  sks::check(delay >= 0.0, "GateNetlist::add_gate: negative delay");
  Gate g;
  g.name = name;
  g.kind = kind;
  g.a = a;
  g.b = b;
  g.output = output;
  g.delay = delay;
  gates_.push_back(g);
  fanout_valid_ = false;
  return GateId{gates_.size() - 1};
}

GateId GateNetlist::add_gate1(const std::string& name, GateKind kind, NetId a,
                              NetId output, double delay) {
  sks::check(kind == GateKind::kBuf || kind == GateKind::kInv,
             "GateNetlist::add_gate1: kind takes two inputs");
  return add_gate(name, kind, a, a, output, delay);
}

DffId GateNetlist::add_dff(const std::string& name, NetId d, NetId q) {
  Dff f;
  f.name = name;
  f.d = d;
  f.q = q;
  dffs_.push_back(f);
  return DffId{dffs_.size() - 1};
}

const std::vector<std::size_t>& GateNetlist::fanout(NetId n) const {
  if (!fanout_valid_) {
    fanout_.assign(net_names_.size(), {});
    for (std::size_t g = 0; g < gates_.size(); ++g) {
      fanout_[gates_[g].a.index].push_back(g);
      if (!gates_[g].single_input() && !(gates_[g].b == gates_[g].a)) {
        fanout_[gates_[g].b.index].push_back(g);
      }
    }
    fanout_valid_ = true;
  }
  return fanout_.at(n.index);
}

}  // namespace sks::logic
