// Gate-level stuck-at fault simulation and random test generation.
//
// This is "conventional testing ... oriented to faults in IC's logic" that
// the paper's introduction contrasts with clock testing: single stuck-at
// faults on nets, detected by applying vectors at the primary inputs and
// comparing primary outputs against the fault-free response.  The module
// exists both as a substrate in its own right and to complete the
// argument: it achieves high coverage of LOGIC faults while remaining
// structurally blind to clock-distribution faults (see bench/masking_study
// and tests/logic/test_stuck_at.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "logic/netlist.hpp"

namespace sks::logic {

struct NetStuckAt {
  NetId net;
  bool stuck_value = false;

  std::string label(const GateNetlist& netlist) const;
};

// All single stuck-at faults on every net of the netlist (2 per net).
std::vector<NetStuckAt> enumerate_net_faults(const GateNetlist& netlist);

// Zero-delay combinational evaluation: given primary-input values, iterate
// gates to a fixpoint.  `forced` (optional) pins one net to a value, which
// is how a stuck-at is simulated.  Throws on combinational loops.
std::vector<Value> evaluate_combinational(
    const GateNetlist& netlist, const std::vector<NetId>& inputs,
    const std::vector<Value>& input_values,
    const NetStuckAt* forced = nullptr);

struct StuckAtCampaignOptions {
  std::size_t max_vectors = 256;
  std::uint64_t seed = 1;
  // Stop early once every fault is detected.
  bool stop_when_complete = true;
};

struct StuckAtCampaignResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t vectors_used = 0;
  std::vector<NetStuckAt> escapes;

  double coverage() const {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(detected) /
                     static_cast<double>(total_faults);
  }
};

// Random-vector test campaign: apply random input vectors, fault-simulate
// the whole fault list against each, and drop detected faults.
StuckAtCampaignResult random_test_campaign(
    const GateNetlist& netlist, const std::vector<NetId>& inputs,
    const std::vector<NetId>& outputs, const StuckAtCampaignOptions& options);

}  // namespace sks::logic
