#include "logic/masking.hpp"

#include "logic/simulator.hpp"
#include "util/error.hpp"

namespace sks::logic {

namespace {

// Inverter chain from `from` to a fresh net; returns the final net.
NetId add_chain(GateNetlist& netlist, const std::string& prefix, NetId from,
                std::size_t length, double gate_delay) {
  NetId at = from;
  for (std::size_t i = 0; i < length; ++i) {
    const NetId next = netlist.net(prefix + std::to_string(i));
    netlist.add_gate1(prefix + "inv" + std::to_string(i), GateKind::kInv, at,
                      next, gate_delay);
    at = next;
  }
  return at;
}

}  // namespace

MaskingResult run_masking_experiment(const MaskingScenario& scenario) {
  sks::check(scenario.chain_length >= 1, "masking: empty chain");

  GateNetlist netlist;
  const NetId q1 = netlist.net("q1");
  const NetId q2 = netlist.net("q2");
  const NetId d1 = netlist.net("d1");
  const NetId d2_pre = add_chain(netlist, "fwd", q1, scenario.chain_length,
                                 scenario.gate_delay);
  // A final buffer carries the forward-path delay fault.
  const NetId d2 = netlist.net("d2");
  const GateId fault_gate = netlist.add_gate1("fwd_last", GateKind::kBuf,
                                              d2_pre, d2, scenario.gate_delay);
  netlist.gate(fault_gate).extra_delay = scenario.delay_fault;
  // Reverse chain FF2 -> FF1.
  const NetId d1_pre = add_chain(netlist, "rev", q2, scenario.chain_length,
                                 scenario.gate_delay);
  netlist.add_gate1("rev_last", GateKind::kBuf, d1_pre, d1,
                    scenario.gate_delay);

  const DffId ff1 = netlist.add_dff("ff1", d1, q1);
  const DffId ff2 = netlist.add_dff("ff2", d2, q2);

  const double a1 = 0.0;
  const double a2 = scenario.clock_delay_ff2;

  MaskingResult result;
  result.clock_skew = a2 - a1;

  // --- STA view ---
  StaOptions sta;
  sta.period = scenario.period;
  sta.clock_arrival = {a1, a2};
  const auto paths = analyze_timing(netlist, sta);
  for (const auto& p : paths) {
    if (p.launch == ff1 && p.capture == ff2) {
      result.forward_setup_slack = p.setup_slack;
    }
    if (p.launch == ff2 && p.capture == ff1) {
      result.reverse_setup_slack = p.setup_slack;
    }
  }
  result.worst_hold = worst_hold_slack(paths);

  // --- dynamic at-speed launch-capture test of the forward path ---
  // Initialize q1 low, let the chain settle, then launch a rising edge at
  // FF1's clock arrival and capture at FF2 one period later.
  EventSimulator sim(netlist);
  const double settle = 100e-9;
  sim.schedule_input(q1, Value::kZero, 0.0);
  sim.schedule_input(q2, Value::kZero, 0.0);
  sim.run(settle);

  // Expected steady value at d2 for q1=0 through (chain_length inverters +
  // buffer): parity of the inverter count.
  const Value launched =
      (scenario.chain_length % 2 == 0) ? Value::kOne : Value::kZero;

  const double launch_edge = settle + a1;
  sim.schedule_input(q1, Value::kOne, launch_edge + 150e-12 /* clk->q */);
  const double capture_edge = settle + a2 + scenario.period;
  sim.schedule_capture(ff2, capture_edge);
  sim.run(capture_edge + 1e-9);

  sks::check(!sim.captures().empty(), "masking: capture did not run");
  const CaptureRecord& cap = sim.captures().back();
  result.forward_test_passes =
      !cap.setup_violation && cap.captured == launched;
  return result;
}

}  // namespace sks::logic
