// Static timing analysis over flip-flop to flip-flop paths, with per-flop
// clock arrival times taken from the clock-tree analysis.
//
// This is the "conventional" timing view the paper contrasts with: it knows
// about clock arrivals only as fixed offsets, so a clock-distribution fault
// that delays BOTH the launch and capture edges of some region shifts the
// slacks around in a way an at-speed combinational delay test cannot see.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/netlist.hpp"

namespace sks::logic {

struct StaOptions {
  double period = 2e-9;                 // clock period [s]
  std::vector<double> clock_arrival;    // per dff index [s]; empty => all 0
};

struct PathTiming {
  DffId launch, capture;
  double max_delay = 0.0;   // longest Q->D combinational delay [s]
  double min_delay = 0.0;   // shortest [s]
  double setup_slack = 0.0; // >= 0 means the path meets setup
  double hold_slack = 0.0;  // >= 0 means the path meets hold
  bool connected = false;   // a combinational path exists at all
};

// Every launch/capture flop pair with a combinational connection.
std::vector<PathTiming> analyze_timing(const GateNetlist& netlist,
                                       const StaOptions& options);

// Worst setup / hold slack over all connected paths.
double worst_setup_slack(const std::vector<PathTiming>& paths);
double worst_hold_slack(const std::vector<PathTiming>& paths);

}  // namespace sks::logic
