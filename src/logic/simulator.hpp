// Event-driven gate-level timing simulator.
//
// Net value changes propagate through gates after their (possibly
// fault-extended) propagation delays.  Flip-flop sampling is an explicit
// scheduled event carrying the capture instant — the caller derives those
// instants from the clock-tree arrival analysis, so a skewed or faulty
// clock distribution directly changes when each flop looks at its D input.
//
// Setup checking: a capture whose D input changed within [t - setup, t]
// latches X (metastability pessimism).  Hold checking: a D change within
// (t, t + hold] after a capture is reported as a hold violation (the
// captured value is kept — the classic razor-edge case the paper's sensor
// is designed to flag at the clock level instead).
#pragma once

#include <cstddef>
#include <queue>
#include <string>
#include <vector>

#include "logic/netlist.hpp"

namespace sks::logic {

struct TimedValue {
  double time = 0.0;
  Value value = Value::kX;
};

struct CaptureRecord {
  DffId dff;
  double time = 0.0;
  Value captured = Value::kX;
  bool setup_violation = false;
};

struct HoldViolation {
  DffId dff;
  double capture_time = 0.0;
  double change_time = 0.0;
};

class EventSimulator {
 public:
  explicit EventSimulator(const GateNetlist& netlist);

  // Schedule a primary-input value change.
  void schedule_input(NetId net, Value value, double time);
  // Schedule a flip-flop capture (clock active edge at its clock pin).
  void schedule_capture(DffId dff, double time);

  // Run all events up to and including t_end.
  void run(double t_end);

  Value value(NetId net) const { return values_.at(net.index); }
  double last_change(NetId net) const { return last_change_.at(net.index); }
  const std::vector<TimedValue>& history(NetId net) const {
    return history_.at(net.index);
  }
  const std::vector<CaptureRecord>& captures() const { return captures_; }
  const std::vector<HoldViolation>& hold_violations() const {
    return hold_violations_;
  }

 private:
  struct Event {
    double time = 0.0;
    std::size_t sequence = 0;  // FIFO tie-break
    enum class Kind { kNetChange, kCapture } kind = Kind::kNetChange;
    NetId net;
    Value value = Value::kX;
    DffId dff;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  void apply_net_change(const Event& e);
  void apply_capture(const Event& e);
  void push(Event e);

  const GateNetlist& netlist_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::size_t sequence_ = 0;
  std::vector<Value> values_;
  std::vector<double> last_change_;
  std::vector<std::vector<TimedValue>> history_;
  std::vector<CaptureRecord> captures_;
  std::vector<HoldViolation> hold_violations_;
  // Pending capture bookkeeping for hold checks: last capture time per dff.
  std::vector<double> last_capture_;
};

}  // namespace sks::logic
