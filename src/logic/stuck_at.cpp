#include "logic/stuck_at.hpp"

#include "util/error.hpp"
#include "util/prng.hpp"

namespace sks::logic {

std::string NetStuckAt::label(const GateNetlist& netlist) const {
  return "SA" + std::string(stuck_value ? "1" : "0") + "(" +
         netlist.net_name(net) + ")";
}

std::vector<NetStuckAt> enumerate_net_faults(const GateNetlist& netlist) {
  std::vector<NetStuckAt> faults;
  faults.reserve(2 * netlist.net_count());
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    faults.push_back({NetId{n}, false});
    faults.push_back({NetId{n}, true});
  }
  return faults;
}

std::vector<Value> evaluate_combinational(const GateNetlist& netlist,
                                          const std::vector<NetId>& inputs,
                                          const std::vector<Value>& input_values,
                                          const NetStuckAt* forced) {
  sks::check(inputs.size() == input_values.size(),
             "evaluate_combinational: input size mismatch");
  std::vector<Value> values(netlist.net_count(), Value::kX);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values[inputs[i].index] = input_values[i];
  }
  auto apply_force = [&]() {
    if (forced != nullptr) {
      values[forced->net.index] = from_bool(forced->stuck_value);
    }
  };
  apply_force();

  // Relax gates to a fixpoint; a combinational netlist converges in at
  // most #gates rounds.
  const std::size_t limit = netlist.gates().size() + 2;
  bool changed = true;
  std::size_t rounds = 0;
  while (changed) {
    sks::check(++rounds <= limit,
               "evaluate_combinational: combinational loop");
    changed = false;
    for (const Gate& g : netlist.gates()) {
      if (forced != nullptr && g.output == forced->net) continue;
      const Value out =
          evaluate_gate(g.kind, values[g.a.index], values[g.b.index]);
      if (out != values[g.output.index]) {
        values[g.output.index] = out;
        changed = true;
      }
    }
    apply_force();
  }
  return values;
}

StuckAtCampaignResult random_test_campaign(
    const GateNetlist& netlist, const std::vector<NetId>& inputs,
    const std::vector<NetId>& outputs,
    const StuckAtCampaignOptions& options) {
  sks::check(!inputs.empty(), "random_test_campaign: no primary inputs");
  sks::check(!outputs.empty(), "random_test_campaign: no primary outputs");

  std::vector<NetStuckAt> remaining = enumerate_net_faults(netlist);
  StuckAtCampaignResult result;
  result.total_faults = remaining.size();

  util::Prng prng(options.seed);
  std::vector<Value> vector_values(inputs.size());
  for (std::size_t v = 0; v < options.max_vectors; ++v) {
    if (remaining.empty() && options.stop_when_complete) break;
    for (auto& value : vector_values) {
      value = from_bool(prng.uniform01() < 0.5);
    }
    ++result.vectors_used;
    const auto good =
        evaluate_combinational(netlist, inputs, vector_values, nullptr);

    for (std::size_t f = 0; f < remaining.size();) {
      const auto faulty = evaluate_combinational(netlist, inputs,
                                                 vector_values, &remaining[f]);
      bool detected = false;
      for (const NetId out : outputs) {
        const Value g = good[out.index];
        const Value b = faulty[out.index];
        if (g != Value::kX && b != Value::kX && g != b) {
          detected = true;
          break;
        }
      }
      if (detected) {
        ++result.detected;
        remaining.erase(remaining.begin() + static_cast<long>(f));
      } else {
        ++f;
      }
    }
  }
  result.escapes = std::move(remaining);
  return result;
}

}  // namespace sks::logic
