#include "logic/timing.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace sks::logic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Longest and shortest combinational delay from `source_net` to every net.
// Combinational netlists are DAGs; we relax gates to a fixpoint, guarding
// against (illegal) combinational loops.
struct Reach {
  std::vector<double> max_delay;
  std::vector<double> min_delay;
};

Reach propagate(const GateNetlist& netlist, NetId source_net) {
  Reach r;
  r.max_delay.assign(netlist.net_count(), -kInf);
  r.min_delay.assign(netlist.net_count(), kInf);
  r.max_delay[source_net.index] = 0.0;
  r.min_delay[source_net.index] = 0.0;

  const std::size_t limit = netlist.gates().size() + 1;
  bool changed = true;
  std::size_t rounds = 0;
  while (changed) {
    sks::check(++rounds <= limit + 1,
               "analyze_timing: combinational loop detected");
    changed = false;
    for (const Gate& g : netlist.gates()) {
      const double d = g.total_delay();
      for (const NetId in : {g.a, g.b}) {
        const double new_max = r.max_delay[in.index] + d;
        if (new_max > r.max_delay[g.output.index]) {
          r.max_delay[g.output.index] = new_max;
          changed = true;
        }
        const double new_min = r.min_delay[in.index] + d;
        if (new_min < r.min_delay[g.output.index]) {
          r.min_delay[g.output.index] = new_min;
          changed = true;
        }
        if (g.single_input()) break;
      }
    }
  }
  return r;
}

}  // namespace

std::vector<PathTiming> analyze_timing(const GateNetlist& netlist,
                                       const StaOptions& options) {
  const auto& dffs = netlist.dffs();
  if (!options.clock_arrival.empty()) {
    sks::check(options.clock_arrival.size() == dffs.size(),
               "analyze_timing: clock_arrival size mismatch");
  }
  auto arrival = [&](std::size_t f) {
    return options.clock_arrival.empty() ? 0.0 : options.clock_arrival[f];
  };

  std::vector<PathTiming> paths;
  for (std::size_t lf = 0; lf < dffs.size(); ++lf) {
    const Reach reach = propagate(netlist, dffs[lf].q);
    for (std::size_t cf = 0; cf < dffs.size(); ++cf) {
      const double dmax = reach.max_delay[dffs[cf].d.index];
      if (dmax == -kInf) continue;  // not connected
      PathTiming p;
      p.launch = DffId{lf};
      p.capture = DffId{cf};
      p.connected = true;
      p.max_delay = dmax;
      p.min_delay = reach.min_delay[dffs[cf].d.index];
      const double launch_edge = arrival(lf) + dffs[lf].clk_to_q;
      // Setup: data launched this cycle must settle before the NEXT capture
      // edge minus setup.
      p.setup_slack = (arrival(cf) + options.period - dffs[cf].setup) -
                      (launch_edge + p.max_delay);
      // Hold: data launched this cycle must not overtake THIS capture edge
      // plus hold.
      p.hold_slack =
          (launch_edge + p.min_delay) - (arrival(cf) + dffs[cf].hold);
      paths.push_back(p);
    }
  }
  return paths;
}

double worst_setup_slack(const std::vector<PathTiming>& paths) {
  double worst = kInf;
  for (const auto& p : paths) worst = std::min(worst, p.setup_slack);
  return worst;
}

double worst_hold_slack(const std::vector<PathTiming>& paths) {
  double worst = kInf;
  for (const auto& p : paths) worst = std::min(worst, p.hold_slack);
  return worst;
}

}  // namespace sks::logic
