#include "logic/scan.hpp"

#include "util/error.hpp"

namespace sks::logic {

ScanChainNetlist build_scan_chain(GateNetlist& netlist, std::size_t bits,
                                  const std::string& prefix) {
  sks::check(bits >= 1, "build_scan_chain: need at least one bit");
  ScanChainNetlist chain;
  chain.scan_enable = netlist.net(prefix + "se");
  chain.scan_in = netlist.net(prefix + "si");
  const NetId seb = netlist.net(prefix + "seb");
  netlist.add_gate1(prefix + "inv_se", GateKind::kInv, chain.scan_enable, seb,
                    50e-12);

  NetId previous_q = chain.scan_in;
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string cell_prefix = prefix + std::to_string(i) + "/";
    ScanCell cell;
    cell.functional_d = netlist.net(prefix + "d" + std::to_string(i));
    cell.scan_in = previous_q;
    cell.q = netlist.net(cell_prefix + "q");
    const NetId and_f = netlist.net(cell_prefix + "af");
    const NetId and_s = netlist.net(cell_prefix + "as");
    const NetId mux = netlist.net(cell_prefix + "mux");
    cell.mux_and_f = netlist.add_gate(cell_prefix + "and_f", GateKind::kAnd2,
                                      cell.functional_d, seb, and_f, 60e-12);
    cell.mux_and_s = netlist.add_gate(cell_prefix + "and_s", GateKind::kAnd2,
                                      cell.scan_in, chain.scan_enable, and_s,
                                      60e-12);
    cell.mux_or = netlist.add_gate(cell_prefix + "or", GateKind::kOr2, and_f,
                                   and_s, mux, 60e-12);
    cell.dff = netlist.add_dff(cell_prefix + "ff", mux, cell.q);
    previous_q = cell.q;
    chain.cells.push_back(cell);
  }
  chain.scan_out = previous_q;
  return chain;
}

std::vector<Value> capture_and_shift(EventSimulator& sim,
                                     const ScanChainNetlist& chain,
                                     const std::vector<Value>& functional_values,
                                     double t_start, double clock_period) {
  sks::check(functional_values.size() == chain.cells.size(),
             "capture_and_shift: value count mismatch");
  sks::check(clock_period > 1e-9 * 0.4,
             "capture_and_shift: period too short for the mux+ff delays");

  // 1. functional mode: apply the D values, scan disabled.
  sim.schedule_input(chain.scan_enable, Value::kZero, t_start);
  sim.schedule_input(chain.scan_in, Value::kZero, t_start);
  for (std::size_t i = 0; i < chain.cells.size(); ++i) {
    sim.schedule_input(chain.cells[i].functional_d, functional_values[i],
                       t_start);
  }
  // 2. capture edge.
  const double t_capture = t_start + clock_period;
  for (const auto& cell : chain.cells) {
    sim.schedule_capture(cell.dff, t_capture);
  }
  // 3. shift mode.
  sim.schedule_input(chain.scan_enable, Value::kOne,
                     t_capture + 0.5 * clock_period);
  std::vector<Value> readout;
  for (std::size_t k = 0; k < chain.cells.size(); ++k) {
    const double t_shift = t_capture + (k + 1) * clock_period;
    // Sample the serial output just before the next shift edge.
    sim.run(t_shift - 0.05 * clock_period);
    readout.push_back(sim.value(chain.scan_out));
    for (const auto& cell : chain.cells) {
      sim.schedule_capture(cell.dff, t_shift);
    }
  }
  sim.run(t_capture + (chain.cells.size() + 1) * clock_period);
  return readout;
}

}  // namespace sks::logic
