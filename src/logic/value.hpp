// Three-valued logic for the gate-level timing simulator.
#pragma once

#include <cstdint>
#include <string>

namespace sks::logic {

enum class Value : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline Value from_bool(bool b) { return b ? Value::kOne : Value::kZero; }

inline std::string to_string(Value v) {
  switch (v) {
    case Value::kZero:
      return "0";
    case Value::kOne:
      return "1";
    case Value::kX:
      return "X";
  }
  return "?";
}

inline Value v_not(Value a) {
  if (a == Value::kX) return Value::kX;
  return a == Value::kOne ? Value::kZero : Value::kOne;
}

inline Value v_and(Value a, Value b) {
  if (a == Value::kZero || b == Value::kZero) return Value::kZero;
  if (a == Value::kOne && b == Value::kOne) return Value::kOne;
  return Value::kX;
}

inline Value v_or(Value a, Value b) {
  if (a == Value::kOne || b == Value::kOne) return Value::kOne;
  if (a == Value::kZero && b == Value::kZero) return Value::kZero;
  return Value::kX;
}

inline Value v_xor(Value a, Value b) {
  if (a == Value::kX || b == Value::kX) return Value::kX;
  return a == b ? Value::kZero : Value::kOne;
}

}  // namespace sks::logic
