#include "logic/simulator.hpp"

#include "util/error.hpp"

namespace sks::logic {

EventSimulator::EventSimulator(const GateNetlist& netlist)
    : netlist_(netlist),
      values_(netlist.net_count(), Value::kX),
      last_change_(netlist.net_count(), -1.0),
      history_(netlist.net_count()),
      last_capture_(netlist.dffs().size(), -1.0) {}

void EventSimulator::push(Event e) {
  e.sequence = sequence_++;
  queue_.push(e);
}

void EventSimulator::schedule_input(NetId net, Value value, double time) {
  sks::check(time >= 0.0, "schedule_input: negative time");
  Event e;
  e.time = time;
  e.kind = Event::Kind::kNetChange;
  e.net = net;
  e.value = value;
  push(e);
}

void EventSimulator::schedule_capture(DffId dff, double time) {
  sks::check(dff.index < netlist_.dffs().size(), "schedule_capture: bad dff");
  Event e;
  e.time = time;
  e.kind = Event::Kind::kCapture;
  e.dff = dff;
  push(e);
}

void EventSimulator::run(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const Event e = queue_.top();
    queue_.pop();
    if (e.kind == Event::Kind::kNetChange) {
      apply_net_change(e);
    } else {
      apply_capture(e);
    }
  }
}

void EventSimulator::apply_net_change(const Event& e) {
  if (values_[e.net.index] == e.value) return;  // no transition
  values_[e.net.index] = e.value;
  last_change_[e.net.index] = e.time;
  history_[e.net.index].push_back({e.time, e.value});

  // Hold check: did a flop capture just before this change?
  for (std::size_t f = 0; f < netlist_.dffs().size(); ++f) {
    const Dff& dff = netlist_.dffs()[f];
    if (!(dff.d == e.net)) continue;
    const double cap = last_capture_[f];
    if (cap >= 0.0 && e.time > cap && e.time <= cap + dff.hold) {
      hold_violations_.push_back({DffId{f}, cap, e.time});
    }
  }

  // Propagate through fanout gates.
  for (const std::size_t g : netlist_.fanout(e.net)) {
    const Gate& gate = netlist_.gates()[g];
    const Value out = evaluate_gate(gate.kind, values_[gate.a.index],
                                    values_[gate.b.index]);
    Event prop;
    prop.time = e.time + gate.total_delay();
    prop.kind = Event::Kind::kNetChange;
    prop.net = gate.output;
    prop.value = out;
    push(prop);
  }
}

void EventSimulator::apply_capture(const Event& e) {
  const Dff& dff = netlist_.dff(e.dff);
  CaptureRecord record;
  record.dff = e.dff;
  record.time = e.time;
  const double d_changed = last_change_[dff.d.index];
  record.setup_violation =
      d_changed >= 0.0 && d_changed > e.time - dff.setup && d_changed <= e.time;
  record.captured =
      record.setup_violation ? Value::kX : values_[dff.d.index];
  captures_.push_back(record);
  last_capture_[e.dff.index] = e.time;

  // Q output change after clk->q.
  Event q;
  q.time = e.time + dff.clk_to_q;
  q.kind = Event::Kind::kNetChange;
  q.net = dff.q;
  q.value = record.captured;
  push(q);
}

}  // namespace sks::logic
