// RC-tree interconnect model with Elmore delay and second-moment analysis.
//
// Unbalanced RC paths are the root cause the paper's scheme guards against
// ("Unbalanced paths may result in large clock skews").  This module gives
// the library the standard delay machinery of the zero-skew routing
// literature the paper builds on (Bakoglu [1]; Chao et al. [3]):
//
//  * Elmore delay  (first moment of the impulse response),
//  * second moment (for slew estimation: the impulse-response std-dev
//    sigma = sqrt(2 m2 - m1^2), PERI-style).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sks::clocktree {

// Index-based rooted RC tree.  Node 0 is the root (driving point).  Every
// other node has a parent and a resistance on the edge to it; every node
// carries a grounded capacitance.
class RcTree {
 public:
  // Creates the tree with its root.  `root_cap` is the capacitance at the
  // driving point (driver diffusion etc.).
  explicit RcTree(double root_cap = 0.0, std::string root_name = "root");

  // Add a node under `parent`.  Returns its index.
  std::size_t add_node(std::size_t parent, double resistance,
                       double capacitance, std::string name = {});

  std::size_t size() const { return parent_.size(); }
  std::size_t parent(std::size_t i) const { return parent_.at(i); }
  double resistance(std::size_t i) const { return res_.at(i); }
  double capacitance(std::size_t i) const { return cap_.at(i); }
  const std::string& name(std::size_t i) const { return name_.at(i); }
  void set_capacitance(std::size_t i, double c) { cap_.at(i) = c; }
  void set_resistance(std::size_t i, double r);

  // Total capacitance of the whole tree (the load seen by an ideal driver).
  double total_cap() const;
  // Capacitance of the subtree rooted at each node (one bottom-up pass).
  std::vector<double> downstream_caps() const;

  // Elmore delay from the root to every node, optionally including a driver
  // (source) resistance feeding the root: m1[i] = sum_j R(i^j) * C_j.
  std::vector<double> elmore_delays(double source_resistance = 0.0) const;

  // Second moments m2[i] = sum_j R(i^j) * C_j * m1[j].
  std::vector<double> second_moments(double source_resistance = 0.0) const;

  // Impulse-response standard deviation per node:
  // sigma = sqrt(max(0, 2 m2 - m1^2)).  A standard slew proxy.
  std::vector<double> sigma(double source_resistance = 0.0) const;

 private:
  // Generic weighted common-path-resistance sum:
  // out[i] = sum_j R(i^j) * w[j], computed in two passes.
  std::vector<double> path_weighted_sum(const std::vector<double>& weights,
                                        double source_resistance) const;

  std::vector<std::size_t> parent_;
  std::vector<double> res_;   // edge resistance to parent (0 for root)
  std::vector<double> cap_;
  std::vector<std::string> name_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace sks::clocktree
