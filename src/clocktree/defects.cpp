#include "clocktree/defects.hpp"

#include <functional>

#include "util/error.hpp"
#include "util/table.hpp"

namespace sks::clocktree {

std::string to_string(DefectKind kind) {
  switch (kind) {
    case DefectKind::kResistiveOpen:
      return "resistive-open";
    case DefectKind::kCouplingCap:
      return "coupling-cap";
    case DefectKind::kWeakBuffer:
      return "weak-buffer";
    case DefectKind::kSupplyDroop:
      return "supply-droop";
  }
  return "?";
}

std::string TreeDefect::label() const {
  return to_string(kind) + "@n" + std::to_string(node) + " x" +
         util::fmt_fixed(magnitude, 2) + (transient ? " (transient)" : "");
}

namespace {

void ensure_scales(std::vector<double>& v, std::size_t n) {
  if (v.empty()) v.assign(n, 1.0);
}

}  // namespace

AnalysisOptions apply_defect(const ClockTree& tree, AnalysisOptions options,
                             const TreeDefect& defect) {
  sks::check(defect.node < tree.size(), "apply_defect: bad node index");
  const std::size_t n = tree.size();
  switch (defect.kind) {
    case DefectKind::kResistiveOpen:
      ensure_scales(options.edge_r_scale, n);
      options.edge_r_scale[defect.node] *= defect.magnitude;
      break;
    case DefectKind::kCouplingCap:
      ensure_scales(options.edge_c_scale, n);
      options.edge_c_scale[defect.node] *= defect.magnitude;
      break;
    case DefectKind::kWeakBuffer:
      sks::check(tree.node(defect.node).buffered,
                 "apply_defect: weak-buffer target is not buffered");
      ensure_scales(options.buffer_delay_scale, n);
      options.buffer_delay_scale[defect.node] *= defect.magnitude;
      break;
    case DefectKind::kSupplyDroop: {
      ensure_scales(options.buffer_delay_scale, n);
      // Slow every buffer in the defect's subtree.
      std::function<void(std::size_t)> visit = [&](std::size_t v) {
        if (tree.node(v).buffered) {
          options.buffer_delay_scale[v] *= defect.magnitude;
        }
        for (const std::size_t c : tree.node(v).children) visit(c);
      };
      visit(defect.node);
      break;
    }
  }
  return options;
}

AnalysisOptions apply_random_variation(const ClockTree& tree,
                                       AnalysisOptions options,
                                       util::Prng& prng, double rel) {
  const std::size_t n = tree.size();
  ensure_scales(options.edge_r_scale, n);
  ensure_scales(options.edge_c_scale, n);
  ensure_scales(options.buffer_delay_scale, n);
  ensure_scales(options.sink_cap_scale, n);
  for (std::size_t i = 0; i < n; ++i) {
    options.edge_r_scale[i] *= prng.vary(1.0, rel);
    options.edge_c_scale[i] *= prng.vary(1.0, rel);
    options.buffer_delay_scale[i] *= prng.vary(1.0, rel);
    options.sink_cap_scale[i] *= prng.vary(1.0, rel);
  }
  return options;
}

TreeDefect random_defect(const ClockTree& tree, util::Prng& prng) {
  TreeDefect d;
  // Collect candidate targets.
  std::vector<std::size_t> edges;
  std::vector<std::size_t> buffers;
  for (std::size_t i = 1; i < tree.size(); ++i) {
    if (tree.node(i).wire_length > 0.0) edges.push_back(i);
    if (tree.node(i).buffered) buffers.push_back(i);
  }
  sks::check(!edges.empty(), "random_defect: tree has no wires");
  const double pick = prng.uniform01();
  if (pick < 0.4 || buffers.empty()) {
    d.kind = DefectKind::kResistiveOpen;
    d.node = edges[prng.below(edges.size())];
    d.magnitude = prng.uniform(2.0, 20.0);
  } else if (pick < 0.7) {
    d.kind = DefectKind::kCouplingCap;
    d.node = edges[prng.below(edges.size())];
    d.magnitude = prng.uniform(1.5, 4.0);
    d.transient = prng.uniform01() < 0.5;
    d.activation_probability = prng.uniform(0.2, 0.8);
  } else if (pick < 0.9) {
    d.kind = DefectKind::kWeakBuffer;
    d.node = buffers[prng.below(buffers.size())];
    d.magnitude = prng.uniform(1.5, 5.0);
  } else {
    d.kind = DefectKind::kSupplyDroop;
    d.node = buffers[prng.below(buffers.size())];
    d.magnitude = prng.uniform(1.2, 2.0);
    d.transient = true;
    d.activation_probability = prng.uniform(0.05, 0.3);
  }
  return d;
}

}  // namespace sks::clocktree
