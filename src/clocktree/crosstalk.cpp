#include "clocktree/crosstalk.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sks::clocktree {

CrosstalkAssessment assess_crosstalk(const ClockTree& tree,
                                     const AnalysisOptions& options,
                                     const Aggressor& aggressor) {
  sks::check(aggressor.victim_edge > 0 && aggressor.victim_edge < tree.size(),
             "assess_crosstalk: bad victim edge");
  sks::check(aggressor.window_end >= aggressor.window_start,
             "assess_crosstalk: inverted aggressor window");

  CrosstalkAssessment a;
  const ArrivalAnalysis base = analyze(tree, options);

  // Victim transition window at the coupled edge: centred on the arrival
  // at the edge's far end, widened by the local slew (3-sigma each way).
  const double arrival = base.arrival[aggressor.victim_edge];
  const double sigma = base.slew_sigma[aggressor.victim_edge];
  a.victim_window_start = arrival - 3.0 * sigma;
  a.victim_window_end = arrival + 3.0 * sigma;
  a.windows_overlap = aggressor.window_start <= a.victim_window_end &&
                      aggressor.window_end >= a.victim_window_start;
  a.miller_factor = aggressor.opposite_direction ? 2.0 : 0.0;
  a.hit_probability = a.windows_overlap ? aggressor.activity : 0.0;

  if (!a.windows_overlap || a.miller_factor == 0.0) return a;

  // Extra delay when hit: re-analyze with the Miller-amplified coupling
  // folded into the victim edge's capacitance.
  const double wire_cap =
      options.wire.capacitance(tree.node(aggressor.victim_edge).wire_length) *
      options.edge_c(aggressor.victim_edge);
  sks::check(wire_cap > 0.0, "assess_crosstalk: victim edge has no wire");
  const double scale =
      1.0 + a.miller_factor * aggressor.coupling_cap / wire_cap;

  AnalysisOptions hit = options;
  if (hit.edge_c_scale.empty()) hit.edge_c_scale.assign(tree.size(), 1.0);
  hit.edge_c_scale[aggressor.victim_edge] *= scale;
  const ArrivalAnalysis hurt = analyze(tree, hit);

  for (const std::size_t s : tree.sinks()) {
    a.worst_delta_delay = std::max(
        a.worst_delta_delay, hurt.arrival[s] - base.arrival[s]);
  }
  a.worst_delta_skew = std::max(
      0.0, max_sink_skew(tree, hurt) - max_sink_skew(tree, base));
  return a;
}

TreeDefect crosstalk_defect(const ClockTree& tree,
                            const AnalysisOptions& options,
                            const Aggressor& aggressor) {
  const CrosstalkAssessment a = assess_crosstalk(tree, options, aggressor);
  const double wire_cap =
      options.wire.capacitance(tree.node(aggressor.victim_edge).wire_length) *
      options.edge_c(aggressor.victim_edge);

  TreeDefect d;
  d.kind = DefectKind::kCouplingCap;
  d.node = aggressor.victim_edge;
  d.magnitude =
      1.0 + (aggressor.opposite_direction ? 2.0 : 0.0) *
                aggressor.coupling_cap / wire_cap;
  d.transient = true;
  d.activation_probability = a.hit_probability;
  return d;
}

}  // namespace sks::clocktree
