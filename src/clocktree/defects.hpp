// Clock-distribution defects and parameter variation.
//
// The failure mechanisms the paper lists in its introduction: "circuit
// parameter fluctuations, inaccuracies in the delay models used to drive
// the clock routing process, crosstalk faults and environmental failures".
// Each maps onto the AnalysisOptions perturbation hooks:
//
//  * resistive open       — an edge's resistance multiplied (via, partial
//    contact, electromigration); permanent;
//  * coupling capacitance — extra Miller-factor capacitance on an edge from
//    a switching neighbour (crosstalk); can be permanent (layout) or
//    transient (only on cycles where the aggressor switches opposite);
//  * weak buffer          — a degraded driver (hot-carrier aging, partial
//    gate defect): intrinsic delay multiplied;
//  * supply droop         — environmental: all buffers in a subtree slowed.
#pragma once

#include <string>
#include <vector>

#include "clocktree/topology.hpp"
#include "util/prng.hpp"

namespace sks::clocktree {

enum class DefectKind {
  kResistiveOpen,
  kCouplingCap,
  kWeakBuffer,
  kSupplyDroop,
};

std::string to_string(DefectKind kind);

struct TreeDefect {
  DefectKind kind = DefectKind::kResistiveOpen;
  std::size_t node = 0;     // edge = (node -> parent); subtree root for droop
  double magnitude = 2.0;   // multiplier (R, C, or buffer delay)
  // Transient defects (crosstalk, droop) are active only on some cycles;
  // permanent ones always.  The scheme layer uses this for the on-line
  // experiments.
  bool transient = false;
  double activation_probability = 1.0;  // per cycle, when transient

  std::string label() const;
};

// Fold a defect into a copy of the analysis options.
AnalysisOptions apply_defect(const ClockTree& tree, AnalysisOptions options,
                             const TreeDefect& defect);

// Uniform +/-rel variation on every wire R/C, buffer delay and sink load —
// the Monte-Carlo recipe for skew-criticality estimation.
AnalysisOptions apply_random_variation(const ClockTree& tree,
                                       AnalysisOptions options,
                                       util::Prng& prng, double rel);

// Draw a random defect: kind-weighted choice of target and magnitude.
TreeDefect random_defect(const ClockTree& tree, util::Prng& prng);

}  // namespace sks::clocktree
