// Skew-criticality analysis: which sink pairs deserve a sensing circuit?
//
// The paper's two placement criteria (Sec. 2):
//   1. "the skew between them must be critical (accurate timing analysis
//      tools should provide these data)";
//   2. "they must be close enough to each other to allow for a suitable
//      (i.e. balanced) connection to the sensing circuit".
//
// Criterion 1 is implemented as Monte-Carlo skew statistics under process
// variation: a pair is critical when its skew spread makes exceeding the
// timing budget likely.  Criterion 2 is a Manhattan-distance cut applied by
// the placement layer (scheme/placement).
#pragma once

#include <cstddef>
#include <vector>

#include "clocktree/defects.hpp"
#include "clocktree/topology.hpp"
#include "util/prng.hpp"

namespace sks::clocktree {

struct PairCriticality {
  std::size_t a = 0, b = 0;      // sink node indices
  double nominal_skew = 0.0;     // signed, nominal parameters [s]
  double mean_abs_skew = 0.0;    // E|skew| under variation [s]
  double sigma_skew = 0.0;       // std of skew under variation [s]
  double max_abs_skew = 0.0;     // worst sampled |skew| [s]
  double exceed_probability = 0.0;  // P(|skew| > threshold)
  double distance = 0.0;         // Manhattan distance between sinks [m]
};

struct CriticalityOptions {
  std::size_t samples = 200;
  double rc_rel = 0.10;          // uniform relative variation on wires/loads
  double skew_threshold = 100e-12;  // timing budget [s]
  std::uint64_t seed = 1;
};

// Monte-Carlo skew statistics for every sink pair, sorted most-critical
// first (by exceed probability, then sigma).
std::vector<PairCriticality> rank_critical_pairs(
    const ClockTree& tree, const AnalysisOptions& analysis_options,
    const CriticalityOptions& criticality_options);

}  // namespace sks::clocktree
