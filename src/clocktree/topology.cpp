#include "clocktree/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sks::clocktree {

ClockTree::ClockTree(Point root_pos, std::string root_name) {
  ClockTreeNode root;
  root.name = std::move(root_name);
  root.pos = root_pos;
  root.parent = 0;
  nodes_.push_back(std::move(root));
}

std::size_t ClockTree::add_node(std::size_t parent, Point pos,
                                double wire_length, std::string name) {
  sks::check(parent < nodes_.size(), "ClockTree::add_node: bad parent");
  const double min_len = manhattan(pos, nodes_[parent].pos);
  if (wire_length < 0.0) wire_length = min_len;
  sks::check(wire_length >= min_len - 1e-12,
             "ClockTree::add_node: wire shorter than Manhattan distance");
  const std::size_t index = nodes_.size();
  ClockTreeNode n;
  n.name = name.empty() ? "n" + std::to_string(index) : std::move(name);
  n.pos = pos;
  n.parent = parent;
  n.wire_length = wire_length;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(index);
  return index;
}

void ClockTree::set_buffer(std::size_t i, bool buffered) {
  nodes_.at(i).buffered = buffered;
}

void ClockTree::set_sink(std::size_t i, double sink_cap) {
  sks::check(sink_cap > 0.0, "ClockTree::set_sink: sink cap must be > 0");
  sks::check(nodes_.at(i).children.empty(),
             "ClockTree::set_sink: sinks must be leaves");
  nodes_.at(i).sink_cap = sink_cap;
}

std::vector<std::size_t> ClockTree::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_sink()) out.push_back(i);
  }
  return out;
}

double ClockTree::total_wire_length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    total += nodes_[i].wire_length;
  }
  return total;
}

std::vector<std::size_t> ClockTree::path_to_root(std::size_t i) const {
  sks::check(i < nodes_.size(), "ClockTree::path_to_root: bad index");
  std::vector<std::size_t> path{i};
  while (i != 0) {
    i = nodes_[i].parent;
    path.push_back(i);
  }
  return path;
}

namespace {

// Per-stage analysis state: expand one buffer stage into an RcTree.
struct StageExpansion {
  RcTree rc{0.0};
  // tree node -> rc node for every tree node inside the stage (boundary
  // buffered nodes included, represented by their input cap).
  std::vector<std::pair<std::size_t, std::size_t>> mapping;
  std::vector<std::size_t> boundary_buffers;  // tree nodes starting substages
};

void expand_subtree(const ClockTree& tree, const AnalysisOptions& options,
                    std::size_t tree_node, std::size_t rc_parent,
                    StageExpansion& stage) {
  for (const std::size_t child : tree.node(tree_node).children) {
    const ClockTreeNode& cn = tree.node(child);
    const double r =
        options.wire.resistance(cn.wire_length) * options.edge_r(child);
    const double c =
        options.wire.capacitance(cn.wire_length) * options.edge_c(child);
    const std::size_t segments = std::max<std::size_t>(1, options.wire.segments);
    const double n_seg = static_cast<double>(segments);

    // Expand the wire into pi-sections: C/2N at the near end, C/N at the
    // interior joints, C/2N at the far end.  A pi-ladder's Elmore delay
    // equals the distributed line's R(C/2 + C_load) for ANY segment count,
    // so the segmented analysis agrees exactly with the closed-form model
    // the zero-skew router balances against.
    stage.rc.set_capacitance(rc_parent, stage.rc.capacitance(rc_parent) +
                                            c / (2.0 * n_seg));
    std::size_t rc_at = rc_parent;
    for (std::size_t s = 0; s < segments; ++s) {
      const double seg_cap = (s + 1 < segments) ? c / n_seg : c / (2.0 * n_seg);
      rc_at = stage.rc.add_node(rc_at, r / n_seg, seg_cap);
    }
    // Load at the far end: buffer input, sink pin, or plain routing point.
    if (cn.buffered) {
      stage.rc.set_capacitance(
          rc_at,
          stage.rc.capacitance(rc_at) + options.buffer.input_cap);
      stage.mapping.emplace_back(child, rc_at);
      stage.boundary_buffers.push_back(child);
      continue;  // substage handled by the caller
    }
    if (cn.is_sink()) {
      stage.rc.set_capacitance(rc_at, stage.rc.capacitance(rc_at) +
                                          cn.sink_cap *
                                              options.sink_scale(child));
    }
    stage.mapping.emplace_back(child, rc_at);
    expand_subtree(tree, options, child, rc_at, stage);
  }
}

}  // namespace

ArrivalAnalysis analyze(const ClockTree& tree, const AnalysisOptions& options) {
  if (!options.edge_r_scale.empty()) {
    sks::check(options.edge_r_scale.size() == tree.size(),
               "analyze: edge_r_scale size mismatch");
  }
  if (!options.edge_c_scale.empty()) {
    sks::check(options.edge_c_scale.size() == tree.size(),
               "analyze: edge_c_scale size mismatch");
  }
  ArrivalAnalysis out;
  out.arrival.assign(tree.size(), 0.0);
  out.slew_sigma.assign(tree.size(), 0.0);

  // Iterative stage worklist: (stage root tree node, stage start time,
  // driver resistance).
  struct StageWork {
    std::size_t root;
    double t0;
    double rdrive;
  };
  std::vector<StageWork> work{{tree.root(), 0.0, options.source_resistance}};

  while (!work.empty()) {
    const StageWork stage_work = work.back();
    work.pop_back();

    StageExpansion stage;
    expand_subtree(tree, options, stage_work.root, 0, stage);
    const std::vector<double> m1 = stage.rc.elmore_delays(stage_work.rdrive);
    const std::vector<double> sig = stage.rc.sigma(stage_work.rdrive);

    out.arrival[stage_work.root] = stage_work.t0;
    for (const auto& [tree_node, rc_node] : stage.mapping) {
      out.arrival[tree_node] = stage_work.t0 + m1[rc_node];
      out.slew_sigma[tree_node] = sig[rc_node];
    }
    for (const std::size_t buffer_node : stage.boundary_buffers) {
      const double t_in = out.arrival[buffer_node];
      const double t_out = t_in + options.buffer.intrinsic_delay *
                                      options.buf_scale(buffer_node);
      out.arrival[buffer_node] = t_out;
      work.push_back({buffer_node, t_out, options.buffer.drive_resistance});
    }
  }
  return out;
}

double max_sink_skew(const ClockTree& tree, const ArrivalAnalysis& analysis) {
  const auto sinks = tree.sinks();
  if (sinks.size() < 2) return 0.0;
  double lo = analysis.arrival[sinks[0]];
  double hi = lo;
  for (const std::size_t s : sinks) {
    lo = std::min(lo, analysis.arrival[s]);
    hi = std::max(hi, analysis.arrival[s]);
  }
  return hi - lo;
}

std::vector<SinkPair> all_sink_pairs(const ClockTree& tree,
                                     const ArrivalAnalysis& analysis) {
  const auto sinks = tree.sinks();
  std::vector<SinkPair> pairs;
  pairs.reserve(sinks.size() * (sinks.size() - 1) / 2);
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (std::size_t j = i + 1; j < sinks.size(); ++j) {
      SinkPair p;
      p.a = sinks[i];
      p.b = sinks[j];
      p.skew = analysis.skew(p.a, p.b);
      p.distance = manhattan(tree.node(p.a).pos, tree.node(p.b).pos);
      pairs.push_back(p);
    }
  }
  return pairs;
}

}  // namespace sks::clocktree
