#include "clocktree/dme.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sks::clocktree {

namespace {

struct SubTree {
  Point root_pos;
  double delay = 0.0;  // Elmore from this root to every sink below (equal)
  double cap = 0.0;    // total downstream capacitance
  int left = -1, right = -1;  // children in the pool
  double wire_left = 0.0, wire_right = 0.0;  // routed lengths to children
  int sink_index = -1;  // >= 0 for leaves
};

struct Builder {
  const std::vector<Sink>& sinks;
  const DmeOptions& options;
  std::vector<SubTree> pool;

  // Wire length needed for a subtree with (delay t, cap C) to present delay
  // `target` at the far end of its connecting wire.  Solves
  //   t + r l (c l / 2 + C) = target  for l >= 0.
  double elongation(double t, double cap, double target) const {
    const double r = options.wire.r_per_m;
    const double c = options.wire.c_per_m;
    const double need = target - t;
    sks::check(need >= -1e-18, "dme: elongation target below subtree delay");
    if (need <= 0.0) return 0.0;
    // (r c / 2) l^2 + (r C) l - need = 0
    const double a = 0.5 * r * c;
    const double b = r * cap;
    const double disc = b * b + 4.0 * a * need;
    return (-b + std::sqrt(disc)) / (2.0 * a);
  }

  int merge(int ia, int ib) {
    const SubTree a = pool[ia];
    const SubTree b = pool[ib];
    const double r = options.wire.r_per_m;
    const double c = options.wire.c_per_m;
    const double d = manhattan(a.root_pos, b.root_pos);

    SubTree m;
    m.left = ia;
    m.right = ib;

    double x = 0.5;
    if (d > 0.0) {
      const double rd = r * d;
      const double cd = c * d;
      // Chao et al. exact zero-skew tapping point.
      x = (b.delay - a.delay + rd * (cd / 2.0 + b.cap)) /
          (rd * (cd + a.cap + b.cap));
    } else {
      // Coincident roots: force the extension branch unless delays match.
      x = (std::fabs(a.delay - b.delay) < 1e-21) ? 0.0 : -1.0;
      if (a.delay < b.delay) x = 2.0;  // extend A
    }

    if (x >= 0.0 && x <= 1.0) {
      m.wire_left = x * d;
      m.wire_right = (1.0 - x) * d;
      m.root_pos = along_l_path(a.root_pos, b.root_pos, m.wire_left);
      m.delay =
          a.delay + r * m.wire_left * (c * m.wire_left / 2.0 + a.cap);
      m.cap = a.cap + b.cap + c * d;
    } else if (x < 0.0) {
      // A is too slow even with a direct connection: tap at A's root and
      // snake B's wire.
      m.root_pos = a.root_pos;
      m.wire_left = 0.0;
      m.wire_right = std::max(d, elongation(b.delay, b.cap, a.delay));
      m.delay = a.delay;
      m.cap = a.cap + b.cap + c * m.wire_right;
    } else {
      // B too slow: tap at B's root, snake A's wire.
      m.root_pos = b.root_pos;
      m.wire_right = 0.0;
      m.wire_left = std::max(d, elongation(a.delay, a.cap, b.delay));
      m.delay = b.delay;
      m.cap = a.cap + b.cap + c * m.wire_left;
    }
    pool.push_back(m);
    return static_cast<int>(pool.size()) - 1;
  }

  // Balanced bipartition by the median of the wider spread coordinate.
  int build(std::vector<int> indices) {
    sks::check(!indices.empty(), "dme: empty sink partition");
    if (indices.size() == 1) {
      SubTree leaf;
      leaf.root_pos = sinks[indices[0]].pos;
      leaf.cap = sinks[indices[0]].cap;
      leaf.sink_index = indices[0];
      pool.push_back(leaf);
      return static_cast<int>(pool.size()) - 1;
    }
    double min_x = sinks[indices[0]].pos.x, max_x = min_x;
    double min_y = sinks[indices[0]].pos.y, max_y = min_y;
    for (int i : indices) {
      min_x = std::min(min_x, sinks[i].pos.x);
      max_x = std::max(max_x, sinks[i].pos.x);
      min_y = std::min(min_y, sinks[i].pos.y);
      max_y = std::max(max_y, sinks[i].pos.y);
    }
    const bool split_x = (max_x - min_x) >= (max_y - min_y);
    std::sort(indices.begin(), indices.end(), [&](int lhs, int rhs) {
      const Point& lp = sinks[lhs].pos;
      const Point& rp = sinks[rhs].pos;
      return split_x ? (lp.x < rp.x || (lp.x == rp.x && lp.y < rp.y))
                     : (lp.y < rp.y || (lp.y == rp.y && lp.x < rp.x));
    });
    const std::size_t half = indices.size() / 2;
    std::vector<int> lo(indices.begin(), indices.begin() + half);
    std::vector<int> hi(indices.begin() + half, indices.end());
    const int left = build(std::move(lo));
    const int right = build(std::move(hi));
    return merge(left, right);
  }

  void emit(int pool_index, ClockTree& tree, std::size_t tree_parent,
            double wire_length) const {
    const SubTree& st = pool[pool_index];
    const std::string name =
        st.sink_index >= 0 ? "sink" + std::to_string(st.sink_index) : "";
    const std::size_t node =
        tree.add_node(tree_parent, st.root_pos, wire_length, name);
    if (st.sink_index >= 0) {
      tree.set_sink(node, sinks[st.sink_index].cap);
      return;
    }
    emit(st.left, tree, node, st.wire_left);
    emit(st.right, tree, node, st.wire_right);
  }
};

}  // namespace

ClockTree build_zero_skew_tree(const std::vector<Sink>& sinks,
                               const DmeOptions& options) {
  sks::check(!sinks.empty(), "build_zero_skew_tree: no sinks");
  Builder builder{sinks, options, {}};
  std::vector<int> all(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) all[i] = static_cast<int>(i);
  const int top = builder.build(std::move(all));

  ClockTree tree(options.source, "clkgen");
  builder.emit(top, tree,  tree.root(),
               manhattan(options.source, builder.pool[top].root_pos));
  return tree;
}

}  // namespace sks::clocktree
