#include "clocktree/skew_analysis.hpp"

#include <algorithm>
#include <cmath>

namespace sks::clocktree {

std::vector<PairCriticality> rank_critical_pairs(
    const ClockTree& tree, const AnalysisOptions& analysis_options,
    const CriticalityOptions& criticality_options) {
  const auto sinks = tree.sinks();
  const std::size_t n_sinks = sinks.size();
  const std::size_t n_pairs = n_sinks * (n_sinks - 1) / 2;

  std::vector<PairCriticality> pairs;
  pairs.reserve(n_pairs);
  const ArrivalAnalysis nominal = analyze(tree, analysis_options);
  for (std::size_t i = 0; i < n_sinks; ++i) {
    for (std::size_t j = i + 1; j < n_sinks; ++j) {
      PairCriticality p;
      p.a = sinks[i];
      p.b = sinks[j];
      p.nominal_skew = nominal.skew(p.a, p.b);
      p.distance = manhattan(tree.node(p.a).pos, tree.node(p.b).pos);
      pairs.push_back(p);
    }
  }

  // Monte-Carlo accumulation (Welford on the fly, per pair).
  std::vector<double> mean(n_pairs, 0.0);
  std::vector<double> m2(n_pairs, 0.0);
  std::vector<double> mean_abs(n_pairs, 0.0);
  std::vector<double> worst(n_pairs, 0.0);
  std::vector<std::size_t> exceed(n_pairs, 0);

  util::Prng prng(criticality_options.seed);
  for (std::size_t s = 0; s < criticality_options.samples; ++s) {
    const AnalysisOptions varied = apply_random_variation(
        tree, analysis_options, prng, criticality_options.rc_rel);
    const ArrivalAnalysis analysis = analyze(tree, varied);
    for (std::size_t k = 0; k < n_pairs; ++k) {
      const double skew = analysis.skew(pairs[k].a, pairs[k].b);
      const double delta = skew - mean[k];
      mean[k] += delta / static_cast<double>(s + 1);
      m2[k] += delta * (skew - mean[k]);
      mean_abs[k] += (std::fabs(skew) - mean_abs[k]) /
                     static_cast<double>(s + 1);
      worst[k] = std::max(worst[k], std::fabs(skew));
      if (std::fabs(skew) > criticality_options.skew_threshold) ++exceed[k];
    }
  }

  const double n = static_cast<double>(criticality_options.samples);
  for (std::size_t k = 0; k < n_pairs; ++k) {
    pairs[k].mean_abs_skew = mean_abs[k];
    pairs[k].sigma_skew =
        criticality_options.samples > 1 ? std::sqrt(m2[k] / (n - 1.0)) : 0.0;
    pairs[k].max_abs_skew = worst[k];
    pairs[k].exceed_probability = static_cast<double>(exceed[k]) / n;
  }

  std::sort(pairs.begin(), pairs.end(),
            [](const PairCriticality& x, const PairCriticality& y) {
              if (x.exceed_probability != y.exceed_probability) {
                return x.exceed_probability > y.exceed_probability;
              }
              return x.sigma_skew > y.sigma_skew;
            });
  return pairs;
}

}  // namespace sks::clocktree
