// Transistor-level expansion of routed clock trees.
//
// The topology layer (topology.hpp, htree.hpp, dme.hpp) answers skew
// questions with Elmore analysis; the paper's testing scheme ultimately
// lives at the electrical level, where the engine solves the full MNA
// system.  `to_circuit` bridges the two: every routed edge becomes a chain
// of RC L-sections, every sink its pin load, and every node flagged
// `buffered` a two-inverter repowering stage (the same device recipe as
// esim::benchnets, via add_repower_buffer, so both generators stress the
// solver identically).
//
// `make_big_clock_tree` composes the generators into the deterministic
// paper-realistic nets ROADMAP item 2 asks for: H-tree or zero-skew-DME
// topologies at 10k-100k MNA unknowns, symmetric buffering every N levels,
// and optional resistive-open defect injection on a chosen edge.  Same
// options, same netlist (names and device order included), so
// fixed-workload bench counters are reproducible run to run.
#pragma once

#include <cstddef>
#include <vector>

#include "clocktree/topology.hpp"
#include "esim/netlist.hpp"
#include "esim/waveform.hpp"

namespace sks::clocktree {

struct ElectricalOptions {
  WireModel wire;            // per-edge R/C; `segments` L-sections per edge
  double vdd = 5.0;          // supply [V]
  double driver_resistance = 25.0;  // clock driver output impedance [ohm]
  esim::PulseSpec clock{};   // root clock (v1 is forced to vdd)
  // Per-edge wire-resistance multipliers, indexed by tree node (the edge
  // runs from the node to its parent); empty = pristine.  This is the
  // electrical twin of AnalysisOptions::edge_r_scale — a resistive open is
  // a large multiplier on one edge.
  std::vector<double> edge_r_scale;

  double edge_r(std::size_t i) const {
    return edge_r_scale.empty() ? 1.0 : edge_r_scale.at(i);
  }
};

struct ElectricalNet {
  esim::Circuit circuit;
  esim::NodeId root;                    // driven end of the tree root
  // Topology node -> its electrical node (the far end of the node's edge,
  // before any buffer at that node).
  std::vector<esim::NodeId> node_of;
  std::vector<esim::NodeId> sinks;      // electrical nodes of topology sinks
  // The routed topology the circuit was expanded from (post-buffering for
  // make_big_clock_tree).  `tree.sinks()[j]` is the topology index behind
  // `sinks[j]`, which is how callers pick a defect_node deterministically.
  ClockTree tree;
};

// Expand a routed ClockTree into an esim::Circuit.  Throws sks::Error on
// degenerate options (non-positive vdd/driver resistance, negative wire
// values, zero segments).
ElectricalNet to_circuit(const ClockTree& tree,
                         const ElectricalOptions& options);

enum class BigTreeTopology {
  kHTree,  // symmetric H (build_h_tree): zero nominal skew by construction
  kDme,    // zero-skew merge (build_zero_skew_tree) over a regular sink grid
};

struct BigClockTreeOptions {
  BigTreeTopology topology = BigTreeTopology::kHTree;
  // 4^levels sinks (H-tree levels; the DME grid is 2^levels x 2^levels).
  // With the default 4 wire segments per edge this lands at roughly 2k MNA
  // unknowns for levels = 4, 8k for 5, 33k for 6, 131k for 7.
  std::size_t levels = 5;
  double chip_width = 8e-3;  // [m] square die edge
  double sink_cap = 50e-15;  // flip-flop clock pin load [F]
  // Symmetric repowering cadence in H-levels (every `buffer_every`-th level
  // gets buffers on all its subtree roots; 0 = bare RC).  The DME topology
  // uses cap-limited clustering instead, seeded from the same wire model.
  std::size_t buffer_every = 2;
  WireModel wire;
  double vdd = 5.0;
  double driver_resistance = 25.0;
  esim::PulseSpec clock{};
  // Deterministic defect injection: multiply the wire resistance of the
  // edge above topology node `defect_node` (0 = pristine; the root has no
  // edge).  25x on a sink edge is a resistive open big enough to push that
  // leaf's skew past the paper's sensing threshold.
  std::size_t defect_node = 0;
  double defect_r_scale = 25.0;
};

// The returned net's `sinks` are in deterministic topology order, so tests
// can pick leaf pairs for sensor attachment reproducibly.
ElectricalNet make_big_clock_tree(const BigClockTreeOptions& options);

}  // namespace sks::clocktree
