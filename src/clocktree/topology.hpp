// Clock-tree topology and arrival-time analysis.
//
// A ClockTree is the logical distribution structure: a rooted tree of
// routing points with wire lengths on the edges, optional buffers at nodes
// ("the clock distribution tree is implemented in a hierarchical way, with
// buffers driving optimized interconnection networks"), and flip-flop clock
// pins (sinks) at the leaves.
//
// `analyze()` computes the arrival time and a slew proxy at every node by
// decomposing the tree into buffer stages, expanding each stage's wiring
// into a segmented RC tree, and running Elmore / second-moment analysis per
// stage.  Defect and variation hooks enter as per-edge R/C multipliers and
// per-buffer delay multipliers, which is how the defect and Monte-Carlo
// layers perturb a tree without rebuilding it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "clocktree/geometry.hpp"
#include "clocktree/rctree.hpp"
#include "clocktree/wire.hpp"

namespace sks::clocktree {

struct ClockTreeNode {
  std::string name;
  Point pos;
  std::size_t parent = 0;      // own index for the root
  double wire_length = 0.0;    // routed length to parent [m] (>= manhattan)
  bool buffered = false;       // buffer driving this node's subtree
  double sink_cap = 0.0;       // > 0 marks a sink (flip-flop clock pin)
  std::vector<std::size_t> children;

  bool is_sink() const { return sink_cap > 0.0; }
};

class ClockTree {
 public:
  explicit ClockTree(Point root_pos = {}, std::string root_name = "clkgen");

  std::size_t size() const { return nodes_.size(); }
  const ClockTreeNode& node(std::size_t i) const { return nodes_.at(i); }
  ClockTreeNode& node(std::size_t i) { return nodes_.at(i); }
  std::size_t root() const { return 0; }

  // Add a routing point / sink under `parent`.  `wire_length` defaults to
  // the Manhattan distance (pass a larger value for snaked routes).
  std::size_t add_node(std::size_t parent, Point pos, double wire_length = -1.0,
                       std::string name = {});

  void set_buffer(std::size_t i, bool buffered = true);
  void set_sink(std::size_t i, double sink_cap);

  std::vector<std::size_t> sinks() const;
  // Total routed wirelength [m].
  double total_wire_length() const;
  // Nodes on the path from `i` up to the root, inclusive.
  std::vector<std::size_t> path_to_root(std::size_t i) const;

 private:
  std::vector<ClockTreeNode> nodes_;
};

struct AnalysisOptions {
  WireModel wire;
  BufferModel buffer;
  double source_resistance = 250.0;  // clock generator output [ohm]

  // Perturbation hooks (empty => all 1.0).  Indexed by tree node; the edge
  // multipliers apply to the wire from node i to its parent.
  std::vector<double> edge_r_scale;
  std::vector<double> edge_c_scale;
  std::vector<double> buffer_delay_scale;
  std::vector<double> sink_cap_scale;

  double edge_r(std::size_t i) const {
    return edge_r_scale.empty() ? 1.0 : edge_r_scale.at(i);
  }
  double edge_c(std::size_t i) const {
    return edge_c_scale.empty() ? 1.0 : edge_c_scale.at(i);
  }
  double buf_scale(std::size_t i) const {
    return buffer_delay_scale.empty() ? 1.0 : buffer_delay_scale.at(i);
  }
  double sink_scale(std::size_t i) const {
    return sink_cap_scale.empty() ? 1.0 : sink_cap_scale.at(i);
  }
};

struct ArrivalAnalysis {
  std::vector<double> arrival;     // per tree node [s]
  std::vector<double> slew_sigma;  // impulse-response sigma per node [s]

  // Skew between two nodes (arrival difference a - b).
  double skew(std::size_t a, std::size_t b) const {
    return arrival.at(a) - arrival.at(b);
  }
};

ArrivalAnalysis analyze(const ClockTree& tree, const AnalysisOptions& options);

// Convenience skew summaries over the tree's sinks.
double max_sink_skew(const ClockTree& tree, const ArrivalAnalysis& analysis);

struct SinkPair {
  std::size_t a = 0, b = 0;
  double skew = 0.0;      // arrival(a) - arrival(b) [s]
  double distance = 0.0;  // Manhattan distance between the sinks [m]
};

std::vector<SinkPair> all_sink_pairs(const ClockTree& tree,
                                     const ArrivalAnalysis& analysis);

}  // namespace sks::clocktree
