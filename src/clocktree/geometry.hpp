// Planar geometry for clock routing (Manhattan metric).
#pragma once

#include <cmath>

namespace sks::clocktree {

struct Point {
  double x = 0.0;  // [m]
  double y = 0.0;  // [m]

  friend bool operator==(const Point&, const Point&) = default;
};

inline double manhattan(const Point& a, const Point& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline Point lerp(const Point& a, const Point& b, double t) {
  return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

// Point at Manhattan distance `dist` from `a` along an L-shaped (x-first)
// path from `a` to `b`.  `dist` is clamped to [0, manhattan(a,b)].
Point along_l_path(const Point& a, const Point& b, double dist);

}  // namespace sks::clocktree
