#include "clocktree/htree.hpp"

#include "util/error.hpp"

namespace sks::clocktree {

namespace {

// Recursively emit one level of the H: from the centre node, route the
// horizontal bar to the two arm centres, then the vertical half-bars to the
// four quadrant centres.
void emit_level(ClockTree& tree, std::size_t centre_node, Point centre,
                double span, std::size_t level, const HTreeOptions& options) {
  if (level == options.levels) {
    // Leaf: attach the sink right here.
    tree.set_sink(centre_node, options.sink_cap);
    return;
  }
  const double arm = span / 4.0;
  // Horizontal bar endpoints.
  const Point left{centre.x - arm, centre.y};
  const Point right{centre.x + arm, centre.y};
  const std::size_t left_node = tree.add_node(centre_node, left);
  const std::size_t right_node = tree.add_node(centre_node, right);
  // Vertical half-bars to the quadrant centres.
  for (const auto& [bar_node, bar_pos] :
       {std::pair{left_node, left}, std::pair{right_node, right}}) {
    for (const double dy : {-arm, +arm}) {
      const Point quadrant{bar_pos.x, bar_pos.y + dy};
      const std::size_t q_node = tree.add_node(bar_node, quadrant);
      if (level + 1 < options.buffer_levels) tree.set_buffer(q_node);
      emit_level(tree, q_node, quadrant, span / 2.0, level + 1, options);
    }
  }
}

}  // namespace

ClockTree build_h_tree(const HTreeOptions& options) {
  sks::check(options.levels >= 1, "build_h_tree: need at least one level");
  sks::check(options.chip_width > 0.0, "build_h_tree: bad chip width");
  const Point centre{options.chip_width / 2.0, options.chip_width / 2.0};
  ClockTree tree(centre);
  if (options.buffer_levels > 0) {
    // Root buffer is implicit in the analysis source resistance; mark the
    // centre itself unbuffered and start the H recursion.
  }
  emit_level(tree, tree.root(), centre, options.chip_width, 0, options);
  return tree;
}

}  // namespace sks::clocktree
