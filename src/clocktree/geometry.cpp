#include "clocktree/geometry.hpp"

#include <algorithm>

namespace sks::clocktree {

Point along_l_path(const Point& a, const Point& b, double dist) {
  const double total = manhattan(a, b);
  dist = std::clamp(dist, 0.0, total);
  const double leg_x = std::fabs(b.x - a.x);
  if (dist <= leg_x) {
    const double step = (b.x >= a.x) ? dist : -dist;
    return Point{a.x + step, a.y};
  }
  const double rest = dist - leg_x;
  const double step = (b.y >= a.y) ? rest : -rest;
  return Point{b.x, a.y + step};
}

}  // namespace sks::clocktree
