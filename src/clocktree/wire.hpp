// Interconnect and buffer models for clock distribution.
//
// Values default to a mid-90s 1.2um-class metal layer (the technology of
// the paper's evaluation): r ~ 0.07 ohm/um, c ~ 0.2 fF/um, and a clock
// buffer with a few-hundred-ohm drive.
#pragma once

#include <cstddef>

namespace sks::clocktree {

struct WireModel {
  double r_per_m = 0.07e6;   // [ohm/m]  (0.07 ohm/um)
  double c_per_m = 0.2e-9;   // [F/m]    (0.2 fF/um)
  // Number of pi-sections a wire is chopped into when expanded into an
  // RcTree.  More sections converge to the distributed line; 4 keeps the
  // Elmore error < 2% for the lengths used here.
  std::size_t segments = 4;

  double resistance(double length) const { return r_per_m * length; }
  double capacitance(double length) const { return c_per_m * length; }
};

struct BufferModel {
  double input_cap = 40e-15;     // [F]
  double drive_resistance = 250; // [ohm]
  double intrinsic_delay = 120e-12;  // [s]
};

}  // namespace sks::clocktree
