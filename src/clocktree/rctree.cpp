#include "clocktree/rctree.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sks::clocktree {

RcTree::RcTree(double root_cap, std::string root_name) {
  parent_.push_back(0);
  res_.push_back(0.0);
  cap_.push_back(root_cap);
  name_.push_back(std::move(root_name));
  children_.emplace_back();
}

std::size_t RcTree::add_node(std::size_t parent, double resistance,
                             double capacitance, std::string name) {
  sks::check(parent < parent_.size(), "RcTree::add_node: bad parent index");
  sks::check(resistance >= 0.0, "RcTree::add_node: negative resistance");
  sks::check(capacitance >= 0.0, "RcTree::add_node: negative capacitance");
  const std::size_t index = parent_.size();
  parent_.push_back(parent);
  res_.push_back(resistance);
  cap_.push_back(capacitance);
  name_.push_back(name.empty() ? "n" + std::to_string(index) : std::move(name));
  children_.emplace_back();
  children_[parent].push_back(index);
  return index;
}

void RcTree::set_resistance(std::size_t i, double r) {
  sks::check(i > 0 && i < res_.size(), "RcTree::set_resistance: bad index");
  sks::check(r >= 0.0, "RcTree::set_resistance: negative resistance");
  res_[i] = r;
}

double RcTree::total_cap() const {
  double total = 0.0;
  for (double c : cap_) total += c;
  return total;
}

std::vector<double> RcTree::downstream_caps() const {
  // Children always have larger indices than their parents, so one reverse
  // sweep accumulates subtree sums.
  std::vector<double> down = cap_;
  for (std::size_t i = size(); i-- > 1;) {
    down[parent_[i]] += down[i];
  }
  return down;
}

std::vector<double> RcTree::path_weighted_sum(
    const std::vector<double>& weights, double source_resistance) const {
  sks::check(weights.size() == size(), "RcTree: weight vector size mismatch");
  std::vector<double> down = weights;
  for (std::size_t i = size(); i-- > 1;) {
    down[parent_[i]] += down[i];
  }
  std::vector<double> out(size(), 0.0);
  out[0] = source_resistance * down[0];
  for (std::size_t i = 1; i < size(); ++i) {
    out[i] = out[parent_[i]] + res_[i] * down[i];
  }
  return out;
}

std::vector<double> RcTree::elmore_delays(double source_resistance) const {
  return path_weighted_sum(cap_, source_resistance);
}

std::vector<double> RcTree::second_moments(double source_resistance) const {
  const std::vector<double> m1 = elmore_delays(source_resistance);
  std::vector<double> weights(size());
  for (std::size_t i = 0; i < size(); ++i) weights[i] = cap_[i] * m1[i];
  return path_weighted_sum(weights, source_resistance);
}

std::vector<double> RcTree::sigma(double source_resistance) const {
  const std::vector<double> m1 = elmore_delays(source_resistance);
  const std::vector<double> m2 = second_moments(source_resistance);
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const double var = 2.0 * m2[i] - m1[i] * m1[i];
    out[i] = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return out;
}

}  // namespace sks::clocktree
