// Crosstalk on clock wires — one of the failure mechanisms the paper's
// introduction lists ("crosstalk faults and environmental failures,
// typically due to wire coupling").
//
// Deterministic timing-window analysis: an aggressor net couples C_c onto a
// victim clock edge.  If the aggressor switches while the victim edge is in
// flight, the coupling capacitance appears Miller-amplified (factor up to 2
// for opposite-direction switching, down to 0 for same-direction), slowing
// (or speeding up) every sink under the victim wire.  The result is both a
// worst-case delta-delay bound and a `TreeDefect` that plugs into the
// testing-scheme simulation with the overlap probability as its per-cycle
// activation probability.
#pragma once

#include <cstddef>

#include "clocktree/defects.hpp"
#include "clocktree/topology.hpp"

namespace sks::clocktree {

struct Aggressor {
  std::size_t victim_edge = 0;   // tree node: the coupled wire is the edge
                                 // from this node to its parent
  double coupling_cap = 50e-15;  // total coupling capacitance [F]
  // The aggressor's switching window within the clock cycle, relative to
  // the victim clock's launch (t = 0 at the clock source) [s].
  double window_start = 0.0;
  double window_end = 0.0;
  bool opposite_direction = true;  // worst case: Miller factor 2
  // Fraction of cycles on which the aggressor actually switches.
  double activity = 0.5;
};

struct CrosstalkAssessment {
  bool windows_overlap = false;  // aggressor can hit the victim in flight
  double victim_window_start = 0.0;  // victim transition window at the edge
  double victim_window_end = 0.0;
  double miller_factor = 0.0;        // applied coupling amplification
  double worst_delta_delay = 0.0;    // max extra sink delay when hit [s]
  double worst_delta_skew = 0.0;     // max extra sink-pair skew when hit [s]
  // Probability that a given cycle is affected: activity when windows
  // overlap, 0 otherwise.
  double hit_probability = 0.0;
};

// Assess one aggressor against the tree (nominal parameters + any
// perturbations already in `options`).
CrosstalkAssessment assess_crosstalk(const ClockTree& tree,
                                     const AnalysisOptions& options,
                                     const Aggressor& aggressor);

// Fold the assessment into a transient TreeDefect for scheme simulation.
// Returns a defect with activation probability = hit_probability; when the
// windows cannot overlap the defect is returned with probability 0.
TreeDefect crosstalk_defect(const ClockTree& tree,
                            const AnalysisOptions& options,
                            const Aggressor& aggressor);

}  // namespace sks::clocktree
