// Buffer insertion for clock trees.
//
// Two strategies, reflecting the trade-off the paper sketches ("buffer
// insertion implies extra delays, so that an optimal tradeoff between the
// extra delay and skew minimization should be found"):
//
//  * cap-limited clustering — the classical bottom-up rule: whenever the
//    unbuffered downstream load exceeds a limit, drop a buffer.  Cheap and
//    load-aware, but it buffers asymmetrically on irregular trees, creating
//    exactly the systematic skew the sensing scheme guards against;
//  * symmetric level buffering — buffer every node at a given tree depth,
//    preserving the symmetry (and hence zero skew) of H-trees.
#pragma once

#include <cstddef>

#include "clocktree/topology.hpp"

namespace sks::clocktree {

struct BufferingOptions {
  WireModel wire;
  BufferModel buffer;
  // A buffer is inserted where the accumulated unbuffered load (wire +
  // sinks + downstream buffer inputs) exceeds this limit.
  double max_stage_cap = 400e-15;  // [F]
};

// Cap-limited clustering; returns the number of buffers inserted.
std::size_t insert_buffers_by_cap(ClockTree& tree,
                                  const BufferingOptions& options);

// Buffer every node at the given depth (root = depth 0); returns the count.
std::size_t insert_buffers_at_depth(ClockTree& tree, std::size_t depth,
                                    const BufferingOptions& options);

}  // namespace sks::clocktree
