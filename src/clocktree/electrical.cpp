#include "clocktree/electrical.hpp"

#include <algorithm>
#include <string>

#include "clocktree/buffering.hpp"
#include "clocktree/dme.hpp"
#include "clocktree/htree.hpp"
#include "esim/benchnets.hpp"
#include "util/error.hpp"

namespace sks::clocktree {

namespace {

// DME merges can place a tapping point on top of a child root, producing a
// zero-length edge; a zero-ohm resistor is an infinite conductance stamp,
// so every segment resistance gets this floor.  Far below any real wire —
// electrically invisible, numerically safe.
constexpr double kMinSegmentResistance = 1e-3;  // [ohm]

}  // namespace

ElectricalNet to_circuit(const ClockTree& tree,
                         const ElectricalOptions& options) {
  sks::check(options.vdd > 0.0, "to_circuit: vdd must be positive, got ",
             options.vdd);
  sks::check(options.driver_resistance > 0.0,
             "to_circuit: driver_resistance must be positive, got ",
             options.driver_resistance);
  sks::check(options.wire.r_per_m >= 0.0,
             "to_circuit: wire r_per_m must not be negative, got ",
             options.wire.r_per_m);
  sks::check(options.wire.c_per_m >= 0.0,
             "to_circuit: wire c_per_m must not be negative, got ",
             options.wire.c_per_m);
  sks::check(options.wire.segments >= 1,
             "to_circuit: wire.segments must be >= 1");
  if (!options.edge_r_scale.empty()) {
    sks::check(options.edge_r_scale.size() == tree.size(),
               "to_circuit: edge_r_scale has ", options.edge_r_scale.size(),
               " entries, tree has ", tree.size(), " nodes");
  }

  ElectricalNet net;
  net.tree = tree;
  esim::Circuit& c = net.circuit;

  const esim::NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, c.ground(), esim::Waveform::dc(options.vdd));
  const esim::NodeId ck_src = c.node("ck_src");
  esim::PulseSpec clock = options.clock;
  clock.v1 = options.vdd;
  c.add_vsource("vck", ck_src, c.ground(), esim::Waveform::pulse(clock));

  net.node_of.assign(tree.size(), esim::NodeId{});
  // Driven end per topology node: the node's own electrical node, or the
  // repowering buffer's output when the node is flagged buffered.
  std::vector<esim::NodeId> drive_of(tree.size());

  net.root = c.node("ct0");
  c.add_resistor("r_drv", ck_src, net.root, options.driver_resistance);
  net.node_of[0] = net.root;
  drive_of[0] = net.root;
  if (tree.node(0).buffered) {
    drive_of[0] = esim::add_repower_buffer(c, "b0", net.root, vdd,
                                           options.vdd);
  }

  // add_node() appends under an existing parent, so indices are already a
  // valid topological (parent-before-child) order.
  const std::size_t segments = options.wire.segments;
  for (std::size_t i = 1; i < tree.size(); ++i) {
    const ClockTreeNode& nd = tree.node(i);
    const double r_edge = std::max(
        options.wire.resistance(nd.wire_length) * options.edge_r(i),
        kMinSegmentResistance * static_cast<double>(segments));
    const double r_seg = r_edge / static_cast<double>(segments);
    const double c_seg = options.wire.capacitance(nd.wire_length) /
                         static_cast<double>(segments);
    const std::string tag = std::to_string(i);
    esim::NodeId prev = drive_of[nd.parent];
    for (std::size_t s = 0; s < segments; ++s) {
      const std::string seg_tag =
          s + 1 == segments ? tag : tag + "s" + std::to_string(s);
      const esim::NodeId next = c.node("ct" + seg_tag);
      c.add_resistor("r" + seg_tag, prev, next, r_seg);
      c.add_capacitor("c" + seg_tag, next, c.ground(), c_seg);
      prev = next;
    }
    net.node_of[i] = prev;
    if (nd.is_sink()) {
      c.add_capacitor("cs" + tag, prev, c.ground(), nd.sink_cap);
      net.sinks.push_back(prev);
    }
    drive_of[i] = prev;
    if (nd.buffered) {
      drive_of[i] =
          esim::add_repower_buffer(c, "b" + tag, prev, vdd, options.vdd);
    }
  }
  return net;
}

ElectricalNet make_big_clock_tree(const BigClockTreeOptions& options) {
  sks::check(options.levels >= 1,
             "make_big_clock_tree: levels must be >= 1, got ", options.levels);
  sks::check(options.levels <= 8,
             "make_big_clock_tree: levels must be <= 8 (4^levels sinks), got ",
             options.levels);
  sks::check(options.chip_width > 0.0,
             "make_big_clock_tree: chip_width must be positive, got ",
             options.chip_width);
  sks::check(options.sink_cap >= 0.0,
             "make_big_clock_tree: sink_cap must not be negative, got ",
             options.sink_cap);

  ClockTree tree = [&] {
    if (options.topology == BigTreeTopology::kHTree) {
      HTreeOptions h;
      h.levels = options.levels;
      h.chip_width = options.chip_width;
      h.sink_cap = options.sink_cap;
      h.buffer_levels = 0;  // buffering applied explicitly below
      ClockTree t = build_h_tree(h);
      if (options.buffer_every > 0) {
        BufferingOptions buf;
        buf.wire = options.wire;
        // H-tree geometry: one H-level spans two tree depths (bar node,
        // then quadrant node); buffers sit on the quadrant roots.
        for (std::size_t lev = options.buffer_every; lev < options.levels;
             lev += options.buffer_every) {
          insert_buffers_at_depth(t, 2 * lev, buf);
        }
      }
      return t;
    }
    // DME: a regular 2^levels x 2^levels sink grid, zero-skew merged.
    const std::size_t side = std::size_t{1} << options.levels;
    const double pitch = options.chip_width / static_cast<double>(side);
    std::vector<Sink> sinks;
    sinks.reserve(side * side);
    for (std::size_t gy = 0; gy < side; ++gy) {
      for (std::size_t gx = 0; gx < side; ++gx) {
        sinks.push_back(
            {Point{(static_cast<double>(gx) + 0.5) * pitch,
                   (static_cast<double>(gy) + 0.5) * pitch},
             options.sink_cap});
      }
    }
    DmeOptions dme;
    dme.wire = options.wire;
    dme.source = Point{options.chip_width / 2.0, options.chip_width / 2.0};
    ClockTree t = build_zero_skew_tree(sinks, dme);
    if (options.buffer_every > 0) {
      // The merge tree is irregular, so depth cadence is meaningless;
      // cap-limited clustering keeps each buffer stage's load comparable to
      // the H-tree variant's.
      BufferingOptions buf;
      buf.wire = options.wire;
      insert_buffers_by_cap(t, buf);
    }
    return t;
  }();

  ElectricalOptions elec;
  elec.wire = options.wire;
  elec.vdd = options.vdd;
  elec.driver_resistance = options.driver_resistance;
  elec.clock = options.clock;
  if (options.defect_node != 0) {
    sks::check(options.defect_node < tree.size(),
               "make_big_clock_tree: defect_node ", options.defect_node,
               " out of range, tree has ", tree.size(), " nodes");
    sks::check(options.defect_r_scale > 0.0,
               "make_big_clock_tree: defect_r_scale must be positive, got ",
               options.defect_r_scale);
    elec.edge_r_scale.assign(tree.size(), 1.0);
    elec.edge_r_scale[options.defect_node] = options.defect_r_scale;
  }
  return to_circuit(tree, elec);
}

}  // namespace sks::clocktree
