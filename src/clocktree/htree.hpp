// H-tree clock distribution generator.
//
// The classical symmetric distribution (Bakoglu [1]): each level of the H
// splits the region into four quadrants, halving the span; sinks sit on a
// regular 2^L x 2^L grid.  By construction every root-to-sink path has the
// same length, so the nominal skew is zero and the symmetry gives the
// "couples of wires close to each other" that the paper's Fig. 6 exploits
// to attach sensing circuits with balanced connections.
#pragma once

#include <cstddef>

#include "clocktree/topology.hpp"

namespace sks::clocktree {

struct HTreeOptions {
  std::size_t levels = 3;        // 4^levels sinks
  double chip_width = 8e-3;      // [m] square die edge
  double sink_cap = 50e-15;      // flip-flop clock pin load [F]
  // Insert a buffer at the centre of every level below this depth
  // (0 = no buffers; 2 = buffers at levels 0 and 1 centres).
  std::size_t buffer_levels = 2;
};

ClockTree build_h_tree(const HTreeOptions& options);

}  // namespace sks::clocktree
