// Zero-skew clock routing (after Chao, Hsu, Ho, Boese & Kahng [3] and
// Boese & Kahng [2]).
//
// This implements the exact zero-skew merge under the Elmore model on a
// recursively-partitioned connection topology:
//
//  * topology: sinks are split recursively by the median of the wider
//    coordinate (a standard balanced bipartition, as in the DME literature);
//  * merge: two zero-skew subtrees A and B are joined by a wire of length
//    d = manhattan(root_A, root_B); the tapping point at distance x*d from
//    A solves
//        t_A + r x d (c x d / 2 + C_A) = t_B + r (1-x) d (c (1-x) d / 2 + C_B)
//    (Chao et al.'s formula).  When x falls outside [0,1] the short side is
//    connected directly and the long side's wire is elongated (snaking), the
//    classical remedy.
//
// The difference from full DME: we commit each subtree root to a concrete
// embedding immediately (the tapping point on the L-shaped path between the
// two child roots) instead of deferring it as a merging segment.  Skew is
// still exactly zero under Elmore; only a few percent of wirelength
// optimality is given up.  DESIGN.md §6 records the simplification.
#pragma once

#include <vector>

#include "clocktree/topology.hpp"

namespace sks::clocktree {

struct Sink {
  Point pos;
  double cap = 50e-15;  // [F]
};

struct DmeOptions {
  WireModel wire;
  // Position of the clock source; the tree root is routed to it.
  Point source{0.0, 0.0};
};

// Build a zero-skew tree over the sinks.  The returned ClockTree is rooted
// at the source, is unbuffered, and has exactly-balanced Elmore delays to
// every sink (verified by tests to < 1 fs).
ClockTree build_zero_skew_tree(const std::vector<Sink>& sinks,
                               const DmeOptions& options);

}  // namespace sks::clocktree
