#include "clocktree/buffering.hpp"

#include <functional>

namespace sks::clocktree {

std::size_t insert_buffers_by_cap(ClockTree& tree,
                                  const BufferingOptions& options) {
  std::size_t inserted = 0;
  // Bottom-up: stage_cap(v) = load seen looking into v's subtree, cut at
  // buffered nodes (which present their input cap instead).
  std::function<double(std::size_t)> visit = [&](std::size_t v) -> double {
    const ClockTreeNode& n = tree.node(v);
    double load = n.sink_cap;
    for (const std::size_t c : n.children) {
      const double child_load =
          visit(c) + options.wire.capacitance(tree.node(c).wire_length);
      load += child_load;
    }
    if (v != tree.root() && !n.is_sink() && load > options.max_stage_cap &&
        !n.buffered) {
      tree.set_buffer(v);
      ++inserted;
    }
    return tree.node(v).buffered ? options.buffer.input_cap : load;
  };
  visit(tree.root());
  return inserted;
}

std::size_t insert_buffers_at_depth(ClockTree& tree, std::size_t depth,
                                    const BufferingOptions& options) {
  (void)options;
  std::size_t inserted = 0;
  std::function<void(std::size_t, std::size_t)> visit =
      [&](std::size_t v, std::size_t d) {
        if (d == depth && v != tree.root() && !tree.node(v).is_sink()) {
          if (!tree.node(v).buffered) {
            tree.set_buffer(v);
            ++inserted;
          }
          return;  // one buffer per root-to-leaf path at this depth
        }
        for (const std::size_t c : tree.node(v).children) visit(c, d + 1);
      };
  visit(tree.root(), 0);
  return inserted;
}

}  // namespace sks::clocktree
