// Batched structure-of-arrays transient solver.
//
// The paper's V_min(tau) characterization is a Monte-Carlo sweep over
// process parameters of ONE fixed sensor topology: every sample shares the
// circuit structure, the MNA stamp pattern, the sparse fill pattern and the
// frozen pivot order, and differs only in device parameter values and
// source waveforms.  BatchSimulator exploits that: it evaluates K
// structure-identical samples ("lanes") at once, with every per-unknown and
// per-device quantity stored lane-contiguous (`slot * K + lane`), so
//
//  * level-1 MOSFET evaluation, residual accumulation and Newton updates
//    are plain dense loops over the lane axis that auto-vectorize,
//  * the Jacobian template memcpy covers all lanes at once, and
//  * LU refactorization and the triangular solves replay ONE frozen
//    symbolic factorization as blocked multi-RHS sweeps (esim::BatchLu).
//
// Numerics contract: each lane runs the SAME algorithm as the scalar
// Simulator — identical Newton protocol (damping, vtol/itol, the
// residual-check trip), identical fixed-step transient loop (per-lane
// breakpoints, sliver skipping, the post-breakpoint backward-Euler step,
// in-batch trapezoidal -> BE retry), identical companion-model updates.
// Lanes do NOT share a time grid: each advances on its own breakpoint
// schedule, so a lane's trajectory matches what the scalar solver would
// compute up to floating-point association differences (<= ~1e-9 on the
// sensor benches; tests/esim/test_batch.cpp pins the bound).
//
// Divergence handling: batching freezes the decisions the scalar solver
// makes adaptively (pivot order, DC continuation ladder, dt halving).  A
// lane that needs any of them — a degenerate frozen pivot, a rejected
// Newton step after the BE retry, a DC solve that wants the gmin/source
// ladder — falls out of the batch and is re-run on the scalar Simulator
// (the golden path, including its ConvergenceError reporting and
// postmortem bundles); its result is spliced back in lane order.  The
// batch itself never throws for a lane failure.
//
// A BatchSimulator is share-nothing like the scalar Simulator: campaign
// drivers run one instance per worker with no locking.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "esim/engine.hpp"
#include "esim/netlist.hpp"

namespace sks::esim {

// Per-lane run outcome.  `result` is valid when `simulated`; a lane whose
// scalar fallback raised ConvergenceError reports it here instead of
// throwing (mirroring how the campaign layers treat unsimulated samples).
struct BatchLaneOutcome {
  TransientResult result;
  bool simulated = false;
  bool fell_back = false;  // retired from the batch to the scalar Simulator
  std::string failure;     // ConvergenceError message when !simulated
  std::string bundle;      // postmortem bundle path, when one was written
};

// Per-run batch telemetry, also mirrored into the obs registry counters
// batch.lanes / batch.fallbacks / batch.refactorizations.
struct BatchRunStats {
  std::size_t lanes = 0;
  std::size_t fallbacks = 0;
  // SoA refactorization sweeps; each covers every lane, so the scalar-
  // equivalent count is refactor_passes * lanes.
  std::size_t refactor_passes = 0;
};

class BatchSimulator {
 public:
  // All lane circuits must be pairwise structure_compatible(); checked.
  // Lane order is preserved through to run_transients() results.
  explicit BatchSimulator(std::vector<Circuit> lanes);
  ~BatchSimulator();
  BatchSimulator(BatchSimulator&&) noexcept;
  BatchSimulator& operator=(BatchSimulator&&) noexcept;

  // Same topology test the batch requires: equal node counts, equal device
  // counts per kind, and every device connected to the same node indices.
  // Parameter values (including MOSFET channel type — the sign is a
  // per-lane parameter), fault modes and source waveforms are free to
  // differ per lane.
  static bool structure_compatible(const Circuit& a, const Circuit& b);

  std::size_t lanes() const;

  // Run one fixed-step transient per lane (options[i] drives lane i; one
  // entry total is also accepted and broadcast).  Lanes requesting
  // adaptive timestepping are retired to the scalar path immediately — the
  // batch only locks steps for the fixed-dt schedule the MC sweep uses.
  std::vector<BatchLaneOutcome> run_transients(
      const std::vector<TransientOptions>& options);

  const BatchRunStats& last_batch_stats() const;

  // Test hook (tests/esim/test_batch.cpp): make every Newton attempt of
  // `lane` whose target time reaches `t` fail, forcing the in-batch BE
  // retry and then the scalar fallback for that lane mid-transient.
  void force_step_rejection_for_test(std::size_t lane, double t);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Lane-width resolution shared by the scheme/fault drivers: `requested`
// wins when nonzero; otherwise the SKS_BATCH environment variable ("0",
// "1" or "off" disable batching, an integer >= 2 sets the width); otherwise
// `auto_default`.  The result is clamped to [1, kMaxBatchLanes]; 1 means
// "use the scalar path".
std::size_t resolve_batch_lanes(std::size_t requested,
                                std::size_t auto_default);

// 32 lanes measured fastest per sample on the fig5 population (the
// per-round sparse-structure traversal amortizes across the lane stripe;
// 64 regresses from cache pressure — see EXPERIMENTS.md).
inline constexpr std::size_t kDefaultBatchLanes = 32;
inline constexpr std::size_t kMaxBatchLanes = 64;

}  // namespace sks::esim
