#include "esim/spice_io.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace sks::esim {

namespace {

std::string num(double v) { return util::fmt_sci(v, 9); }

// The card type is carried by the name's first letter; devices whose
// programmatic name starts with another letter (the paper's MOSFETs are
// called "a".."l") get a conforming prefix on output.  write(parse(s)) is
// then a fixpoint of s.
std::string card_name(char letter, const std::string& name) {
  if (!name.empty() &&
      std::toupper(static_cast<unsigned char>(name[0])) == letter) {
    return name;
  }
  return std::string(1, letter) + "_" + name;
}

std::string waveform_to_string(const Waveform& w) {
  std::ostringstream os;
  switch (w.kind()) {
    case WaveKind::kDc:
      os << "DC " << num(w.dc_level());
      break;
    case WaveKind::kPulse: {
      const PulseSpec& p = w.pulse_spec();
      os << "PULSE(" << num(p.v0) << ' ' << num(p.v1) << ' ' << num(p.delay)
         << ' ' << num(p.rise) << ' ' << num(p.fall) << ' ' << num(p.width)
         << ' ' << num(p.period) << ')';
      break;
    }
    case WaveKind::kPwl: {
      os << "PWL(";
      const auto& ts = w.pwl_times();
      const auto& vs = w.pwl_values();
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (i) os << ' ';
        os << num(ts[i]) << ' ' << num(vs[i]);
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

// Tokenizer that keeps parenthesized groups intact as value lists.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' ||
        ch == ')' || ch == ',') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw NetlistError("spice parse error at line " +
                     std::to_string(line_number) + ": " + message);
}

struct Parser {
  Circuit circuit;
  std::size_t line_number = 0;

  double number(const std::string& token) {
    try {
      return parse_spice_number(token);
    } catch (const NetlistError& e) {
      fail(line_number, e.what());
    }
  }

  // key=value lookup within tokens [from, end).
  double keyed(const std::vector<std::string>& tokens, std::size_t from,
               const std::string& key, double fallback, bool required) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
      const std::string up = upper(tokens[i]);
      if (up.rfind(key + "=", 0) == 0) {
        return number(tokens[i].substr(key.size() + 1));
      }
    }
    if (required) fail(line_number, "missing " + key + "= parameter");
    return fallback;
  }

  Waveform source_waveform(const std::vector<std::string>& tokens,
                           std::size_t from) {
    if (from >= tokens.size()) fail(line_number, "missing source value");
    const std::string kind = upper(tokens[from]);
    if (kind == "DC") {
      if (from + 1 >= tokens.size()) fail(line_number, "missing DC level");
      return Waveform::dc(number(tokens[from + 1]));
    }
    if (kind == "PULSE") {
      if (tokens.size() - from - 1 < 7) {
        fail(line_number, "PULSE needs 7 values");
      }
      PulseSpec p;
      p.v0 = number(tokens[from + 1]);
      p.v1 = number(tokens[from + 2]);
      p.delay = number(tokens[from + 3]);
      p.rise = number(tokens[from + 4]);
      p.fall = number(tokens[from + 5]);
      p.width = number(tokens[from + 6]);
      p.period = number(tokens[from + 7]);
      return Waveform::pulse(p);
    }
    if (kind == "PWL") {
      const std::size_t count = tokens.size() - (from + 1);
      if (count == 0 || count % 2 != 0) {
        fail(line_number, "PWL needs time/value pairs");
      }
      std::vector<double> ts;
      std::vector<double> vs;
      for (std::size_t i = from + 1; i + 1 < tokens.size(); i += 2) {
        ts.push_back(number(tokens[i]));
        vs.push_back(number(tokens[i + 1]));
      }
      return Waveform::pwl(std::move(ts), std::move(vs));
    }
    // Bare value: treat as DC.
    return Waveform::dc(number(tokens[from]));
  }

  void parse_line(const std::string& raw) {
    ++line_number;
    const std::string line = raw.substr(0, raw.find(';'));
    if (line.empty() || line[0] == '*') return;
    const auto tokens = tokenize(line);
    if (tokens.empty()) return;
    const std::string head = upper(tokens[0]);
    if (head == ".END" || head == ".TITLE") return;

    const char kind = head[0];
    const std::string name = tokens[0];
    switch (kind) {
      case 'R': {
        if (tokens.size() < 4) fail(line_number, "R needs 2 nodes + value");
        circuit.add_resistor(name, circuit.node(tokens[1]),
                             circuit.node(tokens[2]), number(tokens[3]));
        break;
      }
      case 'C': {
        if (tokens.size() < 4) fail(line_number, "C needs 2 nodes + value");
        circuit.add_capacitor(name, circuit.node(tokens[1]),
                              circuit.node(tokens[2]), number(tokens[3]));
        break;
      }
      case 'V': {
        if (tokens.size() < 4) fail(line_number, "V needs 2 nodes + source");
        circuit.add_vsource(name, circuit.node(tokens[1]),
                            circuit.node(tokens[2]),
                            source_waveform(tokens, 3));
        break;
      }
      case 'I': {
        if (tokens.size() < 4) fail(line_number, "I needs 2 nodes + source");
        circuit.add_isource(name, circuit.node(tokens[1]),
                            circuit.node(tokens[2]),
                            source_waveform(tokens, 3));
        break;
      }
      case 'M': {
        if (tokens.size() < 5) {
          fail(line_number, "M needs drain gate source type");
        }
        MosParams params;
        const std::string type = upper(tokens[4]);
        if (type == "NMOS") {
          params.type = MosType::kNmos;
        } else if (type == "PMOS") {
          params.type = MosType::kPmos;
        } else {
          fail(line_number, "device type must be NMOS or PMOS");
        }
        params.w = keyed(tokens, 5, "W", params.w, true);
        params.l = keyed(tokens, 5, "L", params.l, true);
        params.kprime = keyed(tokens, 5, "KP", params.kprime, false);
        params.vt = keyed(tokens, 5, "VT", params.vt, false);
        params.lambda = keyed(tokens, 5, "LAMBDA", params.lambda, false);
        params.full_on_vgs = keyed(tokens, 5, "VON", params.full_on_vgs,
                                   false);
        const MosfetId id = circuit.add_mosfet(
            name, params, circuit.node(tokens[2]), circuit.node(tokens[1]),
            circuit.node(tokens[3]));
        for (std::size_t i = 5; i < tokens.size(); ++i) {
          const std::string up = upper(tokens[i]);
          if (up == "STUCKOPEN") circuit.mosfet(id).fault = MosFault::kStuckOpen;
          if (up == "STUCKON") circuit.mosfet(id).fault = MosFault::kStuckOn;
        }
        break;
      }
      default:
        fail(line_number, "unknown card '" + tokens[0] + "'");
    }
  }
};

}  // namespace

std::string write_spice(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  os << "* " << (title.empty() ? "skewsense netlist" : title) << '\n';
  for (const auto& r : circuit.resistors()) {
    os << card_name('R', r.name) << ' ' << circuit.node_name(r.a) << ' '
       << circuit.node_name(r.b) << ' ' << num(r.resistance) << '\n';
  }
  for (const auto& c : circuit.capacitors()) {
    os << card_name('C', c.name) << ' ' << circuit.node_name(c.a) << ' '
       << circuit.node_name(c.b) << ' ' << num(c.capacitance) << '\n';
  }
  for (const auto& v : circuit.vsources()) {
    os << card_name('V', v.name) << ' ' << circuit.node_name(v.pos) << ' '
       << circuit.node_name(v.neg) << ' ' << waveform_to_string(v.wave)
       << '\n';
  }
  for (const auto& i : circuit.isources()) {
    os << card_name('I', i.name) << ' ' << circuit.node_name(i.from) << ' '
       << circuit.node_name(i.to) << ' ' << waveform_to_string(i.wave)
       << '\n';
  }
  for (const auto& m : circuit.mosfets()) {
    os << card_name('M', m.name) << ' ' << circuit.node_name(m.drain) << ' '
       << circuit.node_name(m.gate) << ' ' << circuit.node_name(m.source)
       << (m.params.type == MosType::kNmos ? " NMOS" : " PMOS")
       << " W=" << num(m.params.w) << " L=" << num(m.params.l)
       << " KP=" << num(m.params.kprime) << " VT=" << num(m.params.vt)
       << " LAMBDA=" << num(m.params.lambda)
       << " VON=" << num(m.params.full_on_vgs);
    if (m.fault == MosFault::kStuckOpen) os << " STUCKOPEN";
    if (m.fault == MosFault::kStuckOn) os << " STUCKON";
    os << '\n';
  }
  os << ".END\n";
  return os.str();
}

Circuit parse_spice(const std::string& text) {
  std::istringstream in(text);
  return parse_spice(in);
}

Circuit parse_spice(std::istream& in) {
  Parser parser;
  std::string line;
  while (std::getline(in, line)) {
    parser.parse_line(line);
  }
  return std::move(parser.circuit);
}

double parse_spice_number(const std::string& token) {
  if (token.empty()) throw NetlistError("empty number");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw NetlistError("bad number '" + token + "'");
  }
  std::string suffix = upper(token.substr(consumed));
  if (suffix.empty()) return value;
  if (suffix == "F") return value * 1e-15;
  if (suffix == "P") return value * 1e-12;
  if (suffix == "N") return value * 1e-9;
  if (suffix == "U") return value * 1e-6;
  if (suffix == "M") return value * 1e-3;
  if (suffix == "K") return value * 1e3;
  if (suffix == "MEG") return value * 1e6;
  if (suffix == "G") return value * 1e9;
  throw NetlistError("unknown unit suffix '" + suffix + "' in '" + token +
                     "'");
}

}  // namespace sks::esim
