#include "esim/postmortem.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "esim/spice_io.hpp"
#include "esim/vcd.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace sks::esim {

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  out.flush();
  sks::check(out.good(), "postmortem: cannot write ", path.string());
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  sks::check(in.good(), "postmortem: cannot read ", path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

// The unknown-index -> name mapping of the MNA system: voltage unknowns
// are non-ground nodes, then one branch current per voltage source.
std::string unknown_name(const Circuit& circuit, int index) {
  if (index < 0) return "";
  const std::size_t n_voltage = circuit.node_count() - 1;
  const std::size_t i = static_cast<std::size_t>(index);
  if (i < n_voltage) return circuit.node_name(NodeId{i + 1});
  const std::size_t si = i - n_voltage;
  if (si < circuit.vsources().size()) {
    return "I(" + circuit.vsources()[si].name + ")";
  }
  return "";
}

std::string stats_json(const SolveStats& s) {
  std::ostringstream out;
  out << "{\n"
      << "    \"newton_calls\": " << s.newton_calls << ",\n"
      << "    \"newton_iterations\": " << s.newton_iterations << ",\n"
      << "    \"newton_failures\": " << s.newton_failures << ",\n"
      << "    \"lu_factorizations\": " << s.lu_factorizations << ",\n"
      << "    \"lu_refactorizations\": " << s.lu_refactorizations << ",\n"
      << "    \"lu_pattern_rebuilds\": " << s.lu_pattern_rebuilds << ",\n"
      << "    \"lu_singular\": " << s.lu_singular << ",\n"
      << "    \"lu_nonfinite\": " << s.lu_nonfinite << ",\n"
      << "    \"sparse_nnz\": " << s.sparse_nnz << ",\n"
      << "    \"dc_solves\": " << s.dc_solves << ",\n"
      << "    \"dc_gmin_ladders\": " << s.dc_gmin_ladders << ",\n"
      << "    \"dc_gmin_steps\": " << s.dc_gmin_steps << ",\n"
      << "    \"dc_source_ladders\": " << s.dc_source_ladders << ",\n"
      << "    \"dc_source_steps\": " << s.dc_source_steps << ",\n"
      << "    \"dc_damped_retries\": " << s.dc_damped_retries << ",\n"
      << "    \"steps_accepted\": " << s.steps_accepted << ",\n"
      << "    \"steps_rejected\": " << s.steps_rejected << ",\n"
      << "    \"dt_halvings\": " << s.dt_halvings << ",\n"
      << "    \"be_fallbacks\": " << s.be_fallbacks << ",\n"
      << "    \"breakpoints_hit\": " << s.breakpoints_hit << ",\n"
      << "    \"min_dt_used\": " << obs::json_number(s.min_dt_used) << ",\n"
      << "    \"wall_seconds\": " << obs::json_number(s.wall_seconds) << "\n"
      << "  }";
  return out.str();
}

std::string newton_json(const NewtonOptions& n) {
  std::ostringstream out;
  out << "{ \"max_iterations\": " << n.max_iterations
      << ", \"vtol\": " << obs::json_number(n.vtol)
      << ", \"itol\": " << obs::json_number(n.itol)
      << ", \"max_step\": " << obs::json_number(n.max_step) << " }";
  return out.str();
}

std::string transient_json(const TransientOptions& t) {
  std::ostringstream out;
  out << "{ \"t_end\": " << obs::json_number(t.t_end)
      << ", \"dt\": " << obs::json_number(t.dt)
      << ", \"dt_min\": " << obs::json_number(t.dt_min)
      << ", \"gmin\": " << obs::json_number(t.gmin)
      << ", \"trapezoidal\": " << json_bool(t.trapezoidal)
      << ", \"adaptive\": " << json_bool(t.adaptive)
      << ", \"dv_max\": " << obs::json_number(t.dv_max)
      << ", \"dt_max\": " << obs::json_number(t.dt_max) << " }";
  return out.str();
}

std::string iterations_json(const Circuit& circuit, const obs::DiagRing& ring) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n"
      << "  \"capacity\": " << ring.capacity() << ",\n"
      << "  \"total_pushed\": " << ring.total_pushed() << ",\n"
      << "  \"records\": [";
  const auto records = ring.snapshot();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::DiagRecord& r = records[i];
    out << (i == 0 ? "\n" : ",\n") << "    {"
        << "\"t\": " << obs::json_number(r.t)
        << ", \"h\": " << obs::json_number(r.h)
        << ", \"iteration\": " << r.iteration
        << ", \"residual\": " << obs::json_number(r.residual)
        << ", \"max_dx\": " << obs::json_number(r.max_dx)
        << ", \"damping\": " << obs::json_number(r.damping)
        << ", \"worst_unknown\": " << r.worst_unknown << ", \"worst\": \""
        << obs::json_escape(unknown_name(circuit, r.worst_unknown)) << "\""
        << ", \"lu_status\": " << r.lu_status << ", \"lu\": \""
        << obs::to_string(static_cast<obs::DiagLuStatus>(r.lu_status)) << "\""
        << ", \"pivot_growth\": " << obs::json_number(r.pivot_growth)
        << ", \"cond_est\": " << obs::json_number(r.cond_est) << "}";
  }
  out << (records.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

// Last-K recorded steps of every node voltage, ready for write_vcd.
TransientResult waveform_tail(const TransientResult& full, std::size_t k) {
  TransientResult tail;
  tail.stats = full.stats;
  const std::size_t n = full.time.size();
  const std::size_t from = n > k ? n - k : 0;
  tail.time.assign(full.time.begin() + static_cast<std::ptrdiff_t>(from),
                   full.time.end());
  tail.node_v.reserve(full.node_v.size());
  for (const auto& v : full.node_v) {
    tail.node_v.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(from),
                             v.end());
  }
  tail.vsrc_i.reserve(full.vsrc_i.size());
  for (const auto& v : full.vsrc_i) {
    tail.vsrc_i.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(from),
                             v.end());
  }
  return tail;
}

}  // namespace

std::string write_postmortem_bundle(const PostmortemContext& context,
                                    const PostmortemOptions& options) {
  sks::check(context.circuit != nullptr, "postmortem: no circuit");
  // Unique across the process (atomic sequence) and across concurrently
  // running test shards writing into one directory (pid).
  static std::atomic<unsigned> seq{0};
  std::ostringstream name;
  name << "pm_" << (context.phase.empty() ? "solve" : context.phase) << "_"
       << ::getpid() << "_" << seq.fetch_add(1);
  const fs::path bundle = fs::path(options.dir) / name.str();
  std::error_code ec;
  fs::create_directories(bundle, ec);
  sks::check(!ec, "postmortem: cannot create ", bundle.string(), ": ",
             ec.message());

  write_file(bundle / "netlist.sp",
             write_spice(*context.circuit,
                         "postmortem " + context.phase + " " +
                             context.failure_class));
  if (context.ring != nullptr) {
    write_file(bundle / "iterations.json",
               iterations_json(*context.circuit, *context.ring));
  }
  bool wrote_waveforms = false;
  if (context.waveforms != nullptr && !context.waveforms->time.empty()) {
    const auto tail = waveform_tail(*context.waveforms, options.waveform_tail);
    write_vcd((bundle / "waveforms.vcd").string(),
              node_traces(tail, *context.circuit));
    wrote_waveforms = true;
  }

  std::ostringstream m;
  m << "{\n"
    << "  \"schema_version\": 1,\n"
    << "  \"tool\": \"skewsense\",\n"
    << "  \"kind\": \"postmortem\",\n"
    << "  \"phase\": \"" << obs::json_escape(context.phase) << "\",\n"
    << "  \"reason\": \"" << obs::json_escape(context.reason) << "\",\n"
    << "  \"failure_class\": \"" << obs::json_escape(context.failure_class)
    << "\",\n"
    << "  \"message\": \"" << obs::json_escape(context.message) << "\",\n"
    << "  \"t\": " << obs::json_number(context.t) << ",\n"
    << "  \"iterations\": " << context.iterations << ",\n"
    << "  \"worst_node\": \"" << obs::json_escape(context.worst_node)
    << "\",\n"
    << "  \"solver_mode\": \""
    << (context.sparse_path ? "sparse" : "dense") << "\",\n"
    << "  \"dt_at_floor\": " << json_bool(context.dt_at_floor) << ",\n"
    << "  \"repro\": \"sks-report repro " << obs::json_escape(bundle.string())
    << "\",\n"
    << "  \"files\": { \"netlist\": \"netlist.sp\"";
  if (context.ring != nullptr) {
    m << ", \"iterations\": \"iterations.json\"";
  }
  if (wrote_waveforms) m << ", \"waveforms\": \"waveforms.vcd\"";
  m << " },\n"
    << "  \"options\": { \"newton\": " << newton_json(context.newton);
  if (context.transient != nullptr) {
    m << ", \"transient\": " << transient_json(*context.transient);
  }
  m << " },\n"
    << "  \"stats\": " << stats_json(context.stats) << "\n"
    << "}\n";
  write_file(bundle / "manifest.json", m.str());
  return bundle.string();
}

namespace {

double num_or(const obs::Json& obj, const std::string& key, double fallback) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string str_or(const obs::Json& obj, const std::string& key) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->str() : std::string();
}

bool bool_or(const obs::Json& obj, const std::string& key, bool fallback) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->boolean() : fallback;
}

}  // namespace

BundleManifest read_postmortem_manifest(const std::string& bundle_dir) {
  const obs::Json doc =
      obs::Json::parse(read_file(fs::path(bundle_dir) / "manifest.json"));
  sks::check(doc.is_object(), "postmortem: manifest is not a JSON object in ",
             bundle_dir);
  BundleManifest out;
  out.schema_version = static_cast<int>(num_or(doc, "schema_version", 1));
  out.phase = str_or(doc, "phase");
  out.reason = str_or(doc, "reason");
  out.failure_class = str_or(doc, "failure_class");
  out.message = str_or(doc, "message");
  out.worst_node = str_or(doc, "worst_node");
  out.solver_mode = str_or(doc, "solver_mode");
  out.t = num_or(doc, "t", 0.0);
  out.iterations = static_cast<long>(num_or(doc, "iterations", 0.0));
  out.dt_at_floor = bool_or(doc, "dt_at_floor", false);
  if (const obs::Json* stats = doc.find("stats")) {
    out.lu_singular =
        static_cast<std::uint64_t>(num_or(*stats, "lu_singular", 0.0));
    out.lu_nonfinite =
        static_cast<std::uint64_t>(num_or(*stats, "lu_nonfinite", 0.0));
    out.dt_halvings =
        static_cast<std::uint64_t>(num_or(*stats, "dt_halvings", 0.0));
  }
  if (const obs::Json* opts = doc.find("options")) {
    if (const obs::Json* newton = opts->find("newton")) {
      out.newton.max_iterations =
          static_cast<int>(num_or(*newton, "max_iterations", 80.0));
      out.newton.vtol = num_or(*newton, "vtol", out.newton.vtol);
      out.newton.itol = num_or(*newton, "itol", out.newton.itol);
      out.newton.max_step = num_or(*newton, "max_step", out.newton.max_step);
    }
    if (const obs::Json* tr = opts->find("transient")) {
      out.has_transient = true;
      out.transient.t_end = num_or(*tr, "t_end", out.transient.t_end);
      out.transient.dt = num_or(*tr, "dt", out.transient.dt);
      out.transient.dt_min = num_or(*tr, "dt_min", out.transient.dt_min);
      out.transient.gmin = num_or(*tr, "gmin", out.transient.gmin);
      out.transient.trapezoidal =
          bool_or(*tr, "trapezoidal", out.transient.trapezoidal);
      out.transient.adaptive = bool_or(*tr, "adaptive", out.transient.adaptive);
      out.transient.dv_max = num_or(*tr, "dv_max", out.transient.dv_max);
      out.transient.dt_max = num_or(*tr, "dt_max", out.transient.dt_max);
      out.transient.newton = out.newton;
    }
  }
  if (const obs::Json* files = doc.find("files")) {
    const std::string netlist = str_or(*files, "netlist");
    if (!netlist.empty()) out.netlist_file = netlist;
  }
  return out;
}

std::vector<obs::DiagRecord> read_postmortem_iterations(
    const std::string& bundle_dir) {
  const fs::path path = fs::path(bundle_dir) / "iterations.json";
  std::vector<obs::DiagRecord> out;
  if (!fs::exists(path)) return out;
  const obs::Json doc = obs::Json::parse(read_file(path));
  const obs::Json* records = doc.find("records");
  if (records == nullptr || !records->is_array()) return out;
  out.reserve(records->array().size());
  for (const obs::Json& r : records->array()) {
    obs::DiagRecord rec;
    rec.t = num_or(r, "t", 0.0);
    rec.h = num_or(r, "h", 0.0);
    rec.iteration = static_cast<int>(num_or(r, "iteration", 0.0));
    rec.residual = num_or(r, "residual", 0.0);
    rec.max_dx = num_or(r, "max_dx", 0.0);
    rec.damping = num_or(r, "damping", 1.0);
    rec.worst_unknown = static_cast<int>(num_or(r, "worst_unknown", -1.0));
    rec.lu_status = static_cast<int>(num_or(r, "lu_status", 0.0));
    rec.pivot_growth = num_or(r, "pivot_growth", 0.0);
    rec.cond_est = num_or(r, "cond_est", 0.0);
    out.push_back(rec);
  }
  return out;
}

obs::FailureClass classify_bundle(const BundleManifest& manifest,
                                  const std::vector<obs::DiagRecord>& tail) {
  obs::FailureEvidence evidence;
  evidence.phase = manifest.phase;
  evidence.lu_singular = manifest.lu_singular;
  evidence.lu_nonfinite = manifest.lu_nonfinite;
  evidence.dt_halvings = manifest.dt_halvings;
  evidence.dt_at_floor = manifest.dt_at_floor;
  evidence.tail = tail;
  return obs::classify_failure(evidence);
}

}  // namespace sks::esim
