// Self-contained failure postmortem bundles.
//
// When a solve dies (or on demand), the engine emits one directory with
// everything needed to understand and reproduce the failure away from the
// process that hit it:
//
//   <dir>/pm_<phase>_<pid>_<seq>/
//     manifest.json     phase, failure class, message, solver options,
//                       SolveStats, worst node, repro command
//     netlist.sp        the offending circuit through spice_io (re-parsable)
//     iterations.json   the DiagRing: per-NR-iteration residual/|dx|/LU health
//     waveforms.vcd     last-K recorded timesteps (transient failures only)
//
// `sks-report explain <bundle>` pretty-prints the diagnosis; `sks-report
// repro <bundle>` re-runs the embedded netlist with the embedded options
// and checks the same failure class reproduces.
//
// The writer allocates freely — it only ever runs on the failure path or
// on an explicit request, never inside the Newton loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "esim/engine.hpp"
#include "obs/diag.hpp"

namespace sks::esim {

struct PostmortemOptions {
  std::string dir = "sks-postmortem";  // parent directory for bundles
  std::size_t waveform_tail = 64;      // last-K recorded steps into the VCD
};

// Everything the bundle writer serializes.  Pointer members are optional
// context the caller may not have (no waveforms for a DC failure).
struct PostmortemContext {
  const Circuit* circuit = nullptr;  // required
  std::string phase;                 // "dc", "transient_dc", "transient"
  std::string reason = "failure";    // "failure" | "on_demand"
  std::string failure_class;         // obs::to_string(FailureClass) / "none"
  std::string message;               // the ConvergenceError text
  double t = 0.0;
  long iterations = 0;
  std::string worst_node;
  bool sparse_path = false;
  bool dt_at_floor = false;          // transient gave up at dt_min
  SolveStats stats;
  NewtonOptions newton;
  const TransientOptions* transient = nullptr;  // null for DC solves
  const obs::DiagRing* ring = nullptr;
  const TransientResult* waveforms = nullptr;   // tail source, may be null
};

// Write one bundle; returns its directory.  Throws sks::Error on I/O
// failure (callers on the engine's failure path swallow this so a full
// disk cannot mask the solver error).
std::string write_postmortem_bundle(const PostmortemContext& context,
                                    const PostmortemOptions& options);

// Read side, used by `sks-report explain` / `repro`.
struct BundleManifest {
  int schema_version = 1;
  std::string phase;
  std::string reason;
  std::string failure_class;
  std::string message;
  std::string worst_node;
  std::string solver_mode;  // "dense" | "sparse"
  double t = 0.0;
  long iterations = 0;
  bool dt_at_floor = false;
  std::uint64_t lu_singular = 0;
  std::uint64_t lu_nonfinite = 0;
  std::uint64_t dt_halvings = 0;
  NewtonOptions newton;
  TransientOptions transient;
  bool has_transient = false;
  std::string netlist_file = "netlist.sp";  // relative to the bundle dir
};

BundleManifest read_postmortem_manifest(const std::string& bundle_dir);

// The DiagRing records from <bundle>/iterations.json (empty when absent).
std::vector<obs::DiagRecord> read_postmortem_iterations(
    const std::string& bundle_dir);

// Re-derive the failure classification from a parsed bundle — the same
// classifier the engine stamped into the manifest, so `explain` can verify
// rather than trust it.
obs::FailureClass classify_bundle(const BundleManifest& manifest,
                                  const std::vector<obs::DiagRecord>& tail);

}  // namespace sks::esim
