#include "esim/netlist.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace sks::esim {

Circuit::Circuit() { node_names_.push_back("0"); }

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return ground();
  if (auto found = find_node(name)) return *found;
  node_names_.push_back(name);
  return NodeId{node_names_.size() - 1};
}

std::optional<NodeId> Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return ground();
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return NodeId{i};
  }
  return std::nullopt;
}

const std::string& Circuit::node_name(NodeId n) const {
  sks::check(n.index < node_names_.size(), "node_name: bad NodeId");
  return node_names_[n.index];
}

ResistorId Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                                 double resistance) {
  sks::check(resistance > 0.0, "add_resistor: resistance must be positive");
  sks::check(!(a == b), "add_resistor: both terminals on the same node");
  resistors_.push_back(Resistor{name, a, b, resistance});
  return ResistorId{resistors_.size() - 1};
}

CapacitorId Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                   double capacitance) {
  sks::check(capacitance > 0.0, "add_capacitor: capacitance must be positive");
  sks::check(!(a == b), "add_capacitor: both terminals on the same node");
  capacitors_.push_back(Capacitor{name, a, b, capacitance});
  return CapacitorId{capacitors_.size() - 1};
}

VsrcId Circuit::add_vsource(const std::string& name, NodeId pos, NodeId neg,
                            Waveform wave) {
  sks::check(!(pos == neg), "add_vsource: both terminals on the same node");
  vsources_.push_back(Vsrc{name, pos, neg, std::move(wave)});
  return VsrcId{vsources_.size() - 1};
}

IsrcId Circuit::add_isource(const std::string& name, NodeId from, NodeId to,
                            Waveform wave) {
  sks::check(!(from == to), "add_isource: both terminals on the same node");
  isources_.push_back(Isrc{name, from, to, std::move(wave)});
  return IsrcId{isources_.size() - 1};
}

MosfetId Circuit::add_mosfet(const std::string& name, const MosParams& params,
                             NodeId gate, NodeId drain, NodeId source) {
  sks::check(params.w > 0.0 && params.l > 0.0,
             "add_mosfet: W and L must be positive");
  mosfets_.push_back(Mosfet{name, gate, drain, source, params});
  return MosfetId{mosfets_.size() - 1};
}

std::optional<MosfetId> Circuit::find_mosfet(const std::string& name) const {
  for (std::size_t i = 0; i < mosfets_.size(); ++i) {
    if (mosfets_[i].name == name) return MosfetId{i};
  }
  return std::nullopt;
}

std::optional<VsrcId> Circuit::find_vsource(const std::string& name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    if (vsources_[i].name == name) return VsrcId{i};
  }
  return std::nullopt;
}

std::optional<IsrcId> Circuit::find_isource(const std::string& name) const {
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    if (isources_[i].name == name) return IsrcId{i};
  }
  return std::nullopt;
}

std::optional<CapacitorId> Circuit::find_capacitor(
    const std::string& name) const {
  for (std::size_t i = 0; i < capacitors_.size(); ++i) {
    if (capacitors_[i].name == name) return CapacitorId{i};
  }
  return std::nullopt;
}

std::optional<ResistorId> Circuit::find_resistor(
    const std::string& name) const {
  for (std::size_t i = 0; i < resistors_.size(); ++i) {
    if (resistors_[i].name == name) return ResistorId{i};
  }
  return std::nullopt;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "* circuit: " << node_count() << " nodes\n";
  for (const auto& r : resistors_) {
    os << "R " << r.name << ' ' << node_name(r.a) << ' ' << node_name(r.b)
       << ' ' << util::fmt_sci(r.resistance, 3) << '\n';
  }
  for (const auto& c : capacitors_) {
    os << "C " << c.name << ' ' << node_name(c.a) << ' ' << node_name(c.b)
       << ' ' << util::fmt_sci(c.capacitance, 3) << '\n';
  }
  for (const auto& v : vsources_) {
    os << "V " << v.name << ' ' << node_name(v.pos) << ' ' << node_name(v.neg)
       << (v.wave.is_dc() ? " dc" : " waveform") << '\n';
  }
  for (const auto& i : isources_) {
    os << "I " << i.name << ' ' << node_name(i.from) << ' '
       << node_name(i.to) << (i.wave.is_dc() ? " dc" : " waveform") << '\n';
  }
  for (const auto& m : mosfets_) {
    os << (m.params.type == MosType::kNmos ? "MN " : "MP ") << m.name << " g="
       << node_name(m.gate) << " d=" << node_name(m.drain)
       << " s=" << node_name(m.source) << " W/L="
       << util::fmt_fixed(m.params.w / m.params.l, 2);
    if (m.fault == MosFault::kStuckOpen) os << " [stuck-open]";
    if (m.fault == MosFault::kStuckOn) os << " [stuck-on]";
    os << '\n';
  }
  return os.str();
}

}  // namespace sks::esim
