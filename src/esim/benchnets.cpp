#include "esim/benchnets.hpp"

#include <string>

#include "esim/mosfet_model.hpp"
#include "util/error.hpp"

namespace sks::esim {
namespace {

// Level-1 parameters mirroring cell::Technology's 1.2 um defaults.
MosParams tree_nmos(double width, double vdd) {
  MosParams p;
  p.type = MosType::kNmos;
  p.w = width;
  p.l = 1.2e-6;
  p.kprime = 60e-6;
  p.vt = 0.8;
  p.lambda = 0.02;
  p.full_on_vgs = vdd;
  return p;
}

MosParams tree_pmos(double width, double vdd) {
  MosParams p;
  p.type = MosType::kPmos;
  p.w = width;
  p.l = 1.2e-6;
  p.kprime = 20e-6;
  p.vt = 0.9;
  p.lambda = 0.02;
  p.full_on_vgs = vdd;
  return p;
}

struct TreeBuilder {
  const ClockTreeOptions& opt;
  Circuit& c;
  NodeId vdd_node;
  std::vector<NodeId>& leaves;

  // Grow the subtree hanging off `from` whose children sit at `depth`.
  void grow(NodeId from, int depth, const std::string& path) {
    for (int side = 0; side < 2; ++side) {
      const std::string name = path + (side == 0 ? "l" : "r");
      const NodeId child = c.node("n_" + name);
      c.add_resistor("r_" + name, from, child, opt.r_segment);
      c.add_capacitor("c_" + name, child, c.ground(), opt.c_segment);
      if (depth == opt.levels) {
        c.add_capacitor("cl_" + name, child, c.ground(), opt.c_leaf);
        leaves.push_back(child);
        continue;
      }
      NodeId next = child;
      if (opt.buffer_every > 0 && depth % opt.buffer_every == 0) {
        next = add_repower_buffer(c, "buf_" + name, child, vdd_node, opt.vdd);
      }
      grow(next, depth + 1, name);
    }
  }
};

}  // namespace

// Gate-load capacitances keep the internal nodes from floating at clock
// corners.  Naming and device order are part of the deterministic-netlist
// contract the fixed-workload benches pin.
NodeId add_repower_buffer(Circuit& c, const std::string& prefix, NodeId in,
                          NodeId vdd_node, double vdd) {
  const NodeId mid = c.node(prefix + ".mid");
  const NodeId out = c.node(prefix + ".out");
  c.add_mosfet(prefix + ".i1.mp", tree_pmos(4.8e-6, vdd), in, mid, vdd_node);
  c.add_mosfet(prefix + ".i1.mn", tree_nmos(2.4e-6, vdd), in, mid, c.ground());
  c.add_mosfet(prefix + ".i2.mp", tree_pmos(9.6e-6, vdd), mid, out, vdd_node);
  c.add_mosfet(prefix + ".i2.mn", tree_nmos(4.8e-6, vdd), mid, out,
               c.ground());
  c.add_capacitor(prefix + ".cmid", mid, c.ground(), 15e-15);
  c.add_capacitor(prefix + ".cout", out, c.ground(), 15e-15);
  return out;
}

ClockTreeNet make_clock_tree(const ClockTreeOptions& options) {
  sks::check(options.levels >= 1, "make_clock_tree: levels must be >= 1, got ",
             options.levels);
  sks::check(options.levels <= 24,
             "make_clock_tree: levels must be <= 24 (2^levels leaves), got ",
             options.levels);
  sks::check(options.buffer_every >= 0,
             "make_clock_tree: buffer_every must be >= 0 (0 = bare RC), got ",
             options.buffer_every);
  sks::check(options.r_segment > 0.0,
             "make_clock_tree: r_segment must be positive, got ",
             options.r_segment);
  sks::check(options.c_segment >= 0.0,
             "make_clock_tree: c_segment must not be negative, got ",
             options.c_segment);
  sks::check(options.c_leaf >= 0.0,
             "make_clock_tree: c_leaf must not be negative, got ",
             options.c_leaf);
  sks::check(options.driver_resistance > 0.0,
             "make_clock_tree: driver_resistance must be positive, got ",
             options.driver_resistance);
  sks::check(options.vdd > 0.0, "make_clock_tree: vdd must be positive, got ",
             options.vdd);
  ClockTreeNet net;
  Circuit& c = net.circuit;

  const NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, c.ground(), Waveform::dc(options.vdd));

  const NodeId ck_src = c.node("ck_src");
  PulseSpec clock = options.clock;
  clock.v1 = options.vdd;
  c.add_vsource("vck", ck_src, c.ground(), Waveform::pulse(clock));

  net.root = c.node("ck_root");
  c.add_resistor("r_drv", ck_src, net.root, options.driver_resistance);
  c.add_capacitor("c_root", net.root, c.ground(), options.c_segment);

  TreeBuilder builder{options, c, vdd, net.leaves};
  builder.grow(net.root, 1, "t");
  return net;
}

}  // namespace sks::esim
