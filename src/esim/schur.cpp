#include "esim/schur.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "par/parallel.hpp"
#include "util/error.hpp"

namespace sks::esim {

namespace {
constexpr std::uint32_t kInvalid = 0xffffffffu;
}

HierPartition partition_linear_blocks(
    const SparseMatrix& a, const std::vector<std::uint8_t>& interface_mask) {
  const std::size_t n = a.size();
  sks::check(interface_mask.size() == n,
             "partition_linear_blocks: mask size ", interface_mask.size(),
             " != pattern size ", n);
  HierPartition p;
  p.block_of.assign(n, -1);
  for (std::size_t u = 0; u < n; ++u) {
    if (interface_mask[u]) ++p.interface_count;
  }

  // Symmetrized adjacency restricted to interior-interior off-diagonal
  // entries, as compressed neighbor lists (no per-node allocations).
  std::vector<std::size_t> deg(n + 1, 0);
  const auto each_edge = [&](const auto& fn) {
    for (std::size_t c = 0; c < n; ++c) {
      if (interface_mask[c]) continue;
      for (std::size_t idx = a.col_ptr()[c]; idx < a.col_ptr()[c + 1]; ++idx) {
        const std::uint32_t r = a.row()[idx];
        if (r == c || interface_mask[r]) continue;
        fn(r, static_cast<std::uint32_t>(c));
      }
    }
  };
  each_edge([&](std::uint32_t r, std::uint32_t c) {
    ++deg[r];
    ++deg[c];
  });
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) offset[u + 1] = offset[u] + deg[u];
  std::vector<std::uint32_t> nbr(offset[n]);
  std::vector<std::size_t> fill = offset;
  each_edge([&](std::uint32_t r, std::uint32_t c) {
    nbr[fill[r]++] = c;
    nbr[fill[c]++] = r;
  });

  // Components in ascending-smallest-member order: iterative DFS seeded by
  // increasing unknown id.
  std::vector<std::uint32_t> stack;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (interface_mask[seed] || p.block_of[seed] >= 0) continue;
    const std::int32_t id = static_cast<std::int32_t>(p.block_count++);
    std::size_t members = 0;
    stack.assign(1, static_cast<std::uint32_t>(seed));
    p.block_of[seed] = id;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++members;
      for (std::size_t i = offset[u]; i < offset[u + 1]; ++i) {
        const std::uint32_t v = nbr[i];
        if (p.block_of[v] < 0) {
          p.block_of[v] = id;
          stack.push_back(v);
        }
      }
    }
    p.largest_block = std::max(p.largest_block, members);
  }
  return p;
}

bool HierarchicalSolver::build(const SparseMatrix& pattern,
                               const std::vector<std::uint8_t>& interface_mask,
                               par::ThreadPool* pool) {
  built_ = false;
  pool_ = pool;
  const std::size_t n = pattern.size();
  partition_ = partition_linear_blocks(pattern, interface_mask);
  const std::size_t interior = n - partition_.interface_count;
  // No exploitable structure: the nonlinear interface dominates (a dense
  // sprinkling of devices) or the system is tiny.  The flat sparse path is
  // the right tool there.
  if (interior < kMinInteriorUnknowns || interior * 3 < n) return false;

  // Interface numbering (ascending global id) and per-unknown local ids.
  interface_.clear();
  std::vector<std::uint32_t> iface_of(n, kInvalid);
  std::vector<std::uint32_t> loc_of(n, kInvalid);
  for (std::size_t u = 0; u < n; ++u) {
    if (partition_.block_of[u] < 0) {
      iface_of[u] = static_cast<std::uint32_t>(interface_.size());
      interface_.push_back(static_cast<std::uint32_t>(u));
    }
  }
  blocks_.assign(partition_.block_count, Block{});
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t b = partition_.block_of[u];
    if (b < 0) continue;
    auto& interior_ids = blocks_[static_cast<std::size_t>(b)].interior;
    loc_of[u] = static_cast<std::uint32_t>(interior_ids.size());
    interior_ids.push_back(static_cast<std::uint32_t>(u));
  }

  // One sweep over the global pattern classifies every entry: in-block,
  // block<->interface coupling, or interface-interface.
  struct LocalEntry {
    std::uint32_t r, c;
    std::size_t slot;
  };
  std::vector<std::vector<LocalEntry>> block_entries(blocks_.size());
  std::vector<std::vector<LocalEntry>> ib_raw(blocks_.size());  // c = iface id
  std::vector<std::vector<LocalEntry>> bi_raw(blocks_.size());  // r = iface id
  std::vector<std::pair<std::uint32_t, std::uint32_t>> s_entries;
  std::vector<std::pair<std::size_t, std::size_t>> abb_raw;  // (slot, entry#)
  for (std::size_t c = 0; c < n; ++c) {
    const std::int32_t bc = partition_.block_of[c];
    for (std::size_t idx = pattern.col_ptr()[c]; idx < pattern.col_ptr()[c + 1];
         ++idx) {
      const std::uint32_t r = pattern.row()[idx];
      const std::int32_t br = partition_.block_of[r];
      if (br >= 0 && bc >= 0) {
        sks::check(br == bc,
                   "hierarchical build: pattern entry couples two linear "
                   "blocks — partition is inconsistent");
        block_entries[static_cast<std::size_t>(bc)].push_back(
            {loc_of[r], loc_of[c], idx});
      } else if (br >= 0) {  // interior row, interface column
        ib_raw[static_cast<std::size_t>(br)].push_back(
            {loc_of[r], iface_of[c], idx});
      } else if (bc >= 0) {  // interface row, interior column
        bi_raw[static_cast<std::size_t>(bc)].push_back(
            {iface_of[r], loc_of[c], idx});
      } else {
        abb_raw.emplace_back(idx, s_entries.size());
        s_entries.emplace_back(iface_of[r], iface_of[c]);
      }
    }
  }

  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    Block& blk = blocks_[k];
    const std::size_t ni = blk.interior.size();

    // Boundary: the interface unknowns this block couples to, ascending.
    std::vector<std::uint32_t> boundary;
    for (const auto& e : ib_raw[k]) boundary.push_back(e.c);
    for (const auto& e : bi_raw[k]) boundary.push_back(e.r);
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    blk.boundary = std::move(boundary);
    const auto boundary_index = [&](std::uint32_t iface) {
      const auto it =
          std::lower_bound(blk.boundary.begin(), blk.boundary.end(), iface);
      return static_cast<std::uint32_t>(it - blk.boundary.begin());
    };
    blk.a_ib.reserve(ib_raw[k].size());
    for (const auto& e : ib_raw[k]) {
      blk.a_ib.push_back({e.r, boundary_index(e.c), e.slot});
    }
    blk.a_bi.reserve(bi_raw[k].size());
    for (const auto& e : bi_raw[k]) {
      blk.a_bi.push_back({e.c, boundary_index(e.r), e.slot});
    }
    // W is built column-by-column: group the A_IB entries by boundary
    // column so each right-hand side is one contiguous scan.
    std::sort(blk.a_ib.begin(), blk.a_ib.end(),
              [](const Coupling& x, const Coupling& y) {
                return x.boundary != y.boundary ? x.boundary < y.boundary
                                                : x.local < y.local;
              });

    // Local block pattern + global slot map.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(block_entries[k].size());
    for (const auto& e : block_entries[k]) entries.emplace_back(e.r, e.c);
    blk.a = SparseMatrix(ni, std::move(entries));
    blk.a_slots.assign(blk.a.nnz(), 0);
    for (const auto& e : block_entries[k]) {
      blk.a_slots[blk.a.slot(e.r, e.c)] = e.slot;
    }
    blk.lu_symbolic.analyze(blk.a);
    blk.r.assign(ni, 0.0);
    blk.y.assign(ni, 0.0);

    // The block's Schur contribution fills a clique over its boundary.
    const std::size_t bk = blk.boundary.size();
    for (std::size_t cc = 0; cc < bk; ++cc) {
      for (std::size_t rr = 0; rr < bk; ++rr) {
        s_entries.emplace_back(blk.boundary[rr], blk.boundary[cc]);
      }
    }
  }

  // Schur pattern over the interface (A_BB entries + all block cliques).
  const std::size_t m = interface_.size();
  abb_map_.clear();
  if (m > 0) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = s_entries;
    s_ = SparseMatrix(m, std::move(pairs));
    abb_map_.reserve(abb_raw.size());
    for (const auto& [gslot, which] : abb_raw) {
      const auto& rc = s_entries[which];
      abb_map_.emplace_back(gslot, s_.slot(rc.first, rc.second));
    }
    for (Block& blk : blocks_) {
      const std::size_t bk = blk.boundary.size();
      blk.contrib_slots.assign(bk * bk, 0);
      for (std::size_t cc = 0; cc < bk; ++cc) {
        for (std::size_t rr = 0; rr < bk; ++rr) {
          blk.contrib_slots[cc * bk + rr] =
              s_.slot(blk.boundary[rr], blk.boundary[cc]);
        }
      }
    }
    s_lu_ = SparseLu{};
    s_lu_.analyze(s_);
    rb_.assign(m, 0.0);
    dxb_.assign(m, 0.0);
  } else {
    s_ = SparseMatrix{};
    s_lu_ = SparseLu{};
    rb_.clear();
    dxb_.clear();
  }

  for (ConfigCache& cfg : configs_) {
    cfg = ConfigCache{};
    cfg.blocks.resize(blocks_.size());
  }
  lru_clock_ = 0;
  built_ = true;
  return true;
}

SparseLuStatus HierarchicalSolver::eliminate_block(const SparseMatrix& a,
                                                   std::size_t k,
                                                   ConfigCache& cfg) {
  Block& blk = blocks_[k];
  BlockFactors& bf = cfg.blocks[k];
  const double* gv = a.values();
  const std::size_t ni = blk.interior.size();
  const std::size_t bk = blk.boundary.size();

  double* av = blk.a.values();
  for (std::size_t i = 0; i < blk.a.nnz(); ++i) av[i] = gv[blk.a_slots[i]];
  if (!bf.lu.analyzed()) bf.lu = blk.lu_symbolic;
  if (bf.lu.factor(blk.a) != SparseLuStatus::kOk) {
    return SparseLuStatus::kSingular;
  }

  // W = A_kk^-1 A_kB, one boundary column at a time (a_ib is grouped by
  // boundary column), and the dense Schur clique -A_Bk W.
  bf.w.assign(ni * bk, 0.0);
  std::size_t at = 0;
  for (std::size_t c = 0; c < bk; ++c) {
    std::fill(blk.r.begin(), blk.r.end(), 0.0);
    bool any = false;
    while (at < blk.a_ib.size() && blk.a_ib[at].boundary == c) {
      blk.r[blk.a_ib[at].local] = gv[blk.a_ib[at].slot];
      any = true;
      ++at;
    }
    if (!any) continue;
    bf.lu.solve(blk.r, blk.y);
    std::memcpy(bf.w.data() + c * ni, blk.y.data(), ni * sizeof(double));
  }
  bf.contrib.assign(bk * bk, 0.0);
  for (const Coupling& e : blk.a_bi) {
    const double val = gv[e.slot];
    if (val == 0.0) continue;
    for (std::size_t c = 0; c < bk; ++c) {
      bf.contrib[c * bk + e.boundary] -= val * bf.w[c * ni + e.local];
    }
  }
  return SparseLuStatus::kOk;
}

SparseLuStatus HierarchicalSolver::refresh_config(const SparseMatrix& a,
                                                  ConfigCache& cfg) {
  cfg.valid = false;
  std::vector<std::uint8_t> singular(blocks_.size(), 0);
  const auto run = [&](std::size_t k) {
    if (eliminate_block(a, k, cfg) != SparseLuStatus::kOk) singular[k] = 1;
  };
  if (pool_ != nullptr && blocks_.size() > 1) {
    par::parallel_for(*pool_, 0, blocks_.size(), run);
  } else {
    for (std::size_t k = 0; k < blocks_.size(); ++k) run(k);
  }
  // Every block is factored exactly once per refresh, with or without the
  // pool, so the counter is deterministic at any thread count.
  stats_.block_factorizations += blocks_.size();
  for (const std::uint8_t s : singular) {
    if (s) return SparseLuStatus::kSingular;
  }

  // Serial reduction in block order: bit-identical results at any thread
  // count even where boundary cliques of different blocks overlap.
  if (!interface_.empty()) {
    cfg.s_base.assign(s_.nnz(), 0.0);
    for (const Block& blk : blocks_) {
      const BlockFactors& bf = cfg.blocks[&blk - blocks_.data()];
      for (std::size_t i = 0; i < blk.contrib_slots.size(); ++i) {
        cfg.s_base[blk.contrib_slots[i]] += bf.contrib[i];
      }
    }
  }
  cfg.valid = true;
  return SparseLuStatus::kOk;
}

HierarchicalSolver::ConfigCache& HierarchicalSolver::config_for(
    const SparseMatrix& a, const SchurConfigKey& key, SparseLuStatus& status) {
  for (ConfigCache& cfg : configs_) {
    if (cfg.valid && cfg.key == key) {
      cfg.stamp = ++lru_clock_;
      status = SparseLuStatus::kOk;
      return cfg;
    }
  }
  ConfigCache& victim =
      configs_[0].stamp <= configs_[1].stamp ? configs_[0] : configs_[1];
  victim.key = key;
  victim.stamp = ++lru_clock_;
  status = refresh_config(a, victim);
  return victim;
}

SparseLuStatus HierarchicalSolver::solve(const SparseMatrix& a,
                                         const SchurConfigKey& key,
                                         const std::vector<double>& b,
                                         std::vector<double>& x_out) {
  sks::check(built_, "HierarchicalSolver::solve before a successful build()");
  SparseLuStatus status = SparseLuStatus::kOk;
  ConfigCache& cfg = config_for(a, key, status);
  if (status != SparseLuStatus::kOk) return status;

  const std::size_t m = interface_.size();
  const double* gv = a.values();

  // Forward phase: per-block y = A_kk^-1 r_k, and the interface deficit
  // r_B - A_BI y accumulated serially in block order.
  for (std::size_t i = 0; i < m; ++i) rb_[i] = b[interface_[i]];
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    Block& blk = blocks_[k];
    BlockFactors& bf = cfg.blocks[k];
    for (std::size_t i = 0; i < blk.interior.size(); ++i) {
      blk.r[i] = b[blk.interior[i]];
    }
    bf.lu.solve(blk.r, blk.y);
    for (const Coupling& e : blk.a_bi) {
      rb_[blk.boundary[e.boundary]] -= gv[e.slot] * blk.y[e.local];
    }
  }

  // Interface phase: assemble S from the cached linear part plus the live
  // A_BB values (which carry this iteration's MOSFET stamps), then the
  // refactor-first protocol the flat path uses.
  if (m > 0) {
    double* sv = s_.values();
    std::memcpy(sv, cfg.s_base.data(), s_.nnz() * sizeof(double));
    sv[s_.dummy_slot()] = 0.0;
    for (const auto& [gslot, sslot] : abb_map_) sv[sslot] += gv[gslot];
    SparseLuStatus sst;
    if (s_lu_.factored()) {
      ++stats_.interface_refactors;
      sst = s_lu_.refactor(s_);
      if (sst == SparseLuStatus::kPivotDegenerate) {
        ++stats_.interface_factors;
        sst = s_lu_.factor(s_);
      }
    } else {
      ++stats_.interface_factors;
      sst = s_lu_.factor(s_);
    }
    if (sst != SparseLuStatus::kOk) return SparseLuStatus::kSingular;
    s_lu_.solve(rb_, dxb_);
    ++stats_.interface_solves;
  }

  // Back substitution: dx_I = y - W dx_B per block, then scatter.
  x_out.assign(a.size(), 0.0);
  for (std::size_t i = 0; i < m; ++i) x_out[interface_[i]] = dxb_[i];
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    Block& blk = blocks_[k];
    const BlockFactors& bf = cfg.blocks[k];
    const std::size_t ni = blk.interior.size();
    for (std::size_t c = 0; c < blk.boundary.size(); ++c) {
      const double xb = dxb_[blk.boundary[c]];
      if (xb == 0.0) continue;
      const double* wc = bf.w.data() + c * ni;
      for (std::size_t i = 0; i < ni; ++i) blk.y[i] -= wc[i] * xb;
    }
    for (std::size_t i = 0; i < ni; ++i) x_out[blk.interior[i]] = blk.y[i];
  }
  return SparseLuStatus::kOk;
}

SchurStats HierarchicalSolver::take_stats() {
  const SchurStats out = stats_;
  stats_ = SchurStats{};
  return out;
}

double HierarchicalSolver::udiag_min_abs() const {
  return interface_.empty() ? 0.0 : s_lu_.udiag_min_abs();
}

double HierarchicalSolver::udiag_max_abs() const {
  return interface_.empty() ? 0.0 : s_lu_.udiag_max_abs();
}

std::size_t HierarchicalSolver::memory_bytes() const {
  std::size_t bytes = partition_.block_of.capacity() * sizeof(std::int32_t) +
                      interface_.capacity() * sizeof(std::uint32_t) +
                      abb_map_.capacity() * sizeof(abb_map_[0]) +
                      s_.memory_bytes() + s_lu_.memory_bytes() +
                      (rb_.capacity() + dxb_.capacity()) * sizeof(double);
  for (const Block& blk : blocks_) {
    bytes += blk.interior.capacity() * sizeof(std::uint32_t) +
             blk.boundary.capacity() * sizeof(std::uint32_t) +
             blk.a.memory_bytes() +
             blk.a_slots.capacity() * sizeof(std::size_t) +
             (blk.a_ib.capacity() + blk.a_bi.capacity()) * sizeof(Coupling) +
             blk.contrib_slots.capacity() * sizeof(std::size_t) +
             blk.lu_symbolic.memory_bytes() +
             (blk.r.capacity() + blk.y.capacity()) * sizeof(double);
  }
  for (const ConfigCache& cfg : configs_) {
    bytes += cfg.s_base.capacity() * sizeof(double);
    for (const BlockFactors& bf : cfg.blocks) {
      bytes += bf.lu.memory_bytes() +
               (bf.w.capacity() + bf.contrib.capacity()) * sizeof(double);
    }
  }
  return bytes;
}

}  // namespace sks::esim
