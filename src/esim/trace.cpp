#include "esim/trace.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/interp.hpp"

namespace sks::esim {

Trace::Trace(std::string name, std::vector<double> time,
             std::vector<double> value)
    : name_(std::move(name)), time_(std::move(time)), values_(std::move(value)) {
  sks::check(time_.size() == values_.size(), "Trace: size mismatch");
}

Trace Trace::node_voltage(const TransientResult& result, const Circuit& circuit,
                          const std::string& node) {
  const auto id = circuit.find_node(node);
  sks::check(id.has_value(), "Trace::node_voltage: unknown node '" + node + "'");
  return Trace(node, result.time, result.node_v.at(id->index));
}

Trace Trace::supply_current(const TransientResult& result,
                            const Circuit& circuit,
                            const std::string& source_name) {
  const auto id = circuit.find_vsource(source_name);
  sks::check(id.has_value(),
             "Trace::supply_current: unknown source '" + source_name + "'");
  std::vector<double> delivered = result.vsrc_i.at(id->index);
  for (double& v : delivered) v = -v;  // see TransientResult::vsrc_i docs
  return Trace("I(" + source_name + ")", result.time, std::move(delivered));
}

double Trace::value_at(double t) const {
  sks::check(!empty(), "Trace::value_at on empty trace");
  if (t <= time_.front()) return values_.front();
  if (t >= time_.back()) return values_.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const auto i = static_cast<std::size_t>(it - time_.begin());
  const double frac = (t - time_[i - 1]) / (time_[i] - time_[i - 1]);
  return util::lerp(values_[i - 1], values_[i], frac);
}

std::size_t Trace::index_at_or_after(double t) const {
  const auto it = std::lower_bound(time_.begin(), time_.end(), t);
  return static_cast<std::size_t>(it - time_.begin());
}

double Trace::min_in(double t0, double t1) const {
  sks::check(!empty(), "Trace::min_in on empty trace");
  double best = value_at(t0);
  for (std::size_t i = index_at_or_after(t0); i < time_.size() && time_[i] <= t1;
       ++i) {
    best = std::min(best, values_[i]);
  }
  best = std::min(best, value_at(t1));
  return best;
}

double Trace::max_in(double t0, double t1) const {
  sks::check(!empty(), "Trace::max_in on empty trace");
  double best = value_at(t0);
  for (std::size_t i = index_at_or_after(t0); i < time_.size() && time_[i] <= t1;
       ++i) {
    best = std::max(best, values_[i]);
  }
  best = std::max(best, value_at(t1));
  return best;
}

double Trace::final_value() const {
  sks::check(!empty(), "Trace::final_value on empty trace");
  return values_.back();
}

std::optional<double> Trace::first_crossing(double level, double t_from) const {
  return util::first_crossing(time_, values_, level, index_at_or_after(t_from));
}

std::optional<double> Trace::first_rising_crossing(double level,
                                                   double t_from) const {
  return util::first_directional_crossing(time_, values_, level, true,
                                          index_at_or_after(t_from));
}

std::optional<double> Trace::first_falling_crossing(double level,
                                                    double t_from) const {
  return util::first_directional_crossing(time_, values_, level, false,
                                          index_at_or_after(t_from));
}

}  // namespace sks::esim
