#include "esim/vcd.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace sks::esim {

namespace {

// VCD identifier alphabet: the 94 printable ASCII characters.
constexpr char kIdFirst = '!';
constexpr int kIdRange = 94;

// "1 fs" .. "100 s": the timescales the $timescale grammar allows.
struct TimescaleUnit {
  const char* name;
  double seconds;
};
constexpr TimescaleUnit kUnits[] = {{"fs", 1e-15}, {"ps", 1e-12},
                                    {"ns", 1e-9},  {"us", 1e-6},
                                    {"ms", 1e-3},  {"s", 1.0}};

std::string format_timescale(double timescale) {
  for (const TimescaleUnit& u : kUnits) {
    for (const int mant : {1, 10, 100}) {
      if (std::fabs(timescale - mant * u.seconds) <
          1e-6 * mant * u.seconds) {
        return std::to_string(mant) + " " + u.name;
      }
    }
  }
  throw sks::Error(sks::detail::concat_parts(
      "vcd: unsupported timescale ", timescale,
      " s (use 1/10/100 x fs/ps/ns/us/ms/s)"));
}

double parse_timescale(const std::string& mantissa, const std::string& unit) {
  const long m = std::atol(mantissa.c_str());
  sks::check(m == 1 || m == 10 || m == 100,
             "vcd: bad $timescale mantissa '", mantissa, "'");
  for (const TimescaleUnit& u : kUnits) {
    if (unit == u.name) return static_cast<double>(m) * u.seconds;
  }
  throw sks::Error(
      sks::detail::concat_parts("vcd: unknown $timescale unit '", unit, "'"));
}

// %.17g: round-trips any double exactly through text.
std::string format_real(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out.empty() ? "unnamed" : out;
}

}  // namespace

std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(kIdFirst + index % kIdRange));
    index /= kIdRange;
  } while (index > 0);
  return id;
}

std::string vcd_string(const std::vector<Trace>& traces,
                       const VcdOptions& options) {
  sks::check(!traces.empty(), "vcd: no traces to export");
  const std::string timescale = format_timescale(options.timescale);

  // Quantize every sample time to integer ticks and merge the time axes.
  std::vector<std::vector<long long>> ticks(traces.size());
  std::vector<long long> merged;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    sks::check(!traces[s].empty(), "vcd: trace '", traces[s].name(),
               "' is empty");
    ticks[s].reserve(traces[s].time().size());
    for (const double t : traces[s].time()) {
      ticks[s].push_back(std::llround(t / options.timescale));
    }
    merged.insert(merged.end(), ticks[s].begin(), ticks[s].end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  std::ostringstream out;
  out << "$comment skewsense waveform export $end\n"
      << "$timescale " << timescale << " $end\n"
      << "$scope module " << sanitize_name(options.module) << " $end\n";
  for (std::size_t s = 0; s < traces.size(); ++s) {
    out << "$var real 64 " << vcd_id(s) << " "
        << sanitize_name(traces[s].name()) << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  // One cursor per trace; at each merged tick dump every trace that has a
  // sample there (all of them, when the traces share a time axis).
  std::vector<std::size_t> cursor(traces.size(), 0);
  for (const long long tick : merged) {
    out << '#' << tick << '\n';
    for (std::size_t s = 0; s < traces.size(); ++s) {
      std::size_t& c = cursor[s];
      while (c < ticks[s].size() && ticks[s][c] == tick) {
        out << 'r' << format_real(traces[s].values()[c]) << ' ' << vcd_id(s)
            << '\n';
        ++c;  // duplicate quantized ticks: last value wins, as in VCD
      }
    }
  }
  return out.str();
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  sks::check(out.good(), "vcd: cannot open '", path, "' for writing");
  out << content;
  out.flush();
  sks::check(out.good(), "vcd: write to '", path, "' failed");
}

}  // namespace

void write_vcd(const std::string& path, const std::vector<Trace>& traces,
               const VcdOptions& options) {
  write_file(path, vcd_string(traces, options));
}

namespace {

// Whitespace-delimited tokenizer that remembers the 1-based line each token
// started on, so parse errors can point at the offending input line.
class VcdLexer {
 public:
  explicit VcdLexer(const std::string& text) : text_(text) {}

  // Next token; false at end of input.  After a successful call, line()
  // names the line the token began on.
  bool next(std::string& token) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    token_line_ = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    token.assign(text_, start, pos_ - start);
    return true;
  }

  std::size_t line() const { return token_line_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t token_line_ = 1;
};

template <typename... Parts>
[[noreturn]] void vcd_fail(std::size_t line, Parts&&... parts) {
  throw sks::Error(sks::detail::concat_parts(
      "vcd line ", line, ": ", std::forward<Parts>(parts)...));
}

}  // namespace

std::vector<Trace> parse_vcd(const std::string& text) {
  VcdLexer lex(text);
  std::string token;
  double timescale = 0.0;
  std::vector<std::string> names;
  std::vector<std::string> ids;

  auto expect_end = [&](const std::string& directive,
                        std::size_t directive_line) {
    while (lex.next(token)) {
      if (token == "$end") return;
    }
    vcd_fail(directive_line, "unterminated ", directive);
  };

  // Header: collect $timescale and the real vars until $enddefinitions.
  while (lex.next(token)) {
    const std::size_t at = lex.line();
    if (token == "$timescale") {
      std::string mantissa, unit;
      if (!lex.next(mantissa)) vcd_fail(at, "truncated $timescale");
      // Accept both "1 fs" and "1fs".
      const std::size_t split = mantissa.find_first_not_of("0123456789");
      if (split == std::string::npos) {
        if (!lex.next(unit)) vcd_fail(at, "truncated $timescale");
      } else {
        unit = mantissa.substr(split);
        mantissa = mantissa.substr(0, split);
      }
      timescale = parse_timescale(mantissa, unit);
      expect_end("$timescale", at);
    } else if (token == "$var") {
      std::string type, width, id, name;
      if (!lex.next(type) || !lex.next(width) || !lex.next(id) ||
          !lex.next(name)) {
        vcd_fail(at, "truncated $var declaration");
      }
      for (const std::string* part : {&type, &width, &id, &name}) {
        if (*part == "$end") {
          vcd_fail(at, "malformed $var declaration: expected "
                       "'real <width> <id> <name> $end', got '$end' early");
        }
      }
      if (type != "real") {
        vcd_fail(at, "only real vars supported, got '", type, "'");
      }
      ids.push_back(id);
      names.push_back(name);
      expect_end("$var", at);
    } else if (token == "$enddefinitions") {
      expect_end("$enddefinitions", at);
      break;
    } else if (!token.empty() && token[0] == '$') {
      expect_end(token, at);
    } else {
      vcd_fail(at, "unexpected token '", token, "' in header");
    }
  }
  sks::check(timescale > 0.0, "vcd: missing $timescale");
  sks::check(!ids.empty(), "vcd: no signals declared");

  std::vector<std::vector<double>> times(ids.size());
  std::vector<std::vector<double>> values(ids.size());
  double t = 0.0;
  bool have_time = false;
  while (lex.next(token)) {
    const std::size_t at = lex.line();
    if (token[0] == '#') {
      t = static_cast<double>(std::atoll(token.c_str() + 1)) * timescale;
      have_time = true;
    } else if (token[0] == 'r' || token[0] == 'R') {
      if (!have_time) {
        vcd_fail(at, "value change '", token,
                 "' before the first timestamp");
      }
      const double v = std::atof(token.c_str() + 1);
      std::string id;
      if (!lex.next(id)) {
        vcd_fail(at, "value change '", token, "' missing its signal id");
      }
      const auto it = std::find(ids.begin(), ids.end(), id);
      if (it == ids.end()) {
        vcd_fail(at, "value change for unknown id '", id, "'");
      }
      const auto s = static_cast<std::size_t>(it - ids.begin());
      times[s].push_back(t);
      values[s].push_back(v);
    } else if (token[0] == '$') {
      // $dumpvars / $dumpall blocks wrap plain value changes; skip the
      // markers themselves.
      if (token != "$end" && token != "$dumpvars" && token != "$dumpall") {
        vcd_fail(at, "unsupported directive '", token,
                 "' in value section");
      }
    } else {
      vcd_fail(at, "unsupported value change '", token,
               "' (only real signals are handled)");
    }
  }

  std::vector<Trace> out;
  out.reserve(ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) {
    out.emplace_back(names[s], std::move(times[s]), std::move(values[s]));
  }
  return out;
}

std::vector<Trace> node_traces(const TransientResult& result,
                               const Circuit& circuit) {
  std::vector<Trace> out;
  out.reserve(circuit.node_count() > 0 ? circuit.node_count() - 1 : 0);
  for (std::size_t i = 1; i < circuit.node_count(); ++i) {
    const NodeId id{i};
    out.emplace_back(circuit.node_name(id), result.time, result.node_v.at(i));
  }
  return out;
}

std::string trace_csv(const std::vector<Trace>& traces) {
  sks::check(!traces.empty(), "trace_csv: no traces to export");
  std::vector<double> merged;
  for (const Trace& trace : traces) {
    sks::check(!trace.empty(), "trace_csv: trace '", trace.name(),
               "' is empty");
    merged.insert(merged.end(), trace.time().begin(), trace.time().end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  std::ostringstream out;
  out << "t";
  for (const Trace& trace : traces) {
    std::string name = trace.name();
    for (char& c : name) {
      if (c == ',') c = ';';
    }
    out << ',' << name;
  }
  out << '\n';
  for (const double t : merged) {
    out << format_real(t);
    for (const Trace& trace : traces) out << ',' << format_real(trace.value_at(t));
    out << '\n';
  }
  return out.str();
}

void write_trace_csv(const std::string& path,
                     const std::vector<Trace>& traces) {
  write_file(path, trace_csv(traces));
}

}  // namespace sks::esim
