#include "esim/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <type_traits>
#include <utility>

#include "esim/sparse.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sks::esim {

namespace {

// Mirrors mosfet_model.cpp's kGoff; the batch kernel re-derives the level-1
// equations branchlessly, and cutoff/triode round bit-identically to the
// scalar model (saturation differs by ~1 ulp from association order).
constexpr double kGoff = 1e-12;
constexpr double kMosFdStep = 1e-6;  // central-difference h, as eval_mosfet

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t lane_count_checked(const std::vector<Circuit>& lanes) {
  sks::check(!lanes.empty(), "BatchSimulator: at least one lane required");
  for (std::size_t i = 1; i < lanes.size(); ++i) {
    sks::check(BatchSimulator::structure_compatible(lanes[0], lanes[i]),
               "BatchSimulator: lane ", i,
               " is not structure-compatible with lane 0");
  }
  return lanes.size();
}

}  // namespace

bool BatchSimulator::structure_compatible(const Circuit& a, const Circuit& b) {
  if (a.node_count() != b.node_count()) return false;
  if (a.resistors().size() != b.resistors().size()) return false;
  if (a.capacitors().size() != b.capacitors().size()) return false;
  if (a.mosfets().size() != b.mosfets().size()) return false;
  if (a.vsources().size() != b.vsources().size()) return false;
  if (a.isources().size() != b.isources().size()) return false;
  for (std::size_t i = 0; i < a.resistors().size(); ++i) {
    if (a.resistors()[i].a.index != b.resistors()[i].a.index ||
        a.resistors()[i].b.index != b.resistors()[i].b.index) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.capacitors().size(); ++i) {
    if (a.capacitors()[i].a.index != b.capacitors()[i].a.index ||
        a.capacitors()[i].b.index != b.capacitors()[i].b.index) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.mosfets().size(); ++i) {
    if (a.mosfets()[i].gate.index != b.mosfets()[i].gate.index ||
        a.mosfets()[i].drain.index != b.mosfets()[i].drain.index ||
        a.mosfets()[i].source.index != b.mosfets()[i].source.index) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.vsources().size(); ++i) {
    if (a.vsources()[i].pos.index != b.vsources()[i].pos.index ||
        a.vsources()[i].neg.index != b.vsources()[i].neg.index) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.isources().size(); ++i) {
    if (a.isources()[i].from.index != b.isources()[i].from.index ||
        a.isources()[i].to.index != b.isources()[i].to.index) {
      return false;
    }
  }
  return true;
}

struct BatchSimulator::Impl {
  // ---- shared structure (from lane 0) -----------------------------------
  std::size_t K = 0;
  std::size_t n = 0;  // MNA unknowns
  std::size_t n_nodes = 0;
  std::size_t n_voltage = 0;
  std::vector<Circuit> circuits;

  SparseMatrix j;  // shared pattern; its own values used only to freeze pivots
  std::vector<std::size_t> diag_slot;
  struct Quad {
    std::size_t aa, ab, ba, bb;
  };
  std::vector<Quad> resistor_slots, cap_slots;
  struct MosSlots {
    std::size_t dg, dd, ds, sg, sd, ss;
  };
  std::vector<MosSlots> mos_slots;

  // Terminal unknown indices; -1 means ground (reads gather from `zeros`,
  // writes are skipped).
  struct Pair {
    std::ptrdiff_t a, b;
  };
  std::vector<Pair> res_nodes, cap_nodes;
  struct Tri {
    std::ptrdiff_t g, d, s;
  };
  std::vector<Tri> mos_nodes;
  std::vector<Pair> vsrc_nodes;  // pos, neg
  std::vector<Pair> isrc_nodes;  // from, to

  // ---- SoA per-lane device parameters (device * K + lane) ---------------
  std::vector<double> res_g, cap_c;
  std::vector<double> mp_sign, mp_beta, mp_vt, mp_lambda, mp_fullon;
  std::vector<double> mp_on, mp_open;  // fault masks as 0.0 / 1.0

  // ---- SoA matrix values and solver state -------------------------------
  std::vector<double> base_vals, tpl_vals, soa_vals;  // (nnz + 1) * K
  // Slots assemble_round accumulates MOSFET conductances into (plus the
  // dummy): the only soa_vals rows that diverge from tpl_vals between
  // rounds, so the per-round template restore copies just these instead of
  // the whole matrix.  refresh_template keeps the remaining rows in sync by
  // writing its lane stripe through to soa_vals.
  std::vector<std::size_t> mos_touched_slots;
  bool soa_stale = true;  // full tpl -> soa sync needed (run start)
  // Memo key for refresh_template: lane L's stripe is current for
  // (tpl_gmin, tpl_capmult, tpl_h) when tpl_valid[L] != 0.
  std::vector<double> tpl_gmin, tpl_capmult, tpl_h;
  std::vector<std::uint8_t> tpl_valid;
  std::vector<double> x, x_saved, f, rhs, dx;         // n * K
  std::vector<double> cap_v, cap_i;                   // nC * K
  std::vector<double> zeros;                          // K, all zero

  // ---- per-round per-lane scalars (K each) ------------------------------
  std::vector<double> lane_gmin, lane_h, lane_capmult, lane_trapmask, lane_t;
  std::vector<double> maxdv, damp;
  std::vector<std::uint8_t> lu_ok;

  // MOSFET kernel scratch (K each).  sc_* cache the drain/source-only
  // geometry of the current device so the base and gate-shift sweeps skip
  // recomputing it.
  std::vector<double> id0, gm, gds, cur, tap_buf;
  std::vector<double> sc_flow, sc_lo, sc_vds, sc_leak, sc_clm, sc_iopen;
  // Source values cached at arm time (source * K + lane): waveforms only
  // depend on the lane's attempt time, which is fixed across a step's
  // Newton rounds, so assemble_round reads these instead of calling
  // Waveform::value() per lane per round.
  std::vector<double> isrc_val, vsrc_val;

  SparseLu ref_lu;
  BatchLu blu;
  bool pivot_frozen = false;

  // ---- per-lane run state -----------------------------------------------
  enum class Phase { kIdle, kDc, kStep, kDone, kRetired };
  struct Lane {
    Phase phase = Phase::kIdle;
    TransientOptions opt;
    NewtonOptions newton;  // active options (DC uses the boosted iteration cap)
    std::vector<double> breakpoints;
    std::size_t next_bp = 0;
    bool be_next = true;
    bool dc_done = false;
    double t = 0.0;
    double h = 0.0;
    double h_try = 0.0;
    bool hit_bp = false;
    bool want_trap = false;
    bool attempt_trap = false;
    double attempt_t = 0.0;
    int nr_iter = 0;
    bool check_residual = false;
    bool needs_solve = false;
    bool force_fail = false;
    SolveStats stats;
    TransientResult result;
  };
  std::vector<Lane> lane;

  BatchRunStats bstats;
  std::size_t force_lane = static_cast<std::size_t>(-1);
  double force_time = 0.0;

  // Per-phase wall accumulators for the lockstep Newton loop; recorded as
  // esim.batch_{assemble,refactor,trisolve} timers once per run so the
  // BENCH reports break the SoA hot loop down without per-round registry
  // traffic.
  std::uint64_t ns_assemble = 0;
  std::uint64_t ns_refactor = 0;
  std::uint64_t ns_trisolve = 0;

  const double* node_ptr(std::ptrdiff_t u) const {
    return u < 0 ? zeros.data() : x.data() + static_cast<std::size_t>(u) * K;
  }

  // Heap footprint of the SoA stripes + the shared pattern and batched LU,
  // for the mem.batch_soa_bytes gauge.
  std::size_t soa_bytes() const;

  void build_structure();
  void refresh_template(std::size_t L, double gmin, double capmult, double h);
  void refresh_sources(std::size_t L);
  void assemble_round();
  void mos_eval_device(std::size_t mi);
  void freeze_pivots();
  void newton_round();
  void newton_converged(std::size_t L);
  void newton_fail(std::size_t L);
  void accept_dc(std::size_t L);
  void accept_step(std::size_t L);
  void arm(std::size_t L);
  void arm_dc(std::size_t L);
  void record(std::size_t L, double t);
  void refresh_cap_state(std::size_t L, double h, bool used_trap);
};

void BatchSimulator::Impl::build_structure() {
  const Circuit& c0 = circuits[0];
  n_nodes = c0.node_count();
  n_voltage = n_nodes - 1;
  n = n_voltage + c0.vsources().size();
  const std::size_t branch_base = n_voltage;

  // Pattern collection mirrors Simulator::build_stamp_plan.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  const auto add = [&entries](std::size_t r, std::size_t c) {
    entries.emplace_back(static_cast<std::uint32_t>(r),
                         static_cast<std::uint32_t>(c));
  };
  const auto add_pair = [&](NodeId row, NodeId col) {
    if (row.index != 0 && col.index != 0) add(row.index - 1, col.index - 1);
  };
  for (std::size_t i = 0; i < n_voltage; ++i) add(i, i);
  for (const auto& r : c0.resistors()) {
    add_pair(r.a, r.a);
    add_pair(r.a, r.b);
    add_pair(r.b, r.a);
    add_pair(r.b, r.b);
  }
  for (const auto& c : c0.capacitors()) {
    add_pair(c.a, c.a);
    add_pair(c.a, c.b);
    add_pair(c.b, c.a);
    add_pair(c.b, c.b);
  }
  for (const auto& m : c0.mosfets()) {
    add_pair(m.drain, m.gate);
    add_pair(m.drain, m.drain);
    add_pair(m.drain, m.source);
    add_pair(m.source, m.gate);
    add_pair(m.source, m.drain);
    add_pair(m.source, m.source);
  }
  const auto& vsrcs = c0.vsources();
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const std::size_t bi = branch_base + si;
    if (vsrcs[si].pos.index != 0) {
      add(vsrcs[si].pos.index - 1, bi);
      add(bi, vsrcs[si].pos.index - 1);
    }
    if (vsrcs[si].neg.index != 0) {
      add(vsrcs[si].neg.index - 1, bi);
      add(bi, vsrcs[si].neg.index - 1);
    }
  }
  j = SparseMatrix(n, std::move(entries));

  const std::size_t dummy = j.dummy_slot();
  const auto slot_of = [&](NodeId row, NodeId col) {
    if (row.index == 0 || col.index == 0) return dummy;
    return j.slot(row.index - 1, col.index - 1);
  };
  diag_slot.resize(n_voltage);
  for (std::size_t i = 0; i < n_voltage; ++i) diag_slot[i] = j.slot(i, i);
  const auto quad_of = [&](NodeId a, NodeId b) {
    return Quad{slot_of(a, a), slot_of(a, b), slot_of(b, a), slot_of(b, b)};
  };
  const auto unknown_of = [](NodeId node) {
    return node.index == 0 ? std::ptrdiff_t{-1}
                           : static_cast<std::ptrdiff_t>(node.index - 1);
  };
  for (const auto& r : c0.resistors()) {
    resistor_slots.push_back(quad_of(r.a, r.b));
    res_nodes.push_back({unknown_of(r.a), unknown_of(r.b)});
  }
  for (const auto& c : c0.capacitors()) {
    cap_slots.push_back(quad_of(c.a, c.b));
    cap_nodes.push_back({unknown_of(c.a), unknown_of(c.b)});
  }
  for (const auto& m : c0.mosfets()) {
    mos_slots.push_back({slot_of(m.drain, m.gate), slot_of(m.drain, m.drain),
                         slot_of(m.drain, m.source), slot_of(m.source, m.gate),
                         slot_of(m.source, m.drain),
                         slot_of(m.source, m.source)});
    mos_nodes.push_back(
        {unknown_of(m.gate), unknown_of(m.drain), unknown_of(m.source)});
  }
  for (const auto& v : vsrcs) {
    vsrc_nodes.push_back({unknown_of(v.pos), unknown_of(v.neg)});
  }
  for (const auto& isrc : c0.isources()) {
    isrc_nodes.push_back({unknown_of(isrc.from), unknown_of(isrc.to)});
  }

  // Per-lane device parameters, lane-contiguous.
  const std::size_t nR = res_nodes.size();
  const std::size_t nC = cap_nodes.size();
  const std::size_t nM = mos_nodes.size();
  res_g.assign(nR * K, 0.0);
  cap_c.assign(nC * K, 0.0);
  mp_sign.assign(nM * K, 1.0);
  mp_beta.assign(nM * K, 0.0);
  mp_vt.assign(nM * K, 0.0);
  mp_lambda.assign(nM * K, 0.0);
  mp_fullon.assign(nM * K, 0.0);
  mp_on.assign(nM * K, 0.0);
  mp_open.assign(nM * K, 0.0);
  for (std::size_t L = 0; L < K; ++L) {
    const Circuit& c = circuits[L];
    for (std::size_t ri = 0; ri < nR; ++ri) {
      res_g[ri * K + L] = 1.0 / c.resistors()[ri].resistance;
    }
    for (std::size_t ci = 0; ci < nC; ++ci) {
      cap_c[ci * K + L] = c.capacitors()[ci].capacitance;
    }
    for (std::size_t mi = 0; mi < nM; ++mi) {
      const auto& m = c.mosfets()[mi];
      mp_sign[mi * K + L] = m.params.type == MosType::kNmos ? 1.0 : -1.0;
      mp_beta[mi * K + L] = m.params.beta();
      mp_vt[mi * K + L] = m.params.vt;
      mp_lambda[mi * K + L] = m.params.lambda;
      mp_fullon[mi * K + L] = m.params.full_on_vgs;
      mp_on[mi * K + L] = m.fault == MosFault::kStuckOn ? 1.0 : 0.0;
      mp_open[mi * K + L] = m.fault == MosFault::kStuckOpen ? 1.0 : 0.0;
    }
  }

  // Constant SoA template: resistor conductances + vsource incidence.
  const std::size_t nvals = j.values_size();
  base_vals.assign(nvals * K, 0.0);
  for (std::size_t ri = 0; ri < nR; ++ri) {
    const auto& q = resistor_slots[ri];
    for (std::size_t L = 0; L < K; ++L) {
      const double g = res_g[ri * K + L];
      base_vals[q.aa * K + L] += g;
      base_vals[q.ab * K + L] -= g;
      base_vals[q.ba * K + L] -= g;
      base_vals[q.bb * K + L] += g;
    }
  }
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const std::size_t bi = branch_base + si;
    if (vsrcs[si].pos.index != 0) {
      const std::size_t s1 = j.slot(vsrcs[si].pos.index - 1, bi);
      const std::size_t s2 = j.slot(bi, vsrcs[si].pos.index - 1);
      for (std::size_t L = 0; L < K; ++L) {
        base_vals[s1 * K + L] += 1.0;
        base_vals[s2 * K + L] += 1.0;
      }
    }
    if (vsrcs[si].neg.index != 0) {
      const std::size_t s1 = j.slot(vsrcs[si].neg.index - 1, bi);
      const std::size_t s2 = j.slot(bi, vsrcs[si].neg.index - 1);
      for (std::size_t L = 0; L < K; ++L) {
        base_vals[s1 * K + L] -= 1.0;
        base_vals[s2 * K + L] -= 1.0;
      }
    }
  }
  for (std::size_t L = 0; L < K; ++L) base_vals[dummy * K + L] = 0.0;
  tpl_vals = base_vals;
  soa_vals.assign(nvals * K, 0.0);

  mos_touched_slots.clear();
  for (const auto& ms : mos_slots) {
    for (const std::size_t s : {ms.dg, ms.dd, ms.ds, ms.sg, ms.sd, ms.ss}) {
      mos_touched_slots.push_back(s);
    }
  }
  mos_touched_slots.push_back(dummy);
  std::sort(mos_touched_slots.begin(), mos_touched_slots.end());
  mos_touched_slots.erase(
      std::unique(mos_touched_slots.begin(), mos_touched_slots.end()),
      mos_touched_slots.end());

  x.assign(n * K, 0.0);
  x_saved.assign(n * K, 0.0);
  f.assign(n * K, 0.0);
  rhs.assign(n * K, 0.0);
  dx.assign(n * K, 0.0);
  cap_v.assign(nC * K, 0.0);
  cap_i.assign(nC * K, 0.0);
  zeros.assign(K, 0.0);
  lane_gmin.assign(K, 0.0);
  lane_h.assign(K, 1.0);
  lane_capmult.assign(K, 0.0);
  lane_trapmask.assign(K, 0.0);
  lane_t.assign(K, 0.0);
  maxdv.assign(K, 0.0);
  damp.assign(K, 0.0);
  lu_ok.assign(K, 0);
  id0.assign(K, 0.0);
  gm.assign(K, 0.0);
  gds.assign(K, 0.0);
  cur.assign(K, 0.0);
  tap_buf.assign(n_voltage, 0.0);
  sc_flow.assign(K, 0.0);
  sc_lo.assign(K, 0.0);
  sc_vds.assign(K, 0.0);
  sc_leak.assign(K, 0.0);
  sc_clm.assign(K, 0.0);
  sc_iopen.assign(K, 0.0);
  tpl_gmin.assign(K, 0.0);
  tpl_capmult.assign(K, 0.0);
  tpl_h.assign(K, 0.0);
  tpl_valid.assign(K, 0);
  isrc_val.assign(isrc_nodes.size() * K, 0.0);
  vsrc_val.assign(vsrc_nodes.size() * K, 0.0);
  lane.resize(K);

  ref_lu.analyze(j);
}

std::size_t BatchSimulator::Impl::soa_bytes() const {
  const auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t total = j.memory_bytes() + ref_lu.memory_bytes() +
                      blu.memory_bytes();
  for (const auto* v :
       {&res_g, &cap_c, &mp_sign, &mp_beta, &mp_vt, &mp_lambda, &mp_fullon,
        &mp_on, &mp_open, &base_vals, &tpl_vals, &soa_vals, &tpl_gmin,
        &tpl_capmult, &tpl_h, &x, &x_saved, &f, &rhs, &dx, &cap_v, &cap_i,
        &zeros, &lane_gmin, &lane_h, &lane_capmult, &lane_trapmask, &lane_t,
        &maxdv, &damp, &id0, &gm, &gds, &cur, &tap_buf, &sc_flow, &sc_lo,
        &sc_vds, &sc_leak, &sc_clm, &sc_iopen, &isrc_val, &vsrc_val}) {
    total += bytes(*v);
  }
  total += bytes(mos_touched_slots) + bytes(tpl_valid) + bytes(lu_ok);
  return total;
}

// Rebuild lane L's column of the Jacobian template for its current
// (gmin, capacitor-companion) key.  geq uses the same (mult * C) / h
// expression the residual loop uses, so matrix and residual agree exactly
// (the scalar path has the same property).
void BatchSimulator::Impl::refresh_template(std::size_t L, double gmin,
                                            double capmult, double h) {
  // At a fixed dt the (gmin, capmult, h) key repeats for step after step —
  // the stripe rebuild (and its soa write-through) would produce exactly
  // the bytes already there, so skip it.  The key changes only at
  // breakpoint-shortened steps, trapezoidal<->BE switches, and the DC
  // round, which all rebuild.
  if (tpl_valid[L] != 0 && tpl_gmin[L] == gmin && tpl_capmult[L] == capmult &&
      tpl_h[L] == h) {
    return;
  }
  tpl_valid[L] = 1;
  tpl_gmin[L] = gmin;
  tpl_capmult[L] = capmult;
  tpl_h[L] = h;
  const std::size_t nvals = j.values_size();
  for (std::size_t s = 0; s < nvals; ++s) {
    tpl_vals[s * K + L] = base_vals[s * K + L];
  }
  for (std::size_t i = 0; i < n_voltage; ++i) {
    tpl_vals[diag_slot[i] * K + L] += gmin;
  }
  if (capmult != 0.0) {
    for (std::size_t ci = 0; ci < cap_nodes.size(); ++ci) {
      const double geq = (capmult * cap_c[ci * K + L]) / h;
      const auto& q = cap_slots[ci];
      tpl_vals[q.aa * K + L] += geq;
      tpl_vals[q.ab * K + L] -= geq;
      tpl_vals[q.ba * K + L] -= geq;
      tpl_vals[q.bb * K + L] += geq;
    }
  }
  tpl_vals[j.dummy_slot() * K + L] = 0.0;
  // Write-through: assemble_round only restores the MOSFET-touched slots
  // each Newton round, so every other slot of this lane's soa_vals stripe
  // must track the template from here (once per step, not per round).
  for (std::size_t s = 0; s < nvals; ++s) {
    soa_vals[s * K + L] = tpl_vals[s * K + L];
  }
}

// Branchless SoA level-1 MOSFET current + central-difference derivatives
// for device mi at the current x.  Matches mosfet_current()'s algebra:
// PMOS sign fold, symmetric drain/source swap via max/min, stuck-on gate
// override, stuck-open leakage-only select.  Cutoff and triode round
// bit-identically to the scalar model; saturation regroups
// 0.5*beta*vov^2*clm as beta*(vov*vov - 0.5*vov*vov)*clm (~1 ulp).
void BatchSimulator::Impl::mos_eval_device(std::size_t mi) {
  const double* vg = node_ptr(mos_nodes[mi].g);
  const double* vd = node_ptr(mos_nodes[mi].d);
  const double* vs = node_ptr(mos_nodes[mi].s);
  const double* sign = mp_sign.data() + mi * K;
  const double* beta = mp_beta.data() + mi * K;
  const double* vt = mp_vt.data() + mi * K;
  const double* lambda = mp_lambda.data() + mi * K;
  const double* fullon = mp_fullon.data() + mi * K;
  const double* on = mp_on.data() + mi * K;
  const double* open = mp_open.data() + mi * K;

  // Branch-free so the lane loop vectorizes (ternary selects defeat GCC's
  // if-conversion here): hi/lo swap via max/min, flow via copysign, and the
  // fault overrides as exact mask arithmetic — on[]/open[] are exactly 0.0
  // or 1.0, so `m*a + (1-m)*b` selects bit-identically to the ternary.
  //
  // The five evaluations (base + four finite-difference shifts) are split
  // so nothing drain/source-dependent is recomputed for the gate shifts:
  // one geometry sweep caches flow/lo/vds/leak/clm/i_open (they only
  // depend on d and s), three cheap gate-part sweeps reuse them for the
  // base current and both gate shifts, and only the two drain shifts run
  // the full kernel.  Each sweep stays a small flat lane loop — GCC
  // refuses to vectorize the fully fused variant ("no vectype") — and
  // every variant's expression sequence matches the former standalone
  // kernel, so the results are bit-identical (up to the sign of zero for
  // the base gate offset of +0.0, which compares equal).
  {
    double* __restrict w_flow = sc_flow.data();
    double* __restrict w_lo = sc_lo.data();
    double* __restrict w_vds = sc_vds.data();
    double* __restrict w_leak = sc_leak.data();
    double* __restrict w_clm = sc_clm.data();
    double* __restrict w_iopen = sc_iopen.data();
    for (std::size_t L = 0; L < K; ++L) {
      const double sg = sign[L];
      const double vdn = sg * vd[L];
      const double vsn = sg * vs[L];
      w_flow[L] = std::copysign(1.0, vdn - vsn);
      const double hi = std::max(vdn, vsn);
      const double lo = std::min(vdn, vsn);
      w_lo[L] = lo;
      const double vds = hi - lo;
      w_vds[L] = vds;
      w_leak[L] = kGoff * vds;
      w_clm[L] = 1.0 + lambda[L] * vds;
      w_iopen[L] = kGoff * (vd[L] - vs[L]);
    }
  }

  // Gate-part sweep: current for gate voltage vg[L] + off with the cached
  // geometry.  off == 0.0 is the base evaluation (x + 0.0 == x except for
  // the sign of a zero, which is value-equal).
  const auto gate_eval = [&](double off, double* __restrict out) {
    const double* __restrict r_flow = sc_flow.data();
    const double* __restrict r_lo = sc_lo.data();
    const double* __restrict r_vds = sc_vds.data();
    const double* __restrict r_leak = sc_leak.data();
    const double* __restrict r_clm = sc_clm.data();
    const double* __restrict r_iopen = sc_iopen.data();
    for (std::size_t L = 0; L < K; ++L) {
      const double sg = sign[L];
      const double vgn = sg * (vg[L] + off);
      const double onm = on[L];
      const double vgs = onm * fullon[L] + (1.0 - onm) * (vgn - r_lo[L]);
      const double vov = vgs - vt[L];
      const double vovp = std::max(vov, 0.0);
      const double vdse = std::min(r_vds[L], vovp);
      const double fwd =
          beta[L] * (vovp * vdse - 0.5 * vdse * vdse) * r_clm[L] + r_leak[L];
      const double i_chan = sg * r_flow[L] * fwd;
      const double openm = open[L];
      out[L] = openm * r_iopen[L] + (1.0 - openm) * i_chan;
    }
  };

  // Full sweep for a drain shift of off: the geometry changes, so this is
  // the original kernel with d[L] + off inlined where shift[] used to be.
  const auto drain_eval = [&](double off, double* __restrict out) {
    for (std::size_t L = 0; L < K; ++L) {
      const double sg = sign[L];
      const double draw = vd[L] + off;
      const double vgn = sg * vg[L];
      const double vdn = sg * draw;
      const double vsn = sg * vs[L];
      const double flow = std::copysign(1.0, vdn - vsn);
      const double hi = std::max(vdn, vsn);
      const double lo = std::min(vdn, vsn);
      const double onm = on[L];
      const double vgs = onm * fullon[L] + (1.0 - onm) * (vgn - lo);
      const double vds = hi - lo;
      const double leak = kGoff * vds;
      const double vov = vgs - vt[L];
      const double vovp = std::max(vov, 0.0);
      const double vdse = std::min(vds, vovp);
      const double clm = 1.0 + lambda[L] * vds;
      const double fwd =
          beta[L] * (vovp * vdse - 0.5 * vdse * vdse) * clm + leak;
      const double i_chan = sg * flow * fwd;
      const double i_open = kGoff * (draw - vs[L]);
      const double openm = open[L];
      out[L] = openm * i_open + (1.0 - openm) * i_chan;
    }
  };

  gate_eval(0.0, id0.data());
  gate_eval(kMosFdStep, gm.data());
  gate_eval(-kMosFdStep, cur.data());
  {
    double* __restrict w_gm = gm.data();
    const double* __restrict r_im = cur.data();
    for (std::size_t L = 0; L < K; ++L) {
      w_gm[L] = (w_gm[L] - r_im[L]) / (2.0 * kMosFdStep);
    }
  }
  drain_eval(kMosFdStep, gds.data());
  drain_eval(-kMosFdStep, cur.data());
  {
    double* __restrict w_gds = gds.data();
    const double* __restrict r_im = cur.data();
    for (std::size_t L = 0; L < K; ++L) {
      w_gds[L] = (w_gds[L] - r_im[L]) / (2.0 * kMosFdStep);
    }
  }
}

// One SoA assembly of every lane: template memcpy, then the residual in
// the scalar device order (gmin, resistors, capacitors, MOSFETs,
// isources, vsources) so live lanes reproduce assemble_sparse()'s F.
// Retired/done lanes are computed too (garbage in, garbage out, confined
// to the lane) — gating them would break the dense lane loops.
void BatchSimulator::Impl::assemble_round() {
  if (soa_stale) {
    std::memcpy(soa_vals.data(), tpl_vals.data(),
                soa_vals.size() * sizeof(double));
    soa_stale = false;
  } else {
    // Only the MOSFET-stamped slots differ from the template after the
    // previous round; refresh_template write-through covers the rest.
    for (const std::size_t s : mos_touched_slots) {
      std::memcpy(soa_vals.data() + s * K, tpl_vals.data() + s * K,
                  K * sizeof(double));
    }
  }
  std::fill(f.begin(), f.end(), 0.0);

  for (std::size_t i = 0; i < n_voltage; ++i) {
    double* fr = f.data() + i * K;
    const double* xr = x.data() + i * K;
    for (std::size_t L = 0; L < K; ++L) fr[L] += lane_gmin[L] * xr[L];
  }

  for (std::size_t ri = 0; ri < res_nodes.size(); ++ri) {
    const double* pa = node_ptr(res_nodes[ri].a);
    const double* pb = node_ptr(res_nodes[ri].b);
    const double* g = res_g.data() + ri * K;
    for (std::size_t L = 0; L < K; ++L) cur[L] = g[L] * (pa[L] - pb[L]);
    if (res_nodes[ri].a >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(res_nodes[ri].a) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] += cur[L];
    }
    if (res_nodes[ri].b >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(res_nodes[ri].b) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] -= cur[L];
    }
  }

  for (std::size_t ci = 0; ci < cap_nodes.size(); ++ci) {
    const double* pa = node_ptr(cap_nodes[ci].a);
    const double* pb = node_ptr(cap_nodes[ci].b);
    const double* c = cap_c.data() + ci * K;
    const double* pv = cap_v.data() + ci * K;
    const double* pi = cap_i.data() + ci * K;
    for (std::size_t L = 0; L < K; ++L) {
      // DC lanes carry capmult == 0 (and lane_h == 1), zeroing the stamp
      // exactly as the scalar DC assembly's open-circuit skip does.
      const double geq = (lane_capmult[L] * c[L]) / lane_h[L];
      cur[L] = geq * ((pa[L] - pb[L]) - pv[L]) - lane_trapmask[L] * pi[L];
    }
    if (cap_nodes[ci].a >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(cap_nodes[ci].a) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] += cur[L];
    }
    if (cap_nodes[ci].b >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(cap_nodes[ci].b) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] -= cur[L];
    }
  }

  for (std::size_t mi = 0; mi < mos_nodes.size(); ++mi) {
    mos_eval_device(mi);
    if (mos_nodes[mi].d >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(mos_nodes[mi].d) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] += id0[L];
    }
    if (mos_nodes[mi].s >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(mos_nodes[mi].s) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] -= id0[L];
    }
    const auto& s = mos_slots[mi];
    double* vdg = soa_vals.data() + s.dg * K;
    double* vdd = soa_vals.data() + s.dd * K;
    double* vds = soa_vals.data() + s.ds * K;
    double* vsg = soa_vals.data() + s.sg * K;
    double* vsd = soa_vals.data() + s.sd * K;
    double* vss = soa_vals.data() + s.ss * K;
    for (std::size_t L = 0; L < K; ++L) {
      const double gms = -(gm[L] + gds[L]);
      vdg[L] += gm[L];
      vdd[L] += gds[L];
      vds[L] += gms;
      vsg[L] -= gm[L];
      vsd[L] -= gds[L];
      vss[L] -= gms;
    }
  }
  // A device with identical terminals stamps multiple quads into the dummy
  // slot; reset it so the freeze-time gather stays clean.
  {
    double* dummy = soa_vals.data() + j.dummy_slot() * K;
    for (std::size_t L = 0; L < K; ++L) dummy[L] = 0.0;
  }

  for (std::size_t ii = 0; ii < isrc_nodes.size(); ++ii) {
    const double* iv = isrc_val.data() + ii * K;
    if (isrc_nodes[ii].a >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(isrc_nodes[ii].a) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] += iv[L];
    }
    if (isrc_nodes[ii].b >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(isrc_nodes[ii].b) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] -= iv[L];
    }
  }

  for (std::size_t si = 0; si < vsrc_nodes.size(); ++si) {
    const std::size_t bi = n_voltage + si;
    const double* ib = x.data() + bi * K;
    if (vsrc_nodes[si].a >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(vsrc_nodes[si].a) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] += ib[L];
    }
    if (vsrc_nodes[si].b >= 0) {
      double* fr = f.data() + static_cast<std::size_t>(vsrc_nodes[si].b) * K;
      for (std::size_t L = 0; L < K; ++L) fr[L] -= ib[L];
    }
    const double* pp = node_ptr(vsrc_nodes[si].a);
    const double* pn = node_ptr(vsrc_nodes[si].b);
    const double* vv = vsrc_val.data() + si * K;
    double* __restrict fb = f.data() + bi * K;
    for (std::size_t L = 0; L < K; ++L) {
      fb[L] = pp[L] - pn[L] - vv[L];
    }
  }
}

// Freeze the pivot order from the first lane whose first assembled matrix
// factors; lanes it does not suit are caught by the per-lane refactor
// acceptance test and retired.  If no lane factors (structurally singular
// circuit), every active lane retires to the scalar path, which reports
// the failure with its full diagnostics.
void BatchSimulator::Impl::freeze_pivots() {
  for (std::size_t ref = 0; ref < K; ++ref) {
    if (!lane[ref].needs_solve) continue;
    double* vals = j.values();
    for (std::size_t s = 0; s < j.values_size(); ++s) {
      vals[s] = soa_vals[s * K + ref];
    }
    if (ref_lu.factor(j) == SparseLuStatus::kOk) {
      blu.attach(ref_lu, K);
      pivot_frozen = true;
      // Every lane conceptually pays the one-time symbolic factorization,
      // matching the scalar sparse path's first-solve accounting.
      for (std::size_t L = 0; L < K; ++L) {
        ++lane[L].stats.lu_factorizations;
        ++lane[L].stats.lu_pattern_rebuilds;
      }
      return;
    }
  }
}

void BatchSimulator::Impl::newton_round() {
  const std::uint64_t t0 = now_ns();
  assemble_round();
  ns_assemble += now_ns() - t0;

  if (!pivot_frozen) {
    // First round: every live lane needs a solve by construction.
    for (std::size_t L = 0; L < K; ++L) {
      Lane& ln = lane[L];
      ln.needs_solve = ln.phase == Phase::kDc || ln.phase == Phase::kStep;
    }
    freeze_pivots();
    if (!pivot_frozen) {
      for (std::size_t L = 0; L < K; ++L) {
        if (lane[L].needs_solve) {
          lane[L].needs_solve = false;
          newton_fail(L);
        }
      }
      return;
    }
  }

  bool any_solve = false;
  for (std::size_t L = 0; L < K; ++L) {
    Lane& ln = lane[L];
    ln.needs_solve = false;
    if (ln.phase != Phase::kDc && ln.phase != Phase::kStep) continue;
    if (ln.force_fail && ln.attempt_t >= force_time) {
      newton_fail(L);
      continue;
    }
    if (ln.check_residual) {
      double max_res = 0.0;
      for (std::size_t i = 0; i < n_voltage; ++i) {
        max_res = std::max(max_res, std::fabs(f[i * K + L]));
      }
      if (max_res < ln.newton.itol) {
        newton_converged(L);
        continue;
      }
      ln.check_residual = false;
    }
    if (ln.nr_iter == ln.newton.max_iterations) {
      ++ln.stats.newton_failures;
      newton_fail(L);
      continue;
    }
    ++ln.nr_iter;
    ++ln.stats.newton_iterations;
    ln.needs_solve = true;
    any_solve = true;
  }
  if (!any_solve) return;

  for (std::size_t i = 0; i < n * K; ++i) rhs[i] = -f[i];

  std::fill(lu_ok.begin(), lu_ok.end(), std::uint8_t{0});
  for (std::size_t L = 0; L < K; ++L) {
    if (lane[L].needs_solve) lu_ok[L] = 1;
  }
  ++bstats.refactor_passes;
  const std::uint64_t t1 = now_ns();
  blu.refactor(j, soa_vals.data(), lu_ok);
  ns_refactor += now_ns() - t1;
  for (std::size_t L = 0; L < K; ++L) {
    Lane& ln = lane[L];
    if (!ln.needs_solve) continue;
    ++ln.stats.lu_refactorizations;
    ln.stats.sparse_nnz = j.nnz();
    if (!lu_ok[L]) {
      // The frozen pivot order no longer suits this lane; the scalar
      // solver would re-pivot, the batch retires the lane instead.
      ++ln.stats.newton_failures;
      ln.needs_solve = false;
      newton_fail(L);
    }
  }

  const std::uint64_t t2 = now_ns();
  blu.solve(rhs.data(), dx.data());
  ns_trisolve += now_ns() - t2;

  std::fill(maxdv.begin(), maxdv.end(), 0.0);
  for (std::size_t i = 0; i < n_voltage; ++i) {
    const double* dr = dx.data() + i * K;
    for (std::size_t L = 0; L < K; ++L) {
      maxdv[L] = std::max(maxdv[L], std::fabs(dr[L]));
    }
  }
  std::fill(damp.begin(), damp.end(), 0.0);
  for (std::size_t L = 0; L < K; ++L) {
    Lane& ln = lane[L];
    if (!ln.needs_solve) continue;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(dx[i * K + L])) {
        finite = false;
        break;
      }
    }
    if (!finite) {
      ++ln.stats.lu_nonfinite;
      ++ln.stats.newton_failures;
      ln.needs_solve = false;
      newton_fail(L);
      continue;
    }
    damp[L] = maxdv[L] > ln.newton.max_step ? ln.newton.max_step / maxdv[L]
                                            : 1.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* xr = x.data() + i * K;
    const double* dr = dx.data() + i * K;
    for (std::size_t L = 0; L < K; ++L) {
      // The select (not a multiply-by-zero mask) keeps NaN garbage in dead
      // lanes from contaminating x of lanes that converged this round.
      xr[L] = damp[L] != 0.0 ? xr[L] + damp[L] * dr[L] : xr[L];
    }
  }
  for (std::size_t L = 0; L < K; ++L) {
    Lane& ln = lane[L];
    if (!ln.needs_solve) continue;
    ln.check_residual = maxdv[L] * damp[L] < ln.newton.vtol;
  }
}

void BatchSimulator::Impl::newton_converged(std::size_t L) {
  if (lane[L].phase == Phase::kDc) {
    accept_dc(L);
  } else {
    accept_step(L);
  }
}

void BatchSimulator::Impl::newton_fail(std::size_t L) {
  Lane& ln = lane[L];
  if (ln.phase == Phase::kStep && ln.attempt_trap) {
    // In-batch retry at the same h with backward Euler, exactly the scalar
    // step loop's second attempt: restore the pre-step iterate and re-arm.
    for (std::size_t i = 0; i < n; ++i) x[i * K + L] = x_saved[i * K + L];
    ln.attempt_trap = false;
    ln.nr_iter = 0;
    ln.check_residual = false;
    ++ln.stats.newton_calls;
    refresh_template(L, ln.opt.gmin, 1.0, ln.h_try);
    lane_capmult[L] = 1.0;
    lane_trapmask[L] = 0.0;
    return;
  }
  // DC failure (the scalar path would climb the gmin/source ladder) or a
  // BE step failure (the scalar path would halve dt): retire the lane.
  ln.phase = Phase::kRetired;
}

void BatchSimulator::Impl::accept_dc(std::size_t L) {
  Lane& ln = lane[L];
  ln.dc_done = true;
  ln.newton = ln.opt.newton;
  for (std::size_t ci = 0; ci < cap_nodes.size(); ++ci) {
    const double* pa = node_ptr(cap_nodes[ci].a);
    const double* pb = node_ptr(cap_nodes[ci].b);
    cap_v[ci * K + L] = pa[L] - pb[L];
    cap_i[ci * K + L] = 0.0;
  }
  record(L, 0.0);
  while (ln.next_bp < ln.breakpoints.size() &&
         ln.breakpoints[ln.next_bp] <= 1e-18) {
    ++ln.next_bp;
  }
  ln.be_next = true;
  ln.t = 0.0;
  ln.phase = Phase::kIdle;
}

void BatchSimulator::Impl::accept_step(std::size_t L) {
  Lane& ln = lane[L];
  if (ln.want_trap && !ln.attempt_trap) ++ln.stats.be_fallbacks;
  refresh_cap_state(L, ln.h_try, ln.attempt_trap);
  ln.t += ln.h_try;
  ++ln.stats.steps_accepted;
  if (ln.stats.min_dt_used == 0.0 || ln.h_try < ln.stats.min_dt_used) {
    ln.stats.min_dt_used = ln.h_try;
  }
  record(L, ln.t);
  const bool completed_interval = ln.h_try >= ln.h - 1e-21;
  if (ln.hit_bp && completed_interval) {
    ++ln.next_bp;
    ++ln.stats.breakpoints_hit;
    ln.be_next = true;  // damp the new corner with one BE step
  } else {
    ln.be_next = false;
  }
  ln.phase = Phase::kIdle;
}

// Evaluate every source waveform for lane L at its current attempt time.
// Called whenever lane_t[L] changes (arm / arm_dc); the cached stripes are
// what assemble_round stamps, keeping Waveform::value() off the per-round
// hot path.
void BatchSimulator::Impl::refresh_sources(std::size_t L) {
  const double t = lane_t[L];
  const auto& isrcs = circuits[L].isources();
  for (std::size_t ii = 0; ii < isrc_nodes.size(); ++ii) {
    isrc_val[ii * K + L] = isrcs[ii].wave.value(t);
  }
  const auto& vsrcs = circuits[L].vsources();
  for (std::size_t si = 0; si < vsrc_nodes.size(); ++si) {
    vsrc_val[si * K + L] = vsrcs[si].wave.value(t);
  }
}

void BatchSimulator::Impl::arm_dc(std::size_t L) {
  Lane& ln = lane[L];
  for (std::size_t i = 0; i < n; ++i) x[i * K + L] = 0.0;
  // The scalar run_transient boosts the DC iteration cap to >= 120, and
  // dc_solve's first rung raises it again for small damping steps; the
  // batch runs only that first plain-Newton rung (ladder -> fallback).
  ln.newton = ln.opt.newton;
  ln.newton.max_iterations = std::max(ln.newton.max_iterations, 120);
  ln.newton.max_iterations =
      std::max(ln.newton.max_iterations,
               static_cast<int>(600.0 * 0.02 / ln.newton.max_step));
  ++ln.stats.dc_solves;
  ++ln.stats.newton_calls;
  ln.nr_iter = 0;
  ln.check_residual = false;
  ln.attempt_t = 0.0;
  lane_t[L] = 0.0;
  refresh_sources(L);
  lane_gmin[L] = 1e-12;
  lane_h[L] = 1.0;
  lane_capmult[L] = 0.0;
  lane_trapmask[L] = 0.0;
  refresh_template(L, 1e-12, 0.0, 1.0);
  ln.phase = Phase::kDc;
}

void BatchSimulator::Impl::arm(std::size_t L) {
  Lane& ln = lane[L];
  if (!ln.dc_done) {
    arm_dc(L);
    return;
  }
  // Mirror of the scalar transient loop's step-selection preamble.
  while (true) {
    if (ln.t >= ln.opt.t_end - 1e-18) {
      ln.phase = Phase::kDone;
      return;
    }
    double h = ln.opt.dt;
    ln.hit_bp = false;
    if (ln.next_bp < ln.breakpoints.size() &&
        ln.t + h >= ln.breakpoints[ln.next_bp] - 1e-18) {
      h = ln.breakpoints[ln.next_bp] - ln.t;
      ln.hit_bp = true;
    }
    if (ln.t + h > ln.opt.t_end) h = ln.opt.t_end - ln.t;
    if (h <= 0.0) {
      ++ln.next_bp;
      continue;
    }
    if (h < ln.opt.dt_min) {
      // Sub-resolution sliver before a breakpoint: advance without solving.
      ln.t += h;
      if (ln.hit_bp) ++ln.next_bp;
      ln.be_next = true;
      continue;
    }
    ln.h = h;
    ln.h_try = h;
    ln.want_trap = ln.opt.trapezoidal && !ln.be_next;
    ln.attempt_trap = ln.want_trap;
    for (std::size_t i = 0; i < n; ++i) x_saved[i * K + L] = x[i * K + L];
    ln.attempt_t = ln.t + h;
    lane_t[L] = ln.attempt_t;
    refresh_sources(L);
    ln.nr_iter = 0;
    ln.check_residual = false;
    ++ln.stats.newton_calls;
    lane_gmin[L] = ln.opt.gmin;
    lane_h[L] = h;
    lane_capmult[L] = ln.attempt_trap ? 2.0 : 1.0;
    lane_trapmask[L] = ln.attempt_trap ? 1.0 : 0.0;
    refresh_template(L, ln.opt.gmin, lane_capmult[L], h);
    ln.phase = Phase::kStep;
    return;
  }
}

void BatchSimulator::Impl::record(std::size_t L, double t) {
  Lane& ln = lane[L];
  if (ln.opt.stream_tap != nullptr && n_nodes > 1) {
    for (std::size_t i = 0; i < n_voltage; ++i) tap_buf[i] = x[i * K + L];
    ln.opt.stream_tap->on_step(t, tap_buf.data(), n_voltage);
  }
  if (obs::timeline().enabled()) obs::timeline().on_sim_time(t);
  if (!ln.opt.record_waveforms) return;
  ln.result.time.push_back(t);
  ln.result.node_v[0].push_back(0.0);
  for (std::size_t i = 1; i < n_nodes; ++i) {
    ln.result.node_v[i].push_back(x[(i - 1) * K + L]);
  }
  for (std::size_t s = 0; s < vsrc_nodes.size(); ++s) {
    ln.result.vsrc_i[s].push_back(x[(n_voltage + s) * K + L]);
  }
}

void BatchSimulator::Impl::refresh_cap_state(std::size_t L, double h,
                                             bool used_trap) {
  for (std::size_t ci = 0; ci < cap_nodes.size(); ++ci) {
    const double* pa = node_ptr(cap_nodes[ci].a);
    const double* pb = node_ptr(cap_nodes[ci].b);
    const double v_now = pa[L] - pb[L];
    const double c = cap_c[ci * K + L];
    double& iv = cap_i[ci * K + L];
    double& vv = cap_v[ci * K + L];
    if (used_trap) {
      iv = (2.0 * c / h) * (v_now - vv) - iv;
    } else {
      iv = (c / h) * (v_now - vv);
    }
    vv = v_now;
  }
}

BatchSimulator::BatchSimulator(std::vector<Circuit> lanes)
    : impl_(std::make_unique<Impl>()) {
  impl_->K = lane_count_checked(lanes);
  impl_->circuits = std::move(lanes);
  impl_->build_structure();
}

BatchSimulator::~BatchSimulator() = default;
BatchSimulator::BatchSimulator(BatchSimulator&&) noexcept = default;
BatchSimulator& BatchSimulator::operator=(BatchSimulator&&) noexcept = default;

std::size_t BatchSimulator::lanes() const { return impl_->K; }

const BatchRunStats& BatchSimulator::last_batch_stats() const {
  return impl_->bstats;
}

void BatchSimulator::force_step_rejection_for_test(std::size_t lane,
                                                   double t) {
  impl_->force_lane = lane;
  impl_->force_time = t;
}

std::vector<BatchLaneOutcome> BatchSimulator::run_transients(
    const std::vector<TransientOptions>& options) {
  Impl& im = *impl_;
  const std::size_t K = im.K;
  sks::check(options.size() == K || options.size() == 1,
             "BatchSimulator: expected 1 or ", K, " TransientOptions, got ",
             options.size());

  const obs::Stopwatch wall;
  static obs::TimerStat& batch_timer =
      obs::registry().timer("esim.batch_transients");
  obs::ScopedTimer timer(batch_timer);
  obs::Span span("esim.batch_transients");
  span.arg("lanes", static_cast<double>(K));

  im.bstats = BatchRunStats{};
  im.bstats.lanes = K;
  im.pivot_frozen = false;
  im.soa_stale = true;
  std::fill(im.tpl_valid.begin(), im.tpl_valid.end(), std::uint8_t{0});
  std::fill(im.x.begin(), im.x.end(), 0.0);
  std::fill(im.cap_v.begin(), im.cap_v.end(), 0.0);
  std::fill(im.cap_i.begin(), im.cap_i.end(), 0.0);

  for (std::size_t L = 0; L < K; ++L) {
    Impl::Lane& ln = im.lane[L];
    ln = Impl::Lane{};
    ln.opt = options.size() == 1 ? options[0] : options[L];
    sks::check(ln.opt.t_end > 0.0, "run_transients: t_end must be positive");
    sks::check(ln.opt.dt > 0.0, "run_transients: dt must be positive");
    ln.newton = ln.opt.newton;
    ln.result.node_v.resize(im.n_nodes);
    ln.result.vsrc_i.resize(im.vsrc_nodes.size());
    ln.force_fail = L == im.force_lane;
    // Breakpoints from this lane's own source waveforms (lanes keep their
    // own time grids; only the Newton rounds are in lockstep).
    for (const auto& v : im.circuits[L].vsources()) {
      const auto bp = v.wave.breakpoints(ln.opt.t_end);
      ln.breakpoints.insert(ln.breakpoints.end(), bp.begin(), bp.end());
    }
    for (const auto& isrc : im.circuits[L].isources()) {
      const auto bp = isrc.wave.breakpoints(ln.opt.t_end);
      ln.breakpoints.insert(ln.breakpoints.end(), bp.begin(), bp.end());
    }
    ln.breakpoints.push_back(ln.opt.t_end);
    std::sort(ln.breakpoints.begin(), ln.breakpoints.end());
    ln.breakpoints.erase(
        std::unique(ln.breakpoints.begin(), ln.breakpoints.end(),
                    [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
        ln.breakpoints.end());
    if (ln.opt.record_waveforms) {
      const std::size_t est_steps =
          static_cast<std::size_t>(ln.opt.t_end / ln.opt.dt) +
          2 * ln.breakpoints.size() + 4;
      ln.result.time.reserve(est_steps);
      for (auto& v : ln.result.node_v) v.reserve(est_steps);
      for (auto& v : ln.result.vsrc_i) v.reserve(est_steps);
    }
    if (ln.opt.adaptive) {
      // The batch locks steps for the fixed-dt schedule only; adaptive
      // lanes go straight to the scalar solver.
      ln.phase = Impl::Phase::kRetired;
    } else {
      ln.phase = Impl::Phase::kIdle;
    }
  }

  while (true) {
    for (std::size_t L = 0; L < K; ++L) {
      if (im.lane[L].phase == Impl::Phase::kIdle) im.arm(L);
    }
    bool any_active = false;
    for (std::size_t L = 0; L < K; ++L) {
      if (im.lane[L].phase == Impl::Phase::kDc ||
          im.lane[L].phase == Impl::Phase::kStep) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    im.newton_round();
  }

  const double wall_s = wall.seconds();
  std::vector<BatchLaneOutcome> out(K);
  for (std::size_t L = 0; L < K; ++L) {
    Impl::Lane& ln = im.lane[L];
    BatchLaneOutcome& o = out[L];
    if (ln.phase == Impl::Phase::kDone) {
      ln.stats.wall_seconds = wall_s / static_cast<double>(K);
      ln.result.stats = ln.stats;
      mirror_stats_to_registry(ln.stats);
      o.result = std::move(ln.result);
      o.simulated = true;
      continue;
    }
    // Retired lane: re-run on the scalar Simulator — the golden path, with
    // its DC continuation ladder, dt halving, ConvergenceError payloads
    // and postmortem bundles — and splice the result back in lane order.
    ++im.bstats.fallbacks;
    o.fell_back = true;
    Simulator scalar(im.circuits[L]);
    try {
      o.result = scalar.run_transient(ln.opt);
      o.simulated = true;
    } catch (const ConvergenceError& e) {
      o.simulated = false;
      o.failure = e.what();
      o.bundle = e.bundle_path();
    }
  }

  static obs::TimerStat& t_assemble =
      obs::registry().timer("esim.batch_assemble");
  static obs::TimerStat& t_refactor =
      obs::registry().timer("esim.batch_refactor");
  static obs::TimerStat& t_trisolve =
      obs::registry().timer("esim.batch_trisolve");
  t_assemble.record_ns(im.ns_assemble);
  t_refactor.record_ns(im.ns_refactor);
  t_trisolve.record_ns(im.ns_trisolve);
  im.ns_assemble = im.ns_refactor = im.ns_trisolve = 0;

  static obs::Counter& c_lanes = obs::registry().counter("batch.lanes");
  static obs::Counter& c_fallbacks =
      obs::registry().counter("batch.fallbacks");
  static obs::Counter& c_refactor =
      obs::registry().counter("batch.refactorizations");
  c_lanes.inc(im.bstats.lanes);
  c_fallbacks.inc(im.bstats.fallbacks);
  c_refactor.inc(im.bstats.refactor_passes);
  if (obs::enabled()) {
    static obs::Gauge& soa_gauge =
        obs::registry().gauge("mem.batch_soa_bytes");
    obs::record_peak_bytes(soa_gauge, static_cast<double>(im.soa_bytes()));
  }
  span.arg("fallbacks", static_cast<double>(im.bstats.fallbacks))
      .arg("refactor_passes", static_cast<double>(im.bstats.refactor_passes));
  return out;
}

std::size_t resolve_batch_lanes(std::size_t requested,
                                std::size_t auto_default) {
  std::size_t lanes = requested;
  if (lanes == 0) {
    lanes = auto_default;
    if (const char* env = std::getenv("SKS_BATCH")) {
      const std::string_view v(env);
      if (v == "off" || v == "0" || v == "1") {
        lanes = 1;
      } else {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 2) {
          lanes = static_cast<std::size_t>(parsed);
        }
      }
    }
  }
  if (lanes == 0) lanes = 1;
  return std::min(lanes, kMaxBatchLanes);
}

}  // namespace sks::esim
