#include "esim/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sks::esim {

SparseMatrix::SparseMatrix(
    std::size_t n, std::vector<std::pair<std::uint32_t, std::uint32_t>> entries)
    : n_(n) {
  // Sort by (col, row), merge duplicates, then compress.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  col_ptr_.assign(n + 1, 0);
  row_.reserve(entries.size());
  for (const auto& [r, c] : entries) {
    ++col_ptr_[c + 1];
    row_.push_back(r);
  }
  for (std::size_t c = 0; c < n; ++c) col_ptr_[c + 1] += col_ptr_[c];
  values_.assign(row_.size() + 1, 0.0);  // + the dummy slot
}

std::size_t SparseMatrix::slot(std::size_t r, std::size_t c) const {
  const auto begin = row_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c]);
  const auto end = row_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::uint32_t>(r));
  return static_cast<std::size_t>(it - row_.begin());
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  const std::size_t s = slot(r, c);
  if (s >= col_ptr_[c + 1] || row_[s] != r) return 0.0;
  return values_[s];
}

std::vector<std::uint32_t> min_degree_order(const SparseMatrix& a) {
  const std::size_t n = a.size();
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t idx = a.col_ptr()[c]; idx < a.col_ptr()[c + 1]; ++idx) {
      const std::uint32_t r = a.row()[idx];
      if (r == c) continue;
      adj[r].push_back(static_cast<std::uint32_t>(c));
      adj[c].push_back(r);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<bool> alive(n, true);
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<std::uint32_t> neighbors, merged;
  for (std::size_t pick = 0; pick < n; ++pick) {
    // Minimum live degree, smallest index on ties: deterministic.
    std::size_t v = n, best = n + 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      if (adj[i].size() < best) {
        best = adj[i].size();
        v = i;
      }
    }
    order.push_back(static_cast<std::uint32_t>(v));
    alive[v] = false;
    neighbors = adj[v];
    // Eliminating v turns its neighborhood into a clique.
    for (const std::uint32_t u : neighbors) {
      merged.clear();
      std::set_union(adj[u].begin(), adj[u].end(), neighbors.begin(),
                     neighbors.end(), std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](std::uint32_t w) {
                                    return w == u || !alive[w];
                                  }),
                   merged.end());
      adj[u] = merged;
    }
    adj[v].clear();
    adj[v].shrink_to_fit();
  }
  return order;
}

std::size_t symbolic_fill(const SparseMatrix& a,
                          const std::vector<std::uint32_t>& order) {
  const std::size_t n = a.size();
  sks::check(order.size() == n, "symbolic_fill: order has ", order.size(),
             " entries for an n = ", n, " pattern");
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t idx = a.col_ptr()[c]; idx < a.col_ptr()[c + 1]; ++idx) {
      const std::uint32_t r = a.row()[idx];
      if (r == c) continue;
      adj[r].push_back(static_cast<std::uint32_t>(c));
      adj[c].push_back(r);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Same elimination as min_degree_order, with the pivot dictated by
  // `order`; the lists hold live vertices only, so each clique merge counts
  // every new edge once per endpoint.
  std::vector<bool> alive(n, true);
  std::size_t endpoint_fills = 0;
  std::vector<std::uint32_t> neighbors, merged;
  for (const std::uint32_t v : order) {
    sks::check(v < n && alive[v],
               "symbolic_fill: order is not a permutation of 0..n-1");
    alive[v] = false;
    neighbors = adj[v];
    for (const std::uint32_t u : neighbors) {
      merged.clear();
      std::set_union(adj[u].begin(), adj[u].end(), neighbors.begin(),
                     neighbors.end(), std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](std::uint32_t w) {
                                    return w == u || !alive[w];
                                  }),
                   merged.end());
      // adj[u] loses v (just died) and gains the new clique edges.
      endpoint_fills += merged.size() - (adj[u].size() - 1);
      adj[u] = merged;
    }
    adj[v].clear();
    adj[v].shrink_to_fit();
  }
  return endpoint_fills / 2;
}

void SparseLu::analyze(const SparseMatrix& a) {
  n_ = a.size();
  q_ = min_degree_order(a);
  pinv_.assign(n_, kNone);
  prow_.assign(n_, kNone);
  x_.assign(n_, 0.0);
  mark_.assign(n_, 0);
  epoch_ = 0;
  fwd_.assign(n_, 0.0);
  bwd_.assign(n_, 0.0);
  factored_ = false;
}

SparseLuStatus SparseLu::factor(const SparseMatrix& a) {
  factored_ = false;
  pinv_.assign(n_, kNone);
  prow_.assign(n_, kNone);
  lp_.assign(1, 0);
  up_.assign(1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  udiag_.assign(n_, 0.0);

  for (std::uint32_t jj = 0; jj < n_; ++jj) {
    const SparseLuStatus status = factor_column(a, jj);
    if (status != SparseLuStatus::kOk) return status;
  }
  factored_ = true;
  return SparseLuStatus::kOk;
}

SparseLuStatus SparseLu::factor_column(const SparseMatrix& a,
                                       std::uint32_t jj) {
  const std::uint32_t j = q_[jj];
  if (++epoch_ == 0) {  // epoch wrapped: reset marks
    mark_.assign(n_, 0);
    epoch_ = 1;
  }

  // Symbolic: reach of A(:, j)'s rows through the columns of L already
  // built (the nonzero pattern of L\A(:, j)).  Plain set collection — the
  // topological order needed by the numeric update is "pivot positions
  // ascending", established by sorting below and replayed verbatim by
  // refactor().
  reach_.clear();
  dfs_stack_.clear();
  for (std::size_t idx = a.col_ptr()[j]; idx < a.col_ptr()[j + 1]; ++idx) {
    const std::uint32_t r = a.row()[idx];
    if (mark_[r] != epoch_) {
      mark_[r] = epoch_;
      dfs_stack_.push_back(r);
    }
  }
  while (!dfs_stack_.empty()) {
    const std::uint32_t r = dfs_stack_.back();
    dfs_stack_.pop_back();
    reach_.push_back(r);
    const std::uint32_t k = pinv_[r];
    if (k == kNone) continue;
    for (std::size_t idx = lp_[k]; idx < lp_[k + 1]; ++idx) {
      const std::uint32_t child = li_[idx];
      if (mark_[child] != epoch_) {
        mark_[child] = epoch_;
        dfs_stack_.push_back(child);
      }
    }
  }

  // Numeric: x = A(:, j), then eliminate with every reached pivotal column
  // in ascending pivot order.
  for (std::size_t idx = a.col_ptr()[j]; idx < a.col_ptr()[j + 1]; ++idx) {
    x_[a.row()[idx]] = a.values()[idx];
  }
  pivotal_.clear();
  for (const std::uint32_t r : reach_) {
    if (pinv_[r] != kNone) pivotal_.push_back(pinv_[r]);
  }
  std::sort(pivotal_.begin(), pivotal_.end());
  for (const std::uint32_t k : pivotal_) {
    const double ukj = x_[prow_[k]];
    ui_.push_back(k);
    ux_.push_back(ukj);
    if (ukj != 0.0) {
      for (std::size_t idx = lp_[k]; idx < lp_[k + 1]; ++idx) {
        x_[li_[idx]] -= lx_[idx] * ukj;
      }
    }
  }
  up_.push_back(ui_.size());

  // Partial pivoting among the not-yet-pivotal rows.
  std::uint32_t rp = kNone;
  double best = -1.0;
  for (const std::uint32_t r : reach_) {
    if (pinv_[r] != kNone) continue;
    const double cand = std::fabs(x_[r]);
    if (cand > best || (cand == best && r < rp)) {
      best = cand;
      rp = r;
    }
  }
  if (rp == kNone || best < kSingularFloor) {
    for (const std::uint32_t r : reach_) x_[r] = 0.0;
    return SparseLuStatus::kSingular;
  }
  pinv_[rp] = jj;
  prow_[jj] = rp;
  const double pivot = x_[rp];
  udiag_[jj] = pivot;

  // L column: the remaining rows, sorted so refactor()'s replay order (and
  // hence its rounding) matches factor()'s.
  pivotal_.clear();  // reuse as scratch for the L rows
  for (const std::uint32_t r : reach_) {
    if (pinv_[r] == kNone) pivotal_.push_back(r);
  }
  std::sort(pivotal_.begin(), pivotal_.end());
  for (const std::uint32_t r : pivotal_) {
    li_.push_back(r);
    lx_.push_back(x_[r] / pivot);
  }
  lp_.push_back(li_.size());

  for (const std::uint32_t r : reach_) x_[r] = 0.0;
  return SparseLuStatus::kOk;
}

SparseLuStatus SparseLu::refactor(const SparseMatrix& a) {
  if (!factored_) return SparseLuStatus::kPivotDegenerate;
  for (std::uint32_t jj = 0; jj < n_; ++jj) {
    const std::uint32_t j = q_[jj];
    for (std::size_t idx = a.col_ptr()[j]; idx < a.col_ptr()[j + 1]; ++idx) {
      x_[a.row()[idx]] = a.values()[idx];
    }
    for (std::size_t uidx = up_[jj]; uidx < up_[jj + 1]; ++uidx) {
      const std::uint32_t k = ui_[uidx];
      const double ukj = x_[prow_[k]];
      ux_[uidx] = ukj;
      if (ukj != 0.0) {
        for (std::size_t lidx = lp_[k]; lidx < lp_[k + 1]; ++lidx) {
          x_[li_[lidx]] -= lx_[lidx] * ukj;
        }
      }
    }
    const double pivot = x_[prow_[jj]];
    double max_candidate = std::fabs(pivot);
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      max_candidate = std::max(max_candidate, std::fabs(x_[li_[lidx]]));
    }
    const bool acceptable =
        std::fabs(pivot) >= kSingularFloor &&
        std::fabs(pivot) >= kPivotTolerance * max_candidate;
    if (!acceptable) {
      // Clear the touched entries (all within this column's frozen
      // pattern) and hand control back for a full re-pivoting factor().
      for (std::size_t uidx = up_[jj]; uidx < up_[jj + 1]; ++uidx) {
        x_[prow_[ui_[uidx]]] = 0.0;
      }
      x_[prow_[jj]] = 0.0;
      for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
        x_[li_[lidx]] = 0.0;
      }
      factored_ = false;
      return SparseLuStatus::kPivotDegenerate;
    }
    udiag_[jj] = pivot;
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      lx_[lidx] = x_[li_[lidx]] / pivot;
    }
    for (std::size_t uidx = up_[jj]; uidx < up_[jj + 1]; ++uidx) {
      x_[prow_[ui_[uidx]]] = 0.0;
    }
    x_[prow_[jj]] = 0.0;
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      x_[li_[lidx]] = 0.0;
    }
  }
  return SparseLuStatus::kOk;
}

void SparseLu::solve(const std::vector<double>& b, std::vector<double>& x_out) {
  // x = Q (U \ (L \ P b)): forward substitution in original-row space,
  // back substitution in pivot-position space, then the column permutation.
  fwd_.assign(b.begin(), b.end());
  for (std::uint32_t k = 0; k < n_; ++k) {
    const double yk = fwd_[prow_[k]];
    bwd_[k] = yk;
    if (yk != 0.0) {
      for (std::size_t idx = lp_[k]; idx < lp_[k + 1]; ++idx) {
        fwd_[li_[idx]] -= lx_[idx] * yk;
      }
    }
  }
  for (std::uint32_t jj = n_; jj-- > 0;) {
    const double z = bwd_[jj] / udiag_[jj];
    bwd_[jj] = z;
    if (z != 0.0) {
      for (std::size_t idx = up_[jj]; idx < up_[jj + 1]; ++idx) {
        bwd_[ui_[idx]] -= ux_[idx] * z;
      }
    }
  }
  x_out.resize(n_);
  for (std::uint32_t jj = 0; jj < n_; ++jj) x_out[q_[jj]] = bwd_[jj];
}

std::size_t SparseLu::factor_nnz() const {
  return li_.size() + ui_.size() + n_;
}

double SparseLu::udiag_min_abs() const {
  if (!factored_ || udiag_.empty()) return 0.0;
  double m = std::fabs(udiag_[0]);
  for (const double d : udiag_) m = std::min(m, std::fabs(d));
  return m;
}

double SparseLu::udiag_max_abs() const {
  if (!factored_ || udiag_.empty()) return 0.0;
  double m = 0.0;
  for (const double d : udiag_) m = std::max(m, std::fabs(d));
  return m;
}

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

std::size_t SparseLu::memory_bytes() const {
  return vec_bytes(q_) + vec_bytes(pinv_) + vec_bytes(prow_) + vec_bytes(lp_) +
         vec_bytes(up_) + vec_bytes(li_) + vec_bytes(ui_) + vec_bytes(lx_) +
         vec_bytes(ux_) + vec_bytes(udiag_) + vec_bytes(x_) +
         vec_bytes(mark_) + vec_bytes(reach_) + vec_bytes(dfs_stack_) +
         vec_bytes(dfs_pos_) + vec_bytes(pivotal_) + vec_bytes(fwd_) +
         vec_bytes(bwd_);
}

std::size_t BatchLu::memory_bytes() const {
  return vec_bytes(q_) + vec_bytes(pinv_) + vec_bytes(prow_) + vec_bytes(lp_) +
         vec_bytes(up_) + vec_bytes(li_) + vec_bytes(ui_) + vec_bytes(lx_) +
         vec_bytes(ux_) + vec_bytes(udiag_) + vec_bytes(acc_) +
         vec_bytes(fwd_) + vec_bytes(bwd_) + vec_bytes(yk_) + vec_bytes(maxc_);
}

void BatchLu::attach(const SparseLu& reference, std::size_t lanes) {
  n_ = reference.n_;
  lanes_ = lanes;
  q_ = reference.q_;
  pinv_ = reference.pinv_;
  prow_ = reference.prow_;
  lp_ = reference.lp_;
  up_ = reference.up_;
  li_ = reference.li_;
  ui_ = reference.ui_;
  lx_.assign(li_.size() * lanes_, 0.0);
  ux_.assign(ui_.size() * lanes_, 0.0);
  udiag_.assign(n_ * lanes_, 0.0);
  acc_.assign(n_ * lanes_, 0.0);
  fwd_.assign(n_ * lanes_, 0.0);
  bwd_.assign(n_ * lanes_, 0.0);
  yk_.assign(lanes_, 0.0);
  maxc_.assign(lanes_, 0.0);
}

void BatchLu::refactor(const SparseMatrix& pattern, const double* soa_values,
                       std::vector<std::uint8_t>& ok) {
  // Per-lane replay of SparseLu::refactor on the frozen pattern: the outer
  // structure (columns, U updates in ascending pivot order, pivot test, L
  // scaling, sparse clear) is identical; only the innermost dimension is
  // the contiguous lane axis.  Unlike the scalar version there is no
  // `ukj != 0` skip — eliminating with a zero coefficient leaves the lane
  // value bit-identical, so each live lane rounds exactly like the scalar
  // replay would.
  // The K-trip lane loops below are tiny (K <= 64 doubles); without
  // __restrict the vectorizer versions every one of them with runtime
  // overlap checks that cost as much as the vector body.  The SoA arrays
  // are distinct members, so the no-alias promise holds by construction.
  const std::size_t K = lanes_;
  double* __restrict acc = acc_.data();
  double* __restrict lx = lx_.data();
  double* __restrict ux = ux_.data();
  double* __restrict udiag = udiag_.data();
  double* __restrict maxc = maxc_.data();
  for (std::uint32_t jj = 0; jj < n_; ++jj) {
    const std::uint32_t j = q_[jj];
    for (std::size_t idx = pattern.col_ptr()[j]; idx < pattern.col_ptr()[j + 1];
         ++idx) {
      const double* __restrict src = soa_values + idx * K;
      double* __restrict dst = acc + pattern.row()[idx] * K;
      for (std::size_t lane = 0; lane < K; ++lane) dst[lane] = src[lane];
    }
    for (std::size_t uidx = up_[jj]; uidx < up_[jj + 1]; ++uidx) {
      const std::uint32_t k = ui_[uidx];
      const double* ukj = acc + prow_[k] * K;
      double* __restrict uxv = ux + uidx * K;
      for (std::size_t lane = 0; lane < K; ++lane) uxv[lane] = ukj[lane];
      for (std::size_t lidx = lp_[k]; lidx < lp_[k + 1]; ++lidx) {
        double* __restrict xr = acc + li_[lidx] * K;
        const double* __restrict lxv = lx + lidx * K;
        for (std::size_t lane = 0; lane < K; ++lane) {
          xr[lane] -= lxv[lane] * uxv[lane];
        }
      }
    }
    const double* pivot = acc + prow_[jj] * K;
    for (std::size_t lane = 0; lane < K; ++lane) {
      maxc[lane] = std::fabs(pivot[lane]);
    }
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      const double* __restrict xr = acc + li_[lidx] * K;
      for (std::size_t lane = 0; lane < K; ++lane) {
        maxc[lane] = std::max(maxc[lane], std::fabs(xr[lane]));
      }
    }
    for (std::size_t lane = 0; lane < K; ++lane) {
      // Same acceptance rule as the scalar refactor; a NaN pivot fails the
      // >= comparisons and retires the lane.
      const bool acceptable =
          std::fabs(pivot[lane]) >= SparseLu::kSingularFloor &&
          std::fabs(pivot[lane]) >= SparseLu::kPivotTolerance * maxc[lane];
      if (!acceptable) ok[lane] = 0;
    }
    double* __restrict ud = udiag + static_cast<std::size_t>(jj) * K;
    for (std::size_t lane = 0; lane < K; ++lane) ud[lane] = pivot[lane];
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      double* __restrict lxv = lx + lidx * K;
      const double* __restrict xr = acc + li_[lidx] * K;
      for (std::size_t lane = 0; lane < K; ++lane) {
        lxv[lane] = xr[lane] / pivot[lane];
      }
    }
    for (std::size_t uidx = up_[jj]; uidx < up_[jj + 1]; ++uidx) {
      double* __restrict xr = acc + prow_[ui_[uidx]] * K;
      for (std::size_t lane = 0; lane < K; ++lane) xr[lane] = 0.0;
    }
    double* __restrict xp = acc + prow_[jj] * K;
    for (std::size_t lane = 0; lane < K; ++lane) xp[lane] = 0.0;
    for (std::size_t lidx = lp_[jj]; lidx < lp_[jj + 1]; ++lidx) {
      double* __restrict xr = acc + li_[lidx] * K;
      for (std::size_t lane = 0; lane < K; ++lane) xr[lane] = 0.0;
    }
  }
}

void BatchLu::solve(const double* b_soa, double* x_soa) {
  const std::size_t K = lanes_;
  double* __restrict fwd = fwd_.data();
  double* __restrict bwd = bwd_.data();
  double* __restrict yk = yk_.data();
  const double* __restrict lx = lx_.data();
  const double* __restrict ux = ux_.data();
  std::copy(b_soa, b_soa + n_ * K, fwd_.begin());
  for (std::uint32_t k = 0; k < n_; ++k) {
    const double* src = fwd + prow_[k] * K;
    double* __restrict bw = bwd + static_cast<std::size_t>(k) * K;
    for (std::size_t lane = 0; lane < K; ++lane) {
      yk[lane] = src[lane];
      bw[lane] = src[lane];
    }
    for (std::size_t idx = lp_[k]; idx < lp_[k + 1]; ++idx) {
      double* __restrict fw = fwd + li_[idx] * K;
      const double* __restrict lxv = lx + idx * K;
      for (std::size_t lane = 0; lane < K; ++lane) {
        fw[lane] -= lxv[lane] * yk[lane];
      }
    }
  }
  for (std::uint32_t jj = n_; jj-- > 0;) {
    double* __restrict bw = bwd + static_cast<std::size_t>(jj) * K;
    const double* __restrict ud = udiag_.data() + static_cast<std::size_t>(jj) * K;
    for (std::size_t lane = 0; lane < K; ++lane) {
      yk[lane] = bw[lane] / ud[lane];
      bw[lane] = yk[lane];
    }
    for (std::size_t idx = up_[jj]; idx < up_[jj + 1]; ++idx) {
      double* __restrict br = bwd + ui_[idx] * K;
      const double* __restrict uxv = ux + idx * K;
      for (std::size_t lane = 0; lane < K; ++lane) {
        br[lane] -= uxv[lane] * yk[lane];
      }
    }
  }
  for (std::uint32_t jj = 0; jj < n_; ++jj) {
    const double* __restrict bw = bwd + static_cast<std::size_t>(jj) * K;
    double* __restrict xo = x_soa + q_[jj] * K;
    for (std::size_t lane = 0; lane < K; ++lane) xo[lane] = bw[lane];
  }
}

}  // namespace sks::esim
