#include "esim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "esim/matrix.hpp"
#include "esim/postmortem.hpp"
#include "esim/schur.hpp"
#include "esim/sparse.hpp"
#include "obs/diag.hpp"
#include "obs/expose.hpp"
#include "obs/journal.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sks::esim {

void SolveStats::merge(const SolveStats& other) {
  newton_calls += other.newton_calls;
  newton_iterations += other.newton_iterations;
  newton_failures += other.newton_failures;
  lu_factorizations += other.lu_factorizations;
  lu_refactorizations += other.lu_refactorizations;
  lu_pattern_rebuilds += other.lu_pattern_rebuilds;
  lu_singular += other.lu_singular;
  lu_nonfinite += other.lu_nonfinite;
  sparse_nnz = std::max(sparse_nnz, other.sparse_nnz);
  schur_block_factorizations += other.schur_block_factorizations;
  schur_interface_solves += other.schur_interface_solves;
  dc_solves += other.dc_solves;
  dc_gmin_ladders += other.dc_gmin_ladders;
  dc_gmin_steps += other.dc_gmin_steps;
  dc_source_ladders += other.dc_source_ladders;
  dc_source_steps += other.dc_source_steps;
  dc_damped_retries += other.dc_damped_retries;
  steps_accepted += other.steps_accepted;
  steps_rejected += other.steps_rejected;
  dt_halvings += other.dt_halvings;
  be_fallbacks += other.be_fallbacks;
  breakpoints_hit += other.breakpoints_hit;
  if (other.min_dt_used > 0.0 &&
      (min_dt_used == 0.0 || other.min_dt_used < min_dt_used)) {
    min_dt_used = other.min_dt_used;
  }
  wall_seconds += other.wall_seconds;
}

// Batched mirror into the process-wide registry, once per public solve.
// The Counter references are resolved once: registry entries have stable
// addresses for the process lifetime.  Also used by BatchSimulator, which
// accounts each lane's SolveStats itself and must feed the same esim.*
// counters the scalar path does.
void mirror_stats_to_registry(const SolveStats& s) {
  static obs::Counter& runs = obs::registry().counter("esim.runs");
  static obs::Counter& nr_iters =
      obs::registry().counter("esim.newton_iterations");
  static obs::Counter& nr_calls = obs::registry().counter("esim.newton_calls");
  static obs::Counter& nr_fail =
      obs::registry().counter("esim.newton_failures");
  static obs::Counter& lu = obs::registry().counter("esim.lu_factorizations");
  static obs::Counter& lu_refactor =
      obs::registry().counter("esim.lu_refactorizations");
  static obs::Counter& lu_rebuilds =
      obs::registry().counter("esim.lu_pattern_rebuilds");
  static obs::Counter& lu_sing = obs::registry().counter("esim.lu_singular");
  static obs::Counter& lu_nonfin =
      obs::registry().counter("esim.lu_nonfinite");
  static obs::Counter& nnz = obs::registry().counter("esim.sparse_nnz");
  static obs::Counter& schur_blocks =
      obs::registry().counter("schur.block_factorizations");
  static obs::Counter& schur_solves =
      obs::registry().counter("schur.interface_solves");
  static obs::Counter& gmin_ladders =
      obs::registry().counter("esim.dc_gmin_ladders");
  static obs::Counter& source_ladders =
      obs::registry().counter("esim.dc_source_ladders");
  static obs::Counter& damped =
      obs::registry().counter("esim.dc_damped_retries");
  static obs::Counter& accepted =
      obs::registry().counter("esim.steps_accepted");
  static obs::Counter& rejected =
      obs::registry().counter("esim.steps_rejected");
  static obs::Counter& halvings = obs::registry().counter("esim.dt_halvings");
  static obs::Counter& be = obs::registry().counter("esim.be_fallbacks");
  static obs::Counter& bps = obs::registry().counter("esim.breakpoints_hit");
  runs.inc();
  nr_iters.inc(s.newton_iterations);
  nr_calls.inc(s.newton_calls);
  nr_fail.inc(s.newton_failures);
  lu.inc(s.lu_factorizations);
  lu_refactor.inc(s.lu_refactorizations);
  lu_rebuilds.inc(s.lu_pattern_rebuilds);
  lu_sing.inc(s.lu_singular);
  lu_nonfin.inc(s.lu_nonfinite);
  nnz.inc(s.sparse_nnz);
  schur_blocks.inc(s.schur_block_factorizations);
  schur_solves.inc(s.schur_interface_solves);
  gmin_ladders.inc(s.dc_gmin_ladders);
  source_ladders.inc(s.dc_source_ladders);
  damped.inc(s.dc_damped_retries);
  accepted.inc(s.steps_accepted);
  rejected.inc(s.steps_rejected);
  halvings.inc(s.dt_halvings);
  be.inc(s.be_fallbacks);
  bps.inc(s.breakpoints_hit);
}

namespace {

// Byte-gauge ratchets for the mem.* section of the reports.  Call sites
// gate on obs::enabled() and sit at solve *ends*, never inside the Newton
// loop; each update is one gauge compare-and-set plus the
// obs.mem_gauge_updates bump the bench gate pins to zero when off.
void record_sparse_lu_bytes(std::size_t bytes) {
  static obs::Gauge& gauge = obs::registry().gauge("mem.sparse_lu_bytes");
  obs::record_peak_bytes(gauge, static_cast<double>(bytes));
}

void record_schur_bytes(std::size_t bytes) {
  static obs::Gauge& gauge = obs::registry().gauge("mem.schur_bytes");
  obs::record_peak_bytes(gauge, static_cast<double>(bytes));
}

void record_waveform_bytes(const TransientResult& result) {
  static obs::Gauge& gauge = obs::registry().gauge("mem.waveform_bytes");
  std::size_t bytes = result.time.capacity() * sizeof(double);
  for (const auto& v : result.node_v) bytes += v.capacity() * sizeof(double);
  for (const auto& v : result.vsrc_i) bytes += v.capacity() * sizeof(double);
  obs::record_peak_bytes(gauge, static_cast<double>(bytes));
}

}  // namespace

// Symbolic prepass product: the sparse Jacobian pattern with every device
// stamp resolved to a direct value slot, the stamp template split into a
// constant part (resistors, vsource incidence) and a cached per-(gmin, h,
// integration method) part (gmin floor, capacitor companion conductances),
// and the reusable LU.  Stamps touching ground resolve to the matrix's
// dummy slot, so assembly needs no ground branches.
struct Simulator::StampPlan {
  SparseMatrix j;
  std::vector<double> base_values;      // constant stamps
  std::vector<double> template_values;  // base + gmin + capacitor geq
  double template_gmin = -1.0;          // cache key of template_values
  double template_h = -2.0;
  bool template_trap = false;
  bool template_valid = false;

  std::vector<std::size_t> diag_slot;  // per voltage unknown (gmin floor)
  struct Quad {
    std::size_t aa, ab, ba, bb;
  };
  std::vector<Quad> resistor_slots;
  std::vector<Quad> cap_slots;
  struct MosSlots {
    std::size_t dg, dd, ds, sg, sd, ss;
  };
  std::vector<MosSlots> mos_slots;
  SparseLu lu;
  // Hierarchical Schur path (esim/schur.hpp): non-null when the mode asked
  // for it AND the pattern partitioned into exploitable linear blocks.
  // When set, `lu` stays un-analyzed — the flat path's quadratic global
  // min-degree ordering is skipped entirely.
  std::unique_ptr<HierarchicalSolver> hier;
};

Simulator::Simulator(Circuit circuit) : circuit_(std::move(circuit)) {
  if (const char* env = std::getenv("SKS_SOLVER")) {
    const std::string_view value(env);
    if (value == "dense") solver_mode_ = SolverMode::kDense;
    else if (value == "sparse") solver_mode_ = SolverMode::kSparse;
    else if (value == "hierarchical") solver_mode_ = SolverMode::kHierarchical;
  }
  if (const char* env = std::getenv("SKS_POSTMORTEM")) {
    const std::string_view value(env);
    if (!value.empty() && value != "0") {
      set_postmortem_dir(value == "1" ? "sks-postmortem" : std::string(value));
    }
  }
}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

void Simulator::set_diagnostics(bool on) {
  if (on) {
    if (!diag_) diag_ = std::make_unique<obs::DiagRing>();
  } else {
    diag_.reset();
  }
}

void Simulator::set_postmortem_dir(std::string dir) {
  postmortem_dir_ = std::move(dir);
  if (!postmortem_dir_.empty()) set_diagnostics(true);
}

bool Simulator::sparse_path_active() const {
  switch (solver_mode_) {
    case SolverMode::kDense:
      return false;
    case SolverMode::kSparse:
    case SolverMode::kHierarchical:
      // kHierarchical is a sparse-family mode: when partitioning declines
      // it degrades to the flat sparse path, never to dense.
      return true;
    case SolverMode::kAuto:
      break;
  }
  return unknown_count() >= kSparseAutoThreshold;
}

bool Simulator::hierarchical_path_active() const {
  if (solver_mode_ != SolverMode::kHierarchical &&
      (solver_mode_ != SolverMode::kAuto ||
       unknown_count() < kHierarchicalAutoThreshold)) {
    return false;
  }
  if (!plan_) build_stamp_plan();
  return plan_->hier != nullptr;
}

std::size_t Simulator::schur_memory_bytes() const {
  return plan_ && plan_->hier ? plan_->hier->memory_bytes() : 0;
}

void Simulator::set_pool(par::ThreadPool* pool) {
  pool_ = pool;
  if (plan_ && plan_->hier) plan_->hier->set_pool(pool);
}

std::size_t Simulator::unknown_count() const {
  return (circuit_.node_count() - 1) + circuit_.vsources().size();
}

std::size_t Simulator::node_unknown(NodeId n) const { return n.index - 1; }

namespace {

// Voltage of a node given the unknown vector (ground is 0 V).
double node_v(const std::vector<double>& x, NodeId n) {
  return n.index == 0 ? 0.0 : x[n.index - 1];
}

}  // namespace

void Simulator::assemble(const std::vector<double>& x, double t, double h,
                         bool use_trap, const std::vector<double>& cap_prev_v,
                         const std::vector<double>& cap_prev_i, double gmin,
                         double source_scale, std::vector<double>& f_out,
                         DenseMatrix& j_out) const {
  const std::size_t n_unknowns = unknown_count();
  const std::size_t n_nodes = circuit_.node_count();
  f_out.assign(n_unknowns, 0.0);
  j_out.clear();

  auto stamp_f = [&](NodeId n, double current) {
    if (n.index != 0) f_out[node_unknown(n)] += current;
  };
  auto stamp_j = [&](NodeId row, NodeId col, double g) {
    if (row.index != 0 && col.index != 0) {
      j_out.at(node_unknown(row), node_unknown(col)) += g;
    }
  };

  // gmin floor: a conductance from every non-ground node to ground.
  for (std::size_t i = 1; i < n_nodes; ++i) {
    f_out[i - 1] += gmin * x[i - 1];
    j_out.at(i - 1, i - 1) += gmin;
  }

  // Resistors.
  for (const auto& r : circuit_.resistors()) {
    const double g = 1.0 / r.resistance;
    const double i = g * (node_v(x, r.a) - node_v(x, r.b));
    stamp_f(r.a, i);
    stamp_f(r.b, -i);
    stamp_j(r.a, r.a, g);
    stamp_j(r.a, r.b, -g);
    stamp_j(r.b, r.a, -g);
    stamp_j(r.b, r.b, g);
  }

  // Capacitors (companion models).  In DC (h <= 0) they are open circuits.
  if (h > 0.0) {
    const auto& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const auto& c = caps[ci];
      const double v = node_v(x, c.a) - node_v(x, c.b);
      double geq = 0.0;
      double i = 0.0;
      if (use_trap) {
        geq = 2.0 * c.capacitance / h;
        i = geq * (v - cap_prev_v[ci]) - cap_prev_i[ci];
      } else {
        geq = c.capacitance / h;
        i = geq * (v - cap_prev_v[ci]);
      }
      stamp_f(c.a, i);
      stamp_f(c.b, -i);
      stamp_j(c.a, c.a, geq);
      stamp_j(c.a, c.b, -geq);
      stamp_j(c.b, c.a, -geq);
      stamp_j(c.b, c.b, geq);
    }
  }

  // MOSFETs.
  for (const auto& m : circuit_.mosfets()) {
    const MosEval e = eval_mosfet(m.params, m.fault, node_v(x, m.gate),
                                  node_v(x, m.drain), node_v(x, m.source));
    const double gms = -(e.gm + e.gds);  // dId/dVs
    stamp_f(m.drain, e.id);
    stamp_f(m.source, -e.id);
    stamp_j(m.drain, m.gate, e.gm);
    stamp_j(m.drain, m.drain, e.gds);
    stamp_j(m.drain, m.source, gms);
    stamp_j(m.source, m.gate, -e.gm);
    stamp_j(m.source, m.drain, -e.gds);
    stamp_j(m.source, m.source, -gms);
  }

  // Independent current sources: I(t) flows out of `from`, into `to`.
  for (const auto& isrc : circuit_.isources()) {
    const double i = source_scale * isrc.wave.value(t);
    stamp_f(isrc.from, i);
    stamp_f(isrc.to, -i);
  }

  // Voltage sources: branch current unknowns + constraint rows.
  const std::size_t branch_base = n_nodes - 1;
  const auto& vsrcs = circuit_.vsources();
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const auto& v = vsrcs[si];
    const std::size_t bi = branch_base + si;
    const double i_branch = x[bi];
    // KCL: branch current leaves the positive node.
    if (v.pos.index != 0) {
      f_out[node_unknown(v.pos)] += i_branch;
      j_out.at(node_unknown(v.pos), bi) += 1.0;
    }
    if (v.neg.index != 0) {
      f_out[node_unknown(v.neg)] -= i_branch;
      j_out.at(node_unknown(v.neg), bi) -= 1.0;
    }
    // Constraint: v_pos - v_neg = V(t) * scale.
    f_out[bi] =
        node_v(x, v.pos) - node_v(x, v.neg) - source_scale * v.wave.value(t);
    if (v.pos.index != 0) j_out.at(bi, node_unknown(v.pos)) += 1.0;
    if (v.neg.index != 0) j_out.at(bi, node_unknown(v.neg)) -= 1.0;
  }
}

void Simulator::build_stamp_plan() const {
  plan_ = std::make_unique<StampPlan>();
  StampPlan& plan = *plan_;
  const std::size_t n = unknown_count();
  const std::size_t n_voltage = circuit_.node_count() - 1;
  const std::size_t branch_base = n_voltage;

  // Collect the pattern: every (row, col) a device can ever stamp.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  entries.reserve(n + 4 * (circuit_.resistors().size() +
                           circuit_.capacitors().size() +
                           circuit_.vsources().size()) +
                  6 * circuit_.mosfets().size());
  const auto add = [&entries](std::size_t r, std::size_t c) {
    entries.emplace_back(static_cast<std::uint32_t>(r),
                         static_cast<std::uint32_t>(c));
  };
  const auto add_pair = [&](NodeId row, NodeId col) {
    if (row.index != 0 && col.index != 0) {
      add(row.index - 1, col.index - 1);
    }
  };
  // The gmin floor guarantees a structural diagonal on every voltage row.
  for (std::size_t i = 0; i < n_voltage; ++i) add(i, i);
  for (const auto& r : circuit_.resistors()) {
    add_pair(r.a, r.a);
    add_pair(r.a, r.b);
    add_pair(r.b, r.a);
    add_pair(r.b, r.b);
  }
  for (const auto& c : circuit_.capacitors()) {
    add_pair(c.a, c.a);
    add_pair(c.a, c.b);
    add_pair(c.b, c.a);
    add_pair(c.b, c.b);
  }
  for (const auto& m : circuit_.mosfets()) {
    add_pair(m.drain, m.gate);
    add_pair(m.drain, m.drain);
    add_pair(m.drain, m.source);
    add_pair(m.source, m.gate);
    add_pair(m.source, m.drain);
    add_pair(m.source, m.source);
  }
  const auto& vsrcs = circuit_.vsources();
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const std::size_t bi = branch_base + si;
    if (vsrcs[si].pos.index != 0) {
      add(vsrcs[si].pos.index - 1, bi);
      add(bi, vsrcs[si].pos.index - 1);
    }
    if (vsrcs[si].neg.index != 0) {
      add(vsrcs[si].neg.index - 1, bi);
      add(bi, vsrcs[si].neg.index - 1);
    }
  }
  plan.j = SparseMatrix(n, std::move(entries));

  // Resolve every stamp to its slot (ground stamps to the dummy slot).
  const std::size_t dummy = plan.j.dummy_slot();
  const auto slot_of = [&](NodeId row, NodeId col) {
    if (row.index == 0 || col.index == 0) return dummy;
    return plan.j.slot(row.index - 1, col.index - 1);
  };
  plan.diag_slot.resize(n_voltage);
  for (std::size_t i = 0; i < n_voltage; ++i) {
    plan.diag_slot[i] = plan.j.slot(i, i);
  }
  const auto quad_of = [&](NodeId a, NodeId b) {
    return StampPlan::Quad{slot_of(a, a), slot_of(a, b), slot_of(b, a),
                           slot_of(b, b)};
  };
  plan.resistor_slots.reserve(circuit_.resistors().size());
  for (const auto& r : circuit_.resistors()) {
    plan.resistor_slots.push_back(quad_of(r.a, r.b));
  }
  plan.cap_slots.reserve(circuit_.capacitors().size());
  for (const auto& c : circuit_.capacitors()) {
    plan.cap_slots.push_back(quad_of(c.a, c.b));
  }
  plan.mos_slots.reserve(circuit_.mosfets().size());
  for (const auto& m : circuit_.mosfets()) {
    plan.mos_slots.push_back({slot_of(m.drain, m.gate),
                              slot_of(m.drain, m.drain),
                              slot_of(m.drain, m.source),
                              slot_of(m.source, m.gate),
                              slot_of(m.source, m.drain),
                              slot_of(m.source, m.source)});
  }

  // Constant template: stamps invariant across NR iterations AND time
  // steps — resistor conductances and vsource incidence.
  plan.base_values.assign(plan.j.values_size(), 0.0);
  for (std::size_t ri = 0; ri < circuit_.resistors().size(); ++ri) {
    const double g = 1.0 / circuit_.resistors()[ri].resistance;
    const auto& q = plan.resistor_slots[ri];
    plan.base_values[q.aa] += g;
    plan.base_values[q.ab] -= g;
    plan.base_values[q.ba] -= g;
    plan.base_values[q.bb] += g;
  }
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const std::size_t bi = branch_base + si;
    if (vsrcs[si].pos.index != 0) {
      plan.base_values[plan.j.slot(vsrcs[si].pos.index - 1, bi)] += 1.0;
      plan.base_values[plan.j.slot(bi, vsrcs[si].pos.index - 1)] += 1.0;
    }
    if (vsrcs[si].neg.index != 0) {
      plan.base_values[plan.j.slot(vsrcs[si].neg.index - 1, bi)] -= 1.0;
      plan.base_values[plan.j.slot(bi, vsrcs[si].neg.index - 1)] -= 1.0;
    }
  }
  plan.base_values[dummy] = 0.0;
  plan.template_values = plan.base_values;

  // Hierarchical attempt: explicitly requested modes try to partition at
  // any size; kAuto only once the system is big enough that the flat
  // path's global ordering starts to hurt.
  const bool attempt_hier =
      solver_mode_ == SolverMode::kHierarchical ||
      (solver_mode_ == SolverMode::kAuto && n >= kHierarchicalAutoThreshold);
  if (attempt_hier) {
    // The interface is every unknown a per-iteration stamp or a zero-
    // structural-diagonal row touches: MOSFET terminals (the gate column
    // receives fresh gm stamps each iteration, so it cannot sit inside a
    // frozen block), vsource terminal nodes and branch-current unknowns.
    std::vector<std::uint8_t> interface_mask(n, 0);
    const auto mark = [&](NodeId node) {
      if (node.index != 0) interface_mask[node.index - 1] = 1;
    };
    for (const auto& m : circuit_.mosfets()) {
      mark(m.gate);
      mark(m.drain);
      mark(m.source);
    }
    for (std::size_t si = 0; si < vsrcs.size(); ++si) {
      mark(vsrcs[si].pos);
      mark(vsrcs[si].neg);
      interface_mask[branch_base + si] = 1;
    }
    auto hier = std::make_unique<HierarchicalSolver>();
    if (hier->build(plan.j, interface_mask, pool_)) {
      plan.hier = std::move(hier);
    }
  }
  // The flat path's global min-degree ordering is quadratic in n; skip it
  // entirely when the hierarchical solver owns the solve.
  if (!plan.hier) plan.lu.analyze(plan.j);
}

void Simulator::assemble_sparse(const std::vector<double>& x, double t,
                                double h, bool use_trap,
                                const std::vector<double>& cap_prev_v,
                                const std::vector<double>& cap_prev_i,
                                double gmin, double source_scale,
                                std::vector<double>& f_out) const {
  if (!plan_) build_stamp_plan();
  StampPlan& plan = *plan_;
  const std::size_t n_unknowns = unknown_count();
  const std::size_t n_voltage = circuit_.node_count() - 1;

  // Refresh the per-(gmin, h, method) template only when the key changes:
  // within one Newton solve (and across the steps of a quiet transient
  // stretch) this is a cache hit and each iteration starts from a memcpy.
  if (!plan.template_valid || gmin != plan.template_gmin ||
      h != plan.template_h || use_trap != plan.template_trap) {
    plan.template_values = plan.base_values;
    for (std::size_t i = 0; i < n_voltage; ++i) {
      plan.template_values[plan.diag_slot[i]] += gmin;
    }
    if (h > 0.0) {
      const auto& caps = circuit_.capacitors();
      for (std::size_t ci = 0; ci < caps.size(); ++ci) {
        const double geq = (use_trap ? 2.0 : 1.0) * caps[ci].capacitance / h;
        const auto& q = plan.cap_slots[ci];
        plan.template_values[q.aa] += geq;
        plan.template_values[q.ab] -= geq;
        plan.template_values[q.ba] -= geq;
        plan.template_values[q.bb] += geq;
      }
    }
    plan.template_values[plan.j.dummy_slot()] = 0.0;
    plan.template_gmin = gmin;
    plan.template_h = h;
    plan.template_trap = use_trap;
    plan.template_valid = true;
  }
  double* vals = plan.j.values();
  std::memcpy(vals, plan.template_values.data(),
              plan.j.values_size() * sizeof(double));
  f_out.assign(n_unknowns, 0.0);

  // The residual accumulation mirrors the dense assemble() device order
  // exactly, so both paths compute bit-identical F at the same x.
  auto stamp_f = [&](NodeId n, double current) {
    if (n.index != 0) f_out[node_unknown(n)] += current;
  };

  for (std::size_t i = 0; i < n_voltage; ++i) {
    f_out[i] += gmin * x[i];
  }

  for (const auto& r : circuit_.resistors()) {
    const double g = 1.0 / r.resistance;
    const double i = g * (node_v(x, r.a) - node_v(x, r.b));
    stamp_f(r.a, i);
    stamp_f(r.b, -i);
  }

  if (h > 0.0) {
    const auto& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const auto& c = caps[ci];
      const double v = node_v(x, c.a) - node_v(x, c.b);
      double i = 0.0;
      if (use_trap) {
        const double geq = 2.0 * c.capacitance / h;
        i = geq * (v - cap_prev_v[ci]) - cap_prev_i[ci];
      } else {
        const double geq = c.capacitance / h;
        i = geq * (v - cap_prev_v[ci]);
      }
      stamp_f(c.a, i);
      stamp_f(c.b, -i);
    }
  }

  const auto& mosfets = circuit_.mosfets();
  for (std::size_t mi = 0; mi < mosfets.size(); ++mi) {
    const auto& m = mosfets[mi];
    const MosEval e = eval_mosfet(m.params, m.fault, node_v(x, m.gate),
                                  node_v(x, m.drain), node_v(x, m.source));
    const double gms = -(e.gm + e.gds);  // dId/dVs
    stamp_f(m.drain, e.id);
    stamp_f(m.source, -e.id);
    const auto& s = plan.mos_slots[mi];
    vals[s.dg] += e.gm;
    vals[s.dd] += e.gds;
    vals[s.ds] += gms;
    vals[s.sg] -= e.gm;
    vals[s.sd] -= e.gds;
    vals[s.ss] -= gms;
  }

  for (const auto& isrc : circuit_.isources()) {
    const double i = source_scale * isrc.wave.value(t);
    stamp_f(isrc.from, i);
    stamp_f(isrc.to, -i);
  }

  const std::size_t branch_base = n_voltage;
  const auto& vsrcs = circuit_.vsources();
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const auto& v = vsrcs[si];
    const std::size_t bi = branch_base + si;
    const double i_branch = x[bi];
    if (v.pos.index != 0) f_out[node_unknown(v.pos)] += i_branch;
    if (v.neg.index != 0) f_out[node_unknown(v.neg)] -= i_branch;
    f_out[bi] =
        node_v(x, v.pos) - node_v(x, v.neg) - source_scale * v.wave.value(t);
  }
}

bool Simulator::newton_solve(std::vector<double>& x, double t, double h,
                             bool use_trap,
                             const std::vector<double>& cap_prev_v,
                             const std::vector<double>& cap_prev_i, double gmin,
                             double source_scale,
                             const NewtonOptions& options) const {
  const std::size_t n = unknown_count();
  const std::size_t n_voltage = circuit_.node_count() - 1;
  const bool sparse = sparse_path_active();
  if (!sparse && ws_.j.size() != n) ws_.j = DenseMatrix(n);

  ++stats_.newton_calls;
  // Diagnostics: one DiagRecord per iteration when the ring is allocated.
  // `diag == nullptr` is the entire hot-loop cost of the feature when off —
  // the record is a stack value and the ring never allocates on push.
  obs::DiagRing* const diag = diag_.get();
  obs::DiagRecord rec;
  double last_pivot_growth = 0.0;
  double last_cond_est = 0.0;
  // The loop runs one extra trip beyond max_iterations: after an iteration
  // whose damped update fell below vtol, the NEXT trip's assembly (which a
  // continuing solve needs anyway) doubles as the residual convergence
  // check, so a converging iterate costs one assembly instead of two.
  bool check_residual = false;
  for (int iter = 0; iter <= options.max_iterations; ++iter) {
    if (sparse) {
      assemble_sparse(x, t, h, use_trap, cap_prev_v, cap_prev_i, gmin,
                      source_scale, ws_.f);
      stats_.sparse_nnz = plan_->j.nnz();
    } else {
      assemble(x, t, h, use_trap, cap_prev_v, cap_prev_i, gmin, source_scale,
               ws_.f, ws_.j);
    }

    if (diag != nullptr) {
      rec = obs::DiagRecord{};
      rec.t = t;
      rec.h = h;
      rec.iteration = iter;
      double max_res = 0.0;
      std::size_t worst = 0;
      for (std::size_t i = 0; i < n_voltage; ++i) {
        const double res = std::fabs(ws_.f[i]);
        if (!std::isfinite(res)) {
          max_res = res;
          worst = i;
          break;
        }
        if (res > max_res) {
          max_res = res;
          worst = i;
        }
      }
      rec.residual = max_res;
      rec.worst_unknown = static_cast<int>(worst);
    }

    if (check_residual) {
      // Converged when both the update (previous trip) and the KCL
      // residual at the updated x are tiny.
      double max_res = 0.0;
      for (std::size_t i = 0; i < n_voltage; ++i) {
        max_res = std::max(max_res, std::fabs(ws_.f[i]));
      }
      if (max_res < options.itol) {
        if (obs::journal().enabled()) {
          obs::journal().record({obs::EventType::kNewtonConverged, t, h, iter,
                                 h <= 0.0 ? "dc" : "transient"});
        }
        if (diag != nullptr) {
          obs::record_solve_health(max_res, last_pivot_growth, last_cond_est);
        }
        return true;
      }
      check_residual = false;
    }
    if (iter == options.max_iterations) break;
    ++stats_.newton_iterations;

    // Newton step: J dx = -F.
    ws_.rhs.resize(n);
    for (std::size_t i = 0; i < n; ++i) ws_.rhs[i] = -ws_.f[i];
    if (sparse) {
      HierarchicalSolver* const hier = plan_->hier.get();
      SparseLu& lu = plan_->lu;
      SparseLuStatus status;
      bool repivoted = false;
      if (hier != nullptr) {
        // Partitioned path: linear-block factors are cached per
        // (gmin, h, method) configuration inside the solver; each iteration
        // only re-solves the small Schur system over the interface and
        // writes dx directly.  The interface system runs the same
        // refactor-first / full-factor-on-degeneracy protocol as the flat
        // path, accounted through the same lu_* counters.
        status = hier->solve(plan_->j, SchurConfigKey{gmin, h, use_trap},
                             ws_.rhs, ws_.dx);
        const SchurStats ss = hier->take_stats();
        stats_.schur_block_factorizations += ss.block_factorizations;
        stats_.schur_interface_solves += ss.interface_solves;
        stats_.lu_refactorizations += ss.interface_refactors;
        stats_.lu_factorizations += ss.interface_factors;
        stats_.lu_pattern_rebuilds += ss.interface_factors;
        repivoted = ss.interface_refactors > 0 && ss.interface_factors > 0;
      } else if (lu.factored()) {
        // Fast path: numeric refactorization on the frozen pivot order;
        // full re-pivoting factorization only when a pivot degenerated.
        ++stats_.lu_refactorizations;
        status = lu.refactor(plan_->j);
        if (status == SparseLuStatus::kPivotDegenerate) {
          repivoted = true;
          ++stats_.lu_factorizations;
          ++stats_.lu_pattern_rebuilds;
          status = lu.factor(plan_->j);
        }
      } else {
        ++stats_.lu_factorizations;
        ++stats_.lu_pattern_rebuilds;
        status = lu.factor(plan_->j);
      }
      if (status != SparseLuStatus::kOk) {
        ++stats_.lu_singular;
        ++stats_.newton_failures;
        if (diag != nullptr) {
          rec.lu_status = obs::kDiagLuSingular;
          diag->push(rec);
          obs::record_solve_health(rec.residual, last_pivot_growth,
                                   last_cond_est);
        }
        return false;
      }
      if (diag != nullptr) {
        if (repivoted) rec.lu_status = obs::kDiagLuRepivoted;
        double max_a = 0.0;
        const double* vals = plan_->j.values();
        for (std::size_t i = 0; i < plan_->j.nnz(); ++i) {
          max_a = std::max(max_a, std::fabs(vals[i]));
        }
        const double dmax =
            hier != nullptr ? hier->udiag_max_abs() : lu.udiag_max_abs();
        const double dmin =
            hier != nullptr ? hier->udiag_min_abs() : lu.udiag_min_abs();
        if (dmin > 0.0) rec.cond_est = dmax / dmin;
        if (max_a > 0.0) rec.pivot_growth = dmax / max_a;
        last_pivot_growth = rec.pivot_growth;
        last_cond_est = rec.cond_est;
      }
      if (hier == nullptr) lu.solve(ws_.rhs, ws_.dx);
      bool finite = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(ws_.dx[i])) {
          finite = false;
          break;
        }
      }
      if (!finite) {
        ++stats_.lu_nonfinite;
        ++stats_.newton_failures;
        if (diag != nullptr) {
          rec.lu_status = obs::kDiagLuNonFinite;
          diag->push(rec);
          obs::record_solve_health(rec.residual, last_pivot_growth,
                                   last_cond_est);
        }
        return false;
      }
    } else {
      ++stats_.lu_factorizations;
      double max_a = 0.0;
      if (diag != nullptr) {
        // Pre-factor |A| scan (lu_solve destroys the Jacobian) feeding the
        // pivot-growth estimate.  Diagnostics path only.
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t c = 0; c < n; ++c) {
            max_a = std::max(max_a, std::fabs(ws_.j.at(r, c)));
          }
        }
      }
      LuPivotInfo pivots;
      const LuStatus status =
          lu_solve(ws_.j, ws_.rhs, ws_.dx, diag != nullptr ? &pivots : nullptr);
      if (diag != nullptr) {
        if (pivots.min_abs_pivot > 0.0) {
          rec.cond_est = pivots.max_abs_pivot / pivots.min_abs_pivot;
        }
        if (max_a > 0.0) rec.pivot_growth = pivots.max_abs_pivot / max_a;
        last_pivot_growth = rec.pivot_growth;
        last_cond_est = rec.cond_est;
      }
      if (status != LuStatus::kOk) {
        ++(status == LuStatus::kSingular ? stats_.lu_singular
                                         : stats_.lu_nonfinite);
        ++stats_.newton_failures;
        if (diag != nullptr) {
          rec.lu_status = status == LuStatus::kSingular
                              ? obs::kDiagLuSingular
                              : obs::kDiagLuNonFinite;
          diag->push(rec);
          obs::record_solve_health(rec.residual, last_pivot_growth,
                                   last_cond_est);
        }
        return false;
      }
    }

    // Clamp the voltage updates (classic SPICE damping); branch currents
    // are left unclamped.
    double max_dv = 0.0;
    double damping = 1.0;
    for (std::size_t i = 0; i < n_voltage; ++i) {
      max_dv = std::max(max_dv, std::fabs(ws_.dx[i]));
    }
    if (max_dv > options.max_step) damping = options.max_step / max_dv;
    for (std::size_t i = 0; i < n; ++i) x[i] += damping * ws_.dx[i];

    if (diag != nullptr) {
      rec.max_dx = max_dv;
      rec.damping = damping;
      diag->push(rec);
    }
    if (!std::isfinite(max_dv)) {
      ++stats_.newton_failures;
      if (diag != nullptr) {
        obs::record_solve_health(rec.residual, last_pivot_growth,
                                 last_cond_est);
      }
      return false;
    }
    if (std::getenv("SKS_DEBUG_NR") != nullptr) {
      std::fprintf(stderr, "  NR iter=%d t=%g h=%g max_dv=%g damp=%g\n", iter,
                   t, h, max_dv, damping);
    }
    check_residual = max_dv * damping < options.vtol;
  }
  ++stats_.newton_failures;
  if (diag != nullptr) {
    obs::record_solve_health(rec.residual, last_pivot_growth, last_cond_est);
  }
  return false;
}

bool Simulator::dc_solve(std::vector<double>& x, double t,
                         const NewtonOptions& options) const {
  const std::vector<double> no_caps;  // unused in DC
  // The whole continuation ladder is retried with progressively heavier
  // Newton damping: circuits with contention inside a positive-feedback
  // loop (stuck-on faults, bridges across the cross-coupled outputs) make
  // an undamped Newton cycle between attractors.
  ++stats_.dc_solves;
  bool first_rung = true;
  for (const double max_step : {options.max_step, 0.1, 0.02}) {
    if (!first_rung) {
      ++stats_.dc_damped_retries;
      if (obs::journal().enabled()) {
        obs::journal().record({obs::EventType::kNewtonFallback, t, max_step, 0,
                               "dc damped retry"});
      }
    }
    first_rung = false;
    NewtonOptions damped = options;
    damped.max_step = max_step;
    damped.max_iterations =
        std::max(options.max_iterations, static_cast<int>(600.0 * 0.02 / max_step));

    // Strategy 1: plain Newton with the gmin floor.
    std::vector<double>& trial = ws_.trial;
    trial = x;
    if (newton_solve(trial, t, -1.0, false, no_caps, no_caps, 1e-12, 1.0,
                     damped)) {
      x = trial;
      return true;
    }

    // Strategy 2: gmin stepping — heavy conductance to ground, relaxed
    // geometrically down to the floor, reusing each solution as the next
    // starting point.
    ++stats_.dc_gmin_ladders;
    if (obs::journal().enabled()) {
      obs::journal().record(
          {obs::EventType::kNewtonFallback, t, 0.0, 0, "gmin stepping"});
    }
    trial.assign(x.size(), 0.0);
    bool ladder_ok = true;
    for (double gmin = 1e-2; gmin >= 1e-13; gmin *= 0.1) {
      if (!newton_solve(trial, t, -1.0, false, no_caps, no_caps, gmin, 1.0,
                        damped)) {
        ladder_ok = false;
        break;
      }
      ++stats_.dc_gmin_steps;
    }
    if (ladder_ok) {
      x = trial;
      return true;
    }

    // Strategy 3: source stepping — ramp all sources from 0 to full value.
    ++stats_.dc_source_ladders;
    if (obs::journal().enabled()) {
      obs::journal().record(
          {obs::EventType::kNewtonFallback, t, 0.0, 0, "source stepping"});
    }
    trial.assign(x.size(), 0.0);
    bool sources_ok = true;
    for (int step = 1; step <= 20 && sources_ok; ++step) {
      const double scale = static_cast<double>(step) / 20.0;
      sources_ok = newton_solve(trial, t, -1.0, false, no_caps, no_caps,
                                1e-12, scale, damped);
      if (sources_ok) ++stats_.dc_source_steps;
    }
    if (sources_ok) {
      x = trial;
      return true;
    }
  }
  return false;
}

std::string Simulator::worst_residual_node(
    const std::vector<double>& x, double t, double h, bool use_trap,
    const std::vector<double>& cap_prev_v, const std::vector<double>& cap_prev_i,
    double gmin) const {
  std::vector<double>& f = ws_.f;
  if (sparse_path_active()) {
    assemble_sparse(x, t, h, use_trap, cap_prev_v, cap_prev_i, gmin, 1.0, f);
  } else {
    if (ws_.j.size() != unknown_count()) ws_.j = DenseMatrix(unknown_count());
    assemble(x, t, h, use_trap, cap_prev_v, cap_prev_i, gmin, 1.0, f, ws_.j);
  }
  const std::size_t n_voltage = circuit_.node_count() - 1;
  std::size_t worst = 0;
  double worst_res = -1.0;
  for (std::size_t i = 0; i < n_voltage; ++i) {
    const double res = std::isfinite(f[i]) ? std::fabs(f[i]) : 1e300;
    if (res > worst_res) {
      worst_res = res;
      worst = i;
    }
  }
  if (worst_res < 0.0) return "";
  return circuit_.node_name(NodeId{worst + 1});
}

void Simulator::attach_postmortem(ConvergenceError& err,
                                  const NewtonOptions& newton,
                                  const TransientOptions* transient,
                                  const TransientResult* waveforms,
                                  bool dt_at_floor) const {
  if (postmortem_dir_.empty()) return;
  obs::FailureEvidence evidence;
  evidence.phase = err.phase();
  evidence.lu_singular = stats_.lu_singular;
  evidence.lu_nonfinite = stats_.lu_nonfinite;
  evidence.dt_halvings = stats_.dt_halvings;
  evidence.dt_at_floor = dt_at_floor;
  if (diag_) evidence.tail = diag_->snapshot();
  const obs::FailureClass cls = obs::classify_failure(evidence);

  PostmortemContext context;
  context.circuit = &circuit_;
  context.phase = err.phase();
  context.failure_class = obs::to_string(cls);
  context.message = err.what();
  context.t = err.sim_time();
  context.iterations = err.iterations();
  context.worst_node = err.worst_node();
  context.sparse_path = sparse_path_active();
  context.dt_at_floor = dt_at_floor;
  context.stats = stats_;
  context.newton = newton;
  context.transient = transient;
  context.ring = diag_.get();
  context.waveforms = waveforms;
  PostmortemOptions popt;
  popt.dir = postmortem_dir_;
  try {
    const std::string bundle = write_postmortem_bundle(context, popt);
    err.set_bundle_path(bundle);
    if (obs::journal().enabled()) {
      obs::journal().record({obs::EventType::kWarning, err.sim_time(), 0.0,
                             static_cast<int>(err.iterations()),
                             "postmortem bundle: " + bundle});
    }
  } catch (const std::exception&) {
    // A full disk or unwritable directory must not mask the solver error.
  }
}

std::vector<double> Simulator::dc_operating_point(double t) {
  return dc_solution(t).node_v;
}

Simulator::DcSolution Simulator::dc_solution(
    double t, const std::vector<double>* node_guess) {
  stats_ = SolveStats{};
  const obs::Stopwatch wall;
  // Handle resolved once per process: a parallel campaign enters here for
  // every sample, and re-hashing the timer name per solve is measurable.
  static obs::TimerStat& dc_timer = obs::registry().timer("esim.dc_solution");
  obs::ScopedTimer timer(dc_timer);
  obs::Span span("esim.dc_solution");
  obs::ScopedRunPhase phase(obs::RunPhase::kDc);
  std::vector<double> x(unknown_count(), 0.0);
  if (node_guess != nullptr) {
    sks::check(node_guess->size() == circuit_.node_count(),
               "dc_solution: guess size mismatch, got ", node_guess->size(),
               " nodes, circuit has ", circuit_.node_count());
    for (std::size_t i = 1; i < circuit_.node_count(); ++i) {
      x[i - 1] = (*node_guess)[i];
    }
  }
  NewtonOptions options;
  if (diag_) diag_->clear();
  if (!dc_solve(x, t, options)) {
    stats_.wall_seconds = wall.seconds();
    mirror_stats_to_registry(stats_);
    const std::string worst =
        worst_residual_node(x, t, -1.0, false, {}, {}, 1e-12);
    ConvergenceError err(
        sks::detail::concat_parts(
            "DC operating point did not converge (t=", t * 1e12, " ps, ",
            stats_.newton_iterations, " NR iterations across the ladder",
            worst.empty() ? "" : ", worst residual at node '" + worst + "'",
            ")"),
        "dc", t, static_cast<long>(stats_.newton_iterations), worst);
    attach_postmortem(err, options, nullptr, nullptr, false);
    throw err;
  }
  DcSolution solution;
  solution.node_v.assign(circuit_.node_count(), 0.0);
  for (std::size_t i = 1; i < circuit_.node_count(); ++i) {
    solution.node_v[i] = x[i - 1];
  }
  const std::size_t branch_base = circuit_.node_count() - 1;
  solution.vsrc_i.assign(circuit_.vsources().size(), 0.0);
  for (std::size_t s = 0; s < circuit_.vsources().size(); ++s) {
    solution.vsrc_i[s] = x[branch_base + s];
  }
  stats_.wall_seconds = wall.seconds();
  mirror_stats_to_registry(stats_);
  if (obs::enabled() && plan_) {
    record_sparse_lu_bytes(plan_->j.memory_bytes() + plan_->lu.memory_bytes());
    if (plan_->hier) record_schur_bytes(plan_->hier->memory_bytes());
  }
  span.arg("nr_iters", static_cast<double>(stats_.newton_iterations))
      .arg("lu", static_cast<double>(stats_.lu_factorizations))
      .arg("lu_refactor", static_cast<double>(stats_.lu_refactorizations))
      .arg("sparse_nnz", static_cast<double>(stats_.sparse_nnz));
  solution.stats = stats_;
  return solution;
}

TransientResult Simulator::run_transient(const TransientOptions& options) {
  sks::check(options.t_end > 0.0, "run_transient: t_end must be positive");
  sks::check(options.dt > 0.0, "run_transient: dt must be positive");

  stats_ = SolveStats{};
  const obs::Stopwatch wall;
  static obs::TimerStat& transient_timer =
      obs::registry().timer("esim.run_transient");
  obs::ScopedTimer timer(transient_timer);
  obs::Span span("esim.run_transient");
  obs::ScopedRunPhase phase(obs::RunPhase::kTransient);
  span.arg("t_end", options.t_end).arg("dt", options.dt);

  const std::size_t n_nodes = circuit_.node_count();
  const std::size_t n_vsrc = circuit_.vsources().size();
  const std::size_t n_caps = circuit_.capacitors().size();

  // Initial condition: DC operating point at t = 0.
  std::vector<double> x(unknown_count(), 0.0);
  NewtonOptions dc_options = options.newton;
  dc_options.max_iterations = std::max(dc_options.max_iterations, 120);
  if (diag_) diag_->clear();
  if (!dc_solve(x, 0.0, dc_options)) {
    stats_.wall_seconds = wall.seconds();
    mirror_stats_to_registry(stats_);
    const std::string worst =
        worst_residual_node(x, 0.0, -1.0, false, {}, {}, 1e-12);
    ConvergenceError err(
        sks::detail::concat_parts(
            "transient: initial DC operating point failed (",
            stats_.newton_iterations, " NR iterations",
            worst.empty() ? "" : ", worst residual at node '" + worst + "'",
            ")"),
        "transient_dc", 0.0, static_cast<long>(stats_.newton_iterations),
        worst);
    attach_postmortem(err, dc_options, &options, nullptr, false);
    throw err;
  }

  // Collect breakpoints from all source waveforms.
  std::vector<double> breakpoints;
  for (const auto& v : circuit_.vsources()) {
    const auto bp = v.wave.breakpoints(options.t_end);
    breakpoints.insert(breakpoints.end(), bp.begin(), bp.end());
  }
  for (const auto& isrc : circuit_.isources()) {
    const auto bp = isrc.wave.breakpoints(options.t_end);
    breakpoints.insert(breakpoints.end(), bp.begin(), bp.end());
  }
  breakpoints.push_back(options.t_end);
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [](double a, double b) {
                                  return std::fabs(a - b) < 1e-18;
                                }),
                    breakpoints.end());

  TransientResult result;
  result.node_v.resize(n_nodes);
  result.vsrc_i.resize(n_vsrc);

  auto record = [&](double t) {
    if (options.stream_tap != nullptr && n_nodes > 1) {
      options.stream_tap->on_step(t, x.data(), n_nodes - 1);
    }
    if (obs::timeline().enabled()) obs::timeline().on_sim_time(t);
    if (!options.record_waveforms) return;  // bounded-memory soak mode
    result.time.push_back(t);
    result.node_v[0].push_back(0.0);
    for (std::size_t i = 1; i < n_nodes; ++i) {
      result.node_v[i].push_back(x[i - 1]);
    }
    for (std::size_t s = 0; s < n_vsrc; ++s) {
      result.vsrc_i[s].push_back(x[(n_nodes - 1) + s]);
    }
  };

  // Capacitor companion state.
  std::vector<double> cap_v(n_caps, 0.0);
  std::vector<double> cap_i(n_caps, 0.0);
  auto refresh_cap_state = [&](double h, bool used_trap) {
    const auto& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < n_caps; ++ci) {
      const double v_now = node_v(x, caps[ci].a) - node_v(x, caps[ci].b);
      if (used_trap) {
        cap_i[ci] =
            (2.0 * caps[ci].capacitance / h) * (v_now - cap_v[ci]) - cap_i[ci];
      } else {
        cap_i[ci] = (caps[ci].capacitance / h) * (v_now - cap_v[ci]);
      }
      cap_v[ci] = v_now;
    }
  };
  // Initialize companion voltages from the DC solution (currents are zero).
  {
    const auto& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < n_caps; ++ci) {
      cap_v[ci] = node_v(x, caps[ci].a) - node_v(x, caps[ci].b);
    }
  }

  record(0.0);

  double t = 0.0;
  std::size_t next_bp = 0;
  while (next_bp < breakpoints.size() && breakpoints[next_bp] <= 1e-18) {
    ++next_bp;
  }
  // Force one backward-Euler step after t=0 and after every breakpoint.
  bool be_next = true;
  double dt_current = options.dt;

  while (t < options.t_end - 1e-18) {
    double h = dt_current;
    bool hit_bp = false;
    if (next_bp < breakpoints.size() && t + h >= breakpoints[next_bp] - 1e-18) {
      h = breakpoints[next_bp] - t;
      hit_bp = true;
    }
    if (t + h > options.t_end) h = options.t_end - t;
    if (h <= 0.0) {
      ++next_bp;
      continue;
    }
    if (h < options.dt_min) {
      // Sub-resolution sliver left over by floating-point accumulation just
      // before a breakpoint: advance time without solving (nothing can
      // change in 10^-17 s) and damp the corner with a BE step.
      t += h;
      if (hit_bp) ++next_bp;
      be_next = true;
      continue;
    }

    // Attempt the step; on Newton failure fall back to backward Euler
    // (better damped), then halve the step.
    double h_try = h;
    bool ok = false;
    std::vector<double>& x_saved = ws_.x_saved;
    x_saved = x;
    const std::size_t n_voltage = n_nodes - 1;
    while (h_try >= options.dt_min) {
      const bool want_trap = options.trapezoidal && !be_next;
      bool solved = false;
      bool solved_with_trap = false;
      for (const bool use_trap : {want_trap, false}) {
        x = x_saved;
        if (newton_solve(x, t + h_try, h_try, use_trap, cap_v, cap_i,
                         options.gmin, 1.0, options.newton)) {
          solved = true;
          solved_with_trap = use_trap;
          break;
        }
        if (!want_trap) break;  // BE already tried
      }
      if (solved) {
        double max_dv = 0.0;
        for (std::size_t i = 0; i < n_voltage; ++i) {
          max_dv = std::max(max_dv, std::fabs(x[i] - x_saved[i]));
        }
        // Adaptive control: reject a step that moves any node too far (the
        // curvature within it is unresolved), unless already at the floor.
        if (options.adaptive && max_dv > options.dv_max &&
            h_try > 4.0 * options.dt_min) {
          ++stats_.steps_rejected;
          if (obs::journal().enabled()) {
            obs::journal().record(
                {obs::EventType::kStepRejected, t, h_try, 0, "dv_max"});
          }
          h_try *= 0.5;
          if (h_try < dt_current) dt_current = h_try;
          continue;
        }
        if (solved_with_trap != want_trap && want_trap) {
          ++stats_.be_fallbacks;
          if (obs::journal().enabled()) {
            obs::journal().record({obs::EventType::kNewtonFallback, t, h_try, 0,
                                   "trapezoidal -> BE"});
          }
        }
        refresh_cap_state(h_try, solved_with_trap);
        t += h_try;
        ++stats_.steps_accepted;
        if (stats_.min_dt_used == 0.0 || h_try < stats_.min_dt_used) {
          stats_.min_dt_used = h_try;
        }
        record(t);
        ok = true;
        // Quiet step: let the timestep recover toward dt_max.
        if (options.adaptive && max_dv < 0.25 * options.dv_max) {
          dt_current = std::min(dt_current * 1.5, options.dt_max);
        }
        break;
      }
      ++stats_.dt_halvings;
      if (obs::journal().enabled()) {
        obs::journal().record({obs::EventType::kDtHalved, t, h_try * 0.5, 0,
                               "newton failure"});
      }
      h_try *= 0.5;
      // Like the dv_max rejection path: remember that this step size just
      // failed so the adaptive controller does not immediately re-propose
      // it for the next interval (it regrows 1.5x per quiet step).
      if (options.adaptive && h_try < dt_current) dt_current = h_try;
    }
    if (!ok) {
      if (std::getenv("SKS_DEBUG_NR") != nullptr) {
        std::fprintf(stderr, "FAILSTATE t=%.6g h=%.3g\n", t, h);
        for (std::size_t i = 0; i < x_saved.size(); ++i) {
          std::fprintf(stderr, "  x[%zu] = %.6g\n", i, x_saved[i]);
        }
        for (std::size_t ci = 0; ci < cap_i.size(); ++ci) {
          std::fprintf(stderr, "  cap[%zu] v=%.6g i=%.6g\n", ci, cap_v[ci],
                       cap_i[ci]);
        }
      }
      stats_.wall_seconds = wall.seconds();
      mirror_stats_to_registry(stats_);
      // Continuous-health counter: the step was abandoned with dt at the
      // floor.  Always live (failure path only, nowhere near the hot loop).
      obs::registry().counter("dt.collapse_events").inc();
      const std::string worst = worst_residual_node(
          x_saved, t, options.dt_min, false, cap_v, cap_i, options.gmin);
      ConvergenceError err(
          sks::detail::concat_parts(
              "transient: Newton failed at t = ", t * 1e12,
              " ps (dt halved to ", options.dt_min, " s, ",
              stats_.newton_iterations, " NR iterations so far",
              worst.empty() ? "" : ", worst residual at node '" + worst + "'",
              ")"),
          "transient", t, static_cast<long>(stats_.newton_iterations), worst);
      attach_postmortem(err, options.newton, &options, &result, true);
      throw err;
    }

    const bool completed_interval = h_try >= h - 1e-21;
    if (hit_bp && completed_interval) {
      ++next_bp;
      ++stats_.breakpoints_hit;
      if (obs::journal().enabled()) {
        obs::journal().record({obs::EventType::kBreakpoint, t, 0.0, 0, ""});
      }
      be_next = true;  // damp the new corner with one BE step
    } else {
      be_next = false;
    }
  }

  stats_.wall_seconds = wall.seconds();
  mirror_stats_to_registry(stats_);
  if (obs::enabled()) {
    if (plan_) {
      record_sparse_lu_bytes(plan_->j.memory_bytes() +
                             plan_->lu.memory_bytes());
      if (plan_->hier) record_schur_bytes(plan_->hier->memory_bytes());
    }
    record_waveform_bytes(result);
  }
  span.arg("steps", static_cast<double>(stats_.steps_accepted))
      .arg("nr_iters", static_cast<double>(stats_.newton_iterations))
      .arg("lu_refactor", static_cast<double>(stats_.lu_refactorizations))
      .arg("sparse_nnz", static_cast<double>(stats_.sparse_nnz))
      .arg("min_dt", stats_.min_dt_used);
  result.stats = stats_;
  return result;
}

std::vector<double> dc_operating_point(const Circuit& circuit, double t) {
  Simulator sim(circuit);
  return sim.dc_operating_point(t);
}

TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options) {
  Simulator sim(circuit);
  return sim.run_transient(options);
}

}  // namespace sks::esim
