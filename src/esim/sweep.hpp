// DC sweep analysis: vary one source and track the operating point —
// the tool behind voltage-transfer curves (inverter VTC, the sensing
// circuit's static response) and IDDQ-vs-bias characterizations.
#pragma once

#include <string>
#include <vector>

#include "esim/engine.hpp"
#include "esim/netlist.hpp"

namespace sks::esim {

struct DcSweepOptions {
  std::string source_name;   // voltage source to sweep
  double from = 0.0;         // [V]
  double to = 5.0;           // [V]
  std::size_t points = 51;   // >= 2
};

struct DcSweepResult {
  std::vector<double> sweep;                 // swept source values
  std::vector<std::vector<double>> node_v;   // [node][point]
  std::vector<double> source_current;        // current delivered by the
                                             // swept source at each point
  // Solver telemetry aggregated over every sweep point.
  SolveStats stats;

  // Voltage of a named node across the sweep.
  std::vector<double> voltage(const Circuit& circuit,
                              const std::string& node) const;
};

// Sweep the named DC source.  Each point warm-starts from the previous
// solution, so sharp transfer characteristics (latching circuits) follow
// their hysteresis branch.  Throws on unknown source or DC failure.
DcSweepResult dc_sweep(const Circuit& circuit, const DcSweepOptions& options);

}  // namespace sks::esim
