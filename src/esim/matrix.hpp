// Dense linear algebra for the MNA system.  Small circuits (tens of
// unknowns) stay on this dense LU with partial pivoting — below the sparse
// threshold it is both the simplest and the fastest appropriate solver, and
// it serves as the reference implementation the sparse path is checked
// against (see esim/sparse.hpp).
#pragma once

#include <cstddef>
#include <vector>

namespace sks::esim {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  void clear();

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

// Outcome of a dense solve.  kSingular (no pivot above the 1e-30 floor) and
// kNonFinite (an overflow/NaN surfaced during back substitution) are kept
// apart so convergence forensics can tell a structurally singular system
// from a merely ill-scaled one.
enum class LuStatus { kOk, kSingular, kNonFinite };

// Diagnostics sidecar of a dense factorization: the |pivot| extrema seen
// while eliminating.  max/min is the cheap condition estimate the
// diagnostics layer exports; max over the pre-factor max |A_ij| is the
// pivot growth.  Filled even when the solve bails out singular, so a
// postmortem can show the offending near-zero pivot.
struct LuPivotInfo {
  double min_abs_pivot = 0.0;
  double max_abs_pivot = 0.0;
};

// Solve A x = b in place (A and b are destroyed).  `pivots`, when non-null,
// receives the pivot extrema (diagnostics path only — pass nullptr in hot
// loops).
LuStatus lu_solve(DenseMatrix& a, std::vector<double>& b,
                  std::vector<double>& x_out,
                  LuPivotInfo* pivots = nullptr);

}  // namespace sks::esim
