// Dense linear algebra for the MNA system.  Circuits in this library are
// small (tens of unknowns), so a dense LU with partial pivoting is both the
// simplest and the fastest appropriate solver.
#pragma once

#include <cstddef>
#include <vector>

namespace sks::esim {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  void clear();

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

// Solve A x = b in place (A and b are destroyed).  Returns false when the
// matrix is numerically singular.
bool lu_solve(DenseMatrix& a, std::vector<double>& b,
              std::vector<double>& x_out);

}  // namespace sks::esim
