// Sparse linear algebra for the MNA fast path.
//
// Clock-distribution circuits are extremely sparse (node degree <= 4 in an
// ACTreS-style tree), so above a few dozen unknowns the dense Jacobian
// wastes nearly all of its O(n^2) clear and O(n^3) LU work.  This header
// provides the two pieces the engine's sparse path is built from:
//
//  * `SparseMatrix` — a compressed-sparse-column matrix whose *pattern* is
//    fixed at construction.  The engine's symbolic prepass resolves every
//    device stamp to a `slot()` (a direct index into `values()`), so
//    per-iteration assembly is a memcpy of a template plus a handful of
//    indexed writes — no (row, col) arithmetic, no searches, no
//    allocations.  Stamps that touch the ground node write to
//    `dummy_slot()`, one extra value the solver never reads, which keeps
//    assembly branch-free.
//
//  * `SparseLu` — an LU factorization in three phases mirroring the
//    KLU/Gilbert-Peierls design: `analyze()` computes a fill-reducing
//    (minimum-degree) column ordering once; `factor()` performs the full
//    left-looking factorization with partial pivoting, recording the pivot
//    order and the fill pattern; `refactor()` redoes only the numeric work
//    on the frozen pattern and pivot order — the per-Newton-iteration fast
//    path — and reports `kPivotDegenerate` when a reused pivot has become
//    untrustworthy so the caller can fall back to a full `factor()`.
//
// Like the dense solver, a pivot magnitude below 1e-30 classifies the
// matrix as numerically singular, so fault-injected singular circuits fail
// identically on both paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sks::esim {

class SparseMatrix {
 public:
  SparseMatrix() = default;
  // Build an n x n pattern from (row, col) entries; duplicates are merged.
  // Values start at zero.
  SparseMatrix(std::size_t n,
               std::vector<std::pair<std::uint32_t, std::uint32_t>> entries);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return row_.size(); }

  // Index into values() for entry (r, c), which must be in the pattern.
  std::size_t slot(std::size_t r, std::size_t c) const;
  // One extra writable value past nnz() that the solver never reads:
  // stamps involving the ground node target it so assembly needs no
  // branches.
  std::size_t dummy_slot() const { return row_.size(); }

  // nnz() + 1 values; the last is the dummy slot.
  double* values() { return values_.data(); }
  const double* values() const { return values_.data(); }
  std::size_t values_size() const { return values_.size(); }

  // Column-compressed pattern: rows of column c are
  // row()[col_ptr()[c] .. col_ptr()[c+1]), sorted ascending, and their
  // values live at the same indices of values().
  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::uint32_t>& row() const { return row_; }

  // Value at (r, c), 0.0 when outside the pattern.  For tests and
  // diagnostics, not the hot path.
  double at(std::size_t r, std::size_t c) const;

  // Heap footprint of the pattern + values (allocated capacity), for the
  // mem.* byte gauges.
  std::size_t memory_bytes() const {
    return col_ptr_.capacity() * sizeof(std::size_t) +
           row_.capacity() * sizeof(std::uint32_t) +
           values_.capacity() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> col_ptr_;  // n + 1
  std::vector<std::uint32_t> row_;    // nnz, sorted within each column
  std::vector<double> values_;        // nnz + 1 (last = dummy slot)
};

// Fill-reducing elimination order of the symmetrized pattern (A + A^T,
// diagonal implied): classic minimum-degree with smallest-index
// tie-breaking, so the order is deterministic.  Exposed for tests.
std::vector<std::uint32_t> min_degree_order(const SparseMatrix& a);

// Structural fill of symbolically eliminating the symmetrized pattern in
// the given order: the number of new off-diagonal (undirected) adjacencies
// created.  `order` must be a permutation of 0..n-1 (throws sks::Error
// otherwise).  This is the quantity min_degree_order minimizes greedily;
// exposed so tests can compare orderings without running a numeric factor.
std::size_t symbolic_fill(const SparseMatrix& a,
                          const std::vector<std::uint32_t>& order);

enum class SparseLuStatus {
  kOk,
  kSingular,         // no acceptable pivot (|pivot| < 1e-30): matrix singular
  kPivotDegenerate,  // refactor only: a frozen pivot lost too much magnitude;
                     // retry with a full factor()
};

class BatchLu;

class SparseLu {
 public:
  // Phase 1 (once per pattern): fill-reducing column ordering.
  void analyze(const SparseMatrix& a);
  bool analyzed() const { return !q_.empty(); }

  // Phase 2: full left-looking factorization (partial pivoting), records
  // pivot order + fill pattern.  Requires analyze() on the same pattern.
  SparseLuStatus factor(const SparseMatrix& a);
  bool factored() const { return factored_; }

  // Phase 3 (the per-iteration fast path): numeric-only refactorization on
  // the frozen pivot order and pattern.  Never returns kSingular — a
  // too-small or too-degraded pivot yields kPivotDegenerate and leaves the
  // factors invalid until the next successful factor()/refactor().
  SparseLuStatus refactor(const SparseMatrix& a);

  // Solve A x = b with the current factors.  Uses internal scratch, hence
  // non-const; does not allocate after the first call at a given size.
  void solve(const std::vector<double>& b, std::vector<double>& x_out);

  // nnz(L) + nnz(U) including diagonals — the fill the ordering produced.
  std::size_t factor_nnz() const;

  // |U| diagonal extrema of the current factors (0 when not factored).
  // max/min is the cheap condition estimate the diagnostics layer exports;
  // max over the pre-factor max |A_ij| is the pivot growth.
  double udiag_min_abs() const;
  double udiag_max_abs() const;

  // Heap footprint of the factors + scratch (allocated capacity), for the
  // mem.* byte gauges.
  std::size_t memory_bytes() const;

 private:
  friend class BatchLu;

  void scatter_column(const SparseMatrix& a, std::size_t col);
  SparseLuStatus factor_column(const SparseMatrix& a, std::uint32_t jj);

  static constexpr std::uint32_t kNone = 0xffffffffu;
  // Refactor pivot acceptance: keep the frozen pivot while it retains at
  // least this fraction of its column's largest candidate magnitude
  // (KLU-style growth guard).
  static constexpr double kPivotTolerance = 1e-3;
  static constexpr double kSingularFloor = 1e-30;  // mirrors the dense guard

  std::size_t n_ = 0;
  std::vector<std::uint32_t> q_;     // column order: column q_[jj] is jj-th
  std::vector<std::uint32_t> pinv_;  // original row -> pivot position
  std::vector<std::uint32_t> prow_;  // pivot position -> original row
  // L (unit diagonal implicit) and U in compressed-column form indexed by
  // pivot position jj.  L rows are original row ids; U "rows" are pivot
  // positions k < jj, stored ascending (a valid topological order, replayed
  // verbatim by refactor so factor and refactor round identically).
  std::vector<std::size_t> lp_, up_;
  std::vector<std::uint32_t> li_, ui_;
  std::vector<double> lx_, ux_;
  std::vector<double> udiag_;
  bool factored_ = false;

  // Scratch (sized n): sparse accumulator, reach marks and stacks.
  std::vector<double> x_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> reach_, dfs_stack_, dfs_pos_, pivotal_;
  std::vector<double> fwd_, bwd_;  // solve scratch
};

// Multi-lane companion of SparseLu for structure-identical matrix batches:
// replays the numeric refactorization and the triangular solves of ONE
// frozen symbolic factorization (column order, pivot order, L/U fill
// pattern) across K matrices stored structure-of-arrays — values laid out
// `slot * lanes + lane`, so every inner loop runs contiguously over the
// lane axis and auto-vectorizes.  There is no per-lane pivoting: a lane
// whose frozen pivot degenerates (same acceptance rule as
// SparseLu::refactor) is flagged in the `ok` mask and must be retired to a
// scalar solver by the caller; the other lanes are unaffected.  Flagged
// lanes keep being computed (their factors are garbage, possibly non-
// finite) — garbage stays confined to the lane because no cross-lane
// reduction ever mixes values.
class BatchLu {
 public:
  // Freeze the symbolic structure of a successfully factored reference.
  // Only the pattern is copied; call refactor() before solve().
  void attach(const SparseLu& reference, std::size_t lanes);
  bool attached() const { return lanes_ > 0; }
  std::size_t lanes() const { return lanes_; }

  // Numeric refactor of every lane from `soa_values` (the SoA view of
  // `pattern.values()`: `lanes` doubles per slot; the dummy slot is never
  // read).  `ok` must arrive sized `lanes`; entries already false are
  // computed but not re-validated, entries true are cleared when that
  // lane's pivot acceptance fails.
  void refactor(const SparseMatrix& pattern, const double* soa_values,
                std::vector<std::uint8_t>& ok);

  // Blocked multi-RHS solve: x[u * lanes + lane] solves lane `lane` for
  // b[u * lanes + lane].  Requires refactor(); b and x may not alias.
  void solve(const double* b_soa, double* x_soa);

  // Heap footprint of the frozen symbolic data + SoA factors + scratch
  // (allocated capacity), for the mem.* byte gauges.
  std::size_t memory_bytes() const;

 private:
  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  // Frozen symbolic data, copied from the reference (names as in SparseLu).
  std::vector<std::uint32_t> q_, pinv_, prow_;
  std::vector<std::size_t> lp_, up_;
  std::vector<std::uint32_t> li_, ui_;
  // SoA numeric factors: `lanes` doubles per L/U entry and per pivot.
  std::vector<double> lx_, ux_, udiag_;
  // Scratch: dense per-lane accumulator (n * lanes), solve buffers.
  std::vector<double> acc_, fwd_, bwd_, yk_, maxc_;
};

}  // namespace sks::esim
