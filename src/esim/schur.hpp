// Hierarchical Schur-complement solves for big clock networks.
//
// A synthesized clock distribution network at 10k-100k MNA unknowns is
// overwhelmingly *linear*: RC wire segments, with a sparse sprinkling of
// nonlinear devices (repowering buffers, sensors) and the sources.  Inside
// a Newton loop only the MOSFET gm/gds stamps change between iterations —
// every resistor / capacitor-companion / gmin stamp is frozen per
// (gmin, h, integration-method) template configuration.  The flat sparse
// path still re-runs the numeric LU over ALL unknowns per iteration, and
// its global minimum-degree ordering is quadratic in n — both become the
// bill at scale.
//
// This header factors the structure out:
//
//  * `partition_linear_blocks` — a partitioning pass over the StampPlan
//    pattern: the *interface* is every unknown a nonlinear device or a
//    voltage source touches (MOSFET gate/drain/source rows+columns, vsource
//    terminal nodes and branch-current rows); the connected components of
//    the remaining unknowns are the linear RC subtree *blocks*.  On a
//    buffered tree each block is the passive wiring between buffer stages,
//    bounded by a handful of interface nodes (nested dissection with the
//    separator chosen by device physics instead of graph heuristics).
//
//  * `HierarchicalSolver` — block elimination of J dx = r:
//
//        [ A_II  A_IB ] [dx_I]   [r_I]      I: block (linear) unknowns
//        [ A_BI  A_BB ] [dx_B] = [r_B]      B: interface unknowns
//
//    Once per companion configuration (cached, LRU of two so the
//    trapezoidal<->backward-Euler alternation around breakpoints does not
//    thrash): factor each block A_kk with its own small `SparseLu`, compute
//    W_k = A_kk^-1 A_kB and the block's Schur contribution
//    -A_Bk W_k (a dense clique over the block's boundary).  Independent
//    blocks are eliminated in parallel on the caller's work-stealing pool —
//    every block owns its workspace, and all cross-block reductions are
//    replayed serially in block order, so results are bit-identical at any
//    thread count.
//
//    Per Newton iteration only the interface system is re-solved:
//    S = A_BB + sum_k(contrib_k) picks the fresh MOSFET stamps straight out
//    of the global values array, a numeric `refactor()` on S's frozen
//    pivots (full factor on degeneracy, like the flat path), one small
//    solve, then per-block back-substitution dx_I = y_k - W_k dx_B.  Zero
//    linear-block factorizations in steady state — the
//    `schur.block_factorizations` counter proves it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "esim/sparse.hpp"

namespace sks::par {
class ThreadPool;
}

namespace sks::esim {

// Partition of the unknowns induced by an interface mask: block_of[u] is
// -1 for interface unknowns and the block id for linear-block members.
// Blocks are numbered in order of their smallest member, so the partition
// is deterministic for a given pattern + mask.
struct HierPartition {
  std::vector<std::int32_t> block_of;
  std::size_t block_count = 0;
  std::size_t interface_count = 0;
  std::size_t largest_block = 0;
};

// Connected components of the non-interface unknowns under the symmetrized
// pattern (A + A^T).  Exposed for tests.
HierPartition partition_linear_blocks(
    const SparseMatrix& pattern, const std::vector<std::uint8_t>& interface_mask);

// Identifies the (gmin, h, method) companion-model configuration the
// linear stamps of the Jacobian were assembled from — the same key the
// engine's stamp-template cache uses.  Block factors are reused while a
// cached configuration matches exactly.
struct SchurConfigKey {
  double gmin = -1.0;
  double h = -2.0;
  bool trap = false;

  bool operator==(const SchurConfigKey& o) const {
    return gmin == o.gmin && h == o.h && trap == o.trap;
  }
};

// Counters accumulated across solve() calls; the engine drains them into
// its SolveStats (and from there the obs registry) via take_stats().
struct SchurStats {
  std::uint64_t block_factorizations = 0;  // per-block full LU factors
                                           // (config refreshes only)
  std::uint64_t interface_solves = 0;      // Schur-system solves (one per
                                           // Newton iteration)
  std::uint64_t interface_refactors = 0;   // numeric-only S refactors
  std::uint64_t interface_factors = 0;     // full S factors (first + every
                                           // degenerate-pivot fallback)
};

class HierarchicalSolver {
 public:
  // Partitioning heuristics: below this many interior unknowns — or when
  // the interior is less than a third of the system — partitioning buys
  // nothing over the flat sparse path and build() declines.
  static constexpr std::size_t kMinInteriorUnknowns = 16;

  // Symbolic phase, once per pattern: partition, per-block local patterns
  // and orderings, coupling-entry slot maps, the Schur pattern and its
  // ordering.  Returns false (and stays unbuilt) when the partition has no
  // exploitable structure; the caller then keeps the flat sparse path.
  bool build(const SparseMatrix& pattern,
             const std::vector<std::uint8_t>& interface_mask,
             par::ThreadPool* pool = nullptr);
  bool built() const { return built_; }

  // The pool used for parallel block elimination during configuration
  // refreshes (nullptr = serial).  May be changed between solves.
  void set_pool(par::ThreadPool* pool) { pool_ = pool; }

  const HierPartition& partition() const { return partition_; }

  // Solve a * x = b.  `a` must carry the pattern given to build(), with
  // every linear stamp matching `key`'s template and the current MOSFET
  // stamps added (exactly what the engine's assemble_sparse produces).
  // kSingular when a block or the Schur complement is singular; never
  // returns kPivotDegenerate (the internal refactor falls back itself).
  SparseLuStatus solve(const SparseMatrix& a, const SchurConfigKey& key,
                       const std::vector<double>& b,
                       std::vector<double>& x_out);

  // Drain the accumulated counters (returns the totals since the previous
  // take_stats() and resets them).
  SchurStats take_stats();

  // |U| diagonal extrema of the current Schur factors, mirroring
  // SparseLu's accessors for the diagnostics layer (0 when unbuilt or the
  // interface is empty).
  double udiag_min_abs() const;
  double udiag_max_abs() const;

  // Heap footprint of the partition, per-block factors across cached
  // configurations, coupling maps and the Schur system, for mem.schur_bytes.
  std::size_t memory_bytes() const;

 private:
  // One coupling entry between a block and its boundary: local row/col
  // plus the slot in the *global* values array it reads from.
  struct Coupling {
    std::uint32_t local;     // interior-local index
    std::uint32_t boundary;  // index into Block::boundary
    std::size_t slot;        // global values slot
  };

  struct Block {
    std::vector<std::uint32_t> interior;  // global unknown ids, ascending
    std::vector<std::uint32_t> boundary;  // interface-local ids, ascending
    SparseMatrix a;                       // local pattern (values = scratch)
    std::vector<std::size_t> a_slots;     // global slot per local a entry
    std::vector<Coupling> a_ib;           // A_IB entries (rows interior)
    std::vector<Coupling> a_bi;           // A_BI entries (rows boundary)
    std::vector<std::size_t> contrib_slots;  // boundary^2 -> Schur slot
    SparseLu lu_symbolic;                 // analyzed once, copied per config
    // Per-iteration workspace (owned per block so parallel elimination and
    // the serial solve phases never share scratch).
    std::vector<double> r, y;
  };

  // Numeric state for one companion configuration.
  struct BlockFactors {
    SparseLu lu;
    std::vector<double> w;        // |interior| x |boundary|, column-major
    std::vector<double> contrib;  // |boundary| x |boundary|, column-major
  };
  struct ConfigCache {
    SchurConfigKey key;
    bool valid = false;
    std::uint64_t stamp = 0;  // LRU clock
    std::vector<BlockFactors> blocks;
    std::vector<double> s_base;  // summed block contributions, Schur slots
  };

  ConfigCache& config_for(const SparseMatrix& a, const SchurConfigKey& key,
                          SparseLuStatus& status);
  SparseLuStatus refresh_config(const SparseMatrix& a, ConfigCache& cfg);
  // Eliminate one block for `cfg` from the global values of `a`.  Returns
  // kOk or kSingular; safe to run concurrently across distinct blocks.
  SparseLuStatus eliminate_block(const SparseMatrix& a, std::size_t k,
                                 ConfigCache& cfg);

  bool built_ = false;
  par::ThreadPool* pool_ = nullptr;
  HierPartition partition_;
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> interface_;  // interface-local -> global id
  SparseMatrix s_;                        // Schur pattern over the interface
  std::vector<std::pair<std::size_t, std::size_t>> abb_map_;  // global -> S
  SparseLu s_lu_;
  // Two cached configurations: current + previous, so the BE step after
  // every breakpoint does not evict the trapezoidal block factors.
  ConfigCache configs_[2];
  std::uint64_t lru_clock_ = 0;
  SchurStats stats_;
  std::vector<double> rb_, dxb_;  // interface staging / solution
};

}  // namespace sks::esim
