// Electrical-level simulation engine.
//
// Solves the circuit with modified nodal analysis (MNA): unknowns are the
// non-ground node voltages plus one branch current per voltage source.  Each
// Newton-Raphson iteration assembles the KCL residual F(x) and its Jacobian
// and solves J dx = -F.
//
// Two linear-solver paths (see SolverMode):
//  * dense — reference path: full Jacobian rebuild + dense LU with partial
//    pivoting each iteration.  Kept for tiny circuits and as the golden
//    implementation the sparse path is tested against.
//  * sparse — a symbolic prepass (once per Simulator) records a stamp slot
//    for every device terminal pair; per iteration the Jacobian starts from
//    a memcpy of a cached template (constant resistor/vsource stamps plus
//    the per-timestep capacitor companion conductances) and only the
//    MOSFET gm/gds stamps are re-evaluated.  The system is solved with a
//    fill-reducing sparse LU whose pivot order and fill pattern are reused
//    across iterations (esim/sparse.hpp), falling back to a full
//    re-pivoting factorization when a pivot degenerates.
//
// DC operating point: plain Newton first, then gmin stepping, then source
// stepping — the standard SPICE continuation ladder.
//
// Transient: fixed base timestep with breakpoint alignment on every source
// corner; trapezoidal integration with a backward-Euler step right after
// each breakpoint (damps the trapezoidal ringing a hard corner would
// excite).  On local Newton failure the step is retried with a halved dt.
//
// Concurrency: a Simulator is share-nothing — it owns its circuit snapshot
// and every piece of solver state, and touches nothing global except the
// obs registry/journal (both concurrency-safe).  The parallel campaign
// drivers (sks::par) therefore run one Simulator per work item on worker
// threads with no locking.  A single Simulator instance is NOT safe to
// share across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "esim/matrix.hpp"
#include "esim/netlist.hpp"

namespace sks {
class ConvergenceError;
}

namespace sks::obs {
class DiagRing;
}

namespace sks::obs::stream {
class WaveformStreams;
}

namespace sks::par {
class ThreadPool;
}

namespace sks::esim {

// Per-run solver telemetry, accumulated by every public solve entry point
// (dc_operating_point / dc_solution / run_transient) and exposed on the
// result objects.  Counting is always on — the increments are integer adds
// that vanish next to a dense LU — and the totals are mirrored into the
// global obs registry (`esim.*` counters) when each run finishes, so
// campaign layers can aggregate across runs they did not start themselves.
struct SolveStats {
  // Newton-Raphson.
  std::uint64_t newton_calls = 0;       // newton_solve() invocations
  std::uint64_t newton_iterations = 0;  // NR iterations across all calls
  std::uint64_t newton_failures = 0;    // calls that gave up
  std::uint64_t lu_factorizations = 0;  // full LU factorizations with pivot
                                        // search (dense: one per NR iter;
                                        // sparse: pattern rebuilds only)
  std::uint64_t lu_refactorizations = 0;  // sparse numeric-only refactors on
                                          // the frozen pivot order (the
                                          // per-iteration fast path)
  std::uint64_t lu_pattern_rebuilds = 0;  // sparse full factorizations (the
                                          // first one plus every
                                          // degenerate-pivot fallback)
  std::uint64_t lu_singular = 0;        // LU bailouts on a singular matrix
  std::uint64_t lu_nonfinite = 0;       // LU bailouts on non-finite results
                                        // (overflow/NaN, not singularity)
  std::uint64_t sparse_nnz = 0;         // Jacobian nonzeros on the sparse
                                        // path (0 = dense path used)
  // Hierarchical (Schur-complement) path; all zero on the other paths.
  std::uint64_t schur_block_factorizations = 0;  // per-block LU factors
                                                 // (config refreshes only —
                                                 // steady-state Newton
                                                 // iterations add ZERO)
  std::uint64_t schur_interface_solves = 0;      // Schur-system solves (one
                                                 // per Newton iteration)
  // DC continuation ladder.
  std::uint64_t dc_solves = 0;          // dc_solve() invocations
  std::uint64_t dc_gmin_ladders = 0;    // gmin-stepping ladders entered
  std::uint64_t dc_gmin_steps = 0;      // rungs solved across those ladders
  std::uint64_t dc_source_ladders = 0;  // source-stepping ladders entered
  std::uint64_t dc_source_steps = 0;    // rungs solved across those ladders
  std::uint64_t dc_damped_retries = 0;  // heavier-damping ladder restarts
  // Transient stepping.
  std::uint64_t steps_accepted = 0;     // recorded time points (minus t=0)
  std::uint64_t steps_rejected = 0;     // adaptive dv_max rejections
  std::uint64_t dt_halvings = 0;        // halvings after a Newton failure
  std::uint64_t be_fallbacks = 0;       // trapezoidal -> BE fallbacks
  std::uint64_t breakpoints_hit = 0;    // source corners honoured
  double min_dt_used = 0.0;             // smallest accepted step [s]; 0 = n/a
  double wall_seconds = 0.0;            // wall time of the run

  void merge(const SolveStats& other);
};

// Mirror one run's SolveStats into the process-wide obs registry (the
// esim.* counters) and bump esim.runs.  The scalar Simulator calls this
// once per public solve; BatchSimulator (esim/batch.hpp) calls it once per
// non-fallback lane so batched and scalar runs report identically.
void mirror_stats_to_registry(const SolveStats& stats);

// Linear-solver selection.  kAuto picks sparse when the circuit has at
// least Simulator::kSparseAutoThreshold unknowns and dense below it (tiny
// systems fit in cache and a dense LU beats the sparse bookkeeping); at
// kHierarchicalAutoThreshold unknowns and above it additionally tries the
// partitioned Schur-complement path (esim/schur.hpp), which falls back to
// flat sparse when the pattern has no exploitable linear-block structure.
// The SKS_SOLVER environment variable ("dense" / "sparse" /
// "hierarchical") overrides the automatic choice at Simulator
// construction; an explicit set_solver_mode() call afterwards wins over
// both.
enum class SolverMode { kAuto, kDense, kSparse, kHierarchical };

// Preallocated per-Simulator solver scratch, reused across every Newton
// iteration, transient step and DC continuation rung so the hot loop is
// allocation-free.  Buffers grow on first use and are never shrunk.
struct SolveWorkspace {
  std::vector<double> f;        // KCL residual
  std::vector<double> rhs;      // -F, destroyed by the linear solve
  std::vector<double> dx;       // Newton update
  std::vector<double> x_saved;  // transient step-retry snapshot
  std::vector<double> trial;    // DC continuation-ladder iterate
  DenseMatrix j;                // dense-path Jacobian (empty on sparse path)
};

struct NewtonOptions {
  int max_iterations = 80;
  double vtol = 1e-6;       // max |dV| for convergence [V]
  double itol = 1e-9;       // max |F| residual [A]
  double max_step = 0.5;    // NR voltage-update clamp [V]
};

struct TransientOptions {
  double t_end = 10e-9;       // [s]
  double dt = 2e-12;          // base (and initial) timestep [s]
  double dt_min = 1e-16;      // give up below this [s]
  double gmin = 1e-12;        // conductance floor to ground on every node
  bool trapezoidal = true;    // false => backward Euler everywhere
  // Adaptive timestep (voltage-slope control): a step whose largest node
  // movement exceeds dv_max is rejected and halved; quiet steps grow by
  // 1.5x up to dt_max.  Breakpoints are still honoured exactly.  With
  // adaptive off (default) the step is fixed at `dt`.
  bool adaptive = false;
  double dv_max = 0.25;       // [V] per step
  double dt_max = 50e-12;     // [s]
  NewtonOptions newton;

  // Observability taps (src/obs/stream.hpp).  With record_waveforms off
  // the result retains NO per-step arrays (time/node_v/vsrc_i stay empty)
  // so a multi-second soak transient runs in bounded memory; pair it with
  // a stream_tap to keep per-node summary statistics instead.  A non-null
  // stream_tap receives every accepted step's non-ground node voltages
  // (values[i] = node i+1) regardless of record_waveforms.
  bool record_waveforms = true;
  obs::stream::WaveformStreams* stream_tap = nullptr;
};

struct TransientResult {
  std::vector<double> time;
  // node_v[node_index][step]; node 0 (ground) is included and all-zero.
  std::vector<std::vector<double>> node_v;
  // vsrc_i[source_index][step]: MNA branch current, defined as the current
  // flowing from the source's positive terminal *through the source* to the
  // negative terminal.  The current a supply delivers to the circuit is the
  // negative of this.
  std::vector<std::vector<double>> vsrc_i;

  // Solver telemetry for this run (includes the initial DC solve).
  SolveStats stats;

  std::size_t steps() const { return time.size(); }
};

class Simulator {
 public:
  // The circuit is copied: the simulator owns an immutable snapshot.
  explicit Simulator(Circuit circuit);
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;

  const Circuit& circuit() const { return circuit_; }

  // Linear-solver selection (see SolverMode).  The mode can be switched
  // between solves; the sparse symbolic prepass is cached per Simulator and
  // survives the round trip.
  void set_solver_mode(SolverMode mode) { solver_mode_ = mode; }
  SolverMode solver_mode() const { return solver_mode_; }
  // The path the current mode resolves to for this circuit.
  bool sparse_path_active() const;
  // Whether the sparse path runs through the hierarchical Schur solver.
  // Resolved when the stamp plan is first built: kHierarchical (explicit or
  // via SKS_SOLVER) tries to partition at any size, kAuto only from
  // kHierarchicalAutoThreshold unknowns; either way a pattern with no
  // exploitable linear-block structure falls back to flat sparse.
  bool hierarchical_path_active() const;
  // Heap footprint of the hierarchical Schur solver (block factors,
  // interface clique, workspaces), 0 when the hierarchical path is not
  // active or the stamp plan has not been built yet.  The same number the
  // instrumented runs export as the mem.schur_bytes gauge; exposed directly
  // so un-instrumented benches can report it without enabling obs.
  std::size_t schur_memory_bytes() const;

  // kAuto switches to the sparse path at this many unknowns.
  static constexpr std::size_t kSparseAutoThreshold = 24;
  // kAuto additionally attempts the hierarchical partition at this many
  // unknowns (large enough that every pre-existing mid-size bench keeps its
  // flat-sparse counters bit-identical).
  static constexpr std::size_t kHierarchicalAutoThreshold = 4096;

  // Work-stealing pool used for parallel linear-block elimination on the
  // hierarchical path (nullptr = serial elimination).  Results are
  // bit-identical with or without a pool; the Simulator does not own it and
  // never uses it outside its own solve calls.
  void set_pool(par::ThreadPool* pool);

  // Node voltages (indexed by NodeId::index, ground included as 0 V) at the
  // DC operating point with sources evaluated at time `t`.
  // Throws ConvergenceError when every continuation strategy fails.
  std::vector<double> dc_operating_point(double t = 0.0);

  // Full DC solution (node voltages + voltage-source branch currents, see
  // TransientResult::vsrc_i for the sign convention).  An optional warm
  // start with previous node voltages lets sweeps follow hysteresis
  // branches of latching circuits.
  struct DcSolution {
    std::vector<double> node_v;
    std::vector<double> vsrc_i;
    SolveStats stats;
  };
  DcSolution dc_solution(double t = 0.0,
                         const std::vector<double>* node_guess = nullptr);

  TransientResult run_transient(const TransientOptions& options);

  // Telemetry of the most recent public solve (also available on the result
  // objects; this accessor serves the paths that discard them, e.g. a
  // ConvergenceError handler doing a post-mortem).
  const SolveStats& last_stats() const { return stats_; }

  // --- Numerical-health diagnostics & postmortem capture -----------------
  // With diagnostics on, every Newton iteration records an obs::DiagRecord
  // (residual, |dx|, damping, LU status, pivot growth, condition estimate)
  // into a bounded per-Simulator ring, and each solve mirrors its health
  // into the obs registry (nr.residual / lu.pivot_growth / lu.cond_est).
  // Off (the default), the hot loop pays exactly one pointer null-check
  // and performs zero allocations.  Enabled explicitly here, implicitly by
  // set_postmortem_dir, or process-wide by the SKS_POSTMORTEM environment
  // variable ("1" = bundles to ./sks-postmortem, any other non-empty value
  // = bundles to that directory).
  void set_diagnostics(bool on);
  bool diagnostics_enabled() const { return diag_ != nullptr; }
  // The iteration ring of the most recent solve; nullptr when diagnostics
  // are off.
  const obs::DiagRing* diag_ring() const { return diag_.get(); }

  // Where failure bundles are written ("" = none).  A non-empty directory
  // implies set_diagnostics(true); every ConvergenceError thrown afterwards
  // carries bundle_path() pointing at a self-contained bundle (netlist,
  // options, iteration ring, waveform tail, manifest — see
  // esim/postmortem.hpp).
  void set_postmortem_dir(std::string dir);
  const std::string& postmortem_dir() const { return postmortem_dir_; }

 private:
  std::size_t unknown_count() const;
  std::size_t node_unknown(NodeId n) const;  // valid only for non-ground

  // Assemble F and J at solution x.  `h <= 0` selects DC (capacitors open).
  // `source_scale` multiplies every source value (used for source stepping).
  void assemble(const std::vector<double>& x, double t, double h,
                bool use_trap, const std::vector<double>& cap_prev_v,
                const std::vector<double>& cap_prev_i, double gmin,
                double source_scale, std::vector<double>& f_out,
                DenseMatrix& j_out) const;

  // Sparse-path equivalent: writes F into f_out and the Jacobian into the
  // stamp plan's sparse matrix (template memcpy + MOSFET stamps through
  // precomputed slots).  Builds the plan on first use.
  void assemble_sparse(const std::vector<double>& x, double t, double h,
                       bool use_trap, const std::vector<double>& cap_prev_v,
                       const std::vector<double>& cap_prev_i, double gmin,
                       double source_scale, std::vector<double>& f_out) const;

  // Symbolic prepass: the sparse pattern, per-device stamp slots, the
  // constant stamp template and the LU column ordering.  Cached for the
  // Simulator's lifetime (the circuit snapshot is immutable).
  void build_stamp_plan() const;

  // One Newton solve; returns true on convergence, x updated in place.
  bool newton_solve(std::vector<double>& x, double t, double h, bool use_trap,
                    const std::vector<double>& cap_prev_v,
                    const std::vector<double>& cap_prev_i, double gmin,
                    double source_scale, const NewtonOptions& options) const;

  // DC solve with the full continuation ladder (plain NR, gmin stepping,
  // source stepping).  Returns true on success, x updated in place.
  bool dc_solve(std::vector<double>& x, double t,
                const NewtonOptions& options) const;

  // Name of the node with the largest |KCL residual| at `x` — the context
  // attached to ConvergenceError so failures name their worst net.
  std::string worst_residual_node(const std::vector<double>& x, double t,
                                  double h, bool use_trap,
                                  const std::vector<double>& cap_prev_v,
                                  const std::vector<double>& cap_prev_i,
                                  double gmin) const;

  // Classify the failure, write the postmortem bundle (when a directory is
  // configured) and stamp its path onto the error.  Never throws: bundle
  // I/O problems must not mask the solver error.
  void attach_postmortem(ConvergenceError& err, const NewtonOptions& newton,
                         const TransientOptions* transient,
                         const TransientResult* waveforms,
                         bool dt_at_floor) const;

  Circuit circuit_;
  SolverMode solver_mode_ = SolverMode::kAuto;
  // Accumulated by const solver internals during a run; reset by each
  // public entry point.
  mutable SolveStats stats_;
  // Reused solver scratch and the lazily built sparse stamp plan.  Both are
  // solver-internal caches mutated by const solve paths; they are what
  // makes a single Simulator instance NOT shareable across threads.
  mutable SolveWorkspace ws_;
  struct StampPlan;
  mutable std::unique_ptr<StampPlan> plan_;
  // Pool for parallel block elimination (hierarchical path only, not owned).
  par::ThreadPool* pool_ = nullptr;
  // Diagnostics ring: allocated only while diagnostics are on; its null
  // check is the entire hot-loop cost of the feature when off.
  mutable std::unique_ptr<obs::DiagRing> diag_;
  std::string postmortem_dir_;
};

// Convenience one-shot: DC operating point of a circuit.
std::vector<double> dc_operating_point(const Circuit& circuit, double t = 0.0);

// Convenience one-shot transient.
TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options);

}  // namespace sks::esim
