// Post-processing of transient results: named traces with interpolation,
// window extrema and threshold crossings.  These are the measurements the
// paper's figures are made of (V_min of y2, crossing delays, IDDQ levels).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "esim/engine.hpp"

namespace sks::esim {

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<double> time, std::vector<double> value);

  // Extract a node-voltage trace from a transient result.
  static Trace node_voltage(const TransientResult& result,
                            const Circuit& circuit, const std::string& node);
  // Current delivered by a voltage source (positive when the source pushes
  // current out of its positive terminal into the circuit).  This is the
  // supply current used by the IDDQ detector.
  static Trace supply_current(const TransientResult& result,
                              const Circuit& circuit,
                              const std::string& source_name);

  const std::string& name() const { return name_; }
  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& values() const { return values_; }
  bool empty() const { return time_.empty(); }

  // Linear interpolation; clamps outside the simulated interval.
  double value_at(double t) const;

  double min_in(double t0, double t1) const;
  double max_in(double t0, double t1) const;
  double final_value() const;

  // First time the trace crosses `level` after `t_from`, optionally
  // restricted to rising/falling crossings.
  std::optional<double> first_crossing(double level, double t_from = 0.0) const;
  std::optional<double> first_rising_crossing(double level,
                                              double t_from = 0.0) const;
  std::optional<double> first_falling_crossing(double level,
                                               double t_from = 0.0) const;

 private:
  std::size_t index_at_or_after(double t) const;

  std::string name_;
  std::vector<double> time_;
  std::vector<double> values_;
};

}  // namespace sks::esim
