// Waveform export of transient results: VCD (Value Change Dump, IEEE 1364)
// with analog `$var real` signals — loadable in GTKWave — plus a flat CSV
// dump, and a VCD reader so exported waveforms round-trip in tests.
//
// The exporter writes every sample of every trace (not just value
// changes), so a parsed-back VCD recovers the exact sample points of the
// source `Trace` — piecewise-linear measurements (value_at, crossings)
// survive the round trip.  Sample times are quantized to the timescale
// (default 1 fs, fine enough that a 2 ps solver step loses nothing).
#pragma once

#include <string>
#include <vector>

#include "esim/trace.hpp"

namespace sks::esim {

struct VcdOptions {
  double timescale = 1e-15;    // seconds per VCD tick (1 fs default)
  std::string module = "sks";  // $scope module name
};

// Short identifier code for signal `index` (printable ASCII 33..126,
// little-endian base-94 for the 95th signal onward).  Exposed for tests.
std::string vcd_id(std::size_t index);

// Render / write traces as VCD.  Throws sks::Error on an unsupported
// timescale (must be 1, 10 or 100 fs/ps/ns/us/ms/s) or on empty input.
std::string vcd_string(const std::vector<Trace>& traces,
                       const VcdOptions& options = {});
void write_vcd(const std::string& path, const std::vector<Trace>& traces,
               const VcdOptions& options = {});

// Parse the subset of VCD this module emits (real vars, # timestamps,
// r-value changes; $dumpvars blocks tolerated).  Throws sks::Error on
// malformed input.  Returns one Trace per declared signal, in declaration
// order.
std::vector<Trace> parse_vcd(const std::string& text);

// Every node-voltage trace of a transient result (ground skipped), ready
// for write_vcd / write_trace_csv.
std::vector<Trace> node_traces(const TransientResult& result,
                               const Circuit& circuit);

// CSV dump: header "t,<name>,..." then one row per time point of the
// merged time axis; traces off their sample points are interpolated
// (clamped outside their interval, like Trace::value_at).
std::string trace_csv(const std::vector<Trace>& traces);
void write_trace_csv(const std::string& path,
                     const std::vector<Trace>& traces);

}  // namespace sks::esim
