// SPICE level-1 (Shichman-Hodges) MOSFET model.
//
// This is the classical square-law model: cutoff / triode / saturation with
// channel-length modulation.  It is evaluated symmetrically (drain and
// source swap when Vds < 0), which matters for pass structures and for
// bridging-fault simulations where a device can be driven backwards.
//
// Transistor-level fault modes live here too: a *stuck-open* device never
// conducts; a *stuck-on* device conducts as if its gate were tied to the
// full-on rail, which is the standard electrical model for gate-oxide /
// gate-contact defects used by the paper's testability analysis (Sec. 3).
#pragma once

namespace sks::esim {

enum class MosType { kNmos, kPmos };

enum class MosFault {
  kNone,
  kStuckOpen,  // channel never conducts
  kStuckOn,    // channel conducts with full gate overdrive regardless of Vg
};

struct MosParams {
  MosType type = MosType::kNmos;
  double w = 3.0e-6;       // channel width [m]
  double l = 1.2e-6;       // channel length [m]
  double kprime = 60e-6;   // process transconductance k' = u*Cox [A/V^2]
  double vt = 0.8;         // threshold voltage magnitude [V] (positive number)
  double lambda = 0.02;    // channel-length modulation [1/V]
  // Overdrive used for a stuck-on device (gate effectively at the rail).
  double full_on_vgs = 5.0;

  double beta() const { return kprime * w / l; }
};

struct MosEval {
  double id = 0.0;   // drain terminal current (positive into the drain)
  double gm = 0.0;   // dId/dVg
  double gds = 0.0;  // dId/dVd
  // dId/dVs = -(gm + gds): the model depends on terminal differences only
  // (no body effect), so the three partials sum to zero.
};

// Drain terminal current at the given ground-referred terminal voltages.
// Pure function of the arguments; handles PMOS mirroring and Vds<0 swap.
double mosfet_current(const MosParams& params, MosFault fault, double vg,
                      double vd, double vs);

// Current plus partial derivatives (finite-difference; exact enough for the
// Newton iteration and immune to sign errors in the swap/mirror algebra).
MosEval eval_mosfet(const MosParams& params, MosFault fault, double vg,
                    double vd, double vs);

}  // namespace sks::esim
