// Circuit netlist: nodes and devices for the electrical-level simulator.
//
// `Circuit` is a plain value type (copying it deep-copies the netlist),
// which is what the fault-injection and Monte-Carlo layers rely on: they
// take a fault-free master netlist, copy it, and perturb the copy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "esim/mosfet_model.hpp"
#include "esim/waveform.hpp"

namespace sks::esim {

struct NodeId {
  std::size_t index = 0;
  friend bool operator==(NodeId, NodeId) = default;
};

struct ResistorId {
  std::size_t index = 0;
  friend bool operator==(ResistorId, ResistorId) = default;
};
struct CapacitorId {
  std::size_t index = 0;
  friend bool operator==(CapacitorId, CapacitorId) = default;
};
struct VsrcId {
  std::size_t index = 0;
  friend bool operator==(VsrcId, VsrcId) = default;
};
struct IsrcId {
  std::size_t index = 0;
  friend bool operator==(IsrcId, IsrcId) = default;
};
struct MosfetId {
  std::size_t index = 0;
  friend bool operator==(MosfetId, MosfetId) = default;
};

struct Resistor {
  std::string name;
  NodeId a, b;
  double resistance = 0.0;  // [ohm]
};

struct Capacitor {
  std::string name;
  NodeId a, b;
  double capacitance = 0.0;  // [F]
};

struct Vsrc {
  std::string name;
  NodeId pos, neg;
  Waveform wave = Waveform::dc(0.0);
};

// Independent current source: the value I(t) flows out of `from`, through
// the source, into `to` (i.e. the source delivers current into `to`).
struct Isrc {
  std::string name;
  NodeId from, to;
  Waveform wave = Waveform::dc(0.0);
};

struct Mosfet {
  std::string name;
  NodeId gate, drain, source;
  MosParams params;
  MosFault fault = MosFault::kNone;
};

class Circuit {
 public:
  Circuit();

  // --- nodes ---
  NodeId ground() const { return NodeId{0}; }
  // Find-or-create a named node.  "0" and "gnd" are the ground node.
  NodeId node(const std::string& name);
  std::optional<NodeId> find_node(const std::string& name) const;
  const std::string& node_name(NodeId n) const;
  std::size_t node_count() const { return node_names_.size(); }

  // --- device construction ---
  ResistorId add_resistor(const std::string& name, NodeId a, NodeId b,
                          double resistance);
  CapacitorId add_capacitor(const std::string& name, NodeId a, NodeId b,
                            double capacitance);
  VsrcId add_vsource(const std::string& name, NodeId pos, NodeId neg,
                     Waveform wave);
  IsrcId add_isource(const std::string& name, NodeId from, NodeId to,
                     Waveform wave);
  MosfetId add_mosfet(const std::string& name, const MosParams& params,
                      NodeId gate, NodeId drain, NodeId source);

  // --- device access (mutable, for fault injection / variation) ---
  Resistor& resistor(ResistorId id) { return resistors_.at(id.index); }
  Capacitor& capacitor(CapacitorId id) { return capacitors_.at(id.index); }
  Vsrc& vsource(VsrcId id) { return vsources_.at(id.index); }
  Mosfet& mosfet(MosfetId id) { return mosfets_.at(id.index); }
  const Resistor& resistor(ResistorId id) const {
    return resistors_.at(id.index);
  }
  const Capacitor& capacitor(CapacitorId id) const {
    return capacitors_.at(id.index);
  }
  const Vsrc& vsource(VsrcId id) const { return vsources_.at(id.index); }
  Isrc& isource(IsrcId id) { return isources_.at(id.index); }
  const Isrc& isource(IsrcId id) const { return isources_.at(id.index); }
  const Mosfet& mosfet(MosfetId id) const { return mosfets_.at(id.index); }

  std::optional<MosfetId> find_mosfet(const std::string& name) const;
  std::optional<VsrcId> find_vsource(const std::string& name) const;
  std::optional<IsrcId> find_isource(const std::string& name) const;
  std::optional<CapacitorId> find_capacitor(const std::string& name) const;
  std::optional<ResistorId> find_resistor(const std::string& name) const;

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Vsrc>& vsources() const { return vsources_; }
  const std::vector<Isrc>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  std::vector<Mosfet>& mosfets() { return mosfets_; }
  std::vector<Capacitor>& capacitors() { return capacitors_; }

  // Human-readable netlist dump (SPICE-flavoured), used in examples and for
  // debugging fault-injection transforms.
  std::string to_string() const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Vsrc> vsources_;
  std::vector<Isrc> isources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace sks::esim
