// Source waveforms for the electrical simulator.
//
// Three shapes cover everything the paper's experiments need:
//  * Dc     — constant level (supplies, stuck-at rails)
//  * Pulse  — periodic trapezoid (clock generators)
//  * Pwl    — piecewise-linear (skewed / slew-controlled clock edges)
//
// `breakpoints()` exposes the corner times so the transient engine can land
// a timestep exactly on every edge instead of stepping over it.
#pragma once

#include <vector>

namespace sks::esim {

struct PulseSpec {
  double v0 = 0.0;       // initial level [V]
  double v1 = 5.0;       // pulsed level [V]
  double delay = 0.0;    // time of first rising corner [s]
  double rise = 1e-10;   // rise time [s]
  double fall = 1e-10;   // fall time [s]
  double width = 5e-9;   // time at v1 (between end of rise and start of fall)
  double period = 10e-9; // repetition period [s]; 0 => single pulse
};

enum class WaveKind { kDc, kPulse, kPwl };

class Waveform {
 public:
  // Constant level.
  static Waveform dc(double level);
  // Periodic trapezoid.
  static Waveform pulse(const PulseSpec& spec);
  // Piecewise linear through (t, v) points with t strictly increasing.
  // Before the first point the value is the first level; after the last
  // point it holds the last level.
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  double value(double t) const;

  // Corner times within [0, t_end] (sorted, deduplicated).
  std::vector<double> breakpoints(double t_end) const;

  bool is_dc() const { return kind_ == WaveKind::kDc; }

  // Introspection (for serialization): kind plus the defining parameters.
  WaveKind kind() const { return kind_; }
  double dc_level() const { return level_; }          // kDc
  const PulseSpec& pulse_spec() const { return pulse_; }  // kPulse
  const std::vector<double>& pwl_times() const { return times_; }   // kPwl
  const std::vector<double>& pwl_values() const { return values_; } // kPwl

 private:
  Waveform() = default;

  WaveKind kind_ = WaveKind::kDc;
  double level_ = 0.0;
  PulseSpec pulse_{};
  std::vector<double> times_;
  std::vector<double> values_;
};

// Convenience: a single rising ramp from v0 to v1 starting at `start` with
// the given rise time (10%-90% semantics are NOT used; the ramp is linear
// over the full swing, matching the paper's "clock slew (i.e. the rise time
// of phi1 and phi2)" usage).
Waveform rising_ramp(double v0, double v1, double start, double rise);

}  // namespace sks::esim
