#include "esim/mosfet_model.hpp"

#include <algorithm>
#include <cmath>

namespace sks::esim {

namespace {

// Leakage conductance of an OFF channel.  Keeps the Jacobian non-singular
// when a node is only reachable through cut-off devices (e.g. the paper's
// "high impedance state keeping its high value").
constexpr double kGoff = 1e-12;

// Core NMOS-referred square law with vds >= 0 guaranteed by the caller.
double nmos_forward_current(const MosParams& p, double vgs, double vds) {
  const double vov = vgs - p.vt;
  const double leak = kGoff * vds;
  if (vov <= 0.0) return leak;
  const double beta = p.beta();
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    return beta * (vov * vds - 0.5 * vds * vds) * clm + leak;  // triode
  }
  return 0.5 * beta * vov * vov * clm + leak;  // saturation
}

}  // namespace

double mosfet_current(const MosParams& params, MosFault fault, double vg,
                      double vd, double vs) {
  if (fault == MosFault::kStuckOpen) return kGoff * (vd - vs);

  // Fold PMOS onto the NMOS equations by mirroring all voltages; the
  // resulting current mirrors back with the same sign factor.
  const double sign = (params.type == MosType::kNmos) ? 1.0 : -1.0;
  double vg_n = sign * vg;
  double vd_n = sign * vd;
  double vs_n = sign * vs;

  // Symmetric device: when vds < 0 the physical source is the terminal we
  // called drain; evaluate forward with the roles swapped and negate.
  double flow = 1.0;
  if (vd_n < vs_n) {
    std::swap(vd_n, vs_n);
    flow = -1.0;
  }

  double vgs = vg_n - vs_n;
  if (fault == MosFault::kStuckOn) vgs = params.full_on_vgs;
  const double vds = vd_n - vs_n;

  return sign * flow * nmos_forward_current(params, vgs, vds);
}

MosEval eval_mosfet(const MosParams& params, MosFault fault, double vg,
                    double vd, double vs) {
  MosEval r;
  r.id = mosfet_current(params, fault, vg, vd, vs);
  // Central differences; h chosen so the square law (quadratic) is resolved
  // to ~1e-12 A accuracy around typical 0..5 V operating points.
  constexpr double h = 1e-6;
  r.gm = (mosfet_current(params, fault, vg + h, vd, vs) -
          mosfet_current(params, fault, vg - h, vd, vs)) /
         (2.0 * h);
  r.gds = (mosfet_current(params, fault, vg, vd + h, vs) -
           mosfet_current(params, fault, vg, vd - h, vs)) /
          (2.0 * h);
  return r;
}

}  // namespace sks::esim
