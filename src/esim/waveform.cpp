#include "esim/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/interp.hpp"

namespace sks::esim {

Waveform Waveform::dc(double level) {
  Waveform w;
  w.kind_ = WaveKind::kDc;
  w.level_ = level;
  return w;
}

Waveform Waveform::pulse(const PulseSpec& spec) {
  sks::check(spec.rise > 0.0 && spec.fall > 0.0,
             "Waveform::pulse: rise/fall must be positive");
  sks::check(spec.width >= 0.0, "Waveform::pulse: width must be >= 0");
  if (spec.period > 0.0) {
    sks::check(spec.period >= spec.rise + spec.width + spec.fall,
               "Waveform::pulse: period shorter than pulse shape");
  }
  Waveform w;
  w.kind_ = WaveKind::kPulse;
  w.pulse_ = spec;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  sks::check(times.size() == values.size() && !times.empty(),
             "Waveform::pwl: need matching non-empty point lists");
  for (std::size_t i = 1; i < times.size(); ++i) {
    sks::check(times[i] > times[i - 1],
               "Waveform::pwl: times must be strictly increasing");
  }
  Waveform w;
  w.kind_ = WaveKind::kPwl;
  w.times_ = std::move(times);
  w.values_ = std::move(values);
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case WaveKind::kDc:
      return level_;
    case WaveKind::kPulse: {
      const PulseSpec& p = pulse_;
      double local = t - p.delay;
      if (local < 0.0) return p.v0;
      if (p.period > 0.0) local = std::fmod(local, p.period);
      if (local < p.rise) {
        return p.v0 + (p.v1 - p.v0) * (local / p.rise);
      }
      local -= p.rise;
      if (local < p.width) return p.v1;
      local -= p.width;
      if (local < p.fall) {
        return p.v1 + (p.v0 - p.v1) * (local / p.fall);
      }
      return p.v0;
    }
    case WaveKind::kPwl: {
      if (t <= times_.front()) return values_.front();
      if (t >= times_.back()) return values_.back();
      const auto it = std::upper_bound(times_.begin(), times_.end(), t);
      const auto i = static_cast<std::size_t>(it - times_.begin());
      const double frac = (t - times_[i - 1]) / (times_[i] - times_[i - 1]);
      return util::lerp(values_[i - 1], values_[i], frac);
    }
  }
  return level_;
}

std::vector<double> Waveform::breakpoints(double t_end) const {
  std::vector<double> bp;
  switch (kind_) {
    case WaveKind::kDc:
      break;
    case WaveKind::kPulse: {
      const PulseSpec& p = pulse_;
      const double period = p.period > 0.0 ? p.period : t_end + 1.0;
      for (double t0 = p.delay; t0 <= t_end; t0 += period) {
        bp.push_back(t0);
        bp.push_back(t0 + p.rise);
        bp.push_back(t0 + p.rise + p.width);
        bp.push_back(t0 + p.rise + p.width + p.fall);
        if (p.period <= 0.0) break;
      }
      break;
    }
    case WaveKind::kPwl:
      bp = times_;
      break;
  }
  std::vector<double> result;
  for (double t : bp) {
    if (t >= 0.0 && t <= t_end) result.push_back(t);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

Waveform rising_ramp(double v0, double v1, double start, double rise) {
  sks::check(rise > 0.0, "rising_ramp: rise must be positive");
  if (start <= 0.0) {
    // Edge starts at or before t=0: represent the already-started ramp.
    if (start + rise <= 0.0) return Waveform::dc(v1);
    const double v_at_zero = v0 + (v1 - v0) * (-start / rise);
    return Waveform::pwl({0.0, start + rise}, {v_at_zero, v1});
  }
  return Waveform::pwl({0.0, start, start + rise}, {v0, v0, v1});
}

}  // namespace sks::esim
