// Synthetic benchmark netlists for the solver fast path.
//
// The bundled sensor cells top out around fifteen MNA unknowns — ideal for
// validating solver behaviour, far too small to exercise the sparse path.
// This header builds an H-tree-style buffered clock-distribution network
// (the structure the paper's testing scheme monitors) at a parametric size:
// a binary RC tree with a two-inverter repowering buffer every few levels,
// driven by a trapezoidal clock through a driver resistance.
//
// The devices use level-1 parameters that mirror cell::Technology's 1.2 um
// flavour, duplicated here as plain numbers because sks_esim must not
// depend on the cell library above it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "esim/netlist.hpp"
#include "esim/waveform.hpp"

namespace sks::esim {

struct ClockTreeOptions {
  int levels = 5;            // binary depth: 2^levels leaves
  double r_segment = 120.0;  // wire resistance per tree segment [ohm]
  double c_segment = 40e-15; // wire capacitance at each tree node [F]
  double c_leaf = 60e-15;    // extra sink load on every leaf [F]
  int buffer_every = 2;      // repower every this many levels; 0 = bare RC
  double vdd = 5.0;          // supply [V]
  double driver_resistance = 50.0;  // clock driver output impedance [ohm]
  PulseSpec clock{};         // root clock waveform (defaults are sensible)
};

struct ClockTreeNet {
  Circuit circuit;
  NodeId root;                  // driven end of the tree (after the driver R)
  std::vector<NodeId> leaves;   // all 2^levels sink nodes
};

// Deterministic: same options, same netlist (device order included), so
// fixed-workload benchmark counters are reproducible run to run.
// Throws sks::Error on degenerate options (levels < 1, negative
// buffer_every, non-positive wire values).
ClockTreeNet make_clock_tree(const ClockTreeOptions& options = {});

// Two cascaded inverters — a non-inverting repowering stage using the
// bundled 1.2 um device parameters — driving a fresh output node, with
// gate-load capacitors on both internal nodes.  Devices are named
// `prefix + ".i1.mp"` etc., so distinct prefixes keep the netlist unique.
// Shared by make_clock_tree and the clocktree electrical expansion
// (clocktree/electrical.hpp), so both realize buffers identically.
NodeId add_repower_buffer(Circuit& c, const std::string& prefix, NodeId in,
                          NodeId vdd_node, double vdd);

}  // namespace sks::esim
