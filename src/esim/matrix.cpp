#include "esim/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sks::esim {

void DenseMatrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

LuStatus lu_solve(DenseMatrix& a, std::vector<double>& b,
                  std::vector<double>& x_out, LuPivotInfo* pivots) {
  const std::size_t n = a.size();
  if (b.size() != n) return LuStatus::kSingular;
  x_out.assign(n, 0.0);

  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;
  const auto publish_pivots = [&] {
    if (pivots == nullptr) return;
    pivots->min_abs_pivot = std::isfinite(min_pivot) ? min_pivot : 0.0;
    pivots->max_abs_pivot = max_pivot;
  };

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  // LU factorization with partial pivoting, operating on logical rows
  // through the permutation vector.
  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search.
    std::size_t pivot = k;
    double best = std::fabs(a.at(perm[k], k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::fabs(a.at(perm[r], k));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    min_pivot = std::min(min_pivot, best);
    max_pivot = std::max(max_pivot, best);
    if (best < 1e-30) {
      publish_pivots();
      return LuStatus::kSingular;
    }
    std::swap(perm[k], perm[pivot]);

    const double akk = a.at(perm[k], k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(perm[r], k) / akk;
      if (factor == 0.0) continue;
      a.at(perm[r], k) = factor;  // store L
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(perm[r], c) -= factor * a.at(perm[k], c);
      }
      b[perm[r]] -= factor * b[perm[k]];
    }
  }

  // Back substitution.
  for (std::size_t ki = n; ki-- > 0;) {
    double sum = b[perm[ki]];
    for (std::size_t c = ki + 1; c < n; ++c) {
      sum -= a.at(perm[ki], c) * x_out[c];
    }
    x_out[ki] = sum / a.at(perm[ki], ki);
    if (!std::isfinite(x_out[ki])) {
      publish_pivots();
      return LuStatus::kNonFinite;
    }
  }
  publish_pivots();
  return LuStatus::kOk;
}

}  // namespace sks::esim
