#include "esim/sweep.hpp"

#include "esim/engine.hpp"
#include "util/error.hpp"

namespace sks::esim {

std::vector<double> DcSweepResult::voltage(const Circuit& circuit,
                                           const std::string& node) const {
  const auto id = circuit.find_node(node);
  sks::check(id.has_value(), "DcSweepResult::voltage: unknown node '" + node +
                                 "'");
  return node_v.at(id->index);
}

DcSweepResult dc_sweep(const Circuit& circuit, const DcSweepOptions& options) {
  sks::check(options.points >= 2, "dc_sweep: need at least two points");
  const auto source = circuit.find_vsource(options.source_name);
  sks::check(source.has_value(),
             "dc_sweep: unknown source '" + options.source_name + "'");

  DcSweepResult result;
  result.node_v.assign(circuit.node_count(), {});
  std::vector<double> guess;  // warm start carried across points

  for (std::size_t p = 0; p < options.points; ++p) {
    const double value =
        options.from + (options.to - options.from) *
                           static_cast<double>(p) /
                           static_cast<double>(options.points - 1);
    Circuit at_point = circuit;
    at_point.vsource(*source).wave = Waveform::dc(value);
    Simulator sim(std::move(at_point));
    const auto solution =
        sim.dc_solution(0.0, guess.empty() ? nullptr : &guess);
    guess = solution.node_v;
    result.stats.merge(solution.stats);

    result.sweep.push_back(value);
    for (std::size_t n = 0; n < solution.node_v.size(); ++n) {
      result.node_v[n].push_back(solution.node_v[n]);
    }
    // Delivered current = -branch current (see TransientResult::vsrc_i).
    result.source_current.push_back(-solution.vsrc_i[source->index]);
  }
  return result;
}

}  // namespace sks::esim
