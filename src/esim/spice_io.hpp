// SPICE-flavoured netlist serialization.
//
// A small, self-consistent dialect (round-trip tested: write -> parse ->
// write is a fixpoint) so circuits built programmatically — including
// fault-injected ones — can be dumped, diffed, archived and reloaded:
//
//   * comment
//   Rname nodeA nodeB value
//   Cname nodeA nodeB value
//   Iname nodeFrom nodeTo value
//   Vname node+ node- DC value
//   Vname node+ node- PULSE(v0 v1 delay rise fall width period)
//   Vname node+ node- PWL(t1 v1 t2 v2 ...)
//   Mname drain gate source NMOS|PMOS W=.. L=.. KP=.. VT=.. LAMBDA=..
//         [STUCKOPEN|STUCKON]
//   .END
//
// Values accept the usual SI suffixes (f p n u m k meg g) and engineering
// notation; the writer emits plain scientific notation.
#pragma once

#include <iosfwd>
#include <string>

#include "esim/netlist.hpp"

namespace sks::esim {

// Serialize the circuit.  Deterministic: devices in insertion order.
std::string write_spice(const Circuit& circuit, const std::string& title = {});

// Parse a netlist in the dialect above.  Throws NetlistError with a line
// number on malformed input.
Circuit parse_spice(const std::string& text);
Circuit parse_spice(std::istream& in);

// Parse a single SPICE number with optional SI suffix ("2.5k", "80f",
// "3meg", "1e-9").  Throws NetlistError on garbage.
double parse_spice_number(const std::string& token);

}  // namespace sks::esim
