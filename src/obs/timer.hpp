// RAII scoped wall-time measurement against a registry TimerStat.
//
// Cost model: when obs::enabled() is false the constructor is a single
// branch — no clock read, no registry lookup, no allocation — so timers can
// stay in place around solver entry points permanently.  When enabled, each
// scope costs two steady_clock reads plus a few relaxed atomic adds into
// the (thread-safe) TimerStat; campaign workers time regions concurrently
// without locks.  Hot paths should cache the TimerStat& once (engine entry
// points do) so the name is never re-hashed per run.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace sks::obs {

class ScopedTimer {
 public:
  // Accumulates into the given stat (caller controls the registry entry).
  explicit ScopedTimer(TimerStat& stat)
      : stat_(enabled() ? &stat : nullptr) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  // Accumulates into registry().timer(name); the name lookup itself is
  // skipped when disabled.
  explicit ScopedTimer(const std::string& name)
      : stat_(enabled() ? &registry().timer(name) : nullptr) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  // Early stop (idempotent); returns the elapsed seconds recorded, 0 when
  // disabled.
  double stop() {
    if (stat_ == nullptr) return 0.0;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    stat_->record_ns(static_cast<std::uint64_t>(ns));
    stat_ = nullptr;
    return static_cast<double>(ns) * 1e-9;
  }

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

// Plain stopwatch for always-on coarse timing (per-fault, per-MC-sample
// wall time) where one clock read per item is negligible by construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sks::obs
