#include "obs/expose.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace sks::obs {

namespace {

// Run-phase state shared by every ScopedRunPhase.  A depth counter makes
// nesting (campaign -> transient -> dc) and concurrent worker scopes
// outermost-wins without a lock: the first scope in names the phase, the
// last scope out restores idle.  A worker's nested dc solve inside a
// campaign therefore never flips the probe to "dc" — the campaign owns
// the phase for its duration, which is the granularity a readiness check
// cares about.
std::atomic<int> g_phase{static_cast<int>(RunPhase::kIdle)};
std::atomic<int> g_phase_depth{0};

constexpr const char* kContentTypeMetrics =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kContentTypePlain = "text/plain; charset=utf-8";

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void append_summary(std::string& out, const std::string& pname,
                    const stream::StreamSummary* quantiles, double sum,
                    std::uint64_t count) {
  out += "# TYPE " + pname + " summary\n";
  if (quantiles != nullptr) {
    out += pname + "{quantile=\"0.5\"} " + json_number(quantiles->p50()) +
           "\n";
    out += pname + "{quantile=\"0.9\"} " + json_number(quantiles->p90()) +
           "\n";
    out += pname + "{quantile=\"0.99\"} " + json_number(quantiles->p99()) +
           "\n";
  }
  out += pname + "_sum " + json_number(sum) + "\n";
  out += pname + "_count " + std::to_string(count) + "\n";
}

}  // namespace

const char* to_string(RunPhase phase) {
  switch (phase) {
    case RunPhase::kIdle:
      return "idle";
    case RunPhase::kDc:
      return "dc";
    case RunPhase::kTransient:
      return "transient";
    case RunPhase::kCampaign:
      return "campaign";
  }
  return "idle";
}

RunPhase run_phase() {
  return static_cast<RunPhase>(g_phase.load(std::memory_order_relaxed));
}

ScopedRunPhase::ScopedRunPhase(RunPhase phase) {
  if (g_phase_depth.fetch_add(1, std::memory_order_relaxed) == 0) {
    g_phase.store(static_cast<int>(phase), std::memory_order_relaxed);
  }
}

ScopedRunPhase::~ScopedRunPhase() {
  if (g_phase_depth.fetch_sub(1, std::memory_order_relaxed) == 1) {
    g_phase.store(static_cast<int>(RunPhase::kIdle),
                  std::memory_order_relaxed);
  }
}

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const Registry& reg, const Journal& j,
                              const Tracer& tracer) {
  std::string out;
  out.reserve(4096);

  const std::uint64_t journal_dropped = j.dropped();
  const std::uint64_t trace_dropped = tracer.dropped();
  if (journal_dropped > 0 || trace_dropped > 0) {
    // Non-standard but comment-legal warning line: scrapers that only
    // want a cheap "are we losing telemetry" check can grep for it
    // without parsing the gauge lines below.
    out += "# DROPS journal=" + std::to_string(journal_dropped) +
           " trace=" + std::to_string(trace_dropped) + "\n";
  }

  for (const auto& [name, value] : reg.counters()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : reg.gauges()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + json_number(value) + "\n";
  }

  // Synthesized at render time so the hot path never maintains them:
  // phase for the readiness story, drop totals so a scraper can alert on
  // telemetry loss before the post-run report would have shown it.
  out += "# TYPE obs_run_phase gauge\n";
  out += "obs_run_phase " +
         std::to_string(static_cast<int>(run_phase())) + "\n";
  out += "# TYPE obs_journal_dropped gauge\n";
  out += "obs_journal_dropped " + std::to_string(journal_dropped) + "\n";
  out += "# TYPE obs_trace_dropped gauge\n";
  out += "obs_trace_dropped " + std::to_string(trace_dropped) + "\n";

  // Timers keep count/total/min/max only (no quantile state on the hot
  // path by design) — expose the summary skeleton Prometheus still
  // understands: _sum in seconds plus _count.
  for (const auto& [name, stat] : reg.timers()) {
    append_summary(out, prometheus_name(name), nullptr,
                   stat->total_seconds(), stat->count());
  }

  for (const auto& [name, summary] : reg.streams()) {
    append_summary(out, prometheus_name(name), &summary,
                   summary.mean() * static_cast<double>(summary.count()),
                   summary.count());
  }

  return out;
}

std::uint16_t Exposer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_relaxed)) return port_;
  std::string error;
  std::uint16_t bound = 0;
  listener_ = util::net::listen_tcp(port, &bound, &error);
  if (!listener_.valid()) {
    std::fprintf(stderr, "[expose] listener disabled: %s\n", error.c_str());
    return 0;
  }
  port_ = bound;
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve(); });
  return port_;
}

void Exposer::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
  listener_.close();
  running_.store(false, std::memory_order_relaxed);
  port_ = 0;
}

void Exposer::serve() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    util::net::Socket conn = util::net::accept_tcp(listener_, 200);
    if (!conn.valid()) continue;
    const std::string request = util::net::recv_some(conn, 4096, 1000);
    if (request.empty()) continue;
    util::net::send_all(conn, handle(request));
  }
}

std::string Exposer::handle(const std::string& request) const {
  // "GET <path> HTTP/1.x" — anything else is a bad request.  HTTP/1.0
  // semantics: one request per connection, Connection: close.
  std::istringstream line(request);
  std::string method, path;
  line >> method >> path;
  if (method != "GET" || path.empty()) {
    return http_response(400, "Bad Request", kContentTypePlain,
                         "bad request\n");
  }
  // Strip any query string; scrapers commonly append cache-busters.
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);

  if (path == "/metrics") {
    // Bump before rendering so the scrape the client is reading already
    // includes itself — the same self-consistency rule the timeline uses
    // for its snapshot counter.  (Report captures happen before any
    // post-run scrape, so CI's counter-equality check excludes this one
    // counter.)
    registry().counter("obs.expose_scrapes").inc();
    return http_response(200, "OK", kContentTypeMetrics,
                         render_prometheus(registry(), journal(),
                                           obs::tracer()));
  }
  if (path == "/healthz") {
    return http_response(200, "OK", kContentTypePlain, "ok\n");
  }
  if (path == "/readyz") {
    const RunPhase phase = run_phase();
    const std::string body =
        std::string("phase=") + to_string(phase) + "\n";
    if (phase == RunPhase::kIdle) {
      return http_response(200, "OK", kContentTypePlain, body);
    }
    return http_response(503, "Service Unavailable", kContentTypePlain,
                         body);
  }
  return http_response(404, "Not Found", kContentTypePlain, "not found\n");
}

Exposer& exposer() {
  static Exposer instance;
  return instance;
}

}  // namespace sks::obs
