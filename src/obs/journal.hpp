// Bounded structured event journal: the "why" channel of the telemetry
// layer.  Counters say *how often* the solver fell back; the journal says
// *when* (simulation time), *how hard* (iteration count, step size) and on
// *what* (node / fault label).
//
// The journal is a ring: at capacity the oldest event is dropped and the
// drop counted, so a multi-hour campaign can leave it enabled and still
// read the most recent solver history after a failure.  Recording is gated
// on `enabled()` (off by default) — hot loops call `journal().enabled()`
// (one atomic load + branch) before building an Event.
//
// Concurrency: every mutating or snapshotting member is serialized on an
// internal mutex so parallel campaign workers can record freely; the event
// *interleaving* across workers is whatever the scheduler produced (only
// per-worker order is meaningful).  Exception: `events()` returns a bare
// reference into the ring and may only be called once the writers have
// quiesced (after a campaign returned) — snapshots under concurrency go
// through `tail()`.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sks::obs {

enum class EventType {
  kNewtonConverged,  // one Newton solve succeeded (iterations, t)
  kNewtonFallback,   // continuation / damping / BE fallback engaged (detail)
  kStepRejected,     // adaptive control rejected an accepted solve (value=dt)
  kDtHalved,         // transient step halved after a Newton failure (value=dt)
  kBreakpoint,       // source-corner breakpoint honoured at t
  kFaultVerdict,     // one fault tested (detail = label + verdict)
  kWarning,          // telemetry-layer misuse / postmortem notice (detail)
};

const char* to_string(EventType type);

struct Event {
  EventType type = EventType::kNewtonConverged;
  double t = 0.0;         // simulation time [s] (0 for non-sim events)
  double value = 0.0;     // type-dependent payload (dt, excess IDDQ, ...)
  int iterations = 0;     // NR iterations, when meaningful
  std::string detail;     // free-form context (ladder rung, fault label)
};

class Journal {
 public:
  explicit Journal(std::size_t capacity = 4096) : capacity_(capacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::size_t capacity() const;
  // Shrinking below the current size drops the oldest events (counted).
  void set_capacity(std::size_t capacity);

  // Appends unconditionally — callers gate on enabled() so that building
  // the Event (string work) is also skipped when off.
  void record(Event event);

  std::size_t size() const;
  std::size_t dropped() const;
  std::size_t total_recorded() const { return size() + dropped(); }
  std::size_t count(EventType type) const;
  // Direct view into the ring; only valid while no other thread records
  // (post-campaign inspection, tests).
  const std::deque<Event>& events() const { return events_; }
  // Up to `n` most recent events, oldest first (safe under concurrency).
  std::vector<Event> tail(std::size_t n) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::size_t dropped_ = 0;
  std::deque<Event> events_;
};

// Process-wide journal the engine reports into (mirrors registry()).
Journal& journal();

}  // namespace sks::obs
