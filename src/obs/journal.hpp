// Bounded structured event journal: the "why" channel of the telemetry
// layer.  Counters say *how often* the solver fell back; the journal says
// *when* (simulation time), *how hard* (iteration count, step size) and on
// *what* (node / fault label).
//
// The journal is a ring: at capacity the oldest event is dropped and the
// drop counted, so a multi-hour campaign can leave it enabled and still
// read the most recent solver history after a failure.  Recording is gated
// on `enabled()` (off by default) — hot loops call `journal().enabled()`
// (one load + branch) before building an Event.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace sks::obs {

enum class EventType {
  kNewtonConverged,  // one Newton solve succeeded (iterations, t)
  kNewtonFallback,   // continuation / damping / BE fallback engaged (detail)
  kStepRejected,     // adaptive control rejected an accepted solve (value=dt)
  kDtHalved,         // transient step halved after a Newton failure (value=dt)
  kBreakpoint,       // source-corner breakpoint honoured at t
  kFaultVerdict,     // one fault tested (detail = label + verdict)
};

const char* to_string(EventType type);

struct Event {
  EventType type = EventType::kNewtonConverged;
  double t = 0.0;         // simulation time [s] (0 for non-sim events)
  double value = 0.0;     // type-dependent payload (dt, excess IDDQ, ...)
  int iterations = 0;     // NR iterations, when meaningful
  std::string detail;     // free-form context (ladder rung, fault label)
};

class Journal {
 public:
  explicit Journal(std::size_t capacity = 4096) : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  std::size_t capacity() const { return capacity_; }
  // Shrinking below the current size drops the oldest events (counted).
  void set_capacity(std::size_t capacity);

  // Appends unconditionally — callers gate on enabled() so that building
  // the Event (string work) is also skipped when off.
  void record(Event event);

  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  std::size_t total_recorded() const { return size() + dropped(); }
  std::size_t count(EventType type) const;
  const std::deque<Event>& events() const { return events_; }
  // Up to `n` most recent events, oldest first.
  std::vector<Event> tail(std::size_t n) const;

  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::size_t dropped_ = 0;
  std::deque<Event> events_;
};

// Process-wide journal the engine reports into (mirrors registry()).
Journal& journal();

}  // namespace sks::obs
