// Memory accounting: process-level peak RSS / page-fault capture plus
// `mem.*` byte gauges on the real retainers (sparse LU fill, the
// BatchSimulator SoA stripes, retained waveforms, trace/journal buffer
// capacity).
//
// Two tiers, mirroring the ScopedTimer/Tracer cost discipline:
//
//  * `record_mem_gauges()` is a *cold* end-of-run / per-snapshot sampler
//    (one getrusage syscall + a handful of gauge stores).  It is NOT gated
//    on obs::enabled(): every bench run records `mem.peak_rss_bytes` and
//    `mem.major_page_faults` so bench/history.jsonl accumulates a memory
//    trend alongside wall times even with profiling off.
//  * `record_peak_bytes()` is the *instrumented* path the engine/batch
//    layers call near hot code (plan build, SoA allocation, run end).
//    Call sites gate on obs::enabled() — zero cost when profiling is off —
//    and every update bumps `obs.mem_gauge_updates`, which the bench gate
//    pins to zero for the profiling-off fixed workloads (same REQUIRED_ZERO
//    mechanism that guards stream/timeline accumulators).
//
// Gauges use max semantics ("peak observed this run"): registry gauges are
// zeroed by Registry::reset() at run start, then only ratchet upward.  The
// max is approximate under concurrent writers (benign gauge race).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace sks::obs {

// Process-wide memory counters from getrusage(RUSAGE_SELF); zeros on
// platforms without it.
struct MemStats {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t major_page_faults = 0;
  std::uint64_t minor_page_faults = 0;
};

MemStats sample_mem_stats();

// Cold sampler: sets mem.peak_rss_bytes / mem.major_page_faults /
// mem.minor_page_faults from getrusage, and mem.trace_buffer_bytes /
// mem.journal_buffer_bytes from the current buffer capacities.  Ungated;
// call once at the end of a run and from timeline snapshots.
void record_mem_gauges(Registry& reg = registry());

// Instrumented path: ratchet `gauge` up to `bytes` (max semantics) and
// bump obs.mem_gauge_updates.  Callers cache the Gauge& (stable address)
// and gate on obs::enabled().
void record_peak_bytes(Gauge& gauge, double bytes);

}  // namespace sks::obs
