#include "obs/report.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "obs/buildinfo.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace sks::obs {

void Report::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void Report::set_value(const std::string& key, double value) {
  for (auto& [k, v] : values_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  values_.emplace_back(key, value);
}

void Report::capture_provenance() {
  set_meta("git_sha", buildinfo::kGitSha);
  set_meta("git_dirty", buildinfo::kGitDirty ? "true" : "false");
  set_meta("compiler", buildinfo::kCompiler);
  set_meta("build_type", buildinfo::kBuildType);
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    set_meta("hostname", host);
  } else {
    set_meta("hostname", "unknown");
  }
  set_meta("hw_threads",
           std::to_string(std::thread::hardware_concurrency()));
}

void Report::capture_registry(const Registry& reg) {
  counters_ = reg.counters();
  gauges_ = reg.gauges();
  timers_.clear();
  for (const auto& [name, t] : reg.timers()) {
    if (t->count() == 0) continue;  // never fired (e.g. profiling disabled)
    TimerRow row;
    row.name = name;
    row.count = t->count();
    row.total_s = t->total_seconds();
    row.mean_s = t->mean_seconds();
    row.min_s = static_cast<double>(t->min_ns()) * 1e-9;
    row.max_s = static_cast<double>(t->max_ns()) * 1e-9;
    timers_.push_back(std::move(row));
  }
  histograms_.clear();
  for (const auto& [name, h] : reg.histograms()) {
    HistogramRow row;
    row.name = name;
    row.lo = h->lo();
    row.hi = h->hi();
    row.counts.reserve(h->bins());
    for (std::size_t i = 0; i < h->bins(); ++i) {
      row.counts.push_back(h->bin_count(i));
    }
    histograms_.push_back(std::move(row));
  }
  streams_.clear();
  for (const auto& [name, s] : reg.streams()) {
    if (s.count() == 0) continue;  // declared but never fed
    StreamRow row;
    row.name = name;
    row.count = s.count();
    row.mean = s.mean();
    row.stddev = s.stddev();
    row.min = s.min();
    row.max = s.max();
    row.p50 = s.p50();
    row.p90 = s.p90();
    row.p99 = s.p99();
    streams_.push_back(std::move(row));
  }
}

void Report::capture_trace(const Tracer& tracer) {
  have_trace_ = true;
  trace_events_ = tracer.event_count();
  trace_dropped_ = tracer.dropped();
}

void Report::capture_profile(const Tracer& tracer) {
  set_profile(profile_from_tracer(tracer));
}

void Report::set_profile(Profile profile) {
  profile_ = std::move(profile);
  have_profile_ = !profile_.empty();
}

void Report::capture_journal(const Journal& j, std::size_t max_events) {
  have_journal_ = true;
  journal_recorded_ = j.total_recorded();
  journal_dropped_ = j.dropped();
  journal_counts_.clear();
  for (const EventType type :
       {EventType::kNewtonConverged, EventType::kNewtonFallback,
        EventType::kStepRejected, EventType::kDtHalved, EventType::kBreakpoint,
        EventType::kFaultVerdict}) {
    const std::size_t n = j.count(type);
    if (n > 0) journal_counts_.emplace_back(to_string(type), n);
  }
  journal_tail_ = j.tail(max_events);
}

namespace {

void append_kv_block(
    std::ostringstream& out, const char* section,
    const std::vector<std::pair<std::string, std::string>>& rows, bool& first) {
  if (rows.empty()) return;
  if (!first) out << ",\n";
  first = false;
  out << "  \"" << section << "\": {";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << json_escape(rows[i].first)
        << "\": " << rows[i].second;
  }
  out << "}";
}

template <typename T>
std::vector<std::pair<std::string, std::string>> numeric_rows(
    const std::vector<std::pair<std::string, T>>& rows) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(rows.size());
  for (const auto& [k, v] : rows) {
    out.emplace_back(k, json_number(static_cast<double>(v)));
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream out;
  out << "{\n  \"report\": \"" << json_escape(name_)
      << "\",\n  \"schema_version\": 1";
  bool first = false;  // the header fields above are always present

  {
    std::vector<std::pair<std::string, std::string>> rows;
    rows.reserve(meta_.size());
    for (const auto& [k, v] : meta_) {
      rows.emplace_back(k, '"' + json_escape(v) + '"');
    }
    append_kv_block(out, "meta", rows, first);
  }
  append_kv_block(out, "values", numeric_rows(values_), first);
  append_kv_block(out, "counters", numeric_rows(counters_), first);
  append_kv_block(out, "gauges", numeric_rows(gauges_), first);

  if (!timers_.empty()) {
    out << ",\n  \"timers\": {";
    for (std::size_t i = 0; i < timers_.size(); ++i) {
      const TimerRow& t = timers_[i];
      out << (i == 0 ? "" : ", ") << '"' << json_escape(t.name) << "\": {"
          << "\"count\": " << t.count
          << ", \"total_s\": " << json_number(t.total_s)
          << ", \"mean_s\": " << json_number(t.mean_s)
          << ", \"min_s\": " << json_number(t.min_s)
          << ", \"max_s\": " << json_number(t.max_s) << "}";
    }
    out << "}";
  }

  if (!histograms_.empty()) {
    out << ",\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      const HistogramRow& h = histograms_[i];
      out << (i == 0 ? "" : ", ") << '"' << json_escape(h.name) << "\": {"
          << "\"lo\": " << json_number(h.lo) << ", \"hi\": " << json_number(h.hi)
          << ", \"counts\": [";
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        out << (b == 0 ? "" : ", ") << h.counts[b];
      }
      out << "]}";
    }
    out << "}";
  }

  if (!streams_.empty()) {
    out << ",\n  \"streams\": {";
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const StreamRow& s = streams_[i];
      out << (i == 0 ? "" : ", ") << '"' << json_escape(s.name) << "\": {"
          << "\"count\": " << s.count << ", \"mean\": " << json_number(s.mean)
          << ", \"stddev\": " << json_number(s.stddev)
          << ", \"min\": " << json_number(s.min)
          << ", \"max\": " << json_number(s.max)
          << ", \"p50\": " << json_number(s.p50)
          << ", \"p90\": " << json_number(s.p90)
          << ", \"p99\": " << json_number(s.p99) << "}";
    }
    out << "}";
  }

  if (have_journal_) {
    out << ",\n  \"journal\": {\"recorded\": " << journal_recorded_
        << ", \"dropped\": " << journal_dropped_ << ", \"counts\": {";
    for (std::size_t i = 0; i < journal_counts_.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << journal_counts_[i].first
          << "\": " << journal_counts_[i].second;
    }
    out << "}, \"events\": [";
    for (std::size_t i = 0; i < journal_tail_.size(); ++i) {
      const Event& e = journal_tail_[i];
      out << (i == 0 ? "" : ", ") << "{\"type\": \"" << to_string(e.type)
          << "\", \"t\": " << json_number(e.t)
          << ", \"value\": " << json_number(e.value)
          << ", \"iterations\": " << e.iterations << ", \"detail\": \""
          << json_escape(e.detail) << "\"}";
    }
    out << "]}";
  }

  if (have_trace_) {
    out << ",\n  \"trace\": {\"events\": " << trace_events_
        << ", \"dropped\": " << trace_dropped_ << "}";
  }

  if (have_profile_) {
    out << ",\n  \"profile\": {\"window_s\": "
        << json_number(static_cast<double>(profile_.window_ns()) * 1e-9)
        << ", \"nodes\": [";
    const auto& nodes = profile_.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const ProfileNode& n = nodes[i];
      out << (i == 0 ? "" : ", ") << "{\"path\": \"" << json_escape(n.path)
          << "\", \"name\": \"" << json_escape(n.name)
          << "\", \"depth\": " << n.depth << ", \"count\": " << n.count
          << ", \"total_s\": "
          << json_number(static_cast<double>(n.total_ns) * 1e-9)
          << ", \"self_s\": "
          << json_number(static_cast<double>(n.self_ns) * 1e-9)
          << ", \"min_s\": "
          << json_number(static_cast<double>(n.min_ns) * 1e-9)
          << ", \"max_s\": "
          << json_number(static_cast<double>(n.max_ns) * 1e-9)
          << ", \"threads\": {";
      bool first_thread = true;
      for (const auto& [thread, slice] : n.threads) {
        out << (first_thread ? "" : ", ") << '"' << json_escape(thread)
            << "\": {\"count\": " << slice.count << ", \"total_s\": "
            << json_number(static_cast<double>(slice.total_ns) * 1e-9) << "}";
        first_thread = false;
      }
      out << "}}";
    }
    out << "], \"workers\": [";
    const auto& workers = profile_.workers();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const WorkerUtil& w = workers[i];
      out << (i == 0 ? "" : ", ") << "{\"thread\": \""
          << json_escape(w.thread) << "\", \"spans\": " << w.spans
          << ", \"busy_s\": "
          << json_number(static_cast<double>(w.busy_ns) * 1e-9)
          << ", \"util\": " << json_number(w.util) << "}";
    }
    out << "]}";
  }

  out << "\n}\n";
  return out.str();
}

std::string Report::to_csv() const {
  // Flat rows: section,name,field,value — trivially greppable / joinable.
  std::ostringstream out;
  out << "section,name,field,value\n";
  auto esc = [](const std::string& s) {
    std::string q = s;
    for (auto& c : q) {
      if (c == ',') c = ';';
    }
    return q;
  };
  for (const auto& [k, v] : meta_) {
    out << "meta," << esc(k) << ",value," << esc(v) << "\n";
  }
  for (const auto& [k, v] : values_) {
    out << "value," << esc(k) << ",value," << json_number(v) << "\n";
  }
  for (const auto& [k, v] : counters_) {
    out << "counter," << esc(k) << ",value," << v << "\n";
  }
  for (const auto& [k, v] : gauges_) {
    out << "gauge," << esc(k) << ",value," << json_number(v) << "\n";
  }
  for (const TimerRow& t : timers_) {
    out << "timer," << esc(t.name) << ",count," << t.count << "\n";
    out << "timer," << esc(t.name) << ",total_s," << json_number(t.total_s)
        << "\n";
    out << "timer," << esc(t.name) << ",mean_s," << json_number(t.mean_s)
        << "\n";
  }
  for (const StreamRow& s : streams_) {
    out << "stream," << esc(s.name) << ",count," << s.count << "\n";
    out << "stream," << esc(s.name) << ",mean," << json_number(s.mean) << "\n";
    out << "stream," << esc(s.name) << ",p50," << json_number(s.p50) << "\n";
    out << "stream," << esc(s.name) << ",p99," << json_number(s.p99) << "\n";
  }
  for (const auto& [k, v] : journal_counts_) {
    out << "journal," << esc(k) << ",count," << v << "\n";
  }
  for (const ProfileNode& n : profile_.nodes()) {
    out << "profile," << esc(n.path) << ",count," << n.count << "\n";
    out << "profile," << esc(n.path) << ",total_s,"
        << json_number(static_cast<double>(n.total_ns) * 1e-9) << "\n";
    out << "profile," << esc(n.path) << ",self_s,"
        << json_number(static_cast<double>(n.self_ns) * 1e-9) << "\n";
  }
  return out.str();
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  sks::check(out.good(), "Report: cannot open '", path, "' for writing");
  out << content;
  out.flush();
  sks::check(out.good(), "Report: write to '", path, "' failed");
}

}  // namespace

void Report::write_json(const std::string& path) const {
  write_file(path, to_json());
}

void Report::write_csv(const std::string& path) const {
  write_file(path, to_csv());
}

}  // namespace sks::obs
