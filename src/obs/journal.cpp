#include "obs/journal.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace sks::obs {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kNewtonConverged: return "newton_converged";
    case EventType::kNewtonFallback: return "newton_fallback";
    case EventType::kStepRejected: return "step_rejected";
    case EventType::kDtHalved: return "dt_halved";
    case EventType::kBreakpoint: return "breakpoint";
    case EventType::kFaultVerdict: return "fault_verdict";
    case EventType::kWarning: return "warning";
  }
  return "unknown";
}

std::size_t Journal::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Journal::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Journal::record(Event event) {
  // Mirror into the tracer as an instant marker on the recording thread's
  // track, so a trace timeline shows *when* (wall time) the solver fell
  // back, next to the span that was running.  Gated separately: journal
  // recording works without tracing and vice versa.
  if (tracer().enabled()) {
    std::vector<TraceArg> args;
    args.push_back({"t", json_number(event.t)});
    args.push_back({"value", json_number(event.value)});
    if (event.iterations != 0) {
      args.push_back({"iterations", json_number(event.iterations)});
    }
    if (!event.detail.empty()) {
      args.push_back({"detail", '"' + json_escape(event.detail) + '"'});
    }
    trace_instant(to_string(event.type), std::move(args));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t Journal::count(EventType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const Event& e) { return e.type == type; }));
}

std::vector<Event> Journal::tail(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t from = events_.size() > n ? events_.size() - n : 0;
  return std::vector<Event>(events_.begin() + static_cast<std::ptrdiff_t>(from),
                            events_.end());
}

void Journal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

Journal& journal() {
  static Journal instance;
  return instance;
}

}  // namespace sks::obs
