#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace sks::obs {

bool Json::boolean() const {
  sks::check(kind_ == Kind::kBool, "Json: not a bool");
  return bool_;
}

double Json::number() const {
  sks::check(kind_ == Kind::kNumber, "Json: not a number");
  return number_;
}

const std::string& Json::str() const {
  sks::check(kind_ == Kind::kString, "Json: not a string");
  return string_;
}

const std::vector<Json>& Json::array() const {
  sks::check(kind_ == Kind::kArray, "Json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::object() const {
  sks::check(kind_ == Kind::kObject, "Json: not an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  sks::check(v != nullptr, "Json: missing key '", key, "'");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    check_here(pos_ == text_.size(), "trailing characters");
    return v;
  }

 private:
  void check_here(bool condition, const std::string& what) {
    sks::check(condition, "Json::parse: ", what, " at offset ", pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    check_here(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check_here(pos_ < text_.size() && text_[pos_] == c,
               std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json v;
      v.kind_ = Json::Kind::kString;
      v.string_ = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Json v;
      v.kind_ = Json::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      Json v;
      v.kind_ = Json::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) return Json{};
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind_ = Json::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind_ = Json::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check_here(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        check_here(pos_ < text_.size(), "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            check_here(pos_ + 4 <= text_.size(), "truncated \\u escape");
            // Preserved verbatim (see header): enough for validation.
            out += "\\u";
            out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            check_here(false, "bad escape");
        }
      } else {
        check_here(static_cast<unsigned char>(c) >= 0x20,
                   "control character in string");
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    check_here(pos_ > start, "expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    check_here(end != nullptr && *end == '\0' && end != token.c_str(),
               "malformed number '" + token + "'");
    Json v;
    v.kind_ = Json::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace sks::obs
