#include "obs/timeline.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sks::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const double v = std::atof(env);
  return v > 0.0 ? v : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

}  // namespace

// ---- ProgressTracker ----------------------------------------------------

ProgressTracker::ProgressTracker(std::string name, std::size_t total)
    : name_(std::move(name)), total_(total), start_ns_(steady_ns()) {}

ProgressTracker::~ProgressTracker() = default;

bool ProgressTracker::live() const {
  return enabled() || timeline().enabled();
}

double ProgressTracker::elapsed_s() const {
  return static_cast<double>(steady_ns() - start_ns_) * 1e-9;
}

void ProgressTracker::add_partial(const std::string& key, double delta) {
  if (!live()) return;
  for (auto& [k, v] : partial_) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  partial_.emplace_back(key, delta);
}

ProgressSnapshot ProgressTracker::snapshot() const {
  ProgressSnapshot snap;
  snap.name = name_;
  snap.done = done_;
  snap.total = total_;
  snap.elapsed_s = elapsed_s();
  snap.rate_per_s =
      snap.elapsed_s > 0.0
          ? static_cast<double>(done_) / snap.elapsed_s
          : 0.0;
  snap.recent_rate_per_s = recent_.rate();
  const double rate = snap.recent_rate_per_s > 0.0 ? snap.recent_rate_per_s
                                                   : snap.rate_per_s;
  snap.eta_s = (rate > 0.0 && total_ > done_)
                   ? static_cast<double>(total_ - done_) / rate
                   : 0.0;
  snap.partial = partial_;
  return snap;
}

void ProgressTracker::on_item() {
  ++done_;
  if (!live()) return;  // two relaxed loads; the hot-path cost when off

  recent_.add(elapsed_s(), 1.0);
  const ProgressSnapshot snap = snapshot();

  // Gauges give `sks-report print` (and any registry consumer) the same
  // live view the timeline file carries.  References are resolved per
  // tracker, not per item.
  Registry& reg = registry();
  const std::string prefix = "progress." + name_ + ".";
  reg.gauge(prefix + "done").set(static_cast<double>(snap.done));
  reg.gauge(prefix + "total").set(static_cast<double>(snap.total));
  reg.gauge(prefix + "rate_per_s").set(snap.rate_per_s);
  reg.gauge(prefix + "eta_s").set(snap.eta_s);

  if (timeline().enabled()) timeline().on_items(snap);
}

// ---- MetricsTimeline ----------------------------------------------------

MetricsTimeline::MetricsTimeline() {
  // Cadence knobs are honoured even without SKS_TIMELINE so a later
  // `--timeline FILE` (configure with just the path filled in) inherits
  // them.
  TimelineOptions options;
  options.every_items = env_size("SKS_TIMELINE_EVERY", options.every_items);
  options.wall_interval_s =
      env_double("SKS_TIMELINE_WALL_S", options.wall_interval_s);
  options.sim_interval_s =
      env_double("SKS_TIMELINE_SIM_S", options.sim_interval_s);
  const char* env = std::getenv("SKS_TIMELINE");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    options.path = env;
  }
  configure(options);
}

void MetricsTimeline::configure(const TimelineOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
  options_ = options;
  epoch_ns_ = steady_ns();
  last_wall_s_ = -1.0;
  next_sim_t_ = options.sim_interval_s;
  sim_interval_.store(options.sim_interval_s, std::memory_order_relaxed);
  if (options_.path.empty()) {
    enabled_.store(false, std::memory_order_relaxed);
    return;
  }
  out_.open(options_.path, std::ios::binary | std::ios::trunc);
  // A path that cannot be opened disables the timeline rather than making
  // every later snapshot fail: telemetry must never take down the run.
  enabled_.store(out_.good(), std::memory_order_relaxed);
}

void MetricsTimeline::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  sim_interval_.store(0.0, std::memory_order_relaxed);
  if (out_.is_open()) out_.close();
  options_ = TimelineOptions();
}

TimelineOptions MetricsTimeline::options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_;
}

void MetricsTimeline::on_items(const ProgressSnapshot& progress) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t every = options_.every_items;
  const bool boundary =
      every != 0 && progress.done != 0 && progress.done % every == 0;
  const bool finished = progress.total != 0 && progress.done == progress.total;
  if (!boundary && !finished) return;
  snapshot_locked(progress.name, &progress, 0.0, false);
}

void MetricsTimeline::tick(const char* label) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const double now_s = static_cast<double>(steady_ns() - epoch_ns_) * 1e-9;
  if (last_wall_s_ >= 0.0 &&
      now_s - last_wall_s_ < options_.wall_interval_s) {
    return;
  }
  snapshot_locked(label, nullptr, 0.0, false);
}

void MetricsTimeline::on_sim_time(double t_sim) {
  // Hot path: gate on the interval before touching the mutex.
  const double interval = sim_interval_.load(std::memory_order_relaxed);
  if (interval <= 0.0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (t_sim < next_sim_t_) return;
  while (next_sim_t_ <= t_sim) next_sim_t_ += options_.sim_interval_s;
  snapshot_locked("sim_time", nullptr, t_sim, true);
}

std::uint64_t MetricsTimeline::snapshot(const std::string& label,
                                        const ProgressSnapshot* progress) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(label, progress, 0.0, false);
}

std::uint64_t MetricsTimeline::snapshot_locked(const std::string& label,
                                               const ProgressSnapshot* progress,
                                               double sim_t, bool have_sim_t) {
  if (!out_.is_open()) return 0;
  // Seq (and its registry counter) advance BEFORE the registry is read, so
  // a final snapshot and a report captured right after it agree exactly on
  // every counter — the equivalence CI asserts.
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  static Counter& snapshots = registry().counter("obs.timeline_snapshots");
  snapshots.inc();

  const double wall_s = static_cast<double>(steady_ns() - epoch_ns_) * 1e-9;
  last_wall_s_ = wall_s;

  // Refresh the mem.* gauges so every snapshot line carries the current
  // peak RSS / fault counts — a live tail sees the memory trend, not just
  // the final value.  Cold path: one getrusage per snapshot.
  record_mem_gauges();

  std::ostringstream out;
  out << "{\"seq\": " << seq << ", \"label\": \"" << json_escape(label)
      << "\", \"wall_s\": " << json_number(wall_s);
  if (have_sim_t) out << ", \"sim_t\": " << json_number(sim_t);

  if (progress != nullptr) {
    out << ", \"progress\": {\"name\": \"" << json_escape(progress->name)
        << "\", \"done\": " << progress->done
        << ", \"total\": " << progress->total
        << ", \"elapsed_s\": " << json_number(progress->elapsed_s)
        << ", \"rate_per_s\": " << json_number(progress->rate_per_s)
        << ", \"recent_rate_per_s\": "
        << json_number(progress->recent_rate_per_s)
        << ", \"eta_s\": " << json_number(progress->eta_s);
    if (!progress->partial.empty()) {
      out << ", \"partial\": {";
      for (std::size_t i = 0; i < progress->partial.size(); ++i) {
        out << (i == 0 ? "" : ", ") << '"'
            << json_escape(progress->partial[i].first)
            << "\": " << json_number(progress->partial[i].second);
      }
      out << "}";
    }
    out << "}";
  }

  const Registry& reg = registry();
  {
    const auto counters = reg.counters();
    out << ", \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << json_escape(counters[i].first)
          << "\": " << counters[i].second;
    }
    out << "}";
  }
  {
    const auto gauges = reg.gauges();
    out << ", \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << json_escape(gauges[i].first)
          << "\": " << json_number(gauges[i].second);
    }
    out << "}";
  }
  {
    const auto timers = reg.timers();
    bool first = true;
    out << ", \"timers\": {";
    for (const auto& [name, t] : timers) {
      if (t->count() == 0) continue;
      out << (first ? "" : ", ") << '"' << json_escape(name)
          << "\": {\"count\": " << t->count()
          << ", \"total_s\": " << json_number(t->total_seconds()) << "}";
      first = false;
    }
    out << "}";
  }
  {
    const auto streams = reg.streams();
    bool first = true;
    out << ", \"streams\": {";
    for (const auto& [name, s] : streams) {
      if (s.count() == 0) continue;
      out << (first ? "" : ", ") << '"' << json_escape(name)
          << "\": {\"count\": " << s.count()
          << ", \"mean\": " << json_number(s.mean())
          << ", \"stddev\": " << json_number(s.stddev())
          << ", \"min\": " << json_number(s.min())
          << ", \"max\": " << json_number(s.max())
          << ", \"p50\": " << json_number(s.p50())
          << ", \"p90\": " << json_number(s.p90())
          << ", \"p99\": " << json_number(s.p99()) << "}";
      first = false;
    }
    out << "}";
  }
  out << ", \"journal\": {\"recorded\": " << journal().total_recorded()
      << ", \"dropped\": " << journal().dropped() << "}";
  out << ", \"trace\": {\"events\": " << tracer().event_count()
      << ", \"dropped\": " << tracer().dropped() << "}";
  out << "}\n";

  out_ << out.str();
  out_.flush();  // a live tail must see complete lines promptly
  return seq;
}

MetricsTimeline& timeline() {
  static MetricsTimeline instance;
  return instance;
}

}  // namespace sks::obs
