#include "obs/stream.hpp"

#include <algorithm>
#include <cmath>

namespace sks::obs::stream {

// ---- OnlineStats --------------------------------------------------------

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats(); }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

// ---- P2Quantile ---------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  for (double& h : heights_) h = 0.0;
  for (int i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  dn_[0] = 0.0;
  dn_[1] = q_ / 2.0;
  dn_[2] = q_;
  dn_[3] = (1.0 + q_) / 2.0;
  dn_[4] = 1.0;
}

void P2Quantile::reset() { *this = P2Quantile(q_); }

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Locate the cell and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += dn_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const bool move_right = d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0;
    const bool move_left = d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const double s = move_right ? 1.0 : -1.0;
    // Piecewise-parabolic candidate height; fall back to linear when the
    // parabola would break marker monotonicity.
    const double np = pos_[i + 1] - pos_[i];
    const double nm = pos_[i - 1] - pos_[i];
    const double parabolic =
        heights_[i] +
        s / (np - nm) *
            ((s - nm) * (heights_[i + 1] - heights_[i]) / np +
             (np - s) * (heights_[i] - heights_[i - 1]) / -nm);
    if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
      heights_[i] = parabolic;
    } else {
      const int j = move_right ? i + 1 : i - 1;
      heights_[i] += s * (heights_[j] - heights_[i]) /
                     (pos_[j] - pos_[i]);
    }
    pos_[i] += s;
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact from the (small) retained sample: nearest-rank with linear
    // interpolation, matching util::percentile's convention.
    double sorted[5];
    std::copy(heights_, heights_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = q_ * static_cast<double>(n_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// ---- StreamSummary ------------------------------------------------------

void StreamSummary::add(double x) {
  stats_.add(x);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
  last_ = x;
}

void StreamSummary::reset() {
  stats_.reset();
  p50_.reset();
  p90_.reset();
  p99_.reset();
  last_ = 0.0;
}

// ---- RollingWindow ------------------------------------------------------

RollingWindow::RollingWindow(std::size_t buckets, double bucket_width)
    : width_(bucket_width), cells_(buckets == 0 ? 1 : buckets) {}

void RollingWindow::reset() {
  for (Cell& c : cells_) c = Cell();
  cur_ = -1;
  oldest_ = 0;
}

void RollingWindow::advance_to(std::int64_t bucket) {
  if (cur_ < 0) {
    cur_ = oldest_ = bucket;
    cells_[static_cast<std::size_t>(bucket % static_cast<std::int64_t>(
               cells_.size()))] = Cell();
    return;
  }
  while (cur_ < bucket) {
    ++cur_;
    cells_[static_cast<std::size_t>(cur_ % static_cast<std::int64_t>(
               cells_.size()))] = Cell();
    if (cur_ - oldest_ >= static_cast<std::int64_t>(cells_.size())) {
      oldest_ = cur_ - static_cast<std::int64_t>(cells_.size()) + 1;
    }
  }
}

void RollingWindow::add(double pos, double value) {
  const std::int64_t bucket =
      static_cast<std::int64_t>(std::floor(pos / width_));
  if (bucket > cur_ || cur_ < 0) advance_to(bucket);
  // A position older than the window is folded into the oldest live
  // bucket rather than dropped (positions are monotone by contract, so
  // this only happens within one bucket of jitter).
  const std::int64_t b = std::max(bucket, oldest_);
  Cell& c = cells_[static_cast<std::size_t>(
      b % static_cast<std::int64_t>(cells_.size()))];
  c.sum += value;
  ++c.count;
}

double RollingWindow::sum() const {
  double s = 0.0;
  for (const Cell& c : cells_) s += c.sum;
  return s;
}

std::size_t RollingWindow::count() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.count;
  return n;
}

double RollingWindow::mean() const {
  const std::size_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double RollingWindow::span() const {
  if (cur_ < 0) return 0.0;
  return static_cast<double>(cur_ - oldest_ + 1) * width_;
}

double RollingWindow::rate() const {
  const double s = span();
  return s <= 0.0 ? 0.0 : static_cast<double>(count()) / s;
}

// ---- AllanAccumulator ---------------------------------------------------

AllanAccumulator::AllanAccumulator(std::size_t max_octaves)
    : octaves_(max_octaves == 0 ? 1 : max_octaves) {}

void AllanAccumulator::reset() {
  n_ = 0;
  for (Octave& o : octaves_) o = Octave();
}

void AllanAccumulator::add(double y) {
  ++n_;
  std::size_t window = 1;
  for (Octave& o : octaves_) {
    o.sum += y;
    if (++o.filled == window) {
      const double mean = o.sum / static_cast<double>(window);
      if (o.has_prev) {
        const double d = mean - o.prev_mean;
        o.diff2 += d * d;
        ++o.pairs;
      }
      o.prev_mean = mean;
      o.has_prev = true;
      o.sum = 0.0;
      o.filled = 0;
    }
    window <<= 1;
  }
}

std::vector<AllanAccumulator::Point> AllanAccumulator::points() const {
  std::vector<Point> out;
  std::size_t window = 1;
  for (const Octave& o : octaves_) {
    if (o.pairs > 0) {
      Point p;
      p.window = window;
      p.pairs = o.pairs;
      p.avar = o.diff2 / (2.0 * static_cast<double>(o.pairs));
      p.adev = std::sqrt(p.avar);
      out.push_back(p);
    }
    window <<= 1;
  }
  return out;
}

double AllanAccumulator::adev(std::size_t window) const {
  std::size_t w = 1;
  for (const Octave& o : octaves_) {
    if (w == window) {
      if (o.pairs == 0) return 0.0;
      return std::sqrt(o.diff2 / (2.0 * static_cast<double>(o.pairs)));
    }
    w <<= 1;
  }
  return 0.0;
}

// ---- WaveformStreams ----------------------------------------------------

void WaveformStreams::configure(std::vector<std::string> names) {
  names_ = std::move(names);
  channels_.assign(names_.size(), StreamSummary());
  steps_ = 0;
  t_first_ = t_last_ = 0.0;
}

void WaveformStreams::on_step(double t, const double* values, std::size_t n) {
  if (channels_.empty() && n > 0) {
    channels_.assign(n, StreamSummary());
    names_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (names_[i].empty()) names_[i] = "ch" + std::to_string(i);
    }
  }
  const std::size_t m = std::min(n, channels_.size());
  for (std::size_t i = 0; i < m; ++i) channels_[i].add(values[i]);
  if (steps_ == 0) t_first_ = t;
  t_last_ = t;
  ++steps_;
}

void WaveformStreams::reset() {
  for (StreamSummary& c : channels_) c.reset();
  steps_ = 0;
  t_first_ = t_last_ = 0.0;
}

}  // namespace sks::obs::stream
