#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace sks::obs {

const ProfileNode* Profile::find(const std::string& path) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), path,
      [](const ProfileNode& n, const std::string& p) { return n.path < p; });
  if (it == nodes_.end() || it->path != path) return nullptr;
  return &*it;
}

std::string Profile::collapsed_stacks() const {
  std::ostringstream out;
  for (const ProfileNode& n : nodes_) {
    const std::uint64_t self_us = n.self_ns / 1000;
    if (self_us == 0) continue;
    out << n.path << ' ' << self_us << '\n';
  }
  return out.str();
}

void Profile::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.path < b.path;
            });
  std::sort(workers_.begin(), workers_.end(),
            [](const WorkerUtil& a, const WorkerUtil& b) {
              return a.thread < b.thread;
            });
}

namespace {

std::string parent_path(const std::string& path) {
  const std::size_t cut = path.rfind(';');
  return cut == std::string::npos ? std::string() : path.substr(0, cut);
}

}  // namespace

Profile build_profile(std::vector<ProfileSpan> spans) {
  registry().counter("obs.profile_builds").inc();

  Profile profile;
  if (spans.empty()) return profile;

  // Stable grouping by thread; within a thread sort by (start asc, dur
  // desc) so an enclosing span precedes spans it contains even when they
  // share a start timestamp.
  std::sort(spans.begin(), spans.end(),
            [](const ProfileSpan& a, const ProfileSpan& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });

  std::uint64_t t_min = spans.front().ts_ns;
  std::uint64_t t_max = 0;
  for (const ProfileSpan& s : spans) {
    t_min = std::min(t_min, s.ts_ns);
    t_max = std::max(t_max, s.ts_ns + s.dur_ns);
  }

  std::unordered_map<std::string, ProfileNode> by_path;
  std::map<std::string, WorkerUtil> by_thread;

  struct Frame {
    std::uint64_t end_ns;
    std::string path;
  };
  std::vector<Frame> stack;
  const std::string* current_thread = nullptr;

  for (const ProfileSpan& s : spans) {
    if (current_thread == nullptr || *current_thread != s.thread) {
      stack.clear();
      current_thread = &s.thread;
    }
    // Pop finished enclosers: RAII spans end no later than their parent,
    // so interval containment reduces to a start-time check.
    while (!stack.empty() && s.ts_ns >= stack.back().end_ns) stack.pop_back();

    std::string path =
        stack.empty() ? s.name : stack.back().path + ';' + s.name;
    const std::size_t depth = stack.size();

    WorkerUtil& w = by_thread[s.thread];
    if (w.thread.empty()) w.thread = s.thread;
    if (depth == 0) {
      w.spans += 1;
      w.busy_ns += s.dur_ns;
    }

    ProfileNode& node = by_path[path];
    if (node.count == 0) {
      node.path = path;
      node.name = s.name;
      node.depth = depth;
      node.min_ns = s.dur_ns;
      node.max_ns = s.dur_ns;
    } else {
      node.min_ns = std::min(node.min_ns, s.dur_ns);
      node.max_ns = std::max(node.max_ns, s.dur_ns);
    }
    node.count += 1;
    node.total_ns += s.dur_ns;
    ThreadSlice& slice = node.threads[s.thread];
    slice.count += 1;
    slice.total_ns += s.dur_ns;

    stack.push_back(Frame{s.ts_ns + s.dur_ns, std::move(path)});
  }

  // Self time: total minus direct children, saturating (a dropped parent
  // or clock jitter can make children sum past the parent).
  for (auto& [path, node] : by_path) node.self_ns = node.total_ns;
  for (auto& [path, node] : by_path) {
    if (node.depth == 0) continue;
    const auto parent = by_path.find(parent_path(path));
    if (parent == by_path.end()) continue;
    ProfileNode& p = parent->second;
    p.self_ns -= std::min(p.self_ns, node.total_ns);
  }

  const std::uint64_t window = t_max > t_min ? t_max - t_min : 0;
  profile.set_window_ns(window);
  for (auto& [path, node] : by_path) profile.add_node(std::move(node));
  for (auto& [name, w] : by_thread) {
    w.util = window == 0
                 ? 0.0
                 : static_cast<double>(w.busy_ns) / static_cast<double>(window);
    profile.add_worker(std::move(w));
  }
  profile.seal();
  return profile;
}

Profile profile_from_tracer(const Tracer& tracer) {
  std::vector<ProfileSpan> spans;
  for (const auto& buffer : tracer.buffers()) {
    const std::string thread = buffer->thread_name().empty()
                                   ? "tid-" + std::to_string(buffer->tid())
                                   : buffer->thread_name();
    const std::size_t n = buffer->size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer->event(i);
      if (e.phase != 'X') continue;  // instants carry no duration
      spans.push_back(ProfileSpan{thread, e.name, e.ts_ns, e.dur_ns});
    }
  }
  return build_profile(std::move(spans));
}

std::vector<Attribution> attribute_profiles(const Profile& base,
                                            const Profile& current) {
  std::map<std::string, Attribution> by_path;
  for (const ProfileNode& n : base.nodes()) {
    Attribution& a = by_path[n.path];
    a.path = n.path;
    a.base_total_s = static_cast<double>(n.total_ns) * 1e-9;
    a.base_self_s = static_cast<double>(n.self_ns) * 1e-9;
    a.base_count = n.count;
  }
  for (const ProfileNode& n : current.nodes()) {
    Attribution& a = by_path[n.path];
    a.path = n.path;
    a.cur_total_s = static_cast<double>(n.total_ns) * 1e-9;
    a.cur_self_s = static_cast<double>(n.self_ns) * 1e-9;
    a.cur_count = n.count;
  }
  std::vector<Attribution> out;
  out.reserve(by_path.size());
  for (auto& [path, a] : by_path) {
    a.delta_total_s = a.cur_total_s - a.base_total_s;
    a.delta_self_s = a.cur_self_s - a.base_self_s;
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(), [](const Attribution& a,
                                       const Attribution& b) {
    const double da = std::abs(a.delta_total_s);
    const double db = std::abs(b.delta_total_s);
    if (da != db) return da > db;
    return a.path < b.path;
  });
  return out;
}

}  // namespace sks::obs
