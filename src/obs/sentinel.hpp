// Bench-history regression sentinel: EWMA control charts over the
// per-metric series in bench/history.jsonl.
//
// The hard gate (tools/bench_gate.py) pins each metric inside a fixed
// window — it catches a 2x wall-time blowup but is blind to a slow leak
// that moves 2% per PR and stays inside the window for ten merges.  The
// sentinel watches the *trend*: for each metric series x_1..x_n it takes
// the first `warmup` runs as the baseline (mean μ0, stddev σ0, with a
// relative floor so a bit-identical deterministic counter series doesn't
// produce a zero-width band), then runs the EWMA
//
//     z_t = λ·x_t + (1−λ)·z_{t−1},   z_warmup = μ0
//
// and flags two conditions, most recent run last:
//
//  * STEP  — the newest observation jumped: |x_n − z_{n−1}| > k·σ0.
//            One bad commit, visible immediately.
//  * DRIFT — the smoothed level left the control band:
//            |z_n − μ0| > k·σ0·sqrt(λ/(2−λ)).  The EWMA variance factor
//            sqrt(λ/(2−λ)) makes the band much tighter than ±k·σ0, which
//            is exactly what catches consistent small moves the Shewhart
//            rule never would.
//
// STEP takes precedence when both fire (the step explains the drift).
// Series no longer than `warmup` return kOk — the chart has no baseline
// yet, so a young history (like the checked-in seed) stays quiet.
//
// Defaults λ=0.2, k=3 are the textbook EWMA-chart operating point
// (Lucas & Saccucci 1990): ~steady-state ARL₀ of a 3σ Shewhart chart,
// with good sensitivity to 0.5–1σ sustained shifts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sks::obs {

struct SentinelOptions {
  double lambda = 0.2;    // EWMA smoothing weight, 0 < λ <= 1
  double k = 3.0;         // control-band half-width in baseline σ units
  std::size_t warmup = 5; // runs that form the baseline (μ0, σ0)
  // σ0 floor: max(sigma_floor_rel·|μ0|, sigma_floor_abs).  Deterministic
  // counters repeat exactly (σ0 = 0); without a floor any 1-count move
  // would flag.  1% relative means "flag when a deterministic metric
  // moves ≳3% or a noisy one leaves its own 3σ band".
  double sigma_floor_rel = 0.01;
  double sigma_floor_abs = 1e-12;
};

enum class SentinelVerdict { kOk, kDrift, kStep };

const char* to_string(SentinelVerdict verdict);

struct SentinelFinding {
  std::string metric;
  SentinelVerdict verdict = SentinelVerdict::kOk;
  std::size_t runs = 0;          // series length
  double value = 0.0;            // newest observation x_n
  double baseline_mean = 0.0;    // μ0
  double baseline_sigma = 0.0;   // σ0 after the floor
  double ewma = 0.0;             // z_n
  double band_lo = 0.0;          // μ0 − k·σ_z  (drift band)
  double band_hi = 0.0;          // μ0 + k·σ_z
};

// Run the chart over one metric's series (oldest first).  Pure function;
// the CLI layer (sks-report sentinel) owns file parsing and formatting.
SentinelFinding sentinel_check(const std::string& metric,
                               const std::vector<double>& series,
                               const SentinelOptions& opt = {});

}  // namespace sks::obs
