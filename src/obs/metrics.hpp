// Telemetry metrics: counters, gauges, timer statistics and histograms,
// held in a named registry.
//
// Design constraints (this layer sits under the SPICE-class hot loops):
//
//  * `Counter::inc()` is a single relaxed atomic add — counters are
//    *always* live, so the engine can account NR iterations and LU
//    factorizations without any mode check and the cost stays unmeasurable
//    next to a dense solve;
//  * anything that reads a clock (ScopedTimer, see timer.hpp) or allocates
//    (Journal, see journal.hpp) is gated on the global `enabled()` flag and
//    compiles down to one predictable branch when profiling is off;
//  * registry entries are created on first use and live for the process
//    lifetime at stable addresses, so callers may cache `Counter&`
//    references across runs; `reset()` zeroes values but never invalidates
//    references.
//
// Concurrency: the parallel campaign drivers (sks::par) increment metrics
// from every worker thread, so the layer is thread-safe throughout.
// Counters shard their value across cache-line-aligned per-thread cells
// (writes never contend, `value()` merges on read); timer stats are plain
// atomics; the registry maps are mutex-guarded on (cold) entry creation
// and snapshotting.  Exception: `util::Histogram` entries are NOT
// internally synchronized — they are only ever filled from analysis code
// that runs outside the worker pool.
//
// Value semantics under concurrency: reads are monotonic but unordered
// with respect to concurrent writers; exact totals are guaranteed once the
// writers have quiesced (i.e. after a campaign's parallel_for returned).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stream.hpp"
#include "util/stats.hpp"

namespace sks::obs {

// Master switch for the *expensive* instrumentation (timers, journal
// mirroring in hot paths).  Counters stay live regardless.
bool enabled();
void set_enabled(bool on);

namespace detail {

inline constexpr std::size_t kCounterShards = 16;

// Stable small integer id per thread; two pool workers practically never
// share `id % kCounterShards`, so counter increments stay contention-free.
inline std::size_t counter_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % kCounterShards;
}

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t delta = 1) {
    cells_[detail::counter_shard()].v.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[detail::kCounterShards];
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Accumulated wall-time statistics of one named code region.  Lock-free:
// count/total are relaxed adds, min/max are CAS loops, so a ScopedTimer
// stop costs a handful of uncontended atomic operations.
class TimerStat {
 public:
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_ns() const {
    const std::uint64_t m = min_ns_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0 : m;
  }
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return static_cast<double>(total_ns()) * 1e-9;
  }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
  }
  void reset();

 private:
  static constexpr std::uint64_t kNoMin =
      std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{kNoMin};
  std::atomic<std::uint64_t> max_ns_{0};
};

// Mutex-guarded streaming summary (Welford + min/max + P² p50/p90/p99) for
// registry use: the campaign/Monte-Carlo layers record one sample per
// committed item from inside the OrderedSink callback, so contention is
// nil and the per-item cost is one short critical section.  Every record()
// also bumps the process-wide `obs.stream_updates` counter — the bench
// gate pins that counter to zero for the streaming-disabled hot paths, so
// a stream accumulator leaking into the Newton loop is caught by CI.
class StreamStat {
 public:
  StreamStat() = default;
  StreamStat(const StreamStat&) = delete;
  StreamStat& operator=(const StreamStat&) = delete;

  void record(double x);
  // Consistent copy of the summary (safe under concurrent record()).
  stream::StreamSummary snapshot() const;
  std::size_t count() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  stream::StreamSummary summary_;
};

class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerStat& timer(const std::string& name);
  StreamStat& stream(const std::string& name);
  // First call fixes the binning; later calls with the same name return the
  // existing histogram.  A later call with a *different* lo/hi/bins is a
  // caller bug: it still gets the existing histogram, but the mismatch is
  // counted (`obs.histogram_range_mismatch`) and journaled as a warning
  // instead of passing silently.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  // nullptr when the entry does not exist (no entry is created).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const TimerStat* find_timer(const std::string& name) const;
  const StreamStat* find_stream(const std::string& name) const;

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const TimerStat*>> timers() const;
  std::vector<std::pair<std::string, const util::Histogram*>> histograms()
      const;
  // Stream summaries are returned by value: each copy is taken under its
  // stream's own mutex, so the snapshot is safe while workers record.
  std::vector<std::pair<std::string, stream::StreamSummary>> streams() const;

  // Zero every value.  Entries (and references to them) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
  std::map<std::string, std::unique_ptr<util::Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<StreamStat>> streams_;
};

// Process-wide registry the engine and campaign layers report into.
Registry& registry();

}  // namespace sks::obs
