// Telemetry metrics: counters, gauges, timer statistics and histograms,
// held in a named registry.
//
// Design constraints (this layer sits under the SPICE-class hot loops):
//
//  * `Counter::inc()` is a single integer add — counters are *always* live,
//    so the engine can account NR iterations and LU factorizations without
//    any mode check and the cost stays unmeasurable next to a dense solve;
//  * anything that reads a clock (ScopedTimer, see timer.hpp) or allocates
//    (Journal, see journal.hpp) is gated on the global `enabled()` flag and
//    compiles down to one predictable branch when profiling is off;
//  * registry entries are created on first use and live for the process
//    lifetime at stable addresses, so callers may cache `Counter&`
//    references across runs; `reset()` zeroes values but never invalidates
//    references.
//
// The library is single-threaded by design (one Simulator per campaign
// worker); the registry therefore uses no atomics.  Revisit when a
// multi-threaded campaign driver lands.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace sks::obs {

// Master switch for the *expensive* instrumentation (timers, journal
// mirroring in hot paths).  Counters stay live regardless.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Accumulated wall-time statistics of one named code region.
class TimerStat {
 public:
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_; }
  std::uint64_t total_ns() const { return total_ns_; }
  std::uint64_t min_ns() const { return count_ == 0 ? 0 : min_ns_; }
  std::uint64_t max_ns() const { return max_ns_; }
  double total_seconds() const { return static_cast<double>(total_ns_) * 1e-9; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : total_seconds() / static_cast<double>(count_);
  }
  void reset();

 private:
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerStat& timer(const std::string& name);
  // First call fixes the binning; later calls with the same name return the
  // existing histogram regardless of the requested range.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  // nullptr when the entry does not exist (no entry is created).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const TimerStat* find_timer(const std::string& name) const;

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const TimerStat*>> timers() const;
  std::vector<std::pair<std::string, const util::Histogram*>> histograms()
      const;

  // Zero every value.  Entries (and references to them) survive.
  void reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
  std::map<std::string, std::unique_ptr<util::Histogram>> histograms_;
};

// Process-wide registry the engine and campaign layers report into.
Registry& registry();

}  // namespace sks::obs
