// Bounded-memory online statistics: the streaming layer of sks::obs.
//
// Everything in this header digests an unbounded sample stream into O(1)
// state, so a four-hour soak run (or a per-node waveform over millions of
// transient steps) can keep live summary statistics without retaining the
// samples:
//
//  * OnlineStats        — Welford mean/variance plus streaming min/max;
//  * P2Quantile         — Jain & Chlamtac's P² estimator for one quantile
//                         (five markers, no sample retention);
//  * StreamSummary      — the combination the timeline serializes:
//                         count/mean/stddev/min/max + p50/p90/p99;
//  * RollingWindow      — fixed-bucket ring over a sliding position axis
//                         (wall seconds, committed items) for "recent rate"
//                         style queries;
//  * AllanAccumulator   — windowed (non-overlapping) Allan deviation over
//                         per-cycle skew/interval samples, one partial sum
//                         per octave window size;
//  * WaveformStreams    — per-channel StreamSummary bank an engine tap
//                         feeds once per accepted transient step, so long
//                         transients never retain full traces.
//
// Concurrency: like util::Histogram these classes are NOT internally
// synchronized — one writer at a time.  The registry wraps a StreamSummary
// in a mutex-guarded StreamStat (obs/metrics.hpp) for the campaign layers;
// WaveformStreams belongs to the Simulator run that feeds it, which is
// single-threaded by construction (a Simulator is share-nothing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sks::obs::stream {

// Welford streaming mean/variance with exact min/max.  Mirrors
// util::RunningStats but lives here so the obs layer owns one coherent
// streaming vocabulary (and gains merge()).
class OnlineStats {
 public:
  void add(double x);
  // Pooled combination of two disjoint streams (Chan et al.); used when
  // sharded accumulators are folded into one summary.
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  // sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// P² single-quantile estimator (Jain & Chlamtac, CACM 1985): five markers
// whose heights track q's order statistic via parabolic interpolation.
// Exact for the first five samples, O(1) memory and O(1) per sample after.
// Typical relative error on smooth distributions is well under 1%; the
// test suite pins uniform / lognormal / adversarial-sorted bounds.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  // Current estimate; exact for count() < 5, 0 when empty.
  double value() const;
  std::size_t count() const { return n_; }
  double quantile() const { return q_; }
  void reset();

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5];   // marker heights (ascending)
  double pos_[5];       // marker positions (1-based sample ranks)
  double desired_[5];   // desired positions
  double dn_[5];        // desired-position increments per sample
};

// The summary the timeline and run reports serialize for one metric
// stream: Welford moments, extrema and the three operational quantiles.
class StreamSummary {
 public:
  StreamSummary() : p50_(0.50), p90_(0.90), p99_(0.99) {}

  void add(double x);
  void reset();

  std::size_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double variance() const { return stats_.variance(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double last() const { return last_; }
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }
  double p99() const { return p99_.value(); }

 private:
  OnlineStats stats_;
  P2Quantile p50_, p90_, p99_;
  double last_ = 0.0;
};

// Fixed-bucket rolling window over a monotone position axis (wall-clock
// seconds, committed items, simulation time).  add() drops the value into
// the bucket containing `pos`, zeroing any buckets skipped since the last
// add; sum()/count() then cover the most recent `buckets * bucket_width`
// of the axis.  Positions may repeat or move forward, never backward.
class RollingWindow {
 public:
  RollingWindow(std::size_t buckets, double bucket_width);

  void add(double pos, double value);
  void reset();

  double sum() const;
  std::size_t count() const;
  double mean() const;
  // Width of the axis the live buckets cover (shorter right after reset).
  double span() const;
  // count() / span(): e.g. items per second when pos is wall seconds and
  // each add records one item.  0 until the window has any width.
  double rate() const;
  std::size_t buckets() const { return cells_.size(); }
  double bucket_width() const { return width_; }

 private:
  struct Cell {
    double sum = 0.0;
    std::size_t count = 0;
  };
  void advance_to(std::int64_t bucket);

  double width_;
  std::vector<Cell> cells_;
  std::int64_t cur_ = -1;    // highest bucket index seen (-1 = empty)
  std::int64_t oldest_ = 0;  // lowest live bucket index
};

// Windowed Allan deviation over a stream of per-cycle samples (period
// error, skew estimate, fractional frequency).  For every octave window
// size m = 1, 2, 4, ... the accumulator keeps one partial window sum and
// the previous completed window mean, folding each completed pair into
//
//   AVAR(m) = 1/(2 (M-1)) * sum_i (ybar_{i+1} - ybar_i)^2
//
// over non-overlapping windows — O(log N) state for an N-sample stream.
class AllanAccumulator {
 public:
  explicit AllanAccumulator(std::size_t max_octaves = 20);

  void add(double y);
  void reset();
  std::size_t count() const { return n_; }

  struct Point {
    std::size_t window = 0;  // samples averaged per window (m)
    std::size_t pairs = 0;   // adjacent window pairs folded in (M-1)
    double avar = 0.0;       // Allan variance at this window
    double adev = 0.0;       // sqrt(avar)
  };
  // One point per octave that has at least one complete pair, smallest
  // window first.
  std::vector<Point> points() const;
  // Allan deviation at window m (0 when m is not a tracked octave or has
  // no complete pair yet).
  double adev(std::size_t window) const;

 private:
  struct Octave {
    double sum = 0.0;          // partial sum of the current window
    std::size_t filled = 0;    // samples in the current window
    double prev_mean = 0.0;    // last completed window mean
    bool has_prev = false;
    double diff2 = 0.0;        // sum of squared successive differences
    std::size_t pairs = 0;
  };
  std::size_t n_ = 0;
  std::vector<Octave> octaves_;
};

// Per-channel StreamSummary bank for streaming waveform statistics.  The
// engine's transient loop calls on_step() once per accepted step (see
// TransientOptions::stream_tap); afterwards channel(i) holds the full-run
// voltage statistics of node i+1 (ground excluded) with O(channels)
// memory regardless of run length.
class WaveformStreams {
 public:
  // Optional channel names (node names); sized on first on_step otherwise.
  void configure(std::vector<std::string> names);

  // One accepted step: values[0..n) are the tracked signals.  The first
  // call fixes the channel count; later calls must match it (extra values
  // are ignored, missing ones leave their channels unchanged).
  void on_step(double t, const double* values, std::size_t n);

  std::size_t channels() const { return channels_.size(); }
  const StreamSummary& channel(std::size_t i) const { return channels_[i]; }
  const std::string& name(std::size_t i) const { return names_[i]; }
  std::uint64_t steps() const { return steps_; }
  double t_first() const { return t_first_; }
  double t_last() const { return t_last_; }
  void reset();

 private:
  std::vector<StreamSummary> channels_;
  std::vector<std::string> names_;
  std::uint64_t steps_ = 0;
  double t_first_ = 0.0;
  double t_last_ = 0.0;
};

}  // namespace sks::obs::stream
