// Minimal JSON document model and recursive-descent parser.
//
// Exists so the telemetry reports written by obs::Report can be validated
// and read back (tests, CI smoke checks, future report-diffing tools)
// without an external dependency.  Scope is deliberately small: UTF-8
// pass-through, \uXXXX escapes preserved verbatim rather than decoded,
// numbers parsed as double.  Not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sks::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Throws sks::Error (with byte offset context) on malformed input or
  // trailing garbage.
  static Json parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  // Typed accessors; throw sks::Error on kind mismatch.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const std::vector<Json>& array() const;
  const std::vector<std::pair<std::string, Json>>& object() const;

  // Object lookup: nullptr when absent (or when not an object).
  const Json* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  // Object lookup that throws sks::Error when the key is missing.
  const Json& at(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  friend class JsonParser;
};

// Escape a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& s);

// Format a double as a JSON-legal number (NaN/inf clamp to null-safe 0,
// integers print without exponent noise).
std::string json_number(double v);

}  // namespace sks::obs
