// Span tracing: hierarchical RAII spans and instant events recorded into
// per-thread bounded buffers and exported as Chrome trace-event JSON
// (viewable in Perfetto or chrome://tracing).
//
// This is the "where did the time go" channel of the telemetry layer:
// counters (metrics.hpp) aggregate totals, the journal (journal.hpp) keeps
// the most recent solver history, and the tracer keeps a *timeline* — one
// track per thread (the par::ThreadPool workers name their tracks), every
// solve / fault test / MC sample a span with args (fault label, sample
// index, NR iterations, dt), plus instant markers mirrored from the
// Journal.
//
// Cost model, mirroring ScopedTimer:
//
//  * disabled (the default): a Span constructor is one relaxed atomic load
//    and a branch — no clock read, no allocation — so spans stay in place
//    around solver entry points permanently;
//  * enabled: recording is lock-free on the hot path.  Each thread owns a
//    bounded buffer (registered once under a cold mutex); pushes touch only
//    thread-local state and publish with one release store.  At capacity
//    the newest events are dropped and counted — a bounded session never
//    reallocates while workers record.
//
// Concurrency: snapshots (`buffers()`, `chrome_trace_json()`) read each
// buffer's published prefix through an acquire load, so they are safe at
// any time and see every event published before the snapshot; exact
// completeness is guaranteed once the writers have quiesced (after a
// campaign's parallel_for returned — same contract as the Registry).
// `clear()` requires quiesced writers, like Journal::events().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sks::obs {

// One span/instant argument; `json` holds the value already rendered as a
// JSON token (json_number(...) or a quoted json_escape'd string).
struct TraceArg {
  std::string key;
  std::string json;
};

struct TraceEvent {
  char phase = 'X';          // 'X' complete span, 'i' instant
  std::string name;
  std::uint64_t ts_ns = 0;   // start, ns since the session epoch
  std::uint64_t dur_ns = 0;  // complete spans only
  std::vector<TraceArg> args;
};

// Bounded per-thread event buffer.  Written by its owning thread only;
// readable from any thread (published prefix, see class comment above).
class TraceBuffer {
 public:
  TraceBuffer(std::uint32_t tid, std::string thread_name, std::size_t capacity)
      : tid_(tid), thread_name_(std::move(thread_name)), events_(capacity) {}

  std::uint32_t tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }
  std::size_t capacity() const { return events_.size(); }
  // Published events; pairs with push()'s release store.
  std::size_t size() const { return count_.load(std::memory_order_acquire); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Valid for i < size().
  const TraceEvent& event(std::size_t i) const { return events_[i]; }

  // Owning thread only.  Never reallocates: at capacity the event is
  // dropped and counted.
  void push(TraceEvent event) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = std::move(event);
    count_.store(n + 1, std::memory_order_release);
  }

 private:
  std::uint32_t tid_;
  std::string thread_name_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<TraceEvent> events_;
};

class Tracer {
 public:
  Tracer();

  // Master switch; SKS_TRACE=1 in the environment enables it at startup.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Applies to buffers registered after the call (set before enabling, or
  // call clear() to re-register every thread at the new size).
  void set_buffer_capacity(std::size_t capacity);
  std::size_t buffer_capacity() const;

  // Drop every recorded event and invalidate thread registrations (threads
  // re-register on their next event).  Writers must be quiesced; a
  // straggler keeps writing into its orphaned buffer, which is simply
  // never exported.
  void clear();

  // Nanoseconds since the session epoch (construction or last clear()).
  std::uint64_t now_ns() const;

  // Snapshot of the registered per-thread buffers, in tid order.
  std::vector<std::shared_ptr<const TraceBuffer>> buffers() const;
  std::size_t event_count() const;
  std::uint64_t dropped() const;

  // Chrome trace-event JSON: {"traceEvents": [...]} with process/thread
  // metadata, complete ('X') and instant ('i') events, ts/dur in
  // microseconds.  Safe at any time; complete once writers quiesced.
  std::string chrome_trace_json() const;
  // Write to `path`; throws sks::Error when the file cannot be written.
  void write_chrome_trace(const std::string& path) const;

  // The calling thread's buffer, registering it on first use (or after a
  // clear()).  Hot path: one relaxed load + pointer compare once
  // registered.  Callers gate on enabled().
  TraceBuffer* thread_buffer();

 private:
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::int64_t> epoch_ns_;
  mutable std::mutex mutex_;
  std::size_t capacity_ = 65536;
  std::uint32_t next_tid_ = 1;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
};

// Process-wide tracer the spans record into (mirrors registry()/journal()).
Tracer& tracer();

// Sticky name for the calling thread's trace track ("par.worker-3"); cheap
// and safe with tracing disabled, so the pool workers call it at startup.
void set_trace_thread_name(std::string name);

// Zero-duration marker on the calling thread's track.  Callers gate on
// tracer().enabled() so building the args is also skipped when off.
void trace_instant(const char* name, std::vector<TraceArg> args = {});

// RAII span: records a complete ('X') event covering its scope on the
// calling thread's track.  Args attach lazily and are no-ops when tracing
// is off, so instrumented code needs no mode checks of its own.
class Span {
 public:
  explicit Span(const char* name)
      : buffer_(tracer().enabled() ? tracer().thread_buffer() : nullptr) {
    if (buffer_ != nullptr) {
      name_ = name;
      start_ns_ = tracer().now_ns();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { end(); }

  bool active() const { return buffer_ != nullptr; }

  Span& arg(const char* key, double value);
  Span& arg(const char* key, const std::string& value);
  Span& arg(const char* key, const char* value);

  // Early end (idempotent).
  void end();

 private:
  TraceBuffer* buffer_;
  const char* name_ = "";
  std::uint64_t start_ns_ = 0;
  std::vector<TraceArg> args_;
};

// TRACE_SPAN-style convenience for spans that carry no args.
#define SKS_TRACE_CONCAT2(a, b) a##b
#define SKS_TRACE_CONCAT(a, b) SKS_TRACE_CONCAT2(a, b)
#define SKS_TRACE_SPAN(name) \
  ::sks::obs::Span SKS_TRACE_CONCAT(sks_trace_span_, __LINE__)(name)

}  // namespace sks::obs
