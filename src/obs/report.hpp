// Machine-readable run reports: one Report per run (a bench binary, a
// fault campaign, a Monte-Carlo population) serialized as JSON (full
// fidelity) or CSV (flat metric rows for spreadsheet diffing).
//
// JSON schema (schema_version 1, documented in EXPERIMENTS.md "Run
// telemetry"):
//
//   {
//     "report": "<name>", "schema_version": 1,
//     "meta":     { "<key>": "<string>", ... },
//     "values":   { "<key>": <number>, ... },
//     "counters": { "<name>": <integer>, ... },
//     "gauges":   { "<name>": <number>, ... },
//     "timers":   { "<name>": { "count": n, "total_s": s, "mean_s": s,
//                               "min_s": s, "max_s": s }, ... },
//     "histograms": { "<name>": { "lo": x, "hi": x, "counts": [..] }, ... },
//     "streams":  { "<name>": { "count": n, "mean": x, "stddev": x,
//                               "min": x, "max": x, "p50": x, "p90": x,
//                               "p99": x }, ... },
//     "journal":  { "recorded": n, "dropped": n,
//                   "counts": { "<event_type>": n, ... },
//                   "events": [ { "type": "...", "t": x, "value": x,
//                                 "iterations": n, "detail": "..." }, .. ] },
//     "trace":    { "events": n, "dropped": n },
//     "profile":  { "window_s": s,
//                   "nodes": [ { "path": "a;b;c", "name": "c", "depth": d,
//                                "count": n, "total_s": s, "self_s": s,
//                                "min_s": s, "max_s": s,
//                                "threads": { "<thread>": { "count": n,
//                                             "total_s": s }, ... } }, .. ],
//                   "workers": [ { "thread": "par.worker-0", "spans": n,
//                                  "busy_s": s, "util": u }, ... ] }
//   }
//
// Sections are omitted when empty, so a counters-only report stays small.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace sks::obs {

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Free-form annotations (git rev, bench scale, sample counts, ...).
  void set_meta(const std::string& key, const std::string& value);
  void set_value(const std::string& key, double value);

  // Build/host provenance into `meta`: git SHA + dirty flag, compiler and
  // build type (baked at configure time, see obs/buildinfo.hpp.in),
  // hostname and hardware thread count.  Callers layer run-shape keys
  // (threads, lane width) on top via set_meta.
  void capture_provenance();

  // Snapshot every metric currently in the registry / journal.  `max_events`
  // bounds the embedded journal tail; counts cover the whole (bounded)
  // journal.
  void capture_registry(const Registry& reg = registry());
  void capture_journal(const Journal& j = journal(),
                       std::size_t max_events = 64);
  // Trace-buffer saturation summary (span count + drop counter), so a
  // report shows when `--trace-out` silently lost events.
  void capture_trace(const Tracer& tracer = obs::tracer());
  // Aggregate the tracer's spans into a call-tree profile (profile.hpp)
  // embedded as the `profile` section.  Call after writers quiesced; a
  // no-op section when no spans were recorded.
  void capture_profile(const Tracer& tracer = obs::tracer());
  void set_profile(Profile profile);
  const Profile& profile() const { return profile_; }

  std::string to_json() const;
  std::string to_csv() const;

  // Write to `path`; throws sks::Error when the file cannot be written.
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

 private:
  struct TimerRow {
    std::string name;
    std::uint64_t count = 0;
    double total_s = 0.0, mean_s = 0.0, min_s = 0.0, max_s = 0.0;
  };
  struct HistogramRow {
    std::string name;
    double lo = 0.0, hi = 0.0;
    std::vector<std::uint64_t> counts;
  };
  struct StreamRow {
    std::string name;
    std::size_t count = 0;
    double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<TimerRow> timers_;
  std::vector<HistogramRow> histograms_;
  std::vector<StreamRow> streams_;
  bool have_trace_ = false;
  std::uint64_t trace_events_ = 0;
  std::uint64_t trace_dropped_ = 0;
  bool have_profile_ = false;
  Profile profile_;
  bool have_journal_ = false;
  std::size_t journal_recorded_ = 0;
  std::size_t journal_dropped_ = 0;
  std::vector<std::pair<std::string, std::size_t>> journal_counts_;
  std::vector<Event> journal_tail_;
};

}  // namespace sks::obs
