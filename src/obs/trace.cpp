#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sks::obs {

namespace {

bool initial_trace_enabled() {
  const char* env = std::getenv("SKS_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Cached registration: re-validated against the tracer's generation so a
// clear() forces a fresh buffer without the hot path taking the mutex.
struct LocalRef {
  std::uint64_t generation = 0;
  std::shared_ptr<TraceBuffer> buffer;
};
thread_local LocalRef t_local;
thread_local std::string t_thread_name;

}  // namespace

Tracer::Tracer()
    : enabled_(initial_trace_enabled()), epoch_ns_(steady_now_ns()) {}

void Tracer::set_buffer_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

std::size_t Tracer::buffer_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_release);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() const {
  const std::int64_t delta =
      steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  return delta < 0 ? 0 : static_cast<std::uint64_t>(delta);
}

TraceBuffer* Tracer::thread_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_local.generation != gen || t_local.buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t tid = next_tid_++;
    const std::string name = t_thread_name.empty()
                                 ? "thread-" + std::to_string(tid)
                                 : t_thread_name;
    t_local.buffer = std::make_shared<TraceBuffer>(tid, name, capacity_);
    t_local.generation = gen;
    buffers_.push_back(t_local.buffer);
  }
  return t_local.buffer.get();
}

std::vector<std::shared_ptr<const TraceBuffer>> Tracer::buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {buffers_.begin(), buffers_.end()};
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& b : buffers()) n += b->size();
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t n = 0;
  for (const auto& b : buffers()) n += b->dropped();
  return n;
}

std::string Tracer::chrome_trace_json() const {
  // Chrome trace-event format (JSON object flavour): ts/dur in
  // microseconds, one pid for the whole process, per-thread tids with
  // thread_name metadata so Perfetto labels the worker tracks.
  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"sks\"}}";
  for (const auto& buffer : buffers()) {
    out << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        << "\"tid\": " << buffer->tid() << ", \"args\": {\"name\": \""
        << json_escape(buffer->thread_name()) << "\"}}";
    const std::size_t n = buffer->size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer->event(i);
      out << ",\n{\"name\": \"" << json_escape(e.name) << "\", \"ph\": \""
          << e.phase << "\", \"pid\": 1, \"tid\": " << buffer->tid()
          << ", \"ts\": " << json_number(static_cast<double>(e.ts_ns) / 1e3);
      if (e.phase == 'X') {
        out << ", \"dur\": "
            << json_number(static_cast<double>(e.dur_ns) / 1e3);
      } else if (e.phase == 'i') {
        out << ", \"s\": \"t\"";
      }
      if (!e.args.empty()) {
        out << ", \"args\": {";
        for (std::size_t a = 0; a < e.args.size(); ++a) {
          out << (a == 0 ? "" : ", ") << '"' << json_escape(e.args[a].key)
              << "\": " << e.args[a].json;
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n]\n}\n";
  return out.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  sks::check(out.good(), "Tracer: cannot open '", path, "' for writing");
  out << chrome_trace_json();
  out.flush();
  sks::check(out.good(), "Tracer: write to '", path, "' failed");
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

void set_trace_thread_name(std::string name) {
  t_thread_name = std::move(name);
  // Re-register on the next event so a name set after this thread already
  // recorded still takes effect for new sessions (post-clear()).
  if (t_local.buffer != nullptr && t_local.buffer->size() == 0) {
    t_local.generation = 0;
  }
}

void trace_instant(const char* name, std::vector<TraceArg> args) {
  if (!tracer().enabled()) return;
  TraceEvent event;
  event.phase = 'i';
  event.name = name;
  event.ts_ns = tracer().now_ns();
  event.args = std::move(args);
  tracer().thread_buffer()->push(std::move(event));
}

Span& Span::arg(const char* key, double value) {
  if (buffer_ != nullptr) args_.push_back({key, json_number(value)});
  return *this;
}

Span& Span::arg(const char* key, const std::string& value) {
  if (buffer_ != nullptr) {
    args_.push_back({key, '"' + json_escape(value) + '"'});
  }
  return *this;
}

Span& Span::arg(const char* key, const char* value) {
  return arg(key, std::string(value));
}

void Span::end() {
  if (buffer_ == nullptr) return;
  TraceEvent event;
  event.phase = 'X';
  event.name = name_;
  event.ts_ns = start_ns_;
  const std::uint64_t now = tracer().now_ns();
  event.dur_ns = now > start_ns_ ? now - start_ns_ : 0;
  event.args = std::move(args_);
  buffer_->push(std::move(event));
  buffer_ = nullptr;
}

}  // namespace sks::obs
