// Live metrics exposition: an embedded HTTP/1.0 listener that serves the
// process-wide Registry in Prometheus text exposition format 0.0.4, plus
// liveness/readiness probes, so a long-running bench or (per ROADMAP item
// 1) the future sks-serve daemon can be scraped mid-run instead of only
// inspected post-hoc through BENCH_*.json.
//
// Endpoints:
//
//   GET /metrics  — counters as `counter`, gauges as `gauge`, TimerStat as
//                   `summary` (`_sum`/`_count` only — timers keep no
//                   quantile state by design), StreamStat as `summary`
//                   with P² p50/p90/p99 quantile lines.  Synthesized at
//                   render time (zero hot-path cost): `obs_run_phase`,
//                   `obs_journal_dropped`, `obs_trace_dropped` gauges, and
//                   a leading `# DROPS journal=N trace=N` warning comment
//                   when telemetry has been lost.
//   GET /healthz  — 200 "ok" while the serve thread is alive (liveness).
//   GET /readyz   — 200 "phase=idle" when no solver phase is active, 503
//                   "phase=dc|transient|campaign" while one is (readiness:
//                   a scraper/load-balancer can tell "between runs" from
//                   "deep in a Newton loop").
//
// Cost model, mirroring ScopedTimer/Span: a disabled exposer costs the hot
// path nothing at all — the run-phase bookkeeping is two relaxed atomic
// ops per outermost phase scope (engine entry points, not per iteration),
// and everything else happens on the listener thread.  The
// `obs.expose_scrapes` counter is bumped per /metrics hit and pinned
// REQUIRED_ZERO by the bench gate, proving scrapes never ride the Newton
// hot path.
//
// Threading: one background thread, single-threaded accept loop, blocking
// HTTP/1.0 request/response with Connection: close.  Registry/Journal/
// Tracer snapshots are taken through their concurrency-safe snapshot APIs,
// so scraping during a parallel campaign is safe (values are monotonic but
// unordered relative to in-flight writers — same contract as Registry).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/net.hpp"

namespace sks::obs {

// Coarse run phase for the readiness probe.  Outermost-wins: nested scopes
// (a campaign running transients) keep the phase entered first.
enum class RunPhase { kIdle, kDc, kTransient, kCampaign };

const char* to_string(RunPhase phase);

RunPhase run_phase();

// RAII phase scope for solver entry points (dc_solution, run_transient,
// run_campaign, run_vmin_montecarlo).  Two relaxed atomic RMWs per scope;
// nesting and concurrent scopes are handled with a depth counter — the
// first scope in sets the phase, the last scope out restores kIdle.
class ScopedRunPhase {
 public:
  explicit ScopedRunPhase(RunPhase phase);
  ~ScopedRunPhase();

  ScopedRunPhase(const ScopedRunPhase&) = delete;
  ScopedRunPhase& operator=(const ScopedRunPhase&) = delete;
};

// Render `reg` (plus journal/tracer drop totals and the current run phase)
// as Prometheus text exposition format 0.0.4.  Pure function of its
// snapshot — exposed separately from the listener so tests can pin the
// format without sockets.
std::string render_prometheus(const Registry& reg, const Journal& j,
                              const Tracer& tracer);

// Map a metric name to the Prometheus name charset ([a-zA-Z_:][a-zA-Z0-9_:]*):
// dots and other illegal characters become underscores, a leading digit is
// prefixed.  "solver.lu_refactor" -> "solver_lu_refactor".
std::string prometheus_name(const std::string& name);

class Exposer {
 public:
  Exposer() = default;
  ~Exposer() { stop(); }

  Exposer(const Exposer&) = delete;
  Exposer& operator=(const Exposer&) = delete;

  // Bind 127.0.0.1:`port` (0 = ephemeral) and start the listener thread.
  // Returns the bound port, or 0 on failure — the exposer stays disabled
  // and the error is printed to stderr; a taken port must not kill a
  // bench run.  Calling start() on a running exposer is a no-op returning
  // the current port.
  std::uint16_t start(std::uint16_t port = 0);

  // Stop the listener thread and close the socket (idempotent).
  void stop();

  // One relaxed load — the gate callers may consult freely.
  bool enabled() const { return running_.load(std::memory_order_relaxed); }
  std::uint16_t port() const { return port_; }

 private:
  void serve();
  std::string handle(const std::string& request) const;

  util::net::Socket listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::uint16_t port_ = 0;
};

// Process-wide exposer (mirrors registry()/journal()/tracer()); started by
// bench_common when --expose/SKS_EXPOSE is given.
Exposer& exposer();

}  // namespace sks::obs
