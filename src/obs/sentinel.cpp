#include "obs/sentinel.hpp"

#include <algorithm>
#include <cmath>

namespace sks::obs {

const char* to_string(SentinelVerdict verdict) {
  switch (verdict) {
    case SentinelVerdict::kOk:
      return "ok";
    case SentinelVerdict::kDrift:
      return "drift";
    case SentinelVerdict::kStep:
      return "step";
  }
  return "ok";
}

SentinelFinding sentinel_check(const std::string& metric,
                               const std::vector<double>& series,
                               const SentinelOptions& opt) {
  SentinelFinding f;
  f.metric = metric;
  f.runs = series.size();
  if (!series.empty()) f.value = series.back();
  const std::size_t warmup = std::max<std::size_t>(opt.warmup, 2);
  if (series.size() <= warmup) return f;  // no baseline yet — stay quiet

  // Baseline moments over the warm-up window.
  double mean = 0.0;
  for (std::size_t i = 0; i < warmup; ++i) mean += series[i];
  mean /= static_cast<double>(warmup);
  double var = 0.0;
  for (std::size_t i = 0; i < warmup; ++i) {
    const double d = series[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(warmup - 1);
  double sigma = std::sqrt(var);
  sigma = std::max(sigma, std::max(opt.sigma_floor_rel * std::fabs(mean),
                                   opt.sigma_floor_abs));

  const double lambda = std::clamp(opt.lambda, 1e-6, 1.0);
  const double sigma_z = sigma * std::sqrt(lambda / (2.0 - lambda));

  // EWMA from the end of the warm-up window; z_prev going into the last
  // observation feeds the step rule.
  double z = mean;
  double z_prev = mean;
  for (std::size_t i = warmup; i < series.size(); ++i) {
    z_prev = z;
    z = lambda * series[i] + (1.0 - lambda) * z;
  }

  f.baseline_mean = mean;
  f.baseline_sigma = sigma;
  f.ewma = z;
  f.band_lo = mean - opt.k * sigma_z;
  f.band_hi = mean + opt.k * sigma_z;

  const bool step = std::fabs(series.back() - z_prev) > opt.k * sigma;
  const bool drift = z < f.band_lo || z > f.band_hi;
  if (step) {
    f.verdict = SentinelVerdict::kStep;
  } else if (drift) {
    f.verdict = SentinelVerdict::kDrift;
  }
  return f;
}

}  // namespace sks::obs
