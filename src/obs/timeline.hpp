// Metrics timeline: append-only JSONL snapshots of the live telemetry
// state, written *while* a run is in flight so a multi-hour campaign is
// observable before it finishes (tail the file, or `sks-report tail`).
//
// Each snapshot is one JSON object on one line:
//
//   {"seq": n, "label": "...", "wall_s": x, ["sim_t": x,]
//    ["progress": {"name": "...", "done": n, "total": n, "elapsed_s": x,
//                  "rate_per_s": x, "recent_rate_per_s": x, "eta_s": x,
//                  "partial": {"<key>": x, ...}},]
//    "counters": {...}, "gauges": {...},
//    "timers": {"<name>": {"count": n, "total_s": x}},
//    "streams": {"<name>": {"count": n, "mean": x, "stddev": x, "min": x,
//                           "max": x, "p50": x, "p90": x, "p99": x}},
//    "journal": {"recorded": n, "dropped": n},
//    "trace": {"events": n, "dropped": n}}
//
// `seq` is strictly monotone within a process; the journal/trace blocks
// surface the drop counters of every bounded buffer so silent saturation
// is visible in each snapshot, not only at the end of the run.
//
// Cadence — three independent triggers, all optional:
//   * every N committed items (OrderedSink commit order, so the progress
//     content of item-triggered snapshots is deterministic at any thread
//     count; only the wall-clock rate/ETA fields vary);
//   * a minimum wall-clock interval (tick());
//   * a simulation-time interval (the engine's transient loop calls
//     on_sim_time() per accepted step — meant for one long soak transient,
//     not for swarms of short parallel solves).
//
// Cost model, mirroring ScopedTimer: with the timeline disabled (the
// default) every hook is one relaxed atomic load and a branch — no clock
// read, no lock, no allocation — so the hooks stay in place permanently.
//
// Enabling: SKS_TIMELINE=<path> in the environment (optionally
// SKS_TIMELINE_EVERY=<items>, SKS_TIMELINE_WALL_S=<seconds>,
// SKS_TIMELINE_SIM_S=<seconds>) or MetricsTimeline::configure().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/stream.hpp"

namespace sks::obs {

class Registry;

struct TimelineOptions {
  std::string path;              // JSONL file ("" = disabled)
  std::size_t every_items = 25;  // item-commit cadence (0 = off)
  double wall_interval_s = 0.0;  // min seconds between tick() snapshots
                                 // (0 = every tick)
  double sim_interval_s = 0.0;   // sim-time cadence for on_sim_time()
                                 // (0 = off)
};

// Point-in-time view of one campaign loop's progress, built strictly in
// OrderedSink commit order.
struct ProgressSnapshot {
  std::string name;          // "fault_campaign", "vmin_montecarlo", ...
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_s = 0.0;
  double rate_per_s = 0.0;         // cumulative: done / elapsed
  double recent_rate_per_s = 0.0;  // over the rolling window (last ~8 s)
  double eta_s = 0.0;              // (total - done) / recent rate
  // Partial verdicts so far: e.g. {"detected": 12, "unsimulated": 0}.
  std::vector<std::pair<std::string, double>> partial;
};

// Per-campaign progress aggregator.  Construct before the loop, call
// on_item() from the OrderedSink callback (already serialized, so the
// tracker needs no lock of its own), bump partial tallies as verdicts
// commit.  When the obs layer and the timeline are both disabled,
// on_item() costs two relaxed loads and an increment.
class ProgressTracker {
 public:
  ProgressTracker(std::string name, std::size_t total);
  ~ProgressTracker();

  void add_partial(const std::string& key, double delta = 1.0);

  // One item committed (in order).  Mirrors progress into registry gauges
  // (progress.<name>.done/total/rate_per_s/eta_s) and offers the timeline
  // an item-cadence snapshot.
  void on_item();

  ProgressSnapshot snapshot() const;
  std::size_t done() const { return done_; }

 private:
  bool live() const;  // any consumer (obs or timeline) enabled?
  double elapsed_s() const;

  std::string name_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::int64_t start_ns_;
  // 16 half-second buckets: recent rate over the last ~8 wall seconds.
  stream::RollingWindow recent_{16, 0.5};
  std::vector<std::pair<std::string, double>> partial_;
};

class MetricsTimeline {
 public:
  MetricsTimeline();  // honours the SKS_TIMELINE* environment variables

  // The only hook hot paths may call unconditionally.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // (Re)configure and enable (empty path disables).  Truncates an existing
  // file: one timeline file describes one run.
  void configure(const TimelineOptions& options);
  void disable();
  TimelineOptions options() const;

  // Item-commit trigger: called by ProgressTracker::on_item with the
  // current progress; snapshots when done % every_items == 0 or the loop
  // finished (done == total).
  void on_items(const ProgressSnapshot& progress);

  // Wall-clock trigger: snapshot unless the last snapshot is younger than
  // wall_interval_s.
  void tick(const char* label);

  // Simulation-time trigger from the engine's transient loop.
  void on_sim_time(double t_sim);

  // Unconditional snapshot; returns its seq number (0 when disabled).
  // The caller-supplied progress block is embedded when non-null.
  std::uint64_t snapshot(const std::string& label,
                         const ProgressSnapshot* progress = nullptr);

  std::uint64_t snapshots_written() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t snapshot_locked(const std::string& label,
                                const ProgressSnapshot* progress,
                                double sim_t, bool have_sim_t);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<double> sim_interval_{0.0};
  mutable std::mutex mutex_;
  TimelineOptions options_;
  std::ofstream out_;
  std::int64_t epoch_ns_ = 0;
  double last_wall_s_ = -1.0;
  double next_sim_t_ = 0.0;
};

// Process-wide timeline (mirrors registry()/journal()/tracer()).
MetricsTimeline& timeline();

}  // namespace sks::obs
