#include "obs/mem.hpp"

#include "obs/journal.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sks::obs {

MemStats sample_mem_stats() {
  MemStats m;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    // ru_maxrss is bytes on Darwin, kilobytes elsewhere.
    m.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    m.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#endif
    m.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    m.minor_page_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  }
#endif
  return m;
}

void record_mem_gauges(Registry& reg) {
  const MemStats m = sample_mem_stats();
  reg.gauge("mem.peak_rss_bytes").set(static_cast<double>(m.peak_rss_bytes));
  reg.gauge("mem.major_page_faults")
      .set(static_cast<double>(m.major_page_faults));
  reg.gauge("mem.minor_page_faults")
      .set(static_cast<double>(m.minor_page_faults));

  // Capacity (not fill) of the bounded telemetry buffers: what a bounded
  // session has committed to retaining.
  std::uint64_t trace_bytes = 0;
  for (const auto& buffer : tracer().buffers()) {
    trace_bytes += static_cast<std::uint64_t>(buffer->capacity()) *
                   sizeof(TraceEvent);
  }
  reg.gauge("mem.trace_buffer_bytes").set(static_cast<double>(trace_bytes));
  reg.gauge("mem.journal_buffer_bytes")
      .set(static_cast<double>(journal().capacity() * sizeof(Event)));
}

void record_peak_bytes(Gauge& gauge, double bytes) {
  static Counter& updates = registry().counter("obs.mem_gauge_updates");
  if (bytes > gauge.value()) gauge.set(bytes);
  updates.inc();
}

}  // namespace sks::obs
