#include "obs/metrics.hpp"

#include <cstdlib>
#include <sstream>

#include "obs/journal.hpp"

namespace sks::obs {

namespace {

bool initial_enabled() {
  const char* env = std::getenv("SKS_PROFILE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Atomic: workers consult the flag while a driver thread may flip it.
std::atomic<bool> g_enabled{initial_enabled()};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void TimerStat::record_ns(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void TimerStat::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(kNoMin, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void StreamStat::record(double x) {
  // Resolved outside the stream lock: registry() takes its own mutex on
  // first use, and taking it while holding mutex_ would invert the
  // registry-then-stream order the snapshot path uses.
  static Counter& updates = registry().counter("obs.stream_updates");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    summary_.add(x);
  }
  updates.inc();
}

stream::StreamSummary StreamStat::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

std::size_t StreamStat::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_.count();
}

void StreamStat::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  summary_.reset();
}

namespace {

template <typename Map, typename... Args>
auto& get_or_create(Map& map, const std::string& name, Args&&... args) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name,
                     std::make_unique<typename Map::mapped_type::element_type>(
                         std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(gauges_, name);
}

TimerStat& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(timers_, name);
}

StreamStat& Registry::stream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(streams_, name);
}

util::Histogram& Registry::histogram(const std::string& name, double lo,
                                     double hi, std::size_t bins) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return get_or_create(histograms_, name, lo, hi, bins);
  }
  util::Histogram& existing = *it->second;
  if (existing.lo() != lo || existing.hi() != hi || existing.bins() != bins) {
    // The first call fixed the binning; a conflicting re-request would
    // silently clamp samples into the wrong bins, so make it visible.
    // The counter bump goes through the map directly — our mutex is not
    // recursive, so this->counter() would deadlock here.
    get_or_create(counters_, "obs.histogram_range_mismatch").inc();
    lock.unlock();  // entry addresses are stable; journal() locks its own
    if (journal().enabled()) {
      std::ostringstream msg;
      msg << "histogram '" << name << "' re-requested with range [" << lo
          << ", " << hi << "]/" << bins << " bins; keeping existing ["
          << existing.lo() << ", " << existing.hi() << "]/"
          << existing.bins();
      Event event;
      event.type = EventType::kWarning;
      event.detail = msg.str();
      journal().record(std::move(event));
    }
  }
  return existing;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const TimerStat* Registry::find_timer(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : it->second.get();
}

const StreamStat* Registry::find_stream(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const TimerStat*>> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const TimerStat*>> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) out.emplace_back(name, t.get());
  return out;
}

std::vector<std::pair<std::string, const util::Histogram*>>
Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const util::Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, stream::StreamSummary>> Registry::streams()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, stream::StreamSummary>> out;
  out.reserve(streams_.size());
  for (const auto& [name, s] : streams_) {
    out.emplace_back(name, s->snapshot());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : streams_) s->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace sks::obs
