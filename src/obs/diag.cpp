#include "obs/diag.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace sks::obs {

const char* to_string(DiagLuStatus status) {
  switch (status) {
    case kDiagLuOk: return "ok";
    case kDiagLuSingular: return "singular";
    case kDiagLuNonFinite: return "nonfinite";
    case kDiagLuRepivoted: return "repivoted";
  }
  return "unknown";
}

DiagRing::DiagRing(std::size_t capacity) {
  ring_.resize(std::max<std::size_t>(capacity, 1));
}

void DiagRing::push(const DiagRecord& record) {
  ring_[head_] = record;
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++total_;
}

void DiagRing::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

std::vector<DiagRecord> DiagRing::snapshot() const {
  std::vector<DiagRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

const char* to_string(FailureClass c) {
  switch (c) {
    case FailureClass::kSingularSystem: return "singular_system";
    case FailureClass::kNonFiniteEval: return "nonfinite_eval";
    case FailureClass::kOscillatingNewton: return "oscillating_newton";
    case FailureClass::kTimestepCollapse: return "timestep_collapse";
    case FailureClass::kNoConvergence: return "no_convergence";
  }
  return "unknown";
}

FailureClass parse_failure_class(const std::string& name) {
  for (const FailureClass c :
       {FailureClass::kSingularSystem, FailureClass::kNonFiniteEval,
        FailureClass::kOscillatingNewton, FailureClass::kTimestepCollapse,
        FailureClass::kNoConvergence}) {
    if (name == to_string(c)) return c;
  }
  throw std::runtime_error("unknown failure class: " + name);
}

std::string describe(FailureClass c, const std::string& worst_node) {
  const std::string at =
      worst_node.empty() ? std::string()
                         : " The largest residual sits on node '" +
                               worst_node + "'.";
  switch (c) {
    case FailureClass::kSingularSystem:
      return "The MNA system is singular: a node is floating (no DC path "
             "to ground) or two constraints conflict, e.g. two ideal "
             "sources pinning one node to different voltages." + at;
    case FailureClass::kNonFiniteEval:
      return "A device evaluation or the LU back-solve produced NaN/Inf: "
             "the iterate left the domain where the models are finite "
             "(typically after an undamped overshoot)." + at;
    case FailureClass::kOscillatingNewton:
      return "Newton-Raphson oscillated: the residual bounced between "
             "levels instead of contracting, the signature of an iterate "
             "hopping across a device's operating regions." + at;
    case FailureClass::kTimestepCollapse:
      return "The transient stepper halved dt down to its floor and the "
             "step still failed: the waveform has a feature (or a "
             "modelling artifact) sharper than the minimum timestep." + at;
    case FailureClass::kNoConvergence:
      return "Newton-Raphson ran out of iterations without meeting "
             "tolerances, with no sharper signature (not singular, finite "
             "arithmetic, residual neither contracting nor oscillating)." +
             at;
  }
  return "unknown failure";
}

namespace {

// Oscillation heuristic over the most recent iteration records: the
// residual sequence is non-contracting AND at least half its interior
// points are local extrema (rise/fall direction keeps flipping).
bool residual_oscillates(const std::vector<DiagRecord>& tail) {
  std::vector<double> r;
  r.reserve(tail.size());
  const std::size_t from = tail.size() > 32 ? tail.size() - 32 : 0;
  for (std::size_t i = from; i < tail.size(); ++i) {
    if (std::isfinite(tail[i].residual) && tail[i].residual > 0.0) {
      r.push_back(tail[i].residual);
    }
  }
  if (r.size() < 8) return false;
  if (r.back() < 1e-3 * r.front()) return false;  // still contracting
  std::size_t flips = 0;
  for (std::size_t i = 1; i + 1 < r.size(); ++i) {
    if ((r[i + 1] - r[i]) * (r[i] - r[i - 1]) < 0.0) ++flips;
  }
  return flips * 2 >= r.size() - 2;
}

}  // namespace

FailureClass classify_failure(const FailureEvidence& evidence) {
  if (evidence.lu_nonfinite > 0) return FailureClass::kNonFiniteEval;
  for (const DiagRecord& r : evidence.tail) {
    if (!std::isfinite(r.residual) || !std::isfinite(r.max_dx)) {
      return FailureClass::kNonFiniteEval;
    }
    if (r.lu_status == kDiagLuNonFinite) return FailureClass::kNonFiniteEval;
  }
  if (evidence.lu_singular > 0) return FailureClass::kSingularSystem;
  for (const DiagRecord& r : evidence.tail) {
    if (r.lu_status == kDiagLuSingular) return FailureClass::kSingularSystem;
  }
  if (residual_oscillates(evidence.tail)) {
    return FailureClass::kOscillatingNewton;
  }
  if (evidence.phase == "transient" && evidence.dt_at_floor) {
    return FailureClass::kTimestepCollapse;
  }
  return FailureClass::kNoConvergence;
}

void record_solve_health(double final_residual, double pivot_growth,
                         double cond_est) {
  Registry& reg = registry();
  reg.gauge("lu.pivot_growth").set(pivot_growth);
  reg.gauge("lu.cond_est").set(cond_est);
  if (final_residual > 0.0 && std::isfinite(final_residual)) {
    // util::Histogram is not internally synchronized; campaign workers can
    // finish solves concurrently, so the fill is serialized here (once per
    // solve — never per iteration).
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    reg.histogram("nr.residual", -15.0, 5.0, 40)
        .add(std::log10(final_residual));
  }
}

}  // namespace sks::obs
