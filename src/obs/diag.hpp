// Numerical-health diagnostics: the data model the solver fills when a
// caller wants to know *why* a solve behaved the way it did, not just
// whether it converged.
//
// The engine owns one DiagRing per Simulator and pushes one DiagRecord per
// Newton iteration while diagnostics are enabled (SKS_POSTMORTEM or
// Simulator::set_diagnostics).  The ring is bounded and preallocated, so a
// multi-thousand-iteration transient keeps only the most recent history —
// exactly the part a postmortem needs — at zero steady-state allocation.
// When diagnostics are off the engine never touches this layer: the hot
// loop's only cost is one pointer null-check.
//
// This header is esim-agnostic on purpose (obs must not depend on the
// simulator): records speak in unknown indices and plain numbers; the
// bundle writer in esim/postmortem.hpp resolves names against the Circuit.
//
// Concurrency: DiagRing is NOT thread-safe — it is per-Simulator state,
// and Simulators are share-nothing across campaign workers.  The registry
// mirroring helper serializes its histogram fill internally (see
// record_solve_health), matching the util::Histogram contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sks::obs {

// LU outcome codes stored in DiagRecord::lu_status.  Kept as plain ints in
// the record so iterations.json round-trips without enum plumbing.
enum DiagLuStatus : int {
  kDiagLuOk = 0,
  kDiagLuSingular = 1,
  kDiagLuNonFinite = 2,
  kDiagLuRepivoted = 3,  // sparse refactor hit a degenerate pivot, re-pivoted
};

const char* to_string(DiagLuStatus status);

// One Newton iteration as the solver saw it.
struct DiagRecord {
  double t = 0.0;          // simulation time [s]
  double h = 0.0;          // timestep [s]; <= 0 means a DC solve
  int iteration = 0;       // NR iteration index within its solve
  double residual = 0.0;   // max |F_i| over the MNA rows
  double max_dx = 0.0;     // largest |dx| before damping [V]
  double damping = 1.0;    // applied NR damping factor (1 = full step)
  int worst_unknown = -1;  // unknown index with the largest |F_i|
  int lu_status = kDiagLuOk;
  double pivot_growth = 0.0;  // max |U_kk| / max |A_ij| (pre-factor)
  double cond_est = 0.0;      // max |U_kk| / min |U_kk| from the LU diagonal
};

// Bounded overwrite-oldest ring of DiagRecords.  All storage is allocated
// up front; push() never allocates.
class DiagRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit DiagRing(std::size_t capacity = kDefaultCapacity);

  void push(const DiagRecord& record);
  void clear();

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  // Total records ever pushed (>= size() once the ring wrapped).
  std::uint64_t total_pushed() const { return total_; }
  bool empty() const { return size_ == 0; }

  // Records oldest-first; the last element is the most recent iteration.
  std::vector<DiagRecord> snapshot() const;

 private:
  std::vector<DiagRecord> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

// What killed the solve.  The classifier is shared between the engine
// (stamping the class into the bundle manifest) and `sks-report explain`
// (re-deriving it from a bundle, and checking a repro run reproduces it).
enum class FailureClass {
  kSingularSystem,    // structurally singular / floating node
  kNonFiniteEval,     // NaN/Inf out of a device eval or the back-solve
  kOscillatingNewton, // NR bounced without contracting
  kTimestepCollapse,  // transient dt halved down to the floor
  kNoConvergence,     // generic: ran out of iterations
};

const char* to_string(FailureClass c);
// Inverse of to_string; throws util-style std::runtime_error on unknown.
FailureClass parse_failure_class(const std::string& name);
// One-paragraph human diagnosis, optionally naming the worst node.
std::string describe(FailureClass c, const std::string& worst_node);

// Everything the classifier looks at, as plain data so both the engine
// (from SolveStats + its ring) and sks-report (from a parsed bundle) can
// fill it.
struct FailureEvidence {
  std::string phase;               // "dc", "transient_dc", "transient"
  std::uint64_t lu_singular = 0;
  std::uint64_t lu_nonfinite = 0;
  std::uint64_t dt_halvings = 0;
  bool dt_at_floor = false;        // transient gave up at dt_min
  std::vector<DiagRecord> tail;    // most recent iteration records
};

FailureClass classify_failure(const FailureEvidence& evidence);

// Mirror one finished solve's health into the process registry: gauges
// `lu.pivot_growth` / `lu.cond_est` and histogram `nr.residual`
// (log10 of the final residual, bins over [-15, 5]).  Called once per
// Newton solve when diagnostics are on — never from the per-iteration hot
// path.  The histogram fill is serialized on an internal mutex because
// util::Histogram is not thread-safe and campaign workers solve
// concurrently.
void record_solve_health(double final_residual, double pivot_growth,
                         double cond_est);

}  // namespace sks::obs
