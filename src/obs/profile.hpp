// Performance attribution: aggregate the per-thread span traces
// (trace.hpp) into a call tree keyed by span-name *path*, so a run can
// answer "where did the wall time go" without hand-reading a Perfetto
// timeline.
//
// A ProfileNode is one position in the call tree — e.g. the path
// "scheme.run_vmin_montecarlo;scheme.mc_block;esim.batch_transients" —
// with count, total/self wall time, min/max span duration and a per-thread
// breakdown.  Self time is total minus the summed totals of direct
// children, i.e. the time actually spent at that tree position; it is what
// a flamegraph renders and what `sks-report flame` ranks.  Paths use ';'
// as the separator so `collapsed_stacks()` is already in the collapsed
// flamegraph format (`stack;substack <value>` per line).
//
// The profile also derives per-worker utilization: for each thread track,
// busy time is the summed duration of its *top-level* spans (the pool
// workers name their tracks "par.worker-N"), and utilization is busy time
// over the observed trace window.  This is the Amdahl view of a parallel
// campaign — idle workers show up as util << 1.
//
// Cost model: building a profile walks already-recorded trace buffers
// *after* a run (the same contract as Tracer::buffers() — complete once
// writers quiesced).  Nothing here runs on a hot path; every build bumps
// the `obs.profile_builds` counter so the bench gate can pin it to zero
// for the profiling-off fixed workloads.
//
// Caveats, by construction: the tracer records spans at *end* time into a
// bounded drop-newest buffer, so children are recorded before parents.  If
// a parent span is dropped at capacity its children re-root at depth 0 —
// attribution degrades gracefully instead of failing (the report's trace
// section carries the drop count).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sks::obs {

// One complete span lifted out of a TraceBuffer (or a parsed Chrome
// trace): the minimal information tree reconstruction needs.
struct ProfileSpan {
  std::string thread;       // thread track name ("main", "par.worker-3")
  std::string name;         // span name ("esim.run_transient")
  std::uint64_t ts_ns = 0;  // start, ns since the session epoch
  std::uint64_t dur_ns = 0;
};

// Per-thread slice of one tree node.
struct ThreadSlice {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

// One call-tree position, merged across threads.
struct ProfileNode {
  std::string path;   // ';'-joined span names from root ("a;b;c")
  std::string name;   // last path component
  std::size_t depth = 0;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;  // total minus direct children (saturating)
  std::uint64_t min_ns = 0;   // per-span duration extrema
  std::uint64_t max_ns = 0;
  std::map<std::string, ThreadSlice> threads;
};

// Busy/idle accounting for one thread track.
struct WorkerUtil {
  std::string thread;
  std::uint64_t spans = 0;    // top-level spans on this track
  std::uint64_t busy_ns = 0;  // summed top-level span duration
  double util = 0.0;          // busy_ns / profile window
};

// Attribution: one node's wall-time movement between two profiles, the
// unit `sks-report attribute` ranks.  Deltas are current minus base; a
// node absent on one side contributes zero there.
struct Attribution {
  std::string path;
  double base_total_s = 0.0, cur_total_s = 0.0, delta_total_s = 0.0;
  double base_self_s = 0.0, cur_self_s = 0.0, delta_self_s = 0.0;
  std::uint64_t base_count = 0, cur_count = 0;
};

class Profile {
 public:
  // Nodes in path order (deterministic across runs); workers in thread
  // name order.
  const std::vector<ProfileNode>& nodes() const { return nodes_; }
  const std::vector<WorkerUtil>& workers() const { return workers_; }
  // Observed trace window: global max(ts + dur) - min(ts) over the spans.
  std::uint64_t window_ns() const { return window_ns_; }
  bool empty() const { return nodes_.empty(); }

  // nullptr when no node has this exact path.
  const ProfileNode* find(const std::string& path) const;

  // Collapsed-stack text (flamegraph.pl / speedscope input): one line per
  // node with nonzero self time, "path;sub;subsub <self_us>".
  std::string collapsed_stacks() const;

  // Re-hydration from an already-aggregated source (a report's `profile`
  // JSON section): append rows, then seal().  Used by sks-report so
  // `attribute` works on reports without the original trace.
  void add_node(ProfileNode node) { nodes_.push_back(std::move(node)); }
  void add_worker(WorkerUtil w) { workers_.push_back(std::move(w)); }
  void set_window_ns(std::uint64_t ns) { window_ns_ = ns; }
  // Sort nodes by path / workers by thread (idempotent).
  void seal();

 private:
  std::vector<ProfileNode> nodes_;
  std::vector<WorkerUtil> workers_;
  std::uint64_t window_ns_ = 0;
};

// Build the call tree from raw spans.  Spans are grouped per thread,
// nested by interval containment (a span is the child of the innermost
// span enclosing its start — exact for RAII spans), and merged across
// threads by path.  Bumps `obs.profile_builds`.
Profile build_profile(std::vector<ProfileSpan> spans);

// Lift every complete span out of the process tracer's buffers and build.
// Same completeness contract as Tracer::buffers(): exact once writers
// have quiesced.
Profile profile_from_tracer(const Tracer& tracer = obs::tracer());

// Diff two profiles node-by-node (matched on path), ranked by
// |delta_total_s| descending — the top entries are where the wall time
// moved between the runs.
std::vector<Attribution> attribute_profiles(const Profile& base,
                                            const Profile& current);

}  // namespace sks::obs
