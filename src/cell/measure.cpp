#include "cell/measure.hpp"

#include "esim/engine.hpp"
#include "util/error.hpp"

namespace sks::cell {

std::string to_string(Indication indication) {
  switch (indication) {
    case Indication::kNone:
      return "none";
    case Indication::k01:
      return "01";
    case Indication::k10:
      return "10";
  }
  return "?";
}

SensorMeasurement interpret_sensor(const esim::Trace& y1, const esim::Trace& y2,
                                   const ClockPairStimulus& stimulus,
                                   double vth, bool dual_rail) {
  SensorMeasurement m;
  const double t0 = stimulus.edge_time;
  const double t1 = stimulus.strobe_time();
  m.y1_at_strobe = y1.value_at(t1);
  m.y2_at_strobe = y2.value_at(t1);
  if (!dual_rail) {
    // Rising-edge sensor: a fault-free output completes (or clamps) a
    // falling transition; an erroneous one stays above V_th throughout.
    m.vmin_y1 = y1.min_in(t0, t1);
    m.vmin_y2 = y2.min_in(t0, t1);
    m.y1_high = m.vmin_y1 > vth;
    m.y2_high = m.vmin_y2 > vth;
  } else {
    // Dual sensor: outputs idle low and (incompletely) rise; the error is
    // an output that stays LOW.  Mirror the criterion around the rails:
    // report "high" for the output that failed to move, mirrored so that
    // the indication codes keep the paper's meaning (the LATE phase's
    // output shows the error).
    m.vmin_y1 = y1.max_in(t0, t1);
    m.vmin_y2 = y2.max_in(t0, t1);
    m.y1_high = m.vmin_y1 < vth;
    m.y2_high = m.vmin_y2 < vth;
  }
  if (m.y1_high && !m.y2_high) {
    m.indication = Indication::k10;
  } else if (!m.y1_high && m.y2_high) {
    m.indication = Indication::k01;
  } else {
    m.indication = Indication::kNone;
  }
  return m;
}

SensorMeasurement measure_sensor(const Technology& tech,
                                 const SensorOptions& options,
                                 const ClockPairStimulus& stimulus,
                                 double dt) {
  const SensorBench bench = make_sensor_bench(tech, options, stimulus);
  return measure_bench(bench, tech.interpretation_threshold(), dt);
}

SensorMeasurement measure_bench(const SensorBench& bench, double vth,
                                double dt, esim::SolveStats* stats) {
  const auto result =
      esim::simulate(bench.circuit, sensor_sim_options(bench.stimulus, dt));
  if (stats != nullptr) *stats = result.stats;
  return measure_result(bench, result, vth);
}

SensorMeasurement measure_result(const SensorBench& bench,
                                 const esim::TransientResult& result,
                                 double vth) {
  const auto y1 = esim::Trace::node_voltage(
      result, bench.circuit, bench.cell.qualified("y1"));
  const auto y2 = esim::Trace::node_voltage(
      result, bench.circuit, bench.cell.qualified("y2"));
  return interpret_sensor(y1, y2, bench.stimulus, vth,
                          bench.cell.options.dual_rail);
}

double find_tau_min(const Technology& tech, const SensorOptions& options,
                    ClockPairStimulus stimulus, double lo, double hi,
                    double tolerance, double dt) {
  sks::check(hi > lo, "find_tau_min: empty search interval");
  auto detected = [&](double tau) {
    stimulus.skew = tau;
    return measure_sensor(tech, options, stimulus, dt).error();
  };
  if (detected(lo)) return lo;
  if (!detected(hi)) return hi;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (detected(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace sks::cell
