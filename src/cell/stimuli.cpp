#include "cell/stimuli.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sks::cell {

double ClockPairStimulus::last_edge_end() const {
  // Positive skew delays phi2; negative skew delays phi1 (see
  // drive_clock_pair).  Both shifts must enter the window bound or the
  // observation interval would be asymmetric under a skew sign flip.
  const double e1 = edge_time + std::max(0.0, -skew) + slew1;
  const double e2 = edge_time + std::max(0.0, skew) + slew2;
  return std::max(e1, e2);
}

double ClockPairStimulus::strobe_time() const {
  if (full_clock) {
    // Sample two thirds into the high phase of the first cycle.
    return edge_time + std::max(skew, 0.0) + duty * period * 0.66;
  }
  // The application gives the evaluating logic the half clock period
  // (~5 ns at the paper's timescale) to observe the outputs; slow process
  // corners need most of it to complete the fault-free transition.
  return last_edge_end() + 4e-9;
}

double ClockPairStimulus::suggested_t_end() const {
  return strobe_time() + 1e-9;
}

namespace {

esim::Waveform clock_waveform(const ClockPairStimulus& stim, double start,
                              double slew) {
  const double v0 = stim.falling_edge ? stim.vdd : 0.0;
  const double v1 = stim.falling_edge ? 0.0 : stim.vdd;
  if (!stim.full_clock) {
    return esim::rising_ramp(v0, v1, start, slew);
  }
  esim::PulseSpec p;
  p.v0 = v0;
  p.v1 = v1;
  p.delay = start;
  p.rise = slew;
  p.fall = slew;
  p.width = std::max(0.0, stim.duty * stim.period - slew);
  p.period = stim.period;
  sks::check(p.period > p.rise + p.width + p.fall,
             "ClockPairStimulus: duty/slew do not fit in the period");
  return esim::Waveform::pulse(p);
}

}  // namespace

ClockDrive drive_clock_pair(esim::Circuit& circuit, esim::NodeId phi1,
                            esim::NodeId phi2, const ClockPairStimulus& stim,
                            const std::string& prefix) {
  sks::check(stim.slew1 > 0.0 && stim.slew2 > 0.0,
             "drive_clock_pair: slews must be positive");
  ClockDrive d;
  d.raw1 = circuit.node(prefix + "phi1_raw");
  d.raw2 = circuit.node(prefix + "phi2_raw");
  // Positive skew delays phi2; negative skew delays phi1.
  const double start1 = stim.edge_time + std::max(0.0, -stim.skew);
  const double start2 = stim.edge_time + std::max(0.0, stim.skew);
  d.source1 = circuit.add_vsource(prefix + "Vphi1", d.raw1, circuit.ground(),
                                  clock_waveform(stim, start1, stim.slew1));
  d.source2 = circuit.add_vsource(prefix + "Vphi2", d.raw2, circuit.ground(),
                                  clock_waveform(stim, start2, stim.slew2));
  circuit.add_resistor(prefix + "Rdrv1", d.raw1, phi1,
                       stim.driver_resistance);
  circuit.add_resistor(prefix + "Rdrv2", d.raw2, phi2,
                       stim.driver_resistance);
  return d;
}

esim::VsrcId add_supply(esim::Circuit& circuit, esim::NodeId vdd, double value,
                        const std::string& prefix) {
  return circuit.add_vsource(prefix + "Vdd", vdd, circuit.ground(),
                             esim::Waveform::dc(value));
}

SensorBench make_sensor_bench(const Technology& tech,
                              const SensorOptions& options,
                              const ClockPairStimulus& stimulus) {
  SensorBench bench;
  bench.stimulus = stimulus;
  bench.cell = build_skew_sensor(bench.circuit, tech, options);
  bench.supply =
      add_supply(bench.circuit, bench.cell.vdd, stimulus.vdd, options.prefix);
  bench.drive = drive_clock_pair(bench.circuit, bench.cell.phi1,
                                 bench.cell.phi2, stimulus, options.prefix);
  // Clock wiring load on the monitored nodes (gates of a/d plus wiring).
  const double cin = tech.gate_cap(3.0 * tech.wp) + 10e-15;
  bench.circuit.add_capacitor(options.prefix + "cphi1", bench.cell.phi1,
                              bench.circuit.ground(), cin);
  bench.circuit.add_capacitor(options.prefix + "cphi2", bench.cell.phi2,
                              bench.circuit.ground(), cin);
  return bench;
}

esim::TransientOptions sensor_sim_options(const ClockPairStimulus& stimulus,
                                          double dt, double t_end) {
  esim::TransientOptions options;
  options.t_end = t_end > 0.0 ? t_end : stimulus.suggested_t_end();
  options.dt = dt;
  return options;
}

}  // namespace sks::cell
