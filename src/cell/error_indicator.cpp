#include "cell/error_indicator.hpp"

#include <tuple>

namespace sks::cell {

ErrorIndicatorCell build_error_indicator(esim::Circuit& circuit,
                                         const Technology& tech,
                                         esim::NodeId y1, esim::NodeId y2,
                                         esim::NodeId vdd,
                                         const ErrorIndicatorOptions& options) {
  ErrorIndicatorCell cell;
  const std::string& p = options.prefix;
  cell.prefix = p;
  cell.y1 = y1;
  cell.y2 = y2;
  cell.enable = circuit.node(p + "en");
  cell.resetb = circuit.node(p + "resetb");
  cell.err = circuit.node(p + "err");
  cell.errb = circuit.node(p + "errb");
  const esim::NodeId gnd = circuit.ground();
  const double m = options.drive;

  // Interpreting buffers (the paper's "gate with logic threshold equal to
  // VDD/2 ... used to interpret the sensing circuit response"): the basic
  // sensor's fault-free outputs clamp near 1.4-1.8 V, which would leak
  // through a bare NMOS gate; two inverters restore them to a clean rail
  // before the dynamic stack.
  const esim::NodeId yb1 = circuit.node(p + "yb1");
  const esim::NodeId yi1 = circuit.node(p + "yi1");
  const esim::NodeId yb2 = circuit.node(p + "yb2");
  const esim::NodeId yi2 = circuit.node(p + "yi2");
  for (const auto& [in, mid_n, out, tag] :
       {std::tuple{y1, yb1, yi1, "1"}, std::tuple{y2, yb2, yi2, "2"}}) {
    circuit.add_mosfet(p + "mbufa" + tag + ".mp", tech.pmos(m), in, mid_n,
                       vdd);
    circuit.add_mosfet(p + "mbufa" + tag + ".mn", tech.nmos(m), in, mid_n,
                       gnd);
    circuit.add_mosfet(p + "mbufb" + tag + ".mp", tech.pmos(m), mid_n, out,
                       vdd);
    circuit.add_mosfet(p + "mbufb" + tag + ".mn", tech.nmos(m), mid_n, out,
                       gnd);
    circuit.add_capacitor(p + "cbuf" + tag + "a", mid_n, gnd,
                          tech.junction_cap(m * (tech.wn + tech.wp)) +
                              tech.gate_cap(m * (tech.wn + tech.wp)));
    circuit.add_capacitor(p + "cbuf" + tag + "b", out, gnd,
                          tech.junction_cap(m * (tech.wn + tech.wp)) +
                              tech.gate_cap(m * 2.0 * tech.wn));
  }

  // Precharge.
  circuit.add_mosfet(p + "mpre", tech.pmos(m), cell.resetb, cell.errb, vdd);
  // Two discharge stacks sharing the strobe transistor's node.
  const esim::NodeId mid = circuit.node(p + "mid");
  circuit.add_mosfet(p + "md1", tech.nmos(2.0 * m), yi1, cell.errb, mid);
  circuit.add_mosfet(p + "md2", tech.nmos(2.0 * m), yi2, cell.errb, mid);
  circuit.add_mosfet(p + "men", tech.nmos(2.0 * m), cell.enable, mid, gnd);
  // Output inverter.
  circuit.add_mosfet(p + "minv.mp", tech.pmos(m), cell.errb, cell.err, vdd);
  circuit.add_mosfet(p + "minv.mn", tech.nmos(m), cell.errb, cell.err, gnd);
  // Weak keeper: holds errb high while err is low.
  circuit.add_mosfet(p + "mkeep", tech.pmos(options.keeper_drive), cell.err,
                     cell.errb, vdd);

  // Parasitics.
  circuit.add_capacitor(p + "cerrb", cell.errb, gnd,
                        tech.junction_cap(m * (2.0 * tech.wn + 2.0 * tech.wp)) +
                            tech.gate_cap(m * (tech.wn + tech.wp)));
  circuit.add_capacitor(p + "cerr", cell.err, gnd,
                        tech.junction_cap(m * (tech.wn + tech.wp)) +
                            tech.gate_cap(options.keeper_drive * tech.wp) +
                            20e-15);
  circuit.add_capacitor(p + "cmid", mid, gnd,
                        tech.junction_cap(m * 4.0 * tech.wn));
  return cell;
}

}  // namespace sks::cell
