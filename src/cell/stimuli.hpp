// Clock stimuli for sensor testbenches.
//
// The paper characterizes the sensing circuit with pairs of rising edges of
// controlled slew and skew ("the clock slew, i.e. the rise time of phi1 and
// phi2, ranging from 0.1ns to 0.4ns"), and operates it with full periodic
// clocks in the application.  Both stimuli are provided here.
//
// Each monitored clock is driven through a small series resistance
// (the driver's output impedance / the balanced connection the paper asks
// for).  Besides realism, this lets node stuck-at fault injection fight the
// driver the way a physical short would.
#pragma once

#include "cell/skew_sensor.hpp"
#include "cell/technology.hpp"
#include "esim/engine.hpp"
#include "esim/netlist.hpp"

namespace sks::cell {

struct ClockPairStimulus {
  double vdd = 5.0;
  double edge_time = 1e-9;   // start of phi1's monitored edge [s]
  double skew = 0.0;         // phi2 edge start minus phi1 edge start [s]
  double slew1 = 0.2e-9;     // full-swing rise (or fall) time of phi1 [s]
  double slew2 = 0.2e-9;     // full-swing rise (or fall) time of phi2 [s]
  bool full_clock = false;   // periodic clock instead of a single edge
  double period = 10e-9;     // clock period when full_clock [s]
  double duty = 0.5;         // high fraction when full_clock
  bool falling_edge = false; // drive the dual (falling-edge) event:
                             // clocks idle high and fall at edge_time
  double driver_resistance = 100.0;  // series drive impedance [ohm]

  // End of the later monitored edge.
  double last_edge_end() const;
  // A good observation instant: well after both edges, before any
  // subsequent clock event.
  double strobe_time() const;
  // A good simulation end time for single-edge stimuli.
  double suggested_t_end() const;
};

struct ClockDrive {
  esim::VsrcId source1, source2;
  esim::NodeId raw1, raw2;  // pre-driver nodes (the ideal generator side)
};

// Drive the given pair of clock nodes with the stimulus.  Creates two
// sources named `<prefix>Vphi1` / `<prefix>Vphi2` and two series driver
// resistors.
ClockDrive drive_clock_pair(esim::Circuit& circuit, esim::NodeId phi1,
                            esim::NodeId phi2, const ClockPairStimulus& stim,
                            const std::string& prefix = "");

// DC supply named `<prefix>Vdd`.
esim::VsrcId add_supply(esim::Circuit& circuit, esim::NodeId vdd, double value,
                        const std::string& prefix = "");

// A complete single-sensor testbench: supply + sensor + driven clock pair.
struct SensorBench {
  esim::Circuit circuit;
  SensorCell cell;
  ClockPairStimulus stimulus;
  ClockDrive drive;
  esim::VsrcId supply;
};

SensorBench make_sensor_bench(const Technology& tech,
                              const SensorOptions& options,
                              const ClockPairStimulus& stimulus);

// Transient options tuned for the sensor benches: simulate until
// `stimulus.suggested_t_end()` (or `t_end` when positive) at the given
// base timestep.
esim::TransientOptions sensor_sim_options(const ClockPairStimulus& stimulus,
                                          double dt = 2e-12,
                                          double t_end = -1.0);

}  // namespace sks::cell
