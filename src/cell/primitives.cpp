#include "cell/primitives.hpp"

namespace sks::cell {

namespace {

// Lump the junction capacitance a device terminal contributes to its node.
// Merging per-node would be an optimization; separate small caps keep the
// netlist transparent and the simulator handles them identically.
void add_junction(esim::Circuit& circuit, const Technology& tech,
                  const std::string& name, esim::NodeId node, double width) {
  if (node.index == 0) return;  // ground needs no cap
  circuit.add_capacitor(name, node, circuit.ground(), tech.junction_cap(width));
}

}  // namespace

InverterHandles add_inverter(esim::Circuit& circuit, const Technology& tech,
                             const std::string& prefix, esim::NodeId input,
                             esim::NodeId output, esim::NodeId vdd,
                             double strength) {
  InverterHandles h;
  h.input = input;
  h.output = output;
  h.pull_up = circuit.add_mosfet(prefix + ".mp", tech.pmos(strength), input,
                                 output, vdd);
  h.pull_down = circuit.add_mosfet(prefix + ".mn", tech.nmos(strength), input,
                                   output, circuit.ground());
  add_junction(circuit, tech, prefix + ".cj", output,
               strength * (tech.wn + tech.wp));
  return h;
}

Nand2Handles add_nand2(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId output, esim::NodeId vdd,
                       double strength) {
  Nand2Handles h;
  h.a = a;
  h.b = b;
  h.output = output;
  const esim::NodeId mid = circuit.node(prefix + ".mid");
  h.pu_a = circuit.add_mosfet(prefix + ".mpa", tech.pmos(strength), a, output,
                              vdd);
  h.pu_b = circuit.add_mosfet(prefix + ".mpb", tech.pmos(strength), b, output,
                              vdd);
  // Series NMOS sized 2x to keep the pull-down strength comparable.
  h.pd_a = circuit.add_mosfet(prefix + ".mna", tech.nmos(2.0 * strength), a,
                              output, mid);
  h.pd_b = circuit.add_mosfet(prefix + ".mnb", tech.nmos(2.0 * strength), b,
                              mid, circuit.ground());
  add_junction(circuit, tech, prefix + ".cj", output,
               strength * (2.0 * tech.wp + 2.0 * tech.wn));
  add_junction(circuit, tech, prefix + ".cjm", mid, strength * 2.0 * tech.wn);
  return h;
}

Nor2Handles add_nor2(esim::Circuit& circuit, const Technology& tech,
                     const std::string& prefix, esim::NodeId a, esim::NodeId b,
                     esim::NodeId output, esim::NodeId vdd, double strength) {
  Nor2Handles h;
  h.a = a;
  h.b = b;
  h.output = output;
  const esim::NodeId mid = circuit.node(prefix + ".mid");
  // Series PMOS sized 2x.
  h.pu_a = circuit.add_mosfet(prefix + ".mpa", tech.pmos(2.0 * strength), a,
                              mid, vdd);
  h.pu_b = circuit.add_mosfet(prefix + ".mpb", tech.pmos(2.0 * strength), b,
                              output, mid);
  h.pd_a = circuit.add_mosfet(prefix + ".mna", tech.nmos(strength), a, output,
                              circuit.ground());
  h.pd_b = circuit.add_mosfet(prefix + ".mnb", tech.nmos(strength), b, output,
                              circuit.ground());
  add_junction(circuit, tech, prefix + ".cj", output,
               strength * (2.0 * tech.wp + 2.0 * tech.wn));
  add_junction(circuit, tech, prefix + ".cjm", mid, strength * 2.0 * tech.wp);
  return h;
}

Aoi22Handles add_aoi22(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId c, esim::NodeId d,
                       esim::NodeId output, esim::NodeId vdd,
                       double strength) {
  Aoi22Handles h;
  h.a = a;
  h.b = b;
  h.c = c;
  h.d = d;
  h.output = output;
  const esim::NodeId gnd = circuit.ground();
  // Pull-down: (a-b) || (c-d), series devices 2x.
  const esim::NodeId nab = circuit.node(prefix + ".nab");
  const esim::NodeId ncd = circuit.node(prefix + ".ncd");
  circuit.add_mosfet(prefix + ".mna", tech.nmos(2.0 * strength), a, output,
                     nab);
  circuit.add_mosfet(prefix + ".mnb", tech.nmos(2.0 * strength), b, nab, gnd);
  circuit.add_mosfet(prefix + ".mnc", tech.nmos(2.0 * strength), c, output,
                     ncd);
  circuit.add_mosfet(prefix + ".mnd", tech.nmos(2.0 * strength), d, ncd, gnd);
  // Pull-up: (a || b) series (c || d), series devices 2x.
  const esim::NodeId mid = circuit.node(prefix + ".pmid");
  circuit.add_mosfet(prefix + ".mpa", tech.pmos(2.0 * strength), a, mid, vdd);
  circuit.add_mosfet(prefix + ".mpb", tech.pmos(2.0 * strength), b, mid, vdd);
  circuit.add_mosfet(prefix + ".mpc", tech.pmos(2.0 * strength), c, output,
                     mid);
  circuit.add_mosfet(prefix + ".mpd", tech.pmos(2.0 * strength), d, output,
                     mid);
  add_junction(circuit, tech, prefix + ".cj", output,
               strength * 2.0 * (tech.wn + tech.wp));
  add_junction(circuit, tech, prefix + ".cjm", mid,
               strength * 4.0 * tech.wp);
  add_junction(circuit, tech, prefix + ".cjab", nab,
               strength * 2.0 * tech.wn);
  add_junction(circuit, tech, prefix + ".cjcd", ncd,
               strength * 2.0 * tech.wn);
  return h;
}

TgateHandles add_tgate(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId enable,
                       esim::NodeId enable_b, double strength) {
  TgateHandles h;
  h.a = a;
  h.b = b;
  h.enable = enable;
  h.enable_b = enable_b;
  h.nmos = circuit.add_mosfet(prefix + ".mn", tech.nmos(strength), enable, a, b);
  h.pmos = circuit.add_mosfet(prefix + ".mp", tech.pmos(strength), enable_b, a,
                              b);
  add_junction(circuit, tech, prefix + ".cja", a,
               strength * (tech.wn + tech.wp) * 0.5);
  add_junction(circuit, tech, prefix + ".cjb", b,
               strength * (tech.wn + tech.wp) * 0.5);
  return h;
}

}  // namespace sks::cell
