// Measurements on the sensing circuit: the quantities the paper's
// evaluation is built from.
//
//  * V_min of each output over the observation window (Figs. 4, 5);
//  * the logic interpretation against the threshold V_th = 2.75 V
//    ("y2 is interpreted as a high logic value, thus providing an error
//    indication" when V_min > V_th);
//  * the error indication code (01 / 10 / none);
//  * tau_min — the sensitivity of the circuit, i.e. the smallest skew that
//    produces an error indication (the vertical lines of Fig. 4), located
//    by bisection on the electrical simulation.
#pragma once

#include <string>

#include "cell/stimuli.hpp"
#include "esim/trace.hpp"

namespace sks::cell {

enum class Indication { kNone, k01, k10 };

std::string to_string(Indication indication);

struct SensorMeasurement {
  double vmin_y1 = 0.0;   // min V(y1) in the observation window [V]
  double vmin_y2 = 0.0;
  double y1_at_strobe = 0.0;
  double y2_at_strobe = 0.0;
  bool y1_high = false;   // V_min-based interpretation vs V_th
  bool y2_high = false;
  Indication indication = Indication::kNone;

  bool error() const { return indication != Indication::kNone; }
};

// Interpret two already-simulated output traces.  The observation window is
// [stimulus.edge_time, stimulus.strobe_time()]; for the dual (falling-edge)
// sensor "high" means V_max-based interpretation mirrored around the rails.
SensorMeasurement interpret_sensor(const esim::Trace& y1, const esim::Trace& y2,
                                   const ClockPairStimulus& stimulus,
                                   double vth, bool dual_rail = false);

// Build the bench, run the transient, interpret.  `dt` is the simulation
// base timestep.
SensorMeasurement measure_sensor(const Technology& tech,
                                 const SensorOptions& options,
                                 const ClockPairStimulus& stimulus,
                                 double dt = 2e-12);

// Same, but on an externally prepared bench (after fault injection or
// Monte-Carlo variation of bench.circuit).  `stats` (optional) receives the
// solver telemetry of the underlying transient run — parallel Monte-Carlo
// workers aggregate per-sample stats this way instead of diffing the global
// esim.* counters, which interleave across threads.
SensorMeasurement measure_bench(const SensorBench& bench, double vth,
                                double dt = 2e-12,
                                esim::SolveStats* stats = nullptr);

// Interpret an already-computed transient of bench.circuit (the verdict
// half of measure_bench).  The batched Monte-Carlo path runs K benches
// through esim::BatchSimulator and feeds each lane's result here, so the
// scalar and batched sweeps share one interpretation routine.
SensorMeasurement measure_result(const SensorBench& bench,
                                 const esim::TransientResult& result,
                                 double vth);

// The sensitivity tau_min: smallest skew (within [lo, hi]) detected by the
// sensor, found by bisection to `tolerance`.  Returns `hi` when even the
// largest skew is not detected (degenerate circuit), `lo` when the smallest
// already is.
double find_tau_min(const Technology& tech, const SensorOptions& options,
                    ClockPairStimulus stimulus, double lo = 0.0,
                    double hi = 1.0e-9, double tolerance = 1e-12,
                    double dt = 2e-12);

}  // namespace sks::cell
