// Transistor-level two-rail checker cell (Carter & Schneider [6]; the
// checker the paper's on-line mode feeds: "their response ... could feed a
// checker (in the case of on-line applications)").
//
// Classical realization: for input pairs (a0, a1) and (b0, b1),
//
//   out0 = a0 b0 + a1 b1   = INV(AOI22(a0, b0, a1, b1))
//   out1 = a0 b1 + a1 b0   = INV(AOI22(a0, b1, a1, b0))
//
// Valid (complementary) inputs produce a valid output pair; any invalid
// input pair — and any single internal fault of this gate structure — drives
// the output to an invalid code.  A tree of these cells reduces N pairs to
// one (scheme::two_rail_reduce is the behavioural twin, cross-validated in
// the tests).
#pragma once

#include <string>

#include "cell/technology.hpp"
#include "esim/netlist.hpp"

namespace sks::cell {

struct TwoRailCheckerCell {
  esim::NodeId a0, a1, b0, b1;  // input pairs
  esim::NodeId out0, out1;      // output pair
  std::string prefix;
};

TwoRailCheckerCell build_two_rail_checker(esim::Circuit& circuit,
                                          const Technology& tech,
                                          esim::NodeId a0, esim::NodeId a1,
                                          esim::NodeId b0, esim::NodeId b1,
                                          esim::NodeId vdd,
                                          const std::string& prefix = "trc/",
                                          double strength = 1.0);

}  // namespace sks::cell
