#include "cell/two_rail_checker.hpp"

#include "cell/primitives.hpp"

namespace sks::cell {

TwoRailCheckerCell build_two_rail_checker(esim::Circuit& circuit,
                                          const Technology& tech,
                                          esim::NodeId a0, esim::NodeId a1,
                                          esim::NodeId b0, esim::NodeId b1,
                                          esim::NodeId vdd,
                                          const std::string& prefix,
                                          double strength) {
  TwoRailCheckerCell cell;
  cell.prefix = prefix;
  cell.a0 = a0;
  cell.a1 = a1;
  cell.b0 = b0;
  cell.b1 = b1;
  cell.out0 = circuit.node(prefix + "out0");
  cell.out1 = circuit.node(prefix + "out1");

  const esim::NodeId n0 = circuit.node(prefix + "n0");
  const esim::NodeId n1 = circuit.node(prefix + "n1");
  // out0 = a0 b0 + a1 b1.
  add_aoi22(circuit, tech, prefix + "aoi0", a0, b0, a1, b1, n0, vdd, strength);
  add_inverter(circuit, tech, prefix + "inv0", n0, cell.out0, vdd, strength);
  // out1 = a0 b1 + a1 b0.
  add_aoi22(circuit, tech, prefix + "aoi1", a0, b1, a1, b0, n1, vdd, strength);
  add_inverter(circuit, tech, prefix + "inv1", n1, cell.out1, vdd, strength);
  return cell;
}

}  // namespace sks::cell
