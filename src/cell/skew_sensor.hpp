// The paper's skew sensing circuit (Fig. 1), reconstructed from the prose of
// Section 2 (see DESIGN.md §1 for the sentence-by-sentence justification).
//
// Two symmetric blocks in a feedback loop:
//
//   Block A (out y1)                Block B (out y2)
//     PMOS a : VDD->n1, gate phi1     PMOS f : VDD->n3, gate phi2
//     PMOS b : n1 ->y1, gate phi2     PMOS h : n3 ->y2, gate phi1
//     PMOS c : n1 ->y1, gate y2       PMOS g : n3 ->y2, gate y1
//     NMOS d : y1 ->n2, gate phi1     NMOS i : y2 ->n4, gate phi2
//     NMOS e : n2 ->GND, gate y2      NMOS l : n4 ->GND, gate y1
//
// (c and g are the symmetric feedback pull-ups — the pair Section 3 reports
// as the only stuck-open escapes.)
//
// With no skew both outputs discharge together and clamp near the n-channel
// conduction threshold (the cross-coupled series NMOS e/l shut off).  With a
// skew larger than the block delay, the early block's output reaches a low
// value, which blocks the late block's pull-down (l or e) and re-drives its
// output high through the feedback PMOS (h or c) -> (y1,y2) = 01 or 10.
//
// Variants:
//  * kBasic       — the ten-transistor circuit above.
//  * kFullSwing   — adds, per block, the paper's optional feedback inverter
//                   driving a weak pull-down NMOS so the outputs reach 0 V.
//  * kNoSeriesEnable — ABLATION, not in the paper: omits the series clock
//                   PMOS a/f and gates b/g with the block's own clock.  This
//                   is the "obvious" cross-coupled structure; it suffers
//                   pull-up/pull-down contention during skew and is used by
//                   bench/ablation_sensitivity to show why a/f are needed.
//
// A dual circuit for falling-edge-triggered flip-flops ("otherwise a dual
// circuit should be used") is produced by `dual_rail = true`: all device
// polarities and rails are mirrored and the sensor watches falling edges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cell/technology.hpp"
#include "esim/netlist.hpp"

namespace sks::cell {

enum class SensorVariant { kBasic, kFullSwing, kNoSeriesEnable };

struct SensorOptions {
  SensorVariant variant = SensorVariant::kBasic;
  bool dual_rail = false;      // falling-edge dual of the circuit
  double load_y1 = 80e-15;     // external load on y1 [F] (paper's C_L)
  double load_y2 = 80e-15;     // external load on y2 [F]
  double drive = 1.0;          // width multiplier on every device
  double weak_keeper_drive = 0.15;  // full-swing variant restorer strength
  std::string prefix;          // name prefix, e.g. "s0/" for instance s0

  // By default the builder creates nodes `<prefix>phi1`, `<prefix>phi2`
  // and `<prefix>vdd`.  Integrators (e.g. a sensor attached to two wires of
  // a clock tree already present in the netlist) can override them here.
  std::optional<esim::NodeId> phi1_node;
  std::optional<esim::NodeId> phi2_node;
  std::optional<esim::NodeId> vdd_node;
};

// Canonical transistor roles, in the paper's lettering.  (The paper prints
// the tenth device as "l"; we keep that name.)
inline constexpr const char* kSensorDeviceNames[10] = {
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "l"};

struct SensorCell {
  esim::NodeId phi1, phi2;    // monitored clock inputs
  esim::NodeId y1, y2;        // outputs / error indication
  esim::NodeId n1, n2, n3, n4;  // internal nodes
  esim::NodeId vdd;
  std::vector<esim::MosfetId> devices;  // indexed like kSensorDeviceNames
  SensorOptions options;

  esim::MosfetId device(const std::string& paper_name) const;
  // False for devices omitted by the variant (a/f under kNoSeriesEnable).
  bool has_device(const std::string& paper_name) const;
  std::string qualified(const std::string& local) const {
    return options.prefix + local;
  }
};

// Instantiate the sensing circuit into `circuit`.  The clock inputs and the
// supply node are created (or reused) under the given prefix: "phi1",
// "phi2", "y1", "y2", "n1".."n4", "vdd".  The caller drives phi1/phi2 and
// the supply (see stimuli.hpp / make_sensor_bench).
SensorCell build_skew_sensor(esim::Circuit& circuit, const Technology& tech,
                             const SensorOptions& options);

}  // namespace sks::cell
