#include "cell/skew_sensor.hpp"

#include "util/error.hpp"

namespace sks::cell {

bool SensorCell::has_device(const std::string& paper_name) const {
  for (std::size_t k = 0; k < devices.size(); ++k) {
    if (paper_name == kSensorDeviceNames[k]) {
      return devices[k].index != static_cast<std::size_t>(-1);
    }
  }
  return false;
}

esim::MosfetId SensorCell::device(const std::string& paper_name) const {
  for (std::size_t k = 0; k < devices.size(); ++k) {
    if (paper_name == kSensorDeviceNames[k]) {
      sks::check(devices[k].index != static_cast<std::size_t>(-1),
                 "SensorCell::device: '" + paper_name +
                     "' is not present in this variant");
      return devices[k];
    }
  }
  throw Error("SensorCell::device: unknown device '" + paper_name + "'");
}

namespace {

constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

std::size_t device_slot(const char* paper_name) {
  for (std::size_t k = 0; k < 10; ++k) {
    if (std::string(paper_name) == kSensorDeviceNames[k]) return k;
  }
  throw Error("internal: bad sensor device name");
}

}  // namespace

SensorCell build_skew_sensor(esim::Circuit& circuit, const Technology& tech,
                             const SensorOptions& options) {
  sks::check(options.drive > 0.0, "build_skew_sensor: drive must be positive");
  SensorCell cell;
  cell.options = options;
  const std::string& p = options.prefix;

  cell.phi1 = options.phi1_node.value_or(circuit.node(p + "phi1"));
  cell.phi2 = options.phi2_node.value_or(circuit.node(p + "phi2"));
  cell.vdd = options.vdd_node.value_or(circuit.node(p + "vdd"));
  cell.y1 = circuit.node(p + "y1");
  cell.y2 = circuit.node(p + "y2");
  cell.n1 = circuit.node(p + "n1");
  cell.n2 = circuit.node(p + "n2");
  cell.n3 = circuit.node(p + "n3");
  cell.n4 = circuit.node(p + "n4");
  const esim::NodeId gnd = circuit.ground();

  // In the dual (falling-edge) circuit every device flips polarity and the
  // rails swap: `hi` is the rail the pull-"up" network reaches.
  const bool dual = options.dual_rail;
  const esim::NodeId hi = dual ? gnd : cell.vdd;
  const esim::NodeId lo = dual ? cell.vdd : gnd;
  auto up_params = [&](double mult) {
    return dual ? tech.nmos(mult) : tech.pmos(mult);
  };
  auto dn_params = [&](double mult) {
    return dual ? tech.pmos(mult) : tech.nmos(mult);
  };
  const double up_w = dual ? tech.wn : tech.wp;
  const double dn_w = dual ? tech.wp : tech.wn;

  cell.devices.assign(10, esim::MosfetId{kAbsent});
  auto place = [&](const char* name, const esim::MosParams& params,
                   esim::NodeId gate, esim::NodeId drain, esim::NodeId source) {
    cell.devices[device_slot(name)] =
        circuit.add_mosfet(p + name, params, gate, drain, source);
  };

  const double m = options.drive;
  if (options.variant == SensorVariant::kNoSeriesEnable) {
    // Ablation: drop the series clock devices a/f; parallel pair connects
    // the rail straight to the output and is gated by the block's own clock
    // plus the feedback.  Suffers contention during skew (see DESIGN.md §5).
    place("b", up_params(m), cell.phi1, cell.y1, hi);
    place("c", up_params(m), cell.y2, cell.y1, hi);
    place("h", up_params(m), cell.phi2, cell.y2, hi);
    place("g", up_params(m), cell.y1, cell.y2, hi);
  } else {
    // Block A pull-up: a (clock enable) in series with b || c.
    place("a", up_params(2.0 * m), cell.phi1, cell.n1, hi);
    place("b", up_params(m), cell.phi2, cell.y1, cell.n1);
    place("c", up_params(m), cell.y2, cell.y1, cell.n1);
    // Block B pull-up: f in series with g || h.  (g is the feedback device,
    // mirroring c: the paper reports {c, g} as the symmetric stuck-open
    // escape pair.)
    place("f", up_params(2.0 * m), cell.phi2, cell.n3, hi);
    place("g", up_params(m), cell.y1, cell.y2, cell.n3);
    place("h", up_params(m), cell.phi1, cell.y2, cell.n3);
  }
  // Pull-downs (both variants): series pair, own clock on top, feedback
  // from the opposite output at the bottom.  Sized 2x for series strength.
  place("d", dn_params(2.0 * m), cell.phi1, cell.y1, cell.n2);
  place("e", dn_params(2.0 * m), cell.y2, cell.n2, lo);
  place("i", dn_params(2.0 * m), cell.phi2, cell.y2, cell.n4);
  place("l", dn_params(2.0 * m), cell.y1, cell.n4, lo);

  // Parasitics.  Outputs carry the junction caps of the devices that touch
  // them plus the gate loads of the feedback devices they drive (c/e on y2,
  // h/l on y1).  Internal nodes carry their junction caps.
  const double cj_y = tech.junction_cap(m * (2.0 * up_w + 2.0 * dn_w));
  const double cg_fb = tech.gate_cap(m * up_w) + tech.gate_cap(m * 2.0 * dn_w);
  circuit.add_capacitor(p + "cpar_y1", cell.y1, gnd, cj_y + cg_fb);
  circuit.add_capacitor(p + "cpar_y2", cell.y2, gnd, cj_y + cg_fb);
  if (options.variant != SensorVariant::kNoSeriesEnable) {
    circuit.add_capacitor(p + "cpar_n1", cell.n1, gnd,
                          tech.junction_cap(m * 4.0 * up_w));
    circuit.add_capacitor(p + "cpar_n3", cell.n3, gnd,
                          tech.junction_cap(m * 4.0 * up_w));
  } else {
    // Keep n1/n3 from floating in the ablation variant (they are unused).
    circuit.add_resistor(p + "rtie_n1", cell.n1, hi, 1.0);
    circuit.add_resistor(p + "rtie_n3", cell.n3, hi, 1.0);
  }
  circuit.add_capacitor(p + "cpar_n2", cell.n2, gnd,
                        tech.junction_cap(m * 4.0 * dn_w));
  circuit.add_capacitor(p + "cpar_n4", cell.n4, gnd,
                        tech.junction_cap(m * 4.0 * dn_w));

  // External loads (the paper's C_L, representing the wiring to the
  // evaluating logic).
  if (options.load_y1 > 0.0) {
    circuit.add_capacitor(p + "cload_y1", cell.y1, gnd, options.load_y1);
  }
  if (options.load_y2 > 0.0) {
    circuit.add_capacitor(p + "cload_y2", cell.y2, gnd, options.load_y2);
  }

  // Full-swing option: per block, a feedback inverter driving a weak
  // restoring device that completes the output transition toward `lo`.
  if (options.variant == SensorVariant::kFullSwing) {
    const esim::NodeId w1 = circuit.node(p + "w1");
    const esim::NodeId w2 = circuit.node(p + "w2");
    // Feedback inverters y -> w (built inline; they always run between the
    // true rails, only the weak restorer mirrors with dual_rail).
    circuit.add_mosfet(p + "kinv1.mp", tech.pmos(0.5), cell.y1, w1, cell.vdd);
    circuit.add_mosfet(p + "kinv1.mn", tech.nmos(0.5), cell.y1, w1, gnd);
    circuit.add_mosfet(p + "kinv2.mp", tech.pmos(0.5), cell.y2, w2, cell.vdd);
    circuit.add_mosfet(p + "kinv2.mn", tech.nmos(0.5), cell.y2, w2, gnd);
    const double cw = tech.junction_cap(0.5 * (tech.wn + tech.wp)) +
                      tech.gate_cap(options.weak_keeper_drive *
                                    (dual ? tech.wp : tech.wn));
    circuit.add_capacitor(p + "cpar_w1", w1, gnd, cw);
    circuit.add_capacitor(p + "cpar_w2", w2, gnd, cw);
    if (!dual) {
      // Weak NMOS pull-down: gate w (= NOT y), drain y, source GND —
      // completes the incomplete falling transition.
      circuit.add_mosfet(p + "krest1", tech.nmos(options.weak_keeper_drive),
                         w1, cell.y1, gnd);
      circuit.add_mosfet(p + "krest2", tech.nmos(options.weak_keeper_drive),
                         w2, cell.y2, gnd);
    } else {
      // Dual circuit: outputs must reach VDD; weak PMOS pull-up.
      circuit.add_mosfet(p + "krest1", tech.pmos(options.weak_keeper_drive),
                         w1, cell.y1, cell.vdd);
      circuit.add_mosfet(p + "krest2", tech.pmos(options.weak_keeper_drive),
                         w2, cell.y2, cell.vdd);
    }
  }

  return cell;
}

}  // namespace sks::cell
