// Transistor-level error indicator (after ref. [9]: Metra, Favalli, Ricco,
// "Compact and Highly Testable Error Indicator for Self-Checking Circuits").
//
// The indicator latches the sensor's error indication so that it can be read
// out long after the offending clock cycle — through a scan path off-line,
// or by a checker on-line (Sec. 2: "simple error indicators capable of
// latching on error indications can be used").
//
// Structure (dynamic, precharged):
//
//   errb --- PMOS(gate=resetb) --- VDD            (precharge, resetb low)
//   errb --- NMOS(gate=y1) --- NMOS(gate=en) --- GND
//   errb --- NMOS(gate=y2) --- NMOS(gate=en) --- GND
//   err  = INV(errb)  (plus a weak PMOS keeper on errb gated by err)
//
// `en` is the evaluation strobe: asserted while both monitored clocks are
// high, i.e. when a fault-free sensor holds both outputs low(ish) and an
// erroneous one holds exactly one output high.  Any output still high during
// the strobe discharges errb and err latches high until the next reset.
//
// With the BASIC sensor the fault-free outputs clamp near V_tn, which is at
// the conduction boundary of the discharge NMOS; under parameter variation a
// slow leak can false-trigger the indicator.  This is precisely why the
// paper offers the full-swing variant — bench/ablation_sensitivity
// quantifies the effect.
#pragma once

#include <string>

#include "cell/technology.hpp"
#include "esim/netlist.hpp"

namespace sks::cell {

struct ErrorIndicatorCell {
  esim::NodeId y1, y2;     // monitored sensor outputs
  esim::NodeId enable;     // evaluation strobe
  esim::NodeId resetb;     // active-low precharge
  esim::NodeId err;        // latched error flag (active high)
  esim::NodeId errb;       // internal dynamic node
  std::string prefix;
};

struct ErrorIndicatorOptions {
  double drive = 1.0;
  double keeper_drive = 0.1;  // weak keeper holding errb high when no error
  std::string prefix = "ei/";
};

ErrorIndicatorCell build_error_indicator(esim::Circuit& circuit,
                                         const Technology& tech,
                                         esim::NodeId y1, esim::NodeId y2,
                                         esim::NodeId vdd,
                                         const ErrorIndicatorOptions& options);

}  // namespace sks::cell
