// Transistor-level standard-cell builders (inverter, NAND2, NOR2,
// transmission gate).  Used by the full-swing sensor variant, the error
// indicator, the testability experiments and the unit tests.
//
// Every builder instantiates devices and junction capacitances into an
// existing Circuit, naming everything under `prefix` so several cells can
// coexist in one netlist (e.g. "s0/inv1.mp").
#pragma once

#include <string>

#include "cell/technology.hpp"
#include "esim/netlist.hpp"

namespace sks::cell {

struct InverterHandles {
  esim::NodeId input, output;
  esim::MosfetId pull_up, pull_down;
};

// Build an inverter between `input` and a new (or existing) node named
// `prefix + ".out"` unless `output` is provided.  `strength` scales both
// device widths.
InverterHandles add_inverter(esim::Circuit& circuit, const Technology& tech,
                             const std::string& prefix, esim::NodeId input,
                             esim::NodeId output, esim::NodeId vdd,
                             double strength = 1.0);

struct Nand2Handles {
  esim::NodeId a, b, output;
  esim::MosfetId pu_a, pu_b, pd_a, pd_b;
};

Nand2Handles add_nand2(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId output, esim::NodeId vdd,
                       double strength = 1.0);

struct Nor2Handles {
  esim::NodeId a, b, output;
  esim::MosfetId pu_a, pu_b, pd_a, pd_b;
};

Nor2Handles add_nor2(esim::Circuit& circuit, const Technology& tech,
                     const std::string& prefix, esim::NodeId a, esim::NodeId b,
                     esim::NodeId output, esim::NodeId vdd,
                     double strength = 1.0);

struct Aoi22Handles {
  esim::NodeId a, b, c, d, output;  // output = NOT(a*b + c*d)
};

// AND-OR-INVERT (2-2): the workhorse of the classical two-rail checker
// realization.  Pull-down: (a series b) parallel (c series d); pull-up:
// (a parallel b) series (c parallel d).
Aoi22Handles add_aoi22(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId c, esim::NodeId d,
                       esim::NodeId output, esim::NodeId vdd,
                       double strength = 1.0);

struct TgateHandles {
  esim::NodeId a, b, enable, enable_b;
  esim::MosfetId nmos, pmos;
};

TgateHandles add_tgate(esim::Circuit& circuit, const Technology& tech,
                       const std::string& prefix, esim::NodeId a,
                       esim::NodeId b, esim::NodeId enable,
                       esim::NodeId enable_b, double strength = 1.0);

}  // namespace sks::cell
