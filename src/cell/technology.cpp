#include "cell/technology.hpp"

namespace sks::cell {

esim::MosParams Technology::nmos(double width_multiplier) const {
  esim::MosParams p;
  p.type = esim::MosType::kNmos;
  p.w = wn * width_multiplier;
  p.l = lmin;
  p.kprime = kn;
  p.vt = vtn;
  p.lambda = lambda;
  p.full_on_vgs = vdd;
  return p;
}

esim::MosParams Technology::pmos(double width_multiplier) const {
  esim::MosParams p;
  p.type = esim::MosType::kPmos;
  p.w = wp * width_multiplier;
  p.l = lmin;
  p.kprime = kp;
  p.vt = vtp;
  p.lambda = lambda;
  p.full_on_vgs = vdd;
  return p;
}

Technology Technology::at_supply(double new_vdd) const {
  Technology scaled = *this;
  scaled.vdd = new_vdd;
  return scaled;
}

void apply_random_variation(esim::Circuit& circuit, const VariationSpec& spec,
                            util::Prng& prng) {
  // Global (process) factors: one draw per parameter class and polarity.
  const double kn_f = spec.vary_strength ? prng.vary(1.0, spec.rel) : 1.0;
  const double kp_f = spec.vary_strength ? prng.vary(1.0, spec.rel) : 1.0;
  const double vtn_f = spec.vary_threshold ? prng.vary(1.0, spec.rel) : 1.0;
  const double vtp_f = spec.vary_threshold ? prng.vary(1.0, spec.rel) : 1.0;

  for (auto& m : circuit.mosfets()) {
    const bool is_n = m.params.type == esim::MosType::kNmos;
    m.params.kprime *= is_n ? kn_f : kp_f;
    m.params.vt *= is_n ? vtn_f : vtp_f;
    if (spec.per_device_mismatch) {
      m.params.kprime = prng.vary(m.params.kprime, spec.mismatch_rel);
      m.params.vt = prng.vary(m.params.vt, spec.mismatch_rel);
      m.params.w = prng.vary(m.params.w, spec.mismatch_rel);
    }
  }
  if (spec.vary_caps) {
    for (auto& c : circuit.capacitors()) {
      c.capacitance = prng.vary(c.capacitance, spec.rel);
    }
  }
}

}  // namespace sks::cell
