// Technology parameter set for a 1.2 um CMOS flavour.
//
// The paper evaluates "a 1.2um implementation of the sensing circuit" but
// does not publish its device models.  We substitute textbook mid-90s
// level-1 parameters (see DESIGN.md §4); everything downstream reads the
// values from this one struct so the whole reproduction can be re-run on a
// different parameter set by changing a single object.
#pragma once

#include "esim/mosfet_model.hpp"
#include "esim/netlist.hpp"
#include "util/prng.hpp"

namespace sks::cell {

struct Technology {
  double vdd = 5.0;         // supply [V]
  double vtn = 0.8;         // NMOS threshold [V]
  double vtp = 0.9;         // PMOS threshold magnitude [V]
  double kn = 60e-6;        // NMOS process transconductance [A/V^2]
  double kp = 20e-6;        // PMOS process transconductance [A/V^2]
  double lambda = 0.02;     // channel-length modulation [1/V]
  double lmin = 1.2e-6;     // minimum channel length [m]
  // Default device widths.  Chosen (see DESIGN.md §4) so that the sensor's
  // sensitivity tau_min lands in the paper's 0.09-0.16 ns band over the
  // 80-240 fF load sweep: the sensing cell is built from near-minimum
  // devices, consistent with the paper's emphasis on compactness.
  double wn = 1.2e-6;       // default NMOS width [m]
  double wp = 2.4e-6;       // default PMOS width [m]
  // Lumped junction + local-wiring capacitance contributed to a node per
  // metre of connected transistor width [F/m].  2 fF/um is a reasonable
  // 1.2um-era figure and only sets the scale of *internal* node caps; the
  // experiments sweep the external load explicitly.
  double cj_per_width = 2.0e-9;
  // Gate oxide capacitance per area [F/m^2] (~1.5 fF/um^2 for a 1.2um
  // process).  Loads every node that drives a gate.
  double cox = 1.5e-3;

  // Logic threshold used to interpret the sensing-circuit response.  The
  // paper assumes an interpreting gate with logic threshold VDD/2 and takes
  // a 10% worst-case variation, i.e. V_th = 1.1 * VDD / 2 = 2.75 V.
  double interpretation_threshold() const { return 1.1 * vdd / 2.0; }

  // Build level-1 model parameter blocks for devices of this technology.
  esim::MosParams nmos(double width_multiplier = 1.0) const;
  esim::MosParams pmos(double width_multiplier = 1.0) const;

  // The same process operated at a different supply (the 5 V -> 3.3 V
  // question of the paper's era): thresholds and transconductances are
  // process constants and stay; the interpretation threshold and the
  // stuck-on overdrive follow the new rail.
  Technology at_supply(double new_vdd) const;

  // Junction capacitance contributed by a device terminal of width w.
  double junction_cap(double width) const { return cj_per_width * width; }

  // Gate capacitance of a device of the given width (at channel length
  // lmin, which every cell in this library uses).
  double gate_cap(double width) const { return cox * width * lmin; }
};

// Monte-Carlo variation recipe (paper Sec. 2): "a uniform distribution
// (with 0.15 as relative variation from the nominal value) of the circuit
// parameter and of C_L", with the input slews and the loads independent "to
// account for asymmetric conditions".
//
// The default models *process* variation: one factor per parameter class
// (k'n, k'p, Vtn, Vtp) applied to every device — the two symmetric blocks
// stay matched, as on one die.  Capacitors vary independently (the loads
// are explicitly independent in the paper).  Set `per_device_mismatch` to
// additionally give every transistor its own (smaller) random mismatch —
// a harsher, modern-style analysis the paper did not run.
struct VariationSpec {
  double rel = 0.15;        // relative half-width of the uniform variation
  bool vary_strength = true;   // k'
  bool vary_threshold = true;  // Vt
  bool vary_caps = true;       // all capacitors (incl. the external load)
  bool per_device_mismatch = false;
  double mismatch_rel = 0.03;  // per-device half-width when enabled
};

// Apply a random variation per the spec, in place.
void apply_random_variation(esim::Circuit& circuit, const VariationSpec& spec,
                            util::Prng& prng);

}  // namespace sks::cell
