file(REMOVE_RECURSE
  "CMakeFiles/masking_study.dir/masking_study.cpp.o"
  "CMakeFiles/masking_study.dir/masking_study.cpp.o.d"
  "masking_study"
  "masking_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masking_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
