# Empty dependencies file for masking_study.
# This may be replaced when dependencies are built.
