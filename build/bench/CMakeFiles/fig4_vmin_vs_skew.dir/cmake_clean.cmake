file(REMOVE_RECURSE
  "CMakeFiles/fig4_vmin_vs_skew.dir/fig4_vmin_vs_skew.cpp.o"
  "CMakeFiles/fig4_vmin_vs_skew.dir/fig4_vmin_vs_skew.cpp.o.d"
  "fig4_vmin_vs_skew"
  "fig4_vmin_vs_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vmin_vs_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
