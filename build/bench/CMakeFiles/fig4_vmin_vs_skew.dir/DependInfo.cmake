
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_vmin_vs_skew.cpp" "bench/CMakeFiles/fig4_vmin_vs_skew.dir/fig4_vmin_vs_skew.cpp.o" "gcc" "bench/CMakeFiles/fig4_vmin_vs_skew.dir/fig4_vmin_vs_skew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheme/CMakeFiles/sks_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sks_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sks_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/sks_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
