# Empty dependencies file for fig4_vmin_vs_skew.
# This may be replaced when dependencies are built.
