file(REMOVE_RECURSE
  "CMakeFiles/fig3_waveforms.dir/fig3_waveforms.cpp.o"
  "CMakeFiles/fig3_waveforms.dir/fig3_waveforms.cpp.o.d"
  "fig3_waveforms"
  "fig3_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
