# Empty compiler generated dependencies file for fig3_waveforms.
# This may be replaced when dependencies are built.
