# Empty dependencies file for fig2_waveforms.
# This may be replaced when dependencies are built.
