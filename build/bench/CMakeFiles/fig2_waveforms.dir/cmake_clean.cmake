file(REMOVE_RECURSE
  "CMakeFiles/fig2_waveforms.dir/fig2_waveforms.cpp.o"
  "CMakeFiles/fig2_waveforms.dir/fig2_waveforms.cpp.o.d"
  "fig2_waveforms"
  "fig2_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
