# Empty dependencies file for fig6_scheme_coverage.
# This may be replaced when dependencies are built.
