file(REMOVE_RECURSE
  "CMakeFiles/fig6_scheme_coverage.dir/fig6_scheme_coverage.cpp.o"
  "CMakeFiles/fig6_scheme_coverage.dir/fig6_scheme_coverage.cpp.o.d"
  "fig6_scheme_coverage"
  "fig6_scheme_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scheme_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
