file(REMOVE_RECURSE
  "CMakeFiles/sec3_testability.dir/sec3_testability.cpp.o"
  "CMakeFiles/sec3_testability.dir/sec3_testability.cpp.o.d"
  "sec3_testability"
  "sec3_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
