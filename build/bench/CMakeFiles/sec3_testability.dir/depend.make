# Empty dependencies file for sec3_testability.
# This may be replaced when dependencies are built.
