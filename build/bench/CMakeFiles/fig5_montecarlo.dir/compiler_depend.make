# Empty compiler generated dependencies file for fig5_montecarlo.
# This may be replaced when dependencies are built.
