file(REMOVE_RECURSE
  "CMakeFiles/fig5_montecarlo.dir/fig5_montecarlo.cpp.o"
  "CMakeFiles/fig5_montecarlo.dir/fig5_montecarlo.cpp.o.d"
  "fig5_montecarlo"
  "fig5_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
