# Empty compiler generated dependencies file for tab1_probabilities.
# This may be replaced when dependencies are built.
