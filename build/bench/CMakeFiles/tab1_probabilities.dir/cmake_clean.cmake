file(REMOVE_RECURSE
  "CMakeFiles/tab1_probabilities.dir/tab1_probabilities.cpp.o"
  "CMakeFiles/tab1_probabilities.dir/tab1_probabilities.cpp.o.d"
  "tab1_probabilities"
  "tab1_probabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_probabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
