file(REMOVE_RECURSE
  "CMakeFiles/clock_tree_monitoring.dir/clock_tree_monitoring.cpp.o"
  "CMakeFiles/clock_tree_monitoring.dir/clock_tree_monitoring.cpp.o.d"
  "clock_tree_monitoring"
  "clock_tree_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_tree_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
