# Empty compiler generated dependencies file for clock_tree_monitoring.
# This may be replaced when dependencies are built.
