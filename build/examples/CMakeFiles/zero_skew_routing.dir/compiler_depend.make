# Empty compiler generated dependencies file for zero_skew_routing.
# This may be replaced when dependencies are built.
