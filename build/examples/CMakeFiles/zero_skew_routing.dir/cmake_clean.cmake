file(REMOVE_RECURSE
  "CMakeFiles/zero_skew_routing.dir/zero_skew_routing.cpp.o"
  "CMakeFiles/zero_skew_routing.dir/zero_skew_routing.cpp.o.d"
  "zero_skew_routing"
  "zero_skew_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_skew_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
