# Empty dependencies file for masking_demo.
# This may be replaced when dependencies are built.
