file(REMOVE_RECURSE
  "CMakeFiles/masking_demo.dir/masking_demo.cpp.o"
  "CMakeFiles/masking_demo.dir/masking_demo.cpp.o.d"
  "masking_demo"
  "masking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
