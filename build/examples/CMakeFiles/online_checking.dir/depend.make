# Empty dependencies file for online_checking.
# This may be replaced when dependencies are built.
