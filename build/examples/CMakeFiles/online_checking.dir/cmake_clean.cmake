file(REMOVE_RECURSE
  "CMakeFiles/online_checking.dir/online_checking.cpp.o"
  "CMakeFiles/online_checking.dir/online_checking.cpp.o.d"
  "online_checking"
  "online_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
