# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_esim[1]_include.cmake")
include("/root/repo/build/tests/test_cell[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_clocktree[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_scheme[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
