# Empty compiler generated dependencies file for test_esim.
# This may be replaced when dependencies are built.
