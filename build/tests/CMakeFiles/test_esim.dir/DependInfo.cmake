
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/esim/test_adaptive.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_adaptive.cpp.o.d"
  "/root/repo/tests/esim/test_engine.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_engine.cpp.o.d"
  "/root/repo/tests/esim/test_matrix.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_matrix.cpp.o.d"
  "/root/repo/tests/esim/test_mosfet.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_mosfet.cpp.o.d"
  "/root/repo/tests/esim/test_netlist.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_netlist.cpp.o.d"
  "/root/repo/tests/esim/test_spice_io.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_spice_io.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_spice_io.cpp.o.d"
  "/root/repo/tests/esim/test_sweep.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_sweep.cpp.o.d"
  "/root/repo/tests/esim/test_trace.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_trace.cpp.o.d"
  "/root/repo/tests/esim/test_waveform.cpp" "tests/CMakeFiles/test_esim.dir/esim/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_esim.dir/esim/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheme/CMakeFiles/sks_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sks_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sks_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/sks_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
