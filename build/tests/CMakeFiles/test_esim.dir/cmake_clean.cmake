file(REMOVE_RECURSE
  "CMakeFiles/test_esim.dir/esim/test_adaptive.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_adaptive.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_engine.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_engine.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_matrix.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_matrix.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_mosfet.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_mosfet.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_netlist.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_netlist.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_spice_io.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_spice_io.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_sweep.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_sweep.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_trace.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_trace.cpp.o.d"
  "CMakeFiles/test_esim.dir/esim/test_waveform.cpp.o"
  "CMakeFiles/test_esim.dir/esim/test_waveform.cpp.o.d"
  "test_esim"
  "test_esim.pdb"
  "test_esim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
