file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/fault/test_campaign.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_campaign.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_detect.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_detect.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_fault.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_fault.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_ifa.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_ifa.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_inject.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_inject.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_plan_opt.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_plan_opt.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/test_universe.cpp.o"
  "CMakeFiles/test_fault.dir/fault/test_universe.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
  "test_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
