
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clocktree/test_buffering.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_buffering.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_buffering.cpp.o.d"
  "/root/repo/tests/clocktree/test_crosstalk.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_crosstalk.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_crosstalk.cpp.o.d"
  "/root/repo/tests/clocktree/test_defects.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_defects.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_defects.cpp.o.d"
  "/root/repo/tests/clocktree/test_dme.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_dme.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_dme.cpp.o.d"
  "/root/repo/tests/clocktree/test_geometry.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_geometry.cpp.o.d"
  "/root/repo/tests/clocktree/test_htree.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_htree.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_htree.cpp.o.d"
  "/root/repo/tests/clocktree/test_rctree.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_rctree.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_rctree.cpp.o.d"
  "/root/repo/tests/clocktree/test_skew_analysis.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_skew_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_skew_analysis.cpp.o.d"
  "/root/repo/tests/clocktree/test_topology.cpp" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_clocktree.dir/clocktree/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheme/CMakeFiles/sks_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sks_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sks_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/sks_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
