file(REMOVE_RECURSE
  "CMakeFiles/test_clocktree.dir/clocktree/test_buffering.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_buffering.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_crosstalk.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_crosstalk.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_defects.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_defects.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_dme.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_dme.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_geometry.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_geometry.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_htree.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_htree.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_rctree.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_rctree.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_skew_analysis.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_skew_analysis.cpp.o.d"
  "CMakeFiles/test_clocktree.dir/clocktree/test_topology.cpp.o"
  "CMakeFiles/test_clocktree.dir/clocktree/test_topology.cpp.o.d"
  "test_clocktree"
  "test_clocktree.pdb"
  "test_clocktree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
