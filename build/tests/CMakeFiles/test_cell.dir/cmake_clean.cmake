file(REMOVE_RECURSE
  "CMakeFiles/test_cell.dir/cell/test_error_indicator.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_error_indicator.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_measure.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_measure.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_primitives.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_primitives.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_skew_sensor.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_skew_sensor.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_technology.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_technology.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_two_rail_checker.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_two_rail_checker.cpp.o.d"
  "test_cell"
  "test_cell.pdb"
  "test_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
