file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/logic/test_masking.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_masking.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_netlist_logic.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_netlist_logic.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_scan.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_scan.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_simulator.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_simulator.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_stuck_at.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_stuck_at.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_timing.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_timing.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/test_value.cpp.o"
  "CMakeFiles/test_logic.dir/logic/test_value.cpp.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
