
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scheme/test_behavioral_sensor.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_behavioral_sensor.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_behavioral_sensor.cpp.o.d"
  "/root/repo/tests/scheme/test_coverage_placement.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_coverage_placement.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_coverage_placement.cpp.o.d"
  "/root/repo/tests/scheme/test_indicator.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_indicator.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_indicator.cpp.o.d"
  "/root/repo/tests/scheme/test_montecarlo.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_montecarlo.cpp.o.d"
  "/root/repo/tests/scheme/test_placement.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_placement.cpp.o.d"
  "/root/repo/tests/scheme/test_scheme.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_scheme.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheme/CMakeFiles/sks_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sks_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sks_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/sks_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
