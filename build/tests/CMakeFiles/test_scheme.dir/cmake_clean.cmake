file(REMOVE_RECURSE
  "CMakeFiles/test_scheme.dir/scheme/test_behavioral_sensor.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_behavioral_sensor.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_coverage_placement.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_coverage_placement.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_indicator.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_indicator.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_montecarlo.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_montecarlo.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_placement.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_placement.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_scheme.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_scheme.cpp.o.d"
  "test_scheme"
  "test_scheme.pdb"
  "test_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
