file(REMOVE_RECURSE
  "CMakeFiles/sks_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/sks_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/sks_util.dir/interp.cpp.o"
  "CMakeFiles/sks_util.dir/interp.cpp.o.d"
  "CMakeFiles/sks_util.dir/prng.cpp.o"
  "CMakeFiles/sks_util.dir/prng.cpp.o.d"
  "CMakeFiles/sks_util.dir/stats.cpp.o"
  "CMakeFiles/sks_util.dir/stats.cpp.o.d"
  "CMakeFiles/sks_util.dir/table.cpp.o"
  "CMakeFiles/sks_util.dir/table.cpp.o.d"
  "libsks_util.a"
  "libsks_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
