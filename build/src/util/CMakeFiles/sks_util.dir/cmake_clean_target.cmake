file(REMOVE_RECURSE
  "libsks_util.a"
)
