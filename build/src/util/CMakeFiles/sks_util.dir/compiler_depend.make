# Empty compiler generated dependencies file for sks_util.
# This may be replaced when dependencies are built.
