file(REMOVE_RECURSE
  "CMakeFiles/sks_scheme.dir/behavioral_sensor.cpp.o"
  "CMakeFiles/sks_scheme.dir/behavioral_sensor.cpp.o.d"
  "CMakeFiles/sks_scheme.dir/coverage_placement.cpp.o"
  "CMakeFiles/sks_scheme.dir/coverage_placement.cpp.o.d"
  "CMakeFiles/sks_scheme.dir/indicator.cpp.o"
  "CMakeFiles/sks_scheme.dir/indicator.cpp.o.d"
  "CMakeFiles/sks_scheme.dir/montecarlo.cpp.o"
  "CMakeFiles/sks_scheme.dir/montecarlo.cpp.o.d"
  "CMakeFiles/sks_scheme.dir/placement.cpp.o"
  "CMakeFiles/sks_scheme.dir/placement.cpp.o.d"
  "CMakeFiles/sks_scheme.dir/scheme.cpp.o"
  "CMakeFiles/sks_scheme.dir/scheme.cpp.o.d"
  "libsks_scheme.a"
  "libsks_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
