file(REMOVE_RECURSE
  "libsks_scheme.a"
)
