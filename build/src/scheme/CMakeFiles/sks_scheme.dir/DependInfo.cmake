
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheme/behavioral_sensor.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/behavioral_sensor.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/behavioral_sensor.cpp.o.d"
  "/root/repo/src/scheme/coverage_placement.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/coverage_placement.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/coverage_placement.cpp.o.d"
  "/root/repo/src/scheme/indicator.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/indicator.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/indicator.cpp.o.d"
  "/root/repo/src/scheme/montecarlo.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/montecarlo.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/montecarlo.cpp.o.d"
  "/root/repo/src/scheme/placement.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/placement.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/placement.cpp.o.d"
  "/root/repo/src/scheme/scheme.cpp" "src/scheme/CMakeFiles/sks_scheme.dir/scheme.cpp.o" "gcc" "src/scheme/CMakeFiles/sks_scheme.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/sks_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
