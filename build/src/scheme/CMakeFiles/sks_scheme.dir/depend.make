# Empty dependencies file for sks_scheme.
# This may be replaced when dependencies are built.
