file(REMOVE_RECURSE
  "CMakeFiles/sks_cell.dir/error_indicator.cpp.o"
  "CMakeFiles/sks_cell.dir/error_indicator.cpp.o.d"
  "CMakeFiles/sks_cell.dir/measure.cpp.o"
  "CMakeFiles/sks_cell.dir/measure.cpp.o.d"
  "CMakeFiles/sks_cell.dir/primitives.cpp.o"
  "CMakeFiles/sks_cell.dir/primitives.cpp.o.d"
  "CMakeFiles/sks_cell.dir/skew_sensor.cpp.o"
  "CMakeFiles/sks_cell.dir/skew_sensor.cpp.o.d"
  "CMakeFiles/sks_cell.dir/stimuli.cpp.o"
  "CMakeFiles/sks_cell.dir/stimuli.cpp.o.d"
  "CMakeFiles/sks_cell.dir/technology.cpp.o"
  "CMakeFiles/sks_cell.dir/technology.cpp.o.d"
  "CMakeFiles/sks_cell.dir/two_rail_checker.cpp.o"
  "CMakeFiles/sks_cell.dir/two_rail_checker.cpp.o.d"
  "libsks_cell.a"
  "libsks_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
