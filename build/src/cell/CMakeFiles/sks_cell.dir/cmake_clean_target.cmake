file(REMOVE_RECURSE
  "libsks_cell.a"
)
