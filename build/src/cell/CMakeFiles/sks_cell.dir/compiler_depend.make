# Empty compiler generated dependencies file for sks_cell.
# This may be replaced when dependencies are built.
