
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/error_indicator.cpp" "src/cell/CMakeFiles/sks_cell.dir/error_indicator.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/error_indicator.cpp.o.d"
  "/root/repo/src/cell/measure.cpp" "src/cell/CMakeFiles/sks_cell.dir/measure.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/measure.cpp.o.d"
  "/root/repo/src/cell/primitives.cpp" "src/cell/CMakeFiles/sks_cell.dir/primitives.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/primitives.cpp.o.d"
  "/root/repo/src/cell/skew_sensor.cpp" "src/cell/CMakeFiles/sks_cell.dir/skew_sensor.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/skew_sensor.cpp.o.d"
  "/root/repo/src/cell/stimuli.cpp" "src/cell/CMakeFiles/sks_cell.dir/stimuli.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/stimuli.cpp.o.d"
  "/root/repo/src/cell/technology.cpp" "src/cell/CMakeFiles/sks_cell.dir/technology.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/technology.cpp.o.d"
  "/root/repo/src/cell/two_rail_checker.cpp" "src/cell/CMakeFiles/sks_cell.dir/two_rail_checker.cpp.o" "gcc" "src/cell/CMakeFiles/sks_cell.dir/two_rail_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
