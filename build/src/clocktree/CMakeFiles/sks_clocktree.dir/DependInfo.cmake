
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocktree/buffering.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/buffering.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/buffering.cpp.o.d"
  "/root/repo/src/clocktree/crosstalk.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/crosstalk.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/crosstalk.cpp.o.d"
  "/root/repo/src/clocktree/defects.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/defects.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/defects.cpp.o.d"
  "/root/repo/src/clocktree/dme.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/dme.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/dme.cpp.o.d"
  "/root/repo/src/clocktree/geometry.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/geometry.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/geometry.cpp.o.d"
  "/root/repo/src/clocktree/htree.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/htree.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/htree.cpp.o.d"
  "/root/repo/src/clocktree/rctree.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/rctree.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/rctree.cpp.o.d"
  "/root/repo/src/clocktree/skew_analysis.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/skew_analysis.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/skew_analysis.cpp.o.d"
  "/root/repo/src/clocktree/topology.cpp" "src/clocktree/CMakeFiles/sks_clocktree.dir/topology.cpp.o" "gcc" "src/clocktree/CMakeFiles/sks_clocktree.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
