# Empty compiler generated dependencies file for sks_clocktree.
# This may be replaced when dependencies are built.
