file(REMOVE_RECURSE
  "libsks_clocktree.a"
)
