file(REMOVE_RECURSE
  "CMakeFiles/sks_clocktree.dir/buffering.cpp.o"
  "CMakeFiles/sks_clocktree.dir/buffering.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/crosstalk.cpp.o"
  "CMakeFiles/sks_clocktree.dir/crosstalk.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/defects.cpp.o"
  "CMakeFiles/sks_clocktree.dir/defects.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/dme.cpp.o"
  "CMakeFiles/sks_clocktree.dir/dme.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/geometry.cpp.o"
  "CMakeFiles/sks_clocktree.dir/geometry.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/htree.cpp.o"
  "CMakeFiles/sks_clocktree.dir/htree.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/rctree.cpp.o"
  "CMakeFiles/sks_clocktree.dir/rctree.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/skew_analysis.cpp.o"
  "CMakeFiles/sks_clocktree.dir/skew_analysis.cpp.o.d"
  "CMakeFiles/sks_clocktree.dir/topology.cpp.o"
  "CMakeFiles/sks_clocktree.dir/topology.cpp.o.d"
  "libsks_clocktree.a"
  "libsks_clocktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
