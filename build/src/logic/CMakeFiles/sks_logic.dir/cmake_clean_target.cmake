file(REMOVE_RECURSE
  "libsks_logic.a"
)
