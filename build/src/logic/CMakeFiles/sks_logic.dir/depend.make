# Empty dependencies file for sks_logic.
# This may be replaced when dependencies are built.
