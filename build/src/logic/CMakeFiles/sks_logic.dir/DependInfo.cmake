
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/masking.cpp" "src/logic/CMakeFiles/sks_logic.dir/masking.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/masking.cpp.o.d"
  "/root/repo/src/logic/netlist.cpp" "src/logic/CMakeFiles/sks_logic.dir/netlist.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/netlist.cpp.o.d"
  "/root/repo/src/logic/scan.cpp" "src/logic/CMakeFiles/sks_logic.dir/scan.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/scan.cpp.o.d"
  "/root/repo/src/logic/simulator.cpp" "src/logic/CMakeFiles/sks_logic.dir/simulator.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/simulator.cpp.o.d"
  "/root/repo/src/logic/stuck_at.cpp" "src/logic/CMakeFiles/sks_logic.dir/stuck_at.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/stuck_at.cpp.o.d"
  "/root/repo/src/logic/timing.cpp" "src/logic/CMakeFiles/sks_logic.dir/timing.cpp.o" "gcc" "src/logic/CMakeFiles/sks_logic.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
