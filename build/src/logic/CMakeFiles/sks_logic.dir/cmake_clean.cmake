file(REMOVE_RECURSE
  "CMakeFiles/sks_logic.dir/masking.cpp.o"
  "CMakeFiles/sks_logic.dir/masking.cpp.o.d"
  "CMakeFiles/sks_logic.dir/netlist.cpp.o"
  "CMakeFiles/sks_logic.dir/netlist.cpp.o.d"
  "CMakeFiles/sks_logic.dir/scan.cpp.o"
  "CMakeFiles/sks_logic.dir/scan.cpp.o.d"
  "CMakeFiles/sks_logic.dir/simulator.cpp.o"
  "CMakeFiles/sks_logic.dir/simulator.cpp.o.d"
  "CMakeFiles/sks_logic.dir/stuck_at.cpp.o"
  "CMakeFiles/sks_logic.dir/stuck_at.cpp.o.d"
  "CMakeFiles/sks_logic.dir/timing.cpp.o"
  "CMakeFiles/sks_logic.dir/timing.cpp.o.d"
  "libsks_logic.a"
  "libsks_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
