file(REMOVE_RECURSE
  "CMakeFiles/sks_esim.dir/engine.cpp.o"
  "CMakeFiles/sks_esim.dir/engine.cpp.o.d"
  "CMakeFiles/sks_esim.dir/matrix.cpp.o"
  "CMakeFiles/sks_esim.dir/matrix.cpp.o.d"
  "CMakeFiles/sks_esim.dir/mosfet_model.cpp.o"
  "CMakeFiles/sks_esim.dir/mosfet_model.cpp.o.d"
  "CMakeFiles/sks_esim.dir/netlist.cpp.o"
  "CMakeFiles/sks_esim.dir/netlist.cpp.o.d"
  "CMakeFiles/sks_esim.dir/spice_io.cpp.o"
  "CMakeFiles/sks_esim.dir/spice_io.cpp.o.d"
  "CMakeFiles/sks_esim.dir/sweep.cpp.o"
  "CMakeFiles/sks_esim.dir/sweep.cpp.o.d"
  "CMakeFiles/sks_esim.dir/trace.cpp.o"
  "CMakeFiles/sks_esim.dir/trace.cpp.o.d"
  "CMakeFiles/sks_esim.dir/waveform.cpp.o"
  "CMakeFiles/sks_esim.dir/waveform.cpp.o.d"
  "libsks_esim.a"
  "libsks_esim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_esim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
