
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esim/engine.cpp" "src/esim/CMakeFiles/sks_esim.dir/engine.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/engine.cpp.o.d"
  "/root/repo/src/esim/matrix.cpp" "src/esim/CMakeFiles/sks_esim.dir/matrix.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/matrix.cpp.o.d"
  "/root/repo/src/esim/mosfet_model.cpp" "src/esim/CMakeFiles/sks_esim.dir/mosfet_model.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/mosfet_model.cpp.o.d"
  "/root/repo/src/esim/netlist.cpp" "src/esim/CMakeFiles/sks_esim.dir/netlist.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/netlist.cpp.o.d"
  "/root/repo/src/esim/spice_io.cpp" "src/esim/CMakeFiles/sks_esim.dir/spice_io.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/spice_io.cpp.o.d"
  "/root/repo/src/esim/sweep.cpp" "src/esim/CMakeFiles/sks_esim.dir/sweep.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/sweep.cpp.o.d"
  "/root/repo/src/esim/trace.cpp" "src/esim/CMakeFiles/sks_esim.dir/trace.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/trace.cpp.o.d"
  "/root/repo/src/esim/waveform.cpp" "src/esim/CMakeFiles/sks_esim.dir/waveform.cpp.o" "gcc" "src/esim/CMakeFiles/sks_esim.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
