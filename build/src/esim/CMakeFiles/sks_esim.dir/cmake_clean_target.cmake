file(REMOVE_RECURSE
  "libsks_esim.a"
)
