# Empty dependencies file for sks_esim.
# This may be replaced when dependencies are built.
