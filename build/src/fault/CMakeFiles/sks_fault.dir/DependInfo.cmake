
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/campaign.cpp" "src/fault/CMakeFiles/sks_fault.dir/campaign.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/campaign.cpp.o.d"
  "/root/repo/src/fault/detect.cpp" "src/fault/CMakeFiles/sks_fault.dir/detect.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/detect.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/sks_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/ifa.cpp" "src/fault/CMakeFiles/sks_fault.dir/ifa.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/ifa.cpp.o.d"
  "/root/repo/src/fault/inject.cpp" "src/fault/CMakeFiles/sks_fault.dir/inject.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/inject.cpp.o.d"
  "/root/repo/src/fault/plan_opt.cpp" "src/fault/CMakeFiles/sks_fault.dir/plan_opt.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/plan_opt.cpp.o.d"
  "/root/repo/src/fault/universe.cpp" "src/fault/CMakeFiles/sks_fault.dir/universe.cpp.o" "gcc" "src/fault/CMakeFiles/sks_fault.dir/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/sks_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/esim/CMakeFiles/sks_esim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
