file(REMOVE_RECURSE
  "CMakeFiles/sks_fault.dir/campaign.cpp.o"
  "CMakeFiles/sks_fault.dir/campaign.cpp.o.d"
  "CMakeFiles/sks_fault.dir/detect.cpp.o"
  "CMakeFiles/sks_fault.dir/detect.cpp.o.d"
  "CMakeFiles/sks_fault.dir/fault.cpp.o"
  "CMakeFiles/sks_fault.dir/fault.cpp.o.d"
  "CMakeFiles/sks_fault.dir/ifa.cpp.o"
  "CMakeFiles/sks_fault.dir/ifa.cpp.o.d"
  "CMakeFiles/sks_fault.dir/inject.cpp.o"
  "CMakeFiles/sks_fault.dir/inject.cpp.o.d"
  "CMakeFiles/sks_fault.dir/plan_opt.cpp.o"
  "CMakeFiles/sks_fault.dir/plan_opt.cpp.o.d"
  "CMakeFiles/sks_fault.dir/universe.cpp.o"
  "CMakeFiles/sks_fault.dir/universe.cpp.o.d"
  "libsks_fault.a"
  "libsks_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sks_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
