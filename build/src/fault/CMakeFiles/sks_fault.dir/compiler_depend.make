# Empty compiler generated dependencies file for sks_fault.
# This may be replaced when dependencies are built.
