file(REMOVE_RECURSE
  "libsks_fault.a"
)
