// Quickstart: instantiate the skew sensing circuit, feed it a clean clock
// pair and a skewed one, and read the error indication.
//
// This is the 30-second tour of the library: Technology -> SensorOptions ->
// ClockPairStimulus -> measure_sensor().

#include <iostream>

#include "cell/measure.hpp"
#include "cell/skew_sensor.hpp"
#include "cell/stimuli.hpp"
#include "cell/technology.hpp"
#include "esim/engine.hpp"
#include "esim/trace.hpp"
#include "util/ascii_plot.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

namespace {

void report(const char* label, const cell::SensorMeasurement& m) {
  std::cout << label << ": Vmin(y1) = " << m.vmin_y1
            << " V, Vmin(y2) = " << m.vmin_y2
            << " V, indication = " << cell::to_string(m.indication)
            << (m.error() ? "  <-- SKEW DETECTED" : "") << '\n';
}

}  // namespace

int main() {
  const cell::Technology tech;  // 1.2um-flavour defaults, VDD = 5 V
  cell::SensorOptions options;
  options.load_y1 = options.load_y2 = 160 * fF;

  std::cout << "== skewsense quickstart ==\n"
            << "interpretation threshold V_th = "
            << tech.interpretation_threshold() << " V\n\n";

  // 1. Clean clocks: simultaneous rising edges.
  cell::ClockPairStimulus clean;
  clean.skew = 0.0;
  report("no skew    ", cell::measure_sensor(tech, options, clean));

  // 2. phi2 late by 1 ns: expect indication (y1,y2) = 01.
  cell::ClockPairStimulus late2 = clean;
  late2.skew = 1.0 * ns;
  report("skew +1.0ns", cell::measure_sensor(tech, options, late2));

  // 3. phi1 late by 1 ns: expect indication (y1,y2) = 10.
  cell::ClockPairStimulus late1 = clean;
  late1.skew = -1.0 * ns;
  report("skew -1.0ns", cell::measure_sensor(tech, options, late1));

  // 4. The sensitivity of this sensor instance (Fig. 4's vertical lines).
  const double tau_min = cell::find_tau_min(tech, options, clean);
  std::cout << "\nsensitivity tau_min = " << tau_min / ns << " ns\n";

  // 5. A look at the waveforms of the skewed case.
  auto bench = cell::make_sensor_bench(tech, options, late2);
  const auto result =
      esim::simulate(bench.circuit, cell::sensor_sim_options(late2));
  util::PlotOptions plot;
  plot.x_label = "t [s]";
  plot.y_label = "V [V] (1=phi1, 2=phi2, a=y1, b=y2)";
  std::cout << '\n'
            << util::render_plot(
                   {{"1", result.time,
                     result.node_v[bench.cell.phi1.index]},
                    {"2", result.time,
                     result.node_v[bench.cell.phi2.index]},
                    {"a", result.time, result.node_v[bench.cell.y1.index]},
                    {"b", result.time, result.node_v[bench.cell.y2.index]}},
                   plot);
  return 0;
}
