// Example: why clock faults need their own testing scheme (the paper's
// introduction, played out).
//
// A two-flop ring with a slow combinational path.  The conventional
// at-speed launch-capture test catches the slow path — until a clock
// distribution fault delays the capture flop's clock, which MASKS the delay
// fault while silently stealing the same slack from the reverse path.

#include <iostream>

#include "logic/masking.hpp"
#include "scheme/behavioral_sensor.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

namespace {

void report(const char* label, const logic::MaskingResult& r,
            const scheme::BehavioralSensorModel& sensor) {
  std::cout << label << ":\n"
            << "  at-speed forward test: "
            << (r.forward_test_passes ? "PASS" : "FAIL") << '\n'
            << "  setup slack fwd/rev:   " << r.forward_setup_slack / ns
            << " / " << r.reverse_setup_slack / ns << " ns\n"
            << "  skew sensor on the two clock wires: "
            << cell::to_string(sensor.classify(r.clock_skew)) << "\n\n";
}

}  // namespace

int main() {
  const auto sensor =
      scheme::SensorCalibration::default_table().model_for_load(80 * fF);

  logic::MaskingScenario healthy;
  report("healthy circuit", logic::run_masking_experiment(healthy), sensor);

  logic::MaskingScenario slow = healthy;
  slow.delay_fault = 0.6 * ns;
  report("combinational delay fault (0.6 ns)",
         logic::run_masking_experiment(slow), sensor);

  logic::MaskingScenario masked = slow;
  masked.clock_delay_ff2 = 0.7 * ns;
  const auto r = logic::run_masking_experiment(masked);
  report("same delay fault + clock fault at FF2 (0.7 ns)", r, sensor);

  std::cout << "conclusion: the conventional test passed case 3 although two "
               "faults are present — \"a delayed flip-flop's response may be "
               "masked by its delayed sampling\".  The skew sensor monitors "
               "the clock wires themselves and is the only observer that "
               "flags it.\n";
  return r.forward_test_passes && r.reverse_setup_slack < 0.0 ? 0 : 1;
}
