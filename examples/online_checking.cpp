// Example: on-line (self-checking) operation — the paper's second
// application mode.  A transient crosstalk defect strikes a clock wire on a
// fraction of cycles; latching error indicators feed an on-line checker
// which raises the alarm, and the scan path localizes the offender
// off-line afterwards.

#include <iostream>

#include "clocktree/htree.hpp"
#include "scheme/indicator.hpp"
#include "scheme/scheme.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

int main() {
  clocktree::HTreeOptions tree_options;
  tree_options.levels = 3;
  tree_options.buffer_levels = 2;
  scheme::SchemeOptions options;
  options.placement.max_sensors = 8;
  options.placement.max_pair_distance = 2.5e-3;
  options.placement.criticality.samples = 60;
  options.cycle_jitter_sigma = 1 * ps;
  scheme::TestingScheme testing_scheme(
      build_h_tree(tree_options), {},
      scheme::SensorCalibration::default_table(), options);

  // An intermittent aggressor: strong coupling onto a monitored wire,
  // active on ~10% of cycles (an "environmental failure" in the paper's
  // terms — intrinsically transient, invisible to off-line test).
  clocktree::TreeDefect crosstalk;
  crosstalk.kind = clocktree::DefectKind::kCouplingCap;
  crosstalk.node = testing_scheme.placement().sensors[2].sink_b;
  crosstalk.magnitude = 60.0;
  crosstalk.transient = true;
  crosstalk.activation_probability = 0.1;

  std::cout << "running 1000 cycles with " << crosstalk.label() << "\n";
  const auto result = testing_scheme.run({crosstalk}, 1000);
  std::cout << "on-line checker: alarm="
            << (result.detected ? "RAISED" : "quiet") << " at cycle "
            << (result.first_detection_cycle ? *result.first_detection_cycle
                                             : 0)
            << " (sensor " << *result.detecting_sensor << ")\n"
            << "indication cycles: " << result.indication_cycles
            << " / 1000 (intermittent, as expected)\n";

  std::cout << "off-line scan readout (latched indicators): ";
  for (const bool bit : result.scan_out) std::cout << (bit ? '1' : '0');
  std::cout << "  -> faulty region = couple #" << *result.detecting_sensor
            << "\n\n";

  // The checker itself must be self-checking: the standard two-rail
  // reduction propagates any invalid input pair (and any internal single
  // fault of its gate-level realization) to the output.
  std::vector<scheme::TwoRail> rails(8, scheme::TwoRail{false, true});
  std::cout << "two-rail checker on 8 valid pairs: output "
            << (scheme::two_rail_reduce(rails).valid() ? "valid" : "INVALID")
            << '\n';
  rails[3] = scheme::TwoRail{true, true};  // a sensor signalling error
  std::cout << "after one pair turns invalid:      output "
            << (scheme::two_rail_reduce(rails).valid() ? "valid" : "INVALID")
            << '\n';

  // Baseline sanity: without the defect, the checker stays quiet.
  const double false_alarms = testing_scheme.false_alarm_rate(1000);
  std::cout << "\nfalse-alarm rate without defect: " << false_alarms * 100
            << "% per cycle\n";
  return result.detected && false_alarms < 0.01 ? 0 : 1;
}
