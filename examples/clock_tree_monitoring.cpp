// Example: monitoring a clock distribution with skew sensors (Fig. 6 flow).
//
//  1. build a buffered H-tree clock distribution;
//  2. place sensing circuits on critical, nearby couples of clock wires;
//  3. break one wire (a resistive open) and watch the scheme flag it;
//  4. cross-check the flagged skew against the transistor-level sensor.

#include <cmath>
#include <iostream>

#include "cell/measure.hpp"
#include "clocktree/defects.hpp"
#include "clocktree/htree.hpp"
#include "scheme/scheme.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

int main() {
  // 1. The clock distribution: 64 flip-flop groups on an 8 mm die.
  clocktree::HTreeOptions tree_options;
  tree_options.levels = 3;
  tree_options.buffer_levels = 2;
  clocktree::ClockTree tree = build_h_tree(tree_options);
  const auto nominal = clocktree::analyze(tree, {});
  std::cout << "H-tree: " << tree.sinks().size() << " sinks, nominal skew "
            << clocktree::max_sink_skew(tree, nominal) / ps << " ps\n";

  // 2. The testing scheme: up to 8 sensors on couples within 2.5 mm.
  scheme::SchemeOptions options;
  options.placement.max_sensors = 8;
  options.placement.max_pair_distance = 2.5e-3;
  options.placement.criticality.samples = 80;
  scheme::TestingScheme testing_scheme(
      tree, {}, scheme::SensorCalibration::default_table(), options);
  std::cout << "sensors placed on " << testing_scheme.placement().sensors.size()
            << " couples; tau_min = "
            << testing_scheme.placement().sensors[0].model.tau_min / ns
            << " ns each\n\n";

  // 3. Break the wire feeding a monitored sink.
  const auto& sensor = testing_scheme.placement().sensors[0];
  clocktree::TreeDefect defect;
  defect.kind = clocktree::DefectKind::kResistiveOpen;
  defect.node = sensor.sink_a;
  defect.magnitude = 150.0;
  std::cout << "injecting " << defect.label() << " on monitored sink '"
            << tree.node(sensor.sink_a).name << "'\n";

  const auto result = testing_scheme.run({defect}, 100);
  std::cout << "scheme result: detected=" << (result.detected ? "YES" : "no")
            << ", first indication at cycle "
            << (result.first_detection_cycle ? *result.first_detection_cycle
                                             : 0)
            << " by sensor " << *result.detecting_sensor
            << ", true skew = " << result.max_true_skew / ns << " ns\n";
  std::cout << "scan-out: ";
  for (const bool bit : result.scan_out) std::cout << (bit ? '1' : '0');
  std::cout << "\n\n";

  // 4. Electrical cross-check: feed the faulty arrival times into the
  //    actual transistor-level sensing circuit.
  const auto faulty_analysis =
      clocktree::analyze(tree, clocktree::apply_defect(tree, {}, defect));
  const double skew = faulty_analysis.arrival[sensor.sink_a] -
                      faulty_analysis.arrival[sensor.sink_b];
  cell::Technology tech;
  cell::SensorOptions cell_options;
  cell_options.load_y1 = cell_options.load_y2 = 80 * fF;
  cell::ClockPairStimulus stimulus;
  stimulus.skew = -skew;  // sensor convention: phi2 = wire b
  const auto measurement =
      cell::measure_sensor(tech, cell_options, stimulus, 5e-12);
  std::cout << "electrical cross-check: skew " << skew / ns
            << " ns -> indication (y1,y2) = "
            << cell::to_string(measurement.indication) << '\n';
  return measurement.error() == result.detected ? 0 : 1;
}
