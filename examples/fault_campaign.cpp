// Example: transistor-level fault campaign on the sensing circuit
// (the Section-3 testability flow, scriptable).
//
// Shows the netlist-level API: build the cell, dump its netlist, enumerate
// a fault universe, run the electrical campaign and inspect one verdict in
// detail.

#include <iostream>

#include "fault/campaign.hpp"
#include "fault/universe.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

int main() {
  cell::Technology tech;
  cell::SensorOptions options;
  options.load_y1 = options.load_y2 = 160 * fF;
  cell::ClockPairStimulus stimulus;
  stimulus.full_clock = true;
  const auto bench = cell::make_sensor_bench(tech, options, stimulus);

  std::cout << "=== the sensing circuit netlist ===\n"
            << bench.circuit.to_string() << '\n';

  // The full Section-3 universe...
  const auto universe = fault::sensor_fault_universe(bench.cell);
  // ...tested with the paper's single-cycle protocol.
  fault::TestPlan plan = fault::default_sensor_test_plan(
      bench, tech.interpretation_threshold(), 1);
  plan.dt = 10e-12;

  // The campaign reports progress through a callback — handy when the
  // universe is large and each fault costs a transient simulation.
  const auto progress = [](std::size_t done, std::size_t total,
                           const fault::FaultVerdict& last) {
    if (done % 16 == 0 || done == total) {
      std::cout << "  [" << done << "/" << total
                << "] last: " << last.fault.label()
                << (last.logic_detected ? " detected" : " undetected") << '\n';
    }
  };
  const auto report = fault::run_campaign(bench.circuit, universe, plan,
                                          fault::CampaignOptions{}, progress);
  std::cout << "=== coverage (single-cycle, V_th = "
            << tech.interpretation_threshold() << " V, IDDQ threshold "
            << plan.iddq_threshold / uA << " uA) ===\n"
            << report.summary_table() << '\n';
  std::cout << "campaign telemetry: "
            << report.stats.fault_seconds.count() << " faults in "
            << report.stats.wall_seconds << " s ("
            << report.stats.solve.newton_iterations << " NR iterations, "
            << report.stats.unsimulated << " unsimulated)\n\n";

  // Drill into one interesting verdict: the stuck-open on the feedback
  // pull-up c escapes the static test...
  const fault::Observation good = fault::observe(bench.circuit, plan);
  const auto sop_c = fault::test_fault(bench.circuit, good,
                                       fault::Fault::stuck_open("c"), plan);
  std::cout << "SOP(c): logic_detected=" << sop_c.logic_detected
            << " iddq_detected=" << sop_c.iddq_detected << '\n';

  // ...but does not mask the sensor's actual job:
  cell::ClockPairStimulus skewed;
  skewed.skew = 1 * ns;
  const bool still_works = fault::sensor_detects_skew_under_fault(
      tech, options, skewed, fault::Fault::stuck_open("c"), {}, 10e-12);
  std::cout << "with SOP(c) present, a 1 ns skew is "
            << (still_works ? "still detected" : "MISSED") << '\n';
  return still_works ? 0 : 1;
}
