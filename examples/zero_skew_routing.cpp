// Example: zero-skew clock routing (the substrate the paper builds on,
// refs [2,3]) and why sensors remain necessary afterwards.
//
//  1. route a zero-skew tree over random sinks (exact under Elmore);
//  2. show that buffering for load breaks the balance;
//  3. show that process variation spreads the skew further — the
//     "critical couples" the sensing scheme monitors.

#include <iostream>

#include "clocktree/buffering.hpp"
#include "clocktree/dme.hpp"
#include "clocktree/skew_analysis.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace sks;
using namespace sks::units;

int main() {
  // Random sink placement on an 8 mm die.
  util::Prng prng(2024);
  std::vector<clocktree::Sink> sinks;
  for (int i = 0; i < 32; ++i) {
    sinks.push_back({{prng.uniform(0.5e-3, 7.5e-3),
                      prng.uniform(0.5e-3, 7.5e-3)},
                     prng.uniform(30 * fF, 90 * fF)});
  }

  clocktree::DmeOptions dme;
  dme.source = {4e-3, 4e-3};
  clocktree::ClockTree tree = build_zero_skew_tree(sinks, dme);
  const auto balanced = clocktree::analyze(tree, {});
  std::cout << "zero-skew DME tree: " << sinks.size() << " sinks, "
            << tree.total_wire_length() * 1e3 << " mm of wire\n"
            << "  max skew (Elmore, unbuffered): "
            << clocktree::max_sink_skew(tree, balanced) / ps << " ps\n";

  // Cap-driven buffering (needed for edge rates) breaks the balance.
  clocktree::BufferingOptions buffering;
  buffering.max_stage_cap = 500 * fF;
  const std::size_t buffers = insert_buffers_by_cap(tree, buffering);
  const auto buffered = clocktree::analyze(tree, {});
  std::cout << "  after inserting " << buffers
            << " buffers: max skew = "
            << clocktree::max_sink_skew(tree, buffered) / ps << " ps\n";

  // Process variation spreads it further; rank the critical couples.
  clocktree::CriticalityOptions criticality;
  criticality.samples = 150;
  criticality.skew_threshold = 100 * ps;
  const auto ranked = clocktree::rank_critical_pairs(tree, {}, criticality);
  std::cout << "\ntop critical sink pairs under +/-10% RC variation:\n";
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    const auto& p = ranked[i];
    std::cout << "  " << tree.node(p.a).name << " vs " << tree.node(p.b).name
              << ": nominal " << p.nominal_skew / ps << " ps, sigma "
              << p.sigma_skew / ps << " ps, P(|skew|>100ps) = "
              << p.exceed_probability << ", distance "
              << p.distance * 1e3 << " mm\n";
  }
  std::cout << "\nthe couples that are both critical AND close are where the "
               "paper's sensing circuits go (see clock_tree_monitoring).\n";
  return 0;
}
