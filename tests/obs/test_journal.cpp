#include "obs/journal.hpp"

#include <gtest/gtest.h>

namespace sks::obs {
namespace {

Event make_event(EventType type, double t) {
  Event e;
  e.type = type;
  e.t = t;
  return e;
}

TEST(JournalTest, EventTypeNamesAreStable) {
  // These strings are part of the report schema (EXPERIMENTS.md).
  EXPECT_STREQ(to_string(EventType::kNewtonConverged), "newton_converged");
  EXPECT_STREQ(to_string(EventType::kNewtonFallback), "newton_fallback");
  EXPECT_STREQ(to_string(EventType::kStepRejected), "step_rejected");
  EXPECT_STREQ(to_string(EventType::kDtHalved), "dt_halved");
  EXPECT_STREQ(to_string(EventType::kBreakpoint), "breakpoint");
  EXPECT_STREQ(to_string(EventType::kFaultVerdict), "fault_verdict");
}

TEST(JournalTest, RingDropsOldestAtCapacity) {
  Journal j(4);
  for (int i = 0; i < 10; ++i) {
    j.record(make_event(EventType::kBreakpoint, static_cast<double>(i)));
  }
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.dropped(), 6u);
  EXPECT_EQ(j.total_recorded(), 10u);
  // The survivors are the most recent four, in order.
  ASSERT_EQ(j.events().size(), 4u);
  EXPECT_DOUBLE_EQ(j.events().front().t, 6.0);
  EXPECT_DOUBLE_EQ(j.events().back().t, 9.0);
}

TEST(JournalTest, CountByType) {
  Journal j(16);
  j.record(make_event(EventType::kDtHalved, 0.0));
  j.record(make_event(EventType::kDtHalved, 1.0));
  j.record(make_event(EventType::kBreakpoint, 2.0));
  EXPECT_EQ(j.count(EventType::kDtHalved), 2u);
  EXPECT_EQ(j.count(EventType::kBreakpoint), 1u);
  EXPECT_EQ(j.count(EventType::kFaultVerdict), 0u);
}

TEST(JournalTest, TailReturnsMostRecentOldestFirst) {
  Journal j(16);
  for (int i = 0; i < 5; ++i) {
    j.record(make_event(EventType::kBreakpoint, static_cast<double>(i)));
  }
  const auto last2 = j.tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0].t, 3.0);
  EXPECT_DOUBLE_EQ(last2[1].t, 4.0);
  // Asking for more than recorded returns everything.
  EXPECT_EQ(j.tail(100).size(), 5u);
}

TEST(JournalTest, ShrinkingCapacityDropsOldest) {
  Journal j(8);
  for (int i = 0; i < 6; ++i) {
    j.record(make_event(EventType::kBreakpoint, static_cast<double>(i)));
  }
  j.set_capacity(2);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.dropped(), 4u);
  EXPECT_DOUBLE_EQ(j.events().front().t, 4.0);
}

TEST(JournalTest, ZeroCapacityDropsEverything) {
  Journal j(0);
  j.record(make_event(EventType::kBreakpoint, 0.0));
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.dropped(), 1u);
  EXPECT_EQ(j.total_recorded(), 1u);
}

TEST(JournalTest, ClearResetsEventsAndDropCount) {
  Journal j(2);
  for (int i = 0; i < 5; ++i) {
    j.record(make_event(EventType::kBreakpoint, static_cast<double>(i)));
  }
  j.clear();
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.dropped(), 0u);
  EXPECT_EQ(j.total_recorded(), 0u);
}

TEST(JournalTest, DisabledByDefaultCallersGateOnEnabled) {
  Journal j;
  EXPECT_FALSE(j.enabled());
  j.set_enabled(true);
  EXPECT_TRUE(j.enabled());
  // record() itself is unconditional — the gate lives at the call sites so
  // the Event construction cost is skipped too.
  j.set_enabled(false);
  j.record(make_event(EventType::kBreakpoint, 0.0));
  EXPECT_EQ(j.size(), 1u);
}

}  // namespace
}  // namespace sks::obs
