// EWMA regression sentinel (obs/sentinel.hpp): quiet on stationary and
// short series, flags steps and slow drifts, respects the warm-up window
// and the sigma floor.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/sentinel.hpp"
#include "util/prng.hpp"

namespace {

using sks::obs::sentinel_check;
using sks::obs::SentinelFinding;
using sks::obs::SentinelOptions;
using sks::obs::SentinelVerdict;

// Deterministic stationary noise around `mean` with stddev `sigma`.
std::vector<double> noise_series(std::size_t n, double mean, double sigma,
                                 std::uint64_t seed) {
  sks::util::Prng prng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(mean + sigma * prng.normal());
  }
  return out;
}

TEST(ObsExposeSentinel, ShortSeriesStaysQuiet) {
  SentinelOptions opt;
  opt.warmup = 5;
  // A history no longer than the warm-up window has no baseline to chart
  // against — exactly the checked-in seed history's situation.
  for (std::size_t n = 0; n <= 5; ++n) {
    const SentinelFinding f =
        sentinel_check("m", noise_series(n, 10.0, 1.0, 1), opt);
    EXPECT_EQ(f.verdict, SentinelVerdict::kOk) << "n=" << n;
    EXPECT_EQ(f.runs, n);
  }
}

TEST(ObsExposeSentinel, StationaryFalseAlarmRateIsLow) {
  SentinelOptions opt;
  // A 3-sigma chart has a finite in-control alarm rate (ARL0 ~ hundreds
  // of points), and the 5-run warm-up sigma estimate is itself noisy —
  // so over 20 seeds x 25 charted points demand a LOW false-alarm count,
  // not zero.  (The fixed seeds keep the count deterministic.)
  int alarms = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const SentinelFinding f =
        sentinel_check("m", noise_series(30, 100.0, 2.0, seed), opt);
    if (f.verdict != SentinelVerdict::kOk) ++alarms;
  }
  EXPECT_LE(alarms, 3) << "stationary noise flagged " << alarms
                       << "/20 series — the chart is far too jumpy";
}

TEST(ObsExposeSentinel, DeterministicConstantSeriesStaysQuiet) {
  // Bit-identical counters repeat exactly; the sigma floor keeps the band
  // nonzero so this must not flag (and must not divide by zero).
  const std::vector<double> series(12, 1310.0);
  const SentinelFinding f = sentinel_check("m", series, {});
  EXPECT_EQ(f.verdict, SentinelVerdict::kOk);
  EXPECT_GT(f.baseline_sigma, 0.0);
}

TEST(ObsExposeSentinel, FlagsStepChange) {
  // Stable at 100, then one run jumps 3.5 sigma-floors up: inside a loose
  // hard-gate window, but a step the chart must catch immediately.
  std::vector<double> series = noise_series(10, 100.0, 1.0, 7);
  series.push_back(100.0 + 3.5 * 1.0 * 3.0);  // >> k*sigma above the EWMA
  const SentinelFinding f = sentinel_check("m", series, {});
  EXPECT_EQ(f.verdict, SentinelVerdict::kStep);
  EXPECT_EQ(f.runs, series.size());
}

TEST(ObsExposeSentinel, FlagsSlowDriftInsideShewhartBand) {
  // +0.4 sigma per run: every single observation stays inside the 3-sigma
  // Shewhart band for a long while, but the EWMA leaves its (much
  // tighter) control band — the case the hard gate cannot see.
  SentinelOptions opt;
  std::vector<double> series = noise_series(8, 100.0, 2.0, 11);
  double level = 100.0;
  sks::util::Prng prng(12);
  SentinelVerdict verdict = SentinelVerdict::kOk;
  for (int i = 0; i < 20 && verdict == SentinelVerdict::kOk; ++i) {
    level += 0.4 * 2.0;
    series.push_back(level + 2.0 * prng.normal());
    verdict = sentinel_check("m", series, opt).verdict;
  }
  EXPECT_EQ(verdict, SentinelVerdict::kDrift);
  // ...and the drift must be caught while each raw value is still within
  // ~3 sigma of the *previous* EWMA (otherwise it would be a step).
  const SentinelFinding f = sentinel_check("m", series, opt);
  EXPECT_GT(f.ewma, f.band_hi);
}

TEST(ObsExposeSentinel, WarmupWindowSetsTheBaseline) {
  // First 5 runs at 10, the rest at 14: with warmup=5 the baseline is 10
  // and the chart flags; with warmup=10 the shifted runs pollute the
  // baseline and the (by then stationary) series is quiet.
  std::vector<double> series;
  for (int i = 0; i < 5; ++i) series.push_back(10.0);
  for (int i = 0; i < 10; ++i) series.push_back(14.0);
  SentinelOptions narrow;
  narrow.warmup = 5;
  EXPECT_NE(sentinel_check("m", series, narrow).verdict,
            SentinelVerdict::kOk);
  SentinelOptions wide;
  wide.warmup = 10;
  EXPECT_EQ(sentinel_check("m", series, wide).verdict,
            SentinelVerdict::kOk);
}

TEST(ObsExposeSentinel, BandScalesWithKAndLambda) {
  std::vector<double> series = noise_series(10, 50.0, 1.0, 3);
  for (int i = 0; i < 6; ++i) series.push_back(52.5);  // ~2.5 sigma level
  SentinelOptions strict;
  strict.k = 2.0;
  const SentinelFinding tight = sentinel_check("m", series, strict);
  EXPECT_NE(tight.verdict, SentinelVerdict::kOk);
  SentinelOptions loose;
  loose.k = 20.0;
  EXPECT_EQ(sentinel_check("m", series, loose).verdict,
            SentinelVerdict::kOk);
  // Larger lambda -> wider EWMA band (sqrt(lambda/(2-lambda)) grows).
  SentinelOptions lo_lambda;
  lo_lambda.lambda = 0.1;
  SentinelOptions hi_lambda;
  hi_lambda.lambda = 0.9;
  const SentinelFinding narrow = sentinel_check("m", series, lo_lambda);
  const SentinelFinding wide = sentinel_check("m", series, hi_lambda);
  EXPECT_LT(narrow.band_hi - narrow.band_lo, wide.band_hi - wide.band_lo);
}

}  // namespace
