#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/campaign.hpp"
#include "fault/universe.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace sks::obs {
namespace {

using namespace sks::units;

TEST(JsonHelpers, EscapeAndNumber) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Non-finite values must not poison the document.
  const std::string nan = json_number(std::nan(""));
  EXPECT_NE(Json::parse(nan).kind(), Json::Kind::kNull);
}

TEST(JsonParse, Basics) {
  const Json doc = Json::parse(
      R"({"s": "hi", "n": -1.5e2, "b": true, "z": null, "a": [1, 2]})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("s").str(), "hi");
  EXPECT_DOUBLE_EQ(doc.at("n").number(), -150.0);
  EXPECT_TRUE(doc.at("b").boolean());
  EXPECT_TRUE(doc.at("z").is_null());
  ASSERT_EQ(doc.at("a").array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("a").array()[1].number(), 2.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), Error);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(Json::parse("'single'"), Error);
}

TEST(ReportTest, JsonRoundTripOfAllSections) {
  // Local registry/journal: the test owns all state, nothing global leaks.
  Registry reg;
  reg.counter("runs").inc(3);
  reg.gauge("vmin").set(1.25);
  reg.timer("solve").record_ns(2000);
  reg.histogram("tau", 0.0, 1.0, 4).add(0.3);
  Journal j(8);
  j.record({EventType::kDtHalved, 1e-9, 5e-12, 0, "newton failure"});
  j.record({EventType::kFaultVerdict, 0.0, 0.0, 0, "SON(b): escape \"q\""});

  Report report("unit");
  report.set_meta("bench", "unit-test");
  report.set_value("answer", 42.0);
  report.capture_registry(reg);
  report.capture_journal(j);

  const Json doc = Json::parse(report.to_json());
  EXPECT_EQ(doc.at("report").str(), "unit");
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number(), 1.0);
  EXPECT_EQ(doc.at("meta").at("bench").str(), "unit-test");
  EXPECT_DOUBLE_EQ(doc.at("values").at("answer").number(), 42.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("runs").number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("vmin").number(), 1.25);
  const Json& solve = doc.at("timers").at("solve");
  EXPECT_DOUBLE_EQ(solve.at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(solve.at("total_s").number(), 2e-6);
  const Json& tau = doc.at("histograms").at("tau");
  EXPECT_DOUBLE_EQ(tau.at("hi").number(), 1.0);
  EXPECT_EQ(tau.at("counts").array().size(), 4u);
  const Json& journal_section = doc.at("journal");
  EXPECT_DOUBLE_EQ(journal_section.at("recorded").number(), 2.0);
  EXPECT_DOUBLE_EQ(journal_section.at("counts").at("dt_halved").number(), 1.0);
  const auto& events = journal_section.at("events").array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("type").str(), "dt_halved");
  // The embedded quote survives the escape/parse round trip.
  EXPECT_EQ(events[1].at("detail").str(), "SON(b): escape \"q\"");
}

TEST(ReportTest, JournalOverflowCountsDroppedInJson) {
  // Push the ring well past capacity: the oldest 12 of 20 events fall out,
  // the drop is counted, and the JSON report reflects both the count and
  // the surviving tail.
  Journal j(8);
  for (int i = 0; i < 20; ++i) {
    j.record({EventType::kNewtonConverged, i * 1e-9, 0.0, i, ""});
  }
  EXPECT_EQ(j.size(), 8u);
  EXPECT_EQ(j.dropped(), 12u);
  EXPECT_EQ(j.total_recorded(), 20u);
  const auto tail = j.tail(8);
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front().iterations, 12);  // oldest survivor is event #12
  EXPECT_EQ(tail.back().iterations, 19);
  // tail(n) with n > size returns everything, oldest first.
  EXPECT_EQ(j.tail(100).size(), 8u);

  Report report("overflow");
  report.capture_journal(j);
  const Json doc = Json::parse(report.to_json());
  const Json& journal_section = doc.at("journal");
  EXPECT_DOUBLE_EQ(journal_section.at("recorded").number(), 20.0);
  EXPECT_DOUBLE_EQ(journal_section.at("dropped").number(), 12.0);
  EXPECT_DOUBLE_EQ(
      journal_section.at("counts").at("newton_converged").number(), 8.0);
  const auto& events = journal_section.at("events").array();
  ASSERT_EQ(events.size(), tail.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].at("t").number(), tail[i].t) << i;
    EXPECT_DOUBLE_EQ(events[i].at("iterations").number(),
                     static_cast<double>(tail[i].iterations))
        << i;
  }
}

TEST(ReportTest, JournalCaptureRespectsMaxEvents) {
  Journal j(64);
  for (int i = 0; i < 10; ++i) {
    j.record({EventType::kBreakpoint, i * 1e-9, 0.0, 0, ""});
  }
  Report report("tail-limit");
  report.capture_journal(j, 4);
  const Json doc = Json::parse(report.to_json());
  const Json& journal_section = doc.at("journal");
  // All 10 are counted, only the 4 most recent are embedded.
  EXPECT_DOUBLE_EQ(journal_section.at("recorded").number(), 10.0);
  EXPECT_DOUBLE_EQ(journal_section.at("dropped").number(), 0.0);
  const auto& events = journal_section.at("events").array();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().at("t").number(), 6e-9);
}

TEST(ReportTest, EmptySectionsAreOmitted) {
  Report report("empty");
  const Json doc = Json::parse(report.to_json());
  EXPECT_EQ(doc.at("report").str(), "empty");
  EXPECT_FALSE(doc.has("counters"));
  EXPECT_FALSE(doc.has("timers"));
  EXPECT_FALSE(doc.has("journal"));
}

TEST(ReportTest, CsvHasOneRowPerMetric) {
  Registry reg;
  reg.counter("runs").inc(3);
  Report report("unit");
  report.set_value("answer", 42.0);
  report.capture_registry(reg);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("section,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,runs,value,3"), std::string::npos);
  EXPECT_NE(csv.find("value,answer,value,42"), std::string::npos);
}

// Acceptance check: a real (tiny) fault campaign produces a JSON report
// that parses and carries the documented keys with sane values.
TEST(ReportTest, CampaignRunReportMatchesSchema) {
  cell::Technology tech;
  cell::SensorOptions options;
  options.load_y1 = options.load_y2 = 160 * fF;
  cell::ClockPairStimulus stim;
  stim.full_clock = true;
  const auto bench = cell::make_sensor_bench(tech, options, stim);
  // Three node stuck-ats keep the electrical work small.
  std::vector<fault::Fault> universe = {
      fault::Fault::stuck_at1("y1"),
      fault::Fault::stuck_at0("y2"),
      fault::Fault::stuck_at1("n1"),
  };
  fault::TestPlan plan = fault::default_sensor_test_plan(
      bench, tech.interpretation_threshold(), 1);
  plan.dt = 20e-12;
  const auto campaign = fault::run_campaign(bench.circuit, universe, plan);

  const Json doc = Json::parse(campaign.run_report().to_json());
  EXPECT_EQ(doc.at("report").str(), "fault_campaign");
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number(), 1.0);
  const Json& values = doc.at("values");
  EXPECT_DOUBLE_EQ(values.at("faults.total").number(), 3.0);
  EXPECT_GE(values.at("coverage.logic").number(), 0.0);
  EXPECT_LE(values.at("coverage.combined").number(), 1.0);
  EXPECT_GT(values.at("wall_seconds").number(), 0.0);
  EXPECT_GT(values.at("solve.newton_iterations").number(), 0.0);
  EXPECT_GT(values.at("solve.lu_factorizations").number(), 0.0);
  EXPECT_DOUBLE_EQ(values.at("faults.unsimulated").number(), 0.0);
}

}  // namespace
}  // namespace sks::obs
