// Span tracing: recording semantics (gating, args, bounded buffers,
// clear/re-registration) and the Chrome trace-event export, which is
// parsed back with obs::Json and checked field by field.  The 4-worker
// pool test holds every worker at a spin barrier so all four tracks are
// guaranteed to record.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "par/parallel.hpp"
#include "par/pool.hpp"
#include "util/error.hpp"

namespace sks::obs {
namespace {

// Fixture owns the global tracer's state: every test starts cleared and
// enabled, and leaves the tracer off at the default capacity.
struct ObsTrace : ::testing::Test {
  void SetUp() override {
    tracer().set_enabled(false);
    tracer().set_buffer_capacity(65536);
    tracer().clear();
    set_trace_thread_name("test-main");
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().set_buffer_capacity(65536);
    tracer().clear();
  }
};

TEST_F(ObsTrace, DisabledSpanRecordsNothing) {
  tracer().set_enabled(false);
  {
    Span span("should.not.record");
    EXPECT_FALSE(span.active());
    span.arg("x", 1.0);  // no-op, must not crash
    SKS_TRACE_SPAN("macro.span");
  }
  trace_instant("also.not.recorded");
  EXPECT_EQ(tracer().event_count(), 0u);
  EXPECT_EQ(tracer().dropped(), 0u);
}

TEST_F(ObsTrace, SpanRecordsCompleteEventWithArgs) {
  {
    Span span("unit.work");
    EXPECT_TRUE(span.active());
    span.arg("fault", std::string("SON(p1)")).arg("index", 3.0);
  }
  const auto buffers = tracer().buffers();
  ASSERT_EQ(buffers.size(), 1u);
  ASSERT_EQ(buffers[0]->size(), 1u);
  const TraceEvent& e = buffers[0]->event(0);
  EXPECT_EQ(e.phase, 'X');
  EXPECT_EQ(e.name, "unit.work");
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].key, "fault");
  EXPECT_EQ(e.args[0].json, "\"SON(p1)\"");
  EXPECT_EQ(e.args[1].key, "index");
  EXPECT_EQ(e.args[1].json, "3");
}

TEST_F(ObsTrace, SpanEndIsIdempotentAndStopsTheClock) {
  Span span("early.end");
  span.end();
  const std::uint64_t dur =
      tracer().buffers().at(0)->event(0).dur_ns;
  span.end();  // second end records nothing
  span.arg("late", 1.0);  // args after end are dropped
  EXPECT_EQ(tracer().event_count(), 1u);
  EXPECT_EQ(tracer().buffers().at(0)->event(0).dur_ns, dur);
}

TEST_F(ObsTrace, InstantEventsCarryPhaseAndArgs) {
  trace_instant("marker", {{"t", "1.5e-09"}});
  const auto buffers = tracer().buffers();
  ASSERT_EQ(buffers.size(), 1u);
  const TraceEvent& e = buffers[0]->event(0);
  EXPECT_EQ(e.phase, 'i');
  EXPECT_EQ(e.name, "marker");
  EXPECT_EQ(e.dur_ns, 0u);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].key, "t");
}

TEST_F(ObsTrace, JournalRecordMirrorsAnInstantEvent) {
  Journal j(16);
  j.record({EventType::kDtHalved, 2e-9, 5e-12, 7, "newton failure"});
  const auto buffers = tracer().buffers();
  ASSERT_EQ(buffers.size(), 1u);
  ASSERT_EQ(buffers[0]->size(), 1u);
  const TraceEvent& e = buffers[0]->event(0);
  EXPECT_EQ(e.phase, 'i');
  EXPECT_EQ(e.name, "dt_halved");
  // t, value, iterations, detail — all carried as pre-rendered JSON.
  ASSERT_EQ(e.args.size(), 4u);
  EXPECT_EQ(e.args[0].key, "t");
  EXPECT_EQ(e.args[2].json, "7");
  EXPECT_EQ(e.args[3].json, "\"newton failure\"");
  // The journal itself recorded normally too.
  EXPECT_EQ(j.size(), 1u);
}

TEST_F(ObsTrace, OverflowDropsNewestAndCounts) {
  tracer().set_buffer_capacity(4);
  tracer().clear();  // re-register at the new capacity
  for (int i = 0; i < 10; ++i) {
    Span span("overflow.span");
    span.arg("i", static_cast<double>(i));
  }
  EXPECT_EQ(tracer().event_count(), 4u);
  EXPECT_EQ(tracer().dropped(), 6u);
  const auto buffers = tracer().buffers();
  ASSERT_EQ(buffers.size(), 1u);
  // Oldest events survive (drop-newest policy).
  EXPECT_EQ(buffers[0]->event(0).args[0].json, "0");
  EXPECT_EQ(buffers[0]->event(3).args[0].json, "3");
}

TEST_F(ObsTrace, ClearDropsEventsAndReregistersThreads) {
  { SKS_TRACE_SPAN("before.clear"); }
  EXPECT_EQ(tracer().event_count(), 1u);
  tracer().clear();
  EXPECT_EQ(tracer().event_count(), 0u);
  EXPECT_TRUE(tracer().buffers().empty());
  { SKS_TRACE_SPAN("after.clear"); }
  EXPECT_EQ(tracer().event_count(), 1u);
  EXPECT_EQ(tracer().buffers().at(0)->event(0).name, "after.clear");
}

TEST_F(ObsTrace, ChromeJsonParsesBackWithMetadataAndEvents) {
  {
    Span span("solve");
    span.arg("nr_iters", 12.0).arg("label", "SON(n1)");
  }
  trace_instant("fallback", {{"value", "5e-12"}});
  const Json doc = Json::parse(tracer().chrome_trace_json());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ns");
  const auto& events = doc.at("traceEvents").array();
  // process_name + thread_name metadata + span + instant.
  ASSERT_EQ(events.size(), 4u);

  const Json& process = events[0];
  EXPECT_EQ(process.at("ph").str(), "M");
  EXPECT_EQ(process.at("name").str(), "process_name");
  EXPECT_DOUBLE_EQ(process.at("pid").number(), 1.0);

  const Json& thread = events[1];
  EXPECT_EQ(thread.at("ph").str(), "M");
  EXPECT_EQ(thread.at("name").str(), "thread_name");
  EXPECT_EQ(thread.at("args").at("name").str(), "test-main");
  const double tid = thread.at("tid").number();
  EXPECT_GE(tid, 1.0);

  const Json& span_event = events[2];
  EXPECT_EQ(span_event.at("ph").str(), "X");
  EXPECT_EQ(span_event.at("name").str(), "solve");
  EXPECT_DOUBLE_EQ(span_event.at("pid").number(), 1.0);
  EXPECT_DOUBLE_EQ(span_event.at("tid").number(), tid);
  EXPECT_GE(span_event.at("ts").number(), 0.0);   // microseconds
  EXPECT_GE(span_event.at("dur").number(), 0.0);
  EXPECT_DOUBLE_EQ(span_event.at("args").at("nr_iters").number(), 12.0);
  EXPECT_EQ(span_event.at("args").at("label").str(), "SON(n1)");

  const Json& instant = events[3];
  EXPECT_EQ(instant.at("ph").str(), "i");
  EXPECT_EQ(instant.at("s").str(), "t");
  EXPECT_DOUBLE_EQ(instant.at("args").at("value").number(), 5e-12);
}

TEST_F(ObsTrace, FourPoolWorkersYieldFourNamedTracks) {
  constexpr std::size_t kWorkers = 4;
  {
    par::ThreadPool pool(kWorkers);
    // Spin barrier: no item finishes until every worker holds one, so all
    // four workers are forced to record (work stealing cannot collapse the
    // items onto fewer threads).
    std::atomic<std::size_t> arrived{0};
    par::parallel_for(pool, 0, kWorkers, [&](std::size_t i) {
      arrived.fetch_add(1);
      while (arrived.load() < kWorkers) std::this_thread::yield();
      Span span("pool.item");
      span.arg("item", static_cast<double>(i));
    });
  }
  std::set<std::uint32_t> tids;
  std::set<std::string> names;
  for (const auto& buffer : tracer().buffers()) {
    std::uint64_t prev_ts = 0;
    bool has_item = false;
    for (std::size_t i = 0; i < buffer->size(); ++i) {
      const TraceEvent& e = buffer->event(i);
      if (e.name != "pool.item") continue;
      has_item = true;
      EXPECT_GE(e.ts_ns, prev_ts);  // per-track spans appear in time order
      prev_ts = e.ts_ns;
    }
    if (has_item) {
      tids.insert(buffer->tid());
      names.insert(buffer->thread_name());
    }
  }
  EXPECT_EQ(tids.size(), kWorkers);
  ASSERT_EQ(names.size(), kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(names.count("par.worker-" + std::to_string(w)), 1u) << w;
  }
  // The export names each worker track via thread_name metadata.
  const Json doc = Json::parse(tracer().chrome_trace_json());
  std::map<double, std::string> track_names;
  for (const Json& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() == "M" && e.at("name").str() == "thread_name") {
      track_names[e.at("tid").number()] = e.at("args").at("name").str();
    }
  }
  for (const std::uint32_t tid : tids) {
    const auto it = track_names.find(static_cast<double>(tid));
    ASSERT_NE(it, track_names.end());
    EXPECT_EQ(it->second.rfind("par.worker-", 0), 0u) << it->second;
  }
}

TEST_F(ObsTrace, WriteChromeTraceRejectsUnwritablePath) {
  { SKS_TRACE_SPAN("x"); }
  EXPECT_THROW(tracer().write_chrome_trace("/nonexistent-dir/trace.json"),
               Error);
}

}  // namespace
}  // namespace sks::obs
