// Live exposition plane: Prometheus text rendering, run-phase probes, the
// HTTP listener end-to-end over loopback, and registry scrapes under
// write contention.  Fixture names start with ObsExpose so the tsan test
// preset picks the contention suites up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/net.hpp"

namespace {

using sks::obs::Journal;
using sks::obs::Registry;
using sks::obs::render_prometheus;
using sks::obs::RunPhase;
using sks::obs::ScopedRunPhase;
using sks::obs::Tracer;

// Validate one exposition body line by line: every line is a comment or a
// `name[{quantile="q"}] value` sample with a legal metric name and a
// parseable value.  Returns the plain (label-free) samples.
std::map<std::string, double> parse_exposition(const std::string& body) {
  std::map<std::string, double> samples;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no value in: " << line;
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::size_t brace = name.find('{');
    bool labeled = false;
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << "unterminated labels in: " << line;
      labeled = true;
      name.resize(brace);
    }
    EXPECT_FALSE(name.empty()) << "empty metric name in: " << line;
    if (name.empty()) continue;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "illegal character '" << c << "' in: " << line;
    }
    EXPECT_FALSE(name[0] >= '0' && name[0] <= '9')
        << "name starts with a digit: " << line;
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    if (!labeled) samples[name] = v;
  }
  return samples;
}

TEST(ObsExposeName, SanitizesToPrometheusCharset) {
  EXPECT_EQ(sks::obs::prometheus_name("solver.lu_refactor"),
            "solver_lu_refactor");
  EXPECT_EQ(sks::obs::prometheus_name("mem.peak-rss[kb]"),
            "mem_peak_rss_kb_");
  EXPECT_EQ(sks::obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(sks::obs::prometheus_name(""), "_");
}

TEST(ObsExposeRender, TypesQuantilesAndSums) {
  Registry reg;
  reg.counter("esim.nr_iterations").inc(42);
  reg.gauge("mem.peak_rss_bytes").set(1.5e6);
  reg.timer("esim.dc_solution").record_ns(2'000'000);
  reg.timer("esim.dc_solution").record_ns(4'000'000);
  for (int i = 1; i <= 100; ++i) {
    reg.stream("mc.vmin").record(static_cast<double>(i));
  }
  Journal j;
  Tracer t;
  const std::string body = render_prometheus(reg, j, t);
  const auto samples = parse_exposition(body);

  EXPECT_NE(body.find("# TYPE esim_nr_iterations counter\n"),
            std::string::npos);
  EXPECT_EQ(samples.at("esim_nr_iterations"), 42.0);
  EXPECT_NE(body.find("# TYPE mem_peak_rss_bytes gauge\n"),
            std::string::npos);
  EXPECT_EQ(samples.at("mem_peak_rss_bytes"), 1.5e6);

  // Timers render as a quantile-less summary: _sum (seconds) + _count.
  EXPECT_NE(body.find("# TYPE esim_dc_solution summary\n"),
            std::string::npos);
  EXPECT_NEAR(samples.at("esim_dc_solution_sum"), 6e-3, 1e-12);
  EXPECT_EQ(samples.at("esim_dc_solution_count"), 2.0);
  EXPECT_EQ(body.find("esim_dc_solution{quantile"), std::string::npos);

  // Streams carry the P2 quantiles.
  EXPECT_NE(body.find("mc_vmin{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(body.find("mc_vmin{quantile=\"0.9\"} "), std::string::npos);
  EXPECT_NE(body.find("mc_vmin{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_EQ(samples.at("mc_vmin_count"), 100.0);
  EXPECT_NEAR(samples.at("mc_vmin_sum"), 5050.0, 1e-6);

  // Synthesized gauges are always present; no drops -> no warning line.
  EXPECT_EQ(samples.at("obs_run_phase"),
            static_cast<double>(static_cast<int>(RunPhase::kIdle)));
  EXPECT_EQ(samples.at("obs_journal_dropped"), 0.0);
  EXPECT_EQ(samples.at("obs_trace_dropped"), 0.0);
  EXPECT_EQ(body.find("# DROPS"), std::string::npos);
}

TEST(ObsExposeRender, DropSaturationSurfacesAsGaugesAndWarning) {
  Registry reg;
  Journal j(2);
  j.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    j.record({sks::obs::EventType::kWarning, 0.0, 0.0, 0, "overflow"});
  }
  Tracer t;
  t.set_buffer_capacity(1);
  t.set_enabled(true);
  t.thread_buffer()->push({'i', "a", 0, 0, {}});
  t.thread_buffer()->push({'i', "b", 0, 0, {}});
  t.thread_buffer()->push({'i', "c", 0, 0, {}});

  const std::string body = render_prometheus(reg, j, t);
  const auto samples = parse_exposition(body);
  EXPECT_EQ(samples.at("obs_journal_dropped"), 3.0);
  EXPECT_EQ(samples.at("obs_trace_dropped"), 2.0);
  // The warning comment leads the body so a scraper can cheaply grep it.
  EXPECT_EQ(body.rfind("# DROPS journal=3 trace=2\n", 0), 0u);
}

TEST(ObsExposeRunPhase, OutermostScopeWinsAndRestoresIdle) {
  EXPECT_EQ(sks::obs::run_phase(), RunPhase::kIdle);
  {
    ScopedRunPhase campaign(RunPhase::kCampaign);
    EXPECT_EQ(sks::obs::run_phase(), RunPhase::kCampaign);
    {
      // A campaign's inner transient/dc solves must not flip the probe.
      ScopedRunPhase transient(RunPhase::kTransient);
      EXPECT_EQ(sks::obs::run_phase(), RunPhase::kCampaign);
      ScopedRunPhase dc(RunPhase::kDc);
      EXPECT_EQ(sks::obs::run_phase(), RunPhase::kCampaign);
    }
    EXPECT_EQ(sks::obs::run_phase(), RunPhase::kCampaign);
  }
  EXPECT_EQ(sks::obs::run_phase(), RunPhase::kIdle);
  EXPECT_STREQ(sks::obs::to_string(RunPhase::kDc), "dc");
  EXPECT_STREQ(sks::obs::to_string(RunPhase::kTransient), "transient");
  EXPECT_STREQ(sks::obs::to_string(RunPhase::kCampaign), "campaign");
}

// One blocking HTTP/1.0 round trip against a live Exposer.
std::string http_get(std::uint16_t port, const std::string& path) {
  std::string error;
  sks::util::net::Socket conn =
      sks::util::net::connect_tcp(port, 2000, &error);
  EXPECT_TRUE(conn.valid()) << error;
  if (!conn.valid()) return {};
  EXPECT_TRUE(sks::util::net::send_all(
      conn, "GET " + path + " HTTP/1.0\r\n\r\n"));
  std::string response;
  for (;;) {
    const std::string chunk = sks::util::net::recv_some(conn, 65536, 2000);
    if (chunk.empty()) break;  // peer closed (HTTP/1.0 Connection: close)
    response += chunk;
  }
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(ObsExposeHttp, ServesMetricsHealthAndReadiness) {
  sks::obs::Exposer exposer;
  const std::uint16_t port = exposer.start(0);
  ASSERT_NE(port, 0) << "could not bind an ephemeral loopback port";
  EXPECT_TRUE(exposer.enabled());

  const std::uint64_t scrapes_before =
      sks::obs::registry().counter("obs.expose_scrapes").value();

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const auto samples = parse_exposition(http_body(metrics));
  EXPECT_TRUE(samples.count("obs_run_phase"));
  // The scrape counted itself (bumped before rendering), so the body the
  // client is holding already includes this scrape.
  EXPECT_GE(samples.at("obs_expose_scrapes"),
            static_cast<double>(scrapes_before + 1));
  EXPECT_EQ(sks::obs::registry().counter("obs.expose_scrapes").value(),
            scrapes_before + 1);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(http_body(health), "ok\n");

  const std::string ready_idle = http_get(port, "/readyz");
  EXPECT_NE(ready_idle.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(http_body(ready_idle), "phase=idle\n");
  {
    ScopedRunPhase campaign(RunPhase::kCampaign);
    const std::string ready_busy = http_get(port, "/readyz");
    EXPECT_NE(ready_busy.find("HTTP/1.0 503"), std::string::npos);
    EXPECT_EQ(http_body(ready_busy), "phase=campaign\n");
  }

  const std::string missing = http_get(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  // A query string is stripped, not 404'd (cache-busting scrapers).
  const std::string busted = http_get(port, "/healthz?x=1");
  EXPECT_NE(busted.find("HTTP/1.0 200 OK"), std::string::npos);

  exposer.stop();
  EXPECT_FALSE(exposer.enabled());
  // Idempotent stop, restartable exposer.
  exposer.stop();
  const std::uint16_t port2 = exposer.start(0);
  ASSERT_NE(port2, 0);
  EXPECT_NE(http_get(port2, "/healthz").find("200 OK"), std::string::npos);
  exposer.stop();
}

// 8-thread hammer: 4 writers update counters/timers/streams in a local
// registry while 4 scrapers render it; every scrape must parse and each
// scraper must see its counter monotonically non-decreasing.
TEST(ObsExposeContention, ScrapesParseAndCountersAreMonotoneUnderWrites) {
  Registry reg;
  Journal j;
  Tracer t;
  constexpr int kWriters = 4;
  constexpr int kScrapers = 4;
  constexpr int kWrites = 4000;
  constexpr int kScrapes = 60;
  // Pre-create so the first scrape already sees every series.
  for (int w = 0; w < kWriters; ++w) {
    reg.counter("hammer.c" + std::to_string(w));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, &go, w] {
      while (!go.load(std::memory_order_acquire)) {}
      auto& c = reg.counter("hammer.c" + std::to_string(w));
      auto& timer = reg.timer("hammer.t" + std::to_string(w));
      auto& stream = reg.stream("hammer.s" + std::to_string(w));
      for (int i = 1; i <= kWrites; ++i) {
        c.inc();
        timer.record_ns(static_cast<std::uint64_t>(i));
        stream.record(static_cast<double>(i % 97));
      }
    });
  }
  std::vector<std::string> failures(kScrapers);
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&reg, &j, &t, &go, &failures, s] {
      while (!go.load(std::memory_order_acquire)) {}
      double last[kWriters] = {0, 0, 0, 0};
      for (int i = 0; i < kScrapes; ++i) {
        const std::string body = render_prometheus(reg, j, t);
        // EXPECT_* is not thread-safe; collect and assert on the main
        // thread instead.
        std::map<std::string, double> samples;
        std::istringstream in(body);
        std::string line;
        while (std::getline(in, line)) {
          if (line.empty()) {
            failures[s] = "blank line in scrape";
            return;
          }
          if (line[0] == '#') continue;
          const std::size_t space = line.rfind(' ');
          char* end = nullptr;
          std::strtod(line.c_str() + space + 1, &end);
          if (space == std::string::npos || *end != '\0') {
            failures[s] = "unparseable line: " + line;
            return;
          }
          if (line.find('{') == std::string::npos) {
            samples[line.substr(0, space)] =
                std::strtod(line.c_str() + space + 1, nullptr);
          }
        }
        for (int w = 0; w < kWriters; ++w) {
          const auto it = samples.find("hammer_c" + std::to_string(w));
          if (it == samples.end()) {
            failures[s] = "hammer_c" + std::to_string(w) + " missing";
            return;
          }
          if (it->second < last[w]) {
            failures[s] = "counter went backwards: hammer_c" +
                          std::to_string(w);
            return;
          }
          last[w] = it->second;
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  for (int s = 0; s < kScrapers; ++s) {
    EXPECT_EQ(failures[s], "") << "scraper " << s;
  }
  // Writers quiesced: the final render carries exact totals.
  const auto samples = parse_exposition(render_prometheus(reg, j, t));
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(samples.at("hammer_c" + std::to_string(w)),
              static_cast<double>(kWrites));
    EXPECT_EQ(samples.at("hammer_t" + std::to_string(w) + "_count"),
              static_cast<double>(kWrites));
    EXPECT_EQ(samples.at("hammer_s" + std::to_string(w) + "_count"),
              static_cast<double>(kWrites));
  }
}

}  // namespace
