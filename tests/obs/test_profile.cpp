// Call-tree profiles (obs/profile.hpp): golden-tree aggregation on
// synthetic spans (nested + sibling + multi-thread, self/total arithmetic
// checked exactly), collapsed-stack export, attribution ranking on a
// test-injected slowdown, the tracer round-trip, the report JSON schema,
// and an 8-thread hammer with exact event counts (the ObsConcurrency
// pattern).  Also covers obs/mem.hpp: getrusage sanity, gauge ratcheting,
// and the obs.mem_gauge_updates REQUIRED_ZERO bookkeeping.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace sks::obs {
namespace {

// Fixture owns the global tracer's state, mirroring ObsTrace: every test
// starts cleared and enabled, and leaves the tracer off at the default
// capacity.
struct ObsProfile : ::testing::Test {
  void SetUp() override {
    tracer().set_enabled(false);
    tracer().set_buffer_capacity(65536);
    tracer().clear();
    set_trace_thread_name("test-main");
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().set_buffer_capacity(65536);
    tracer().clear();
  }
};

// The golden tree, hand-checkable:
//
//   main:         run[0, 1000)
//                   a[100, 400)   b[500, 900)
//                                   c[600, 800)
//   par.worker-0: par.task[0, 800)
//                   a[100, 200)
std::vector<ProfileSpan> golden_spans() {
  return {
      {"main", "run", 0, 1000},      {"main", "a", 100, 300},
      {"main", "b", 500, 400},       {"main", "c", 600, 200},
      {"par.worker-0", "par.task", 0, 800},
      {"par.worker-0", "a", 100, 100},
  };
}

TEST_F(ObsProfile, GoldenTreePathsDepthsAndTotals) {
  const Profile p = build_profile(golden_spans());
  ASSERT_EQ(p.nodes().size(), 6u);
  // Nodes come back sorted by path.
  const std::vector<std::string> paths = {
      "par.task", "par.task;a", "run", "run;a", "run;b", "run;b;c"};
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(p.nodes()[i].path, paths[i]) << i;
  }

  const ProfileNode* run = p.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->name, "run");
  EXPECT_EQ(run->depth, 0u);
  EXPECT_EQ(run->count, 1u);
  EXPECT_EQ(run->total_ns, 1000u);
  // self = 1000 - (a: 300) - (b: 400); c is b's child, not run's.
  EXPECT_EQ(run->self_ns, 300u);

  const ProfileNode* b = p.find("run;b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->depth, 1u);
  EXPECT_EQ(b->total_ns, 400u);
  EXPECT_EQ(b->self_ns, 200u);  // minus c's 200

  const ProfileNode* c = p.find("run;b;c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->depth, 2u);
  EXPECT_EQ(c->self_ns, 200u);  // leaf: self == total

  // "a" under run and "a" under par.task are DIFFERENT tree positions.
  const ProfileNode* a_main = p.find("run;a");
  const ProfileNode* a_pool = p.find("par.task;a");
  ASSERT_NE(a_main, nullptr);
  ASSERT_NE(a_pool, nullptr);
  EXPECT_EQ(a_main->total_ns, 300u);
  EXPECT_EQ(a_pool->total_ns, 100u);
  EXPECT_EQ(p.find("a"), nullptr);
  EXPECT_EQ(p.find("nope"), nullptr);

  EXPECT_EQ(p.window_ns(), 1000u);  // max end 1000, min start 0
}

TEST_F(ObsProfile, GoldenTreeThreadSlicesAndWorkers) {
  const Profile p = build_profile(golden_spans());
  const ProfileNode* run = p.find("run");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->threads.size(), 1u);
  EXPECT_EQ(run->threads.at("main").count, 1u);
  EXPECT_EQ(run->threads.at("main").total_ns, 1000u);

  // Workers sorted by thread name; util = busy / window.
  ASSERT_EQ(p.workers().size(), 2u);
  EXPECT_EQ(p.workers()[0].thread, "main");
  EXPECT_EQ(p.workers()[0].spans, 1u);
  EXPECT_EQ(p.workers()[0].busy_ns, 1000u);
  EXPECT_DOUBLE_EQ(p.workers()[0].util, 1.0);
  EXPECT_EQ(p.workers()[1].thread, "par.worker-0");
  EXPECT_EQ(p.workers()[1].busy_ns, 800u);
  EXPECT_DOUBLE_EQ(p.workers()[1].util, 0.8);
}

TEST_F(ObsProfile, SiblingRepeatsMergeWithMinMax) {
  // Three sibling calls of the same name under one root: one node,
  // count 3, min/max over the per-span durations.
  const Profile p = build_profile({
      {"main", "root", 0, 1000},
      {"main", "leaf", 0, 100},
      {"main", "leaf", 200, 300},
      {"main", "leaf", 600, 50},
  });
  const ProfileNode* leaf = p.find("root;leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 3u);
  EXPECT_EQ(leaf->total_ns, 450u);
  EXPECT_EQ(leaf->min_ns, 50u);
  EXPECT_EQ(leaf->max_ns, 300u);
  const ProfileNode* root = p.find("root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->self_ns, 550u);
}

TEST_F(ObsProfile, EmptyAndSingleSpanEdges) {
  const Profile empty = build_profile({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.window_ns(), 0u);
  EXPECT_EQ(empty.collapsed_stacks(), "");

  // A zero-duration span still lands in the tree with zero window.
  const Profile one = build_profile({{"main", "tick", 42, 0}});
  ASSERT_EQ(one.nodes().size(), 1u);
  EXPECT_EQ(one.nodes()[0].total_ns, 0u);
  EXPECT_EQ(one.window_ns(), 0u);
}

TEST_F(ObsProfile, CollapsedStacksAreFlamegraphInput) {
  // Microsecond-scale durations so self_us is nonzero; "mid" keeps under
  // a microsecond of self time (its child covers all but 1 ns) and must
  // be skipped from the collapsed output.
  const Profile p = build_profile({
      {"main", "top", 0, 5000000},
      {"main", "mid", 1000000, 2000000},
      {"main", "leaf", 1000001, 1999999},
  });
  EXPECT_EQ(p.collapsed_stacks(),
            "top 3000\n"
            "top;mid;leaf 1999\n");
}

TEST_F(ObsProfile, BuildBumpsProfileBuildsCounter) {
  Counter& builds = registry().counter("obs.profile_builds");
  const std::uint64_t before = builds.value();
  build_profile({{"main", "x", 0, 1}});
  build_profile({});
  EXPECT_EQ(builds.value(), before + 2);
}

TEST_F(ObsProfile, TracerRoundTripNestsRealSpans) {
  {
    Span outer("outer.work");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      Span inner("inner.work");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  trace_instant("not.a.span");  // instants must be ignored
  const Profile p = profile_from_tracer();
  ASSERT_EQ(p.nodes().size(), 2u);
  const ProfileNode* outer = p.find("outer.work");
  const ProfileNode* inner = p.find("outer.work;inner.work");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  ASSERT_EQ(p.workers().size(), 1u);
  EXPECT_EQ(p.workers()[0].thread, "test-main");
  EXPECT_EQ(p.workers()[0].spans, 1u);
}

// The acceptance workload: the same span layout twice, with the victim
// slowed by a test-injected sleep in the second run.  Attribution must
// rank the victim's path first.
void attribution_workload(int victim_sleep_ms) {
  Span root("attr.run");
  for (int i = 0; i < 3; ++i) {
    Span steady("attr.steady");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    Span victim("attr.victim");
    std::this_thread::sleep_for(std::chrono::milliseconds(victim_sleep_ms));
  }
}

TEST_F(ObsProfile, AttributionRanksSlowedSpanFirst) {
  attribution_workload(1);
  const Profile base = profile_from_tracer();
  tracer().clear();
  set_trace_thread_name("test-main");
  attribution_workload(40);
  const Profile current = profile_from_tracer();

  const auto ranked = attribute_profiles(base, current);
  ASSERT_GE(ranked.size(), 3u);
  // Largest |delta| first: the root grew by the same injected sleep as the
  // victim, so the top two are {attr.run, attr.run;attr.victim} and the
  // victim's SELF delta singles it out among them.
  EXPECT_EQ(ranked[0].path.rfind("attr.run", 0), 0u) << ranked[0].path;
  const Attribution* victim = nullptr;
  for (const auto& a : ranked) {
    if (a.path == "attr.run;attr.victim") victim = &a;
  }
  ASSERT_NE(victim, nullptr);
  EXPECT_GE(victim->delta_total_s, 0.030);
  EXPECT_GE(victim->delta_self_s, 0.030);
  EXPECT_EQ(victim->base_count, 1u);
  EXPECT_EQ(victim->cur_count, 1u);
  // The victim outranks the steady sibling.
  std::size_t victim_rank = ranked.size(), steady_rank = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].path == "attr.run;attr.victim") victim_rank = i;
    if (ranked[i].path == "attr.run;attr.steady") steady_rank = i;
  }
  EXPECT_LT(victim_rank, steady_rank);
}

TEST_F(ObsProfile, AttributionHandlesAddedAndRemovedPaths) {
  Profile base;
  base.add_node(ProfileNode{"gone", "gone", 0, 1, 500000000, 500000000,
                            500000000, 500000000, {}});
  base.seal();
  Profile current;
  current.add_node(ProfileNode{"fresh", "fresh", 0, 2, 100000000, 100000000,
                               50000000, 50000000, {}});
  current.seal();
  const auto ranked = attribute_profiles(base, current);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].path, "gone");  // |−0.5| > |+0.1|
  EXPECT_DOUBLE_EQ(ranked[0].delta_total_s, -0.5);
  EXPECT_EQ(ranked[0].cur_count, 0u);
  EXPECT_EQ(ranked[1].path, "fresh");
  EXPECT_DOUBLE_EQ(ranked[1].delta_total_s, 0.1);
  EXPECT_EQ(ranked[1].base_count, 0u);
}

TEST_F(ObsProfile, ReportJsonCarriesProfileSection) {
  {
    Span outer("rep.outer");
    Span inner("rep.inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Report report("profile_test");
  report.capture_profile();
  ASSERT_FALSE(report.profile().empty());

  const Json doc = Json::parse(report.to_json());
  ASSERT_TRUE(doc.has("profile"));
  const Json& profile = doc.at("profile");
  EXPECT_GT(profile.at("window_s").number(), 0.0);

  const auto& nodes = profile.at("nodes").array();
  ASSERT_EQ(nodes.size(), 2u);
  bool saw_inner = false;
  for (const Json& n : nodes) {
    if (n.at("path").str() != "rep.outer;rep.inner") continue;
    saw_inner = true;
    EXPECT_EQ(n.at("name").str(), "rep.inner");
    EXPECT_DOUBLE_EQ(n.at("depth").number(), 1.0);
    EXPECT_DOUBLE_EQ(n.at("count").number(), 1.0);
    EXPECT_GE(n.at("total_s").number(), 0.001);
    EXPECT_GE(n.at("self_s").number(), n.at("min_s").number() - 1e-9);
    EXPECT_LE(n.at("min_s").number(), n.at("max_s").number());
    EXPECT_DOUBLE_EQ(n.at("threads").at("test-main").at("count").number(),
                     1.0);
    EXPECT_GT(n.at("threads").at("test-main").at("total_s").number(), 0.0);
  }
  EXPECT_TRUE(saw_inner);

  const auto& workers = profile.at("workers").array();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].at("thread").str(), "test-main");
  EXPECT_DOUBLE_EQ(workers[0].at("spans").number(), 1.0);
  EXPECT_GT(workers[0].at("util").number(), 0.0);
}

TEST_F(ObsProfile, EightThreadHammerExactCounts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_trace_thread_name("hammer-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        Span outer("hammer.outer");
        Span inner("hammer.inner");
      }
    });
  }
  for (auto& th : threads) th.join();

  // 2 spans per iteration per thread, none dropped at default capacity.
  EXPECT_EQ(tracer().event_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(tracer().dropped(), 0u);

  const Profile p = profile_from_tracer();
  const ProfileNode* outer = p.find("hammer.outer");
  const ProfileNode* inner = p.find("hammer.outer;hammer.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(inner->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(outer->threads.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const auto it = outer->threads.find("hammer-" + std::to_string(t));
    ASSERT_NE(it, outer->threads.end()) << t;
    EXPECT_EQ(it->second.count, static_cast<std::uint64_t>(kPerThread));
  }
  // Every hammer thread shows up as a worker track with its spans counted.
  std::uint64_t top_level = 0;
  for (const WorkerUtil& w : p.workers()) top_level += w.spans;
  EXPECT_EQ(top_level, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMem, SampleMemStatsSanity) {
  const MemStats stats = sample_mem_stats();
#if defined(__unix__) || defined(__APPLE__)
  // Any live test process has paged in megabytes.
  EXPECT_GT(stats.peak_rss_bytes, 1u << 20);
#else
  (void)stats;
#endif
}

TEST(ObsMem, RecordMemGaugesSetsRssAndBufferGauges) {
  record_mem_gauges();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(registry().gauge("mem.peak_rss_bytes").value(), 0.0);
#endif
  // Trace/journal capacity gauges exist regardless of platform.
  EXPECT_GE(registry().gauge("mem.trace_buffer_bytes").value(), 0.0);
  EXPECT_GE(registry().gauge("mem.journal_buffer_bytes").value(), 0.0);
}

TEST(ObsMem, RecordPeakBytesRatchetsAndCounts) {
  Gauge& gauge = registry().gauge("test.mem.peak");
  gauge.set(0.0);
  Counter& updates = registry().counter("obs.mem_gauge_updates");
  const std::uint64_t before = updates.value();
  record_peak_bytes(gauge, 1000.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1000.0);
  record_peak_bytes(gauge, 400.0);  // lower: gauge holds the peak
  EXPECT_DOUBLE_EQ(gauge.value(), 1000.0);
  record_peak_bytes(gauge, 2500.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2500.0);
  // Every call counts as an instrumented update, ratchet or not.
  EXPECT_EQ(updates.value(), before + 3);
  gauge.set(0.0);
}

}  // namespace
}  // namespace sks::obs
