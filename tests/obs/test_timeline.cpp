// MetricsTimeline / ProgressTracker tests (obs/timeline.hpp): JSONL
// snapshot integrity under an 8-thread counter hammer, cadence triggers,
// registry StreamStat wiring, and the counter-equality contract between a
// final snapshot and a report captured right after it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"

namespace sks::obs {
namespace {

// The process-wide timeline survives across tests; every test tears its
// configuration down so later suites see it disabled again.
struct TimelineGuard {
  ~TimelineGuard() { timeline().disable(); }
};

std::string temp_timeline_path(const char* tag) {
  return std::string("test_timeline_") + tag + ".jsonl";
}

std::vector<Json> parse_timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<Json> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(Json::parse(line));  // throws (fails the test) on corrupt
  }
  return out;
}

TEST(MetricsTimeline, DisabledByDefaultAndSnapshotReturnsZero) {
  TimelineGuard guard;
  timeline().disable();
  EXPECT_FALSE(timeline().enabled());
  EXPECT_EQ(timeline().snapshot("noop"), 0u);
}

TEST(MetricsTimeline, SnapshotsAreMonotoneAndParseable) {
  TimelineGuard guard;
  const std::string path = temp_timeline_path("basic");
  TimelineOptions options;
  options.path = path;
  timeline().configure(options);
  ASSERT_TRUE(timeline().enabled());

  Counter& counter = registry().counter("test.timeline.basic");
  counter.reset();
  const std::uint64_t first = timeline().snapshot("one");
  counter.inc(5);
  const std::uint64_t second = timeline().snapshot("two");
  EXPECT_LT(first, second);
  timeline().disable();

  const auto snaps = parse_timeline(path);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_LT(snaps[0].at("seq").number(), snaps[1].at("seq").number());
  EXPECT_EQ(snaps[0].at("label").str(), "one");
  // The counter bumped between the snapshots must show the growth.
  EXPECT_DOUBLE_EQ(
      snaps[1].at("counters").at("test.timeline.basic").number(), 5.0);
  counter.reset();
  std::remove(path.c_str());
}

TEST(MetricsTimeline, EightThreadHammerSnapshotsStayConsistent) {
  TimelineGuard guard;
  const std::string path = temp_timeline_path("hammer");
  TimelineOptions options;
  options.path = path;
  timeline().configure(options);

  Counter& counter = registry().counter("test.timeline.hammer");
  counter.reset();
  StreamStat& hammer_stream =
      registry().stream("test.timeline.hammer_stream");
  hammer_stream.reset();

  // 7 writer threads hammer a counter while thread 8 snapshots: every
  // line must parse, seqs must be strictly monotone, and the counter
  // value must never decrease across snapshots.
  constexpr int kWriters = 7;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  threads.emplace_back([] {
    for (int i = 0; i < 50; ++i) timeline().snapshot("hammer");
  });
  for (auto& th : threads) th.join();
  hammer_stream.record(1.0);  // streams serialize beside the counter
  timeline().snapshot("final");
  timeline().disable();

  const auto snaps = parse_timeline(path);
  ASSERT_EQ(snaps.size(), 51u);
  double prev_seq = 0.0;
  double prev_value = -1.0;
  for (const Json& snap : snaps) {
    const double seq = snap.at("seq").number();
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
    const double value =
        snap.at("counters").at("test.timeline.hammer").number();
    EXPECT_GE(value, prev_value);  // counters are monotone under load
    EXPECT_LE(value, 1.0 * kWriters * kPerThread);
    prev_value = value;
    // Structural invariants of every snapshot.
    EXPECT_TRUE(snap.has("wall_s"));
    EXPECT_TRUE(snap.has("journal"));
    EXPECT_TRUE(snap.has("trace"));
  }
  // After the join the final snapshot must carry the exact total.
  EXPECT_DOUBLE_EQ(
      snaps.back().at("counters").at("test.timeline.hammer").number(),
      1.0 * kWriters * kPerThread);
  EXPECT_DOUBLE_EQ(snaps.back()
                       .at("streams")
                       .at("test.timeline.hammer_stream")
                       .at("count")
                       .number(),
                   1.0);
  counter.reset();
  hammer_stream.reset();
  std::remove(path.c_str());
}

TEST(MetricsTimeline, FinalSnapshotCountersMatchCapturedReport) {
  TimelineGuard guard;
  const std::string path = temp_timeline_path("equiv");
  TimelineOptions options;
  options.path = path;
  timeline().configure(options);

  registry().counter("test.timeline.equiv").reset();
  registry().counter("test.timeline.equiv").inc(123);
  // The bench drivers snapshot("final") immediately before capturing the
  // registry into BENCH_*.json; the two views must agree exactly — the
  // snapshot bumps its own seq counter BEFORE reading the registry.
  timeline().snapshot("final");
  Report report("equiv");
  report.capture_registry();
  timeline().disable();

  const auto snaps = parse_timeline(path);
  ASSERT_EQ(snaps.size(), 1u);
  const Json report_doc = Json::parse(report.to_json());
  const Json& snap_counters = snaps.back().at("counters");
  for (const auto& [name, value] : report_doc.at("counters").object()) {
    ASSERT_TRUE(snap_counters.has(name)) << name;
    EXPECT_DOUBLE_EQ(snap_counters.at(name).number(), value.number())
        << name;
  }
  registry().counter("test.timeline.equiv").reset();
  std::remove(path.c_str());
}

TEST(ProgressTracker, ItemCadenceSnapshotsAndGauges) {
  TimelineGuard guard;
  const std::string path = temp_timeline_path("progress");
  TimelineOptions options;
  options.path = path;
  options.every_items = 10;
  timeline().configure(options);

  ProgressTracker tracker("unit_test", 25);
  for (int i = 0; i < 25; ++i) {
    if (i % 2 == 0) tracker.add_partial("even");
    tracker.on_item();
  }
  EXPECT_EQ(tracker.done(), 25u);
  const ProgressSnapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.done, 25u);
  EXPECT_EQ(snap.total, 25u);
  EXPECT_DOUBLE_EQ(snap.eta_s, 0.0);  // finished
  ASSERT_EQ(snap.partial.size(), 1u);
  EXPECT_EQ(snap.partial[0].first, "even");
  EXPECT_DOUBLE_EQ(snap.partial[0].second, 13.0);
  timeline().disable();

  // Cadence: items 10, 20 and the final 25 — three snapshots.
  const auto snaps = parse_timeline(path);
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_DOUBLE_EQ(snaps[0].at("progress").at("done").number(), 10.0);
  EXPECT_DOUBLE_EQ(snaps[1].at("progress").at("done").number(), 20.0);
  EXPECT_DOUBLE_EQ(snaps[2].at("progress").at("done").number(), 25.0);
  EXPECT_DOUBLE_EQ(
      snaps[2].at("progress").at("partial").at("even").number(), 13.0);

  // Gauges mirror the live progress for `sks-report print`.
  const Gauge* done = registry().find_gauge("progress.unit_test.done");
  ASSERT_NE(done, nullptr);
  EXPECT_DOUBLE_EQ(done->value(), 25.0);
  std::remove(path.c_str());
}

TEST(ProgressTracker, DisabledPathOnlyCounts) {
  TimelineGuard guard;
  timeline().disable();
  // With obs and the timeline both off, on_item must not create gauges.
  struct FlagGuard {
    bool saved = enabled();
    ~FlagGuard() { set_enabled(saved); }
  } flag_guard;
  set_enabled(false);
  ProgressTracker tracker("disabled_test", 5);
  for (int i = 0; i < 5; ++i) tracker.on_item();
  EXPECT_EQ(tracker.done(), 5u);
  EXPECT_EQ(registry().find_gauge("progress.disabled_test.done"), nullptr);
}

TEST(StreamStatRegistry, RecordBumpsGuardCounterAndSnapshot) {
  StreamStat& stat = registry().stream("test.stream_stat.basic");
  stat.reset();
  Counter& updates = registry().counter("obs.stream_updates");
  const std::uint64_t before = updates.value();
  stat.record(1.0);
  stat.record(3.0);
  EXPECT_EQ(updates.value(), before + 2);  // the bench-gate guard counter
  const stream::StreamSummary summary = stat.snapshot();
  EXPECT_EQ(summary.count(), 2u);
  EXPECT_DOUBLE_EQ(summary.mean(), 2.0);
  EXPECT_EQ(registry().find_stream("test.stream_stat.basic"), &stat);
  EXPECT_EQ(registry().find_stream("test.stream_stat.missing"), nullptr);
  stat.reset();
  EXPECT_EQ(stat.count(), 0u);
}

}  // namespace
}  // namespace sks::obs
