// Streaming-statistics accuracy tests (obs/stream.hpp): the P² quantile
// estimator against exact sorted quantiles on friendly and adversarial
// streams, Welford moments against a two-pass reference, the windowed
// Allan accumulator against a brute-force non-overlapping computation,
// plus the rolling window and waveform stream bank.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "obs/stream.hpp"

namespace sks::obs::stream {
namespace {

// Exact quantile with the linear-interpolation convention P2Quantile uses
// for its small-n path (matching util::percentile).
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// Relative error of the P² estimate against the exact quantile, scaled by
// the sample spread so near-zero quantiles don't blow up the ratio.
double p2_error(const std::vector<double>& samples, double q) {
  P2Quantile est(q);
  for (double x : samples) est.add(x);
  const double exact = exact_quantile(samples, q);
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  const double spread = *hi - *lo;
  return spread == 0.0 ? 0.0 : std::abs(est.value() - exact) / spread;
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile p50(0.5);
  p50.add(3.0);
  EXPECT_DOUBLE_EQ(p50.value(), 3.0);
  p50.add(1.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);  // interpolated median of {1, 3}
  p50.add(2.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);
  p50.add(10.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.5);  // median of {1, 2, 3, 10}
}

TEST(P2Quantile, UniformStreamCloseToExact) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> samples(20000);
  for (double& x : samples) x = dist(rng);
  // Spread-relative error bounds; P² is typically far tighter than this on
  // smooth distributions, the bound just has to be stable across seeds.
  EXPECT_LT(p2_error(samples, 0.50), 0.01);
  EXPECT_LT(p2_error(samples, 0.90), 0.01);
  EXPECT_LT(p2_error(samples, 0.99), 0.01);
}

TEST(P2Quantile, LognormalStreamCloseToExact) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<double> samples(20000);
  for (double& x : samples) x = dist(rng);
  // Heavy right tail: judge against the exact value relatively, not via
  // the (huge) spread.
  for (double q : {0.50, 0.90, 0.99}) {
    P2Quantile est(q);
    for (double x : samples) est.add(x);
    const double exact = exact_quantile(samples, q);
    EXPECT_NEAR(est.value(), exact, 0.08 * exact) << "q=" << q;
  }
}

TEST(P2Quantile, AdversarialSortedStreamStaysBounded) {
  // Monotone input is the classic P² stressor: every sample lands in the
  // top cell and the markers trail behind.  The estimate must still stay
  // within a few percent of the exact quantile (relative to the spread).
  std::vector<double> ascending(10000);
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<double>(i);
  }
  EXPECT_LT(p2_error(ascending, 0.50), 0.05);
  EXPECT_LT(p2_error(ascending, 0.90), 0.05);
  EXPECT_LT(p2_error(ascending, 0.99), 0.05);

  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  EXPECT_LT(p2_error(descending, 0.50), 0.05);
  EXPECT_LT(p2_error(descending, 0.99), 0.05);
}

TEST(OnlineStats, MatchesTwoPassMoments) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist(5.0, 2.5);
  std::vector<double> samples(5000);
  OnlineStats stats;
  for (double& x : samples) {
    x = dist(rng);
    stats.add(x);
  }

  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(samples.size() - 1);

  EXPECT_EQ(stats.count(), samples.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(stats.variance(), var, 1e-9 * var);
  EXPECT_DOUBLE_EQ(stats.min(),
                   *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(stats.max(),
                   *std::max_element(samples.begin(), samples.end()));
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  OnlineStats whole, a, b;
  for (int i = 0; i < 2000; ++i) {
    const double x = dist(rng);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

// Brute-force non-overlapping Allan variance for the reference: chop the
// stream into windows of m, average each, sum squared successive
// differences.
double brute_force_avar(const std::vector<double>& y, std::size_t m) {
  std::vector<double> means;
  for (std::size_t i = 0; i + m <= y.size(); i += m) {
    double sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) sum += y[i + j];
    means.push_back(sum / static_cast<double>(m));
  }
  if (means.size() < 2) return 0.0;
  double diff2 = 0.0;
  for (std::size_t i = 0; i + 1 < means.size(); ++i) {
    const double d = means[i + 1] - means[i];
    diff2 += d * d;
  }
  return diff2 / (2.0 * static_cast<double>(means.size() - 1));
}

TEST(AllanAccumulator, MatchesBruteForceAtEveryOctave) {
  std::mt19937_64 rng(19);
  std::normal_distribution<double> white(0.0, 1.0);
  std::vector<double> y(4096);
  double walk = 0.0;
  for (double& v : y) {
    walk += 0.01 * white(rng);  // white noise + a slow random walk
    v = white(rng) + walk;
  }

  AllanAccumulator acc;
  for (double v : y) acc.add(v);

  EXPECT_EQ(acc.count(), y.size());
  for (std::size_t m = 1; m <= 1024; m <<= 1) {
    const double expected = brute_force_avar(y, m);
    const double got = acc.adev(m);
    EXPECT_NEAR(got, std::sqrt(expected), 1e-9 * (1.0 + std::sqrt(expected)))
        << "window m=" << m;
  }
  // White noise: ADEV should fall roughly as 1/sqrt(m) at small m.
  EXPECT_GT(acc.adev(1), acc.adev(8));
}

TEST(AllanAccumulator, PointsListMatchesAdevLookup) {
  AllanAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(std::sin(0.01 * i));
  const auto points = acc.points();
  ASSERT_FALSE(points.empty());
  for (const auto& p : points) {
    EXPECT_DOUBLE_EQ(p.adev, acc.adev(p.window));
    EXPECT_DOUBLE_EQ(p.adev, std::sqrt(p.avar));
    EXPECT_GT(p.pairs, 0u);
  }
}

TEST(RollingWindow, CoversOnlyRecentBuckets) {
  RollingWindow window(4, 1.0);  // last 4 seconds
  window.add(0.5, 1.0);
  window.add(1.5, 1.0);
  window.add(2.5, 1.0);
  EXPECT_EQ(window.count(), 3u);
  EXPECT_DOUBLE_EQ(window.sum(), 3.0);

  // Jump far ahead: everything old must age out.
  window.add(10.5, 2.0);
  EXPECT_EQ(window.count(), 1u);
  EXPECT_DOUBLE_EQ(window.sum(), 2.0);
  EXPECT_DOUBLE_EQ(window.span(), 4.0);
  EXPECT_DOUBLE_EQ(window.rate(), 0.25);
}

TEST(RollingWindow, RateTracksRecentThroughput) {
  RollingWindow window(8, 0.5);  // last 4 seconds, half-second buckets
  for (int i = 0; i < 40; ++i) {
    window.add(0.1 * i, 1.0);  // 10 adds per second for 4 seconds
  }
  EXPECT_NEAR(window.rate(), 10.0, 1.0);
}

TEST(StreamSummary, CombinesMomentsAndQuantiles) {
  StreamSummary summary;
  for (int i = 1; i <= 100; ++i) summary.add(static_cast<double>(i));
  EXPECT_EQ(summary.count(), 100u);
  EXPECT_DOUBLE_EQ(summary.mean(), 50.5);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 100.0);
  EXPECT_DOUBLE_EQ(summary.last(), 100.0);
  EXPECT_NEAR(summary.p50(), 50.5, 5.0);
  EXPECT_NEAR(summary.p99(), 99.0, 5.0);
  summary.reset();
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_DOUBLE_EQ(summary.p50(), 0.0);
}

TEST(WaveformStreams, PerChannelStatsWithBoundedState) {
  WaveformStreams streams;
  const double values0[] = {1.0, -1.0};
  const double values1[] = {2.0, -2.0};
  streams.on_step(0.0, values0, 2);
  streams.on_step(1e-9, values1, 2);
  ASSERT_EQ(streams.channels(), 2u);
  EXPECT_EQ(streams.steps(), 2u);
  EXPECT_DOUBLE_EQ(streams.t_first(), 0.0);
  EXPECT_DOUBLE_EQ(streams.t_last(), 1e-9);
  EXPECT_DOUBLE_EQ(streams.channel(0).mean(), 1.5);
  EXPECT_DOUBLE_EQ(streams.channel(1).min(), -2.0);
  EXPECT_EQ(streams.name(0), "ch0");

  WaveformStreams named;
  named.configure({"y1", "y2"});
  named.on_step(0.0, values0, 2);
  EXPECT_EQ(named.name(1), "y2");
  EXPECT_EQ(named.channel(0).count(), 1u);
}

}  // namespace
}  // namespace sks::obs::stream
