// Numerical-health diagnostics data model: DiagRing bounded semantics,
// failure-class naming round trips, and the classifier's priority order on
// synthetic evidence.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/diag.hpp"
#include "obs/metrics.hpp"

namespace sks::obs {
namespace {

DiagRecord record_with(int iteration, double residual) {
  DiagRecord r;
  r.iteration = iteration;
  r.residual = residual;
  r.max_dx = 0.1;
  return r;
}

TEST(DiagRing, KeepsMostRecentRecordsOldestFirst) {
  DiagRing ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 6; ++i) ring.push(record_with(i, 1.0));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6u);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(records[i].iteration, i + 2);

  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total_pushed(), 0u);
}

TEST(DiagRing, SnapshotBeforeWrapIsInsertionOrder) {
  DiagRing ring(8);
  for (int i = 0; i < 3; ++i) ring.push(record_with(i, 1.0));
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(records[i].iteration, i);
}

TEST(FailureClassNames, RoundTripThroughToStringAndParse) {
  for (const FailureClass c :
       {FailureClass::kSingularSystem, FailureClass::kNonFiniteEval,
        FailureClass::kOscillatingNewton, FailureClass::kTimestepCollapse,
        FailureClass::kNoConvergence}) {
    EXPECT_EQ(parse_failure_class(to_string(c)), c);
    EXPECT_FALSE(describe(c, "n42").empty());
    EXPECT_NE(describe(c, "n42").find("n42"), std::string::npos);
  }
  EXPECT_THROW(parse_failure_class("not_a_class"), std::runtime_error);
}

TEST(ClassifyFailure, SingularEvidenceWinsOverGeneric) {
  FailureEvidence e;
  e.phase = "dc";
  e.lu_singular = 3;
  EXPECT_EQ(classify_failure(e), FailureClass::kSingularSystem);

  // Also via a per-iteration LU status with no aggregate counter.
  FailureEvidence tail_only;
  tail_only.phase = "dc";
  DiagRecord r = record_with(0, 1.0);
  r.lu_status = kDiagLuSingular;
  tail_only.tail.push_back(r);
  EXPECT_EQ(classify_failure(tail_only), FailureClass::kSingularSystem);
}

TEST(ClassifyFailure, NonFiniteBeatsSingular) {
  FailureEvidence e;
  e.phase = "dc";
  e.lu_singular = 1;
  e.lu_nonfinite = 1;
  EXPECT_EQ(classify_failure(e), FailureClass::kNonFiniteEval);

  FailureEvidence nan_residual;
  nan_residual.phase = "dc";
  nan_residual.tail.push_back(
      record_with(0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(classify_failure(nan_residual), FailureClass::kNonFiniteEval);
}

TEST(ClassifyFailure, BouncingResidualIsOscillation) {
  FailureEvidence e;
  e.phase = "dc";
  for (int i = 0; i < 16; ++i) {
    e.tail.push_back(record_with(i, i % 2 == 0 ? 1.0 : 2.0));
  }
  EXPECT_EQ(classify_failure(e), FailureClass::kOscillatingNewton);
}

TEST(ClassifyFailure, ContractingResidualIsNotOscillation) {
  FailureEvidence e;
  e.phase = "dc";
  double residual = 1.0;
  for (int i = 0; i < 16; ++i) {
    e.tail.push_back(record_with(i, residual));
    residual *= 0.3;
  }
  EXPECT_EQ(classify_failure(e), FailureClass::kNoConvergence);
}

TEST(ClassifyFailure, TransientAtDtFloorIsTimestepCollapse) {
  FailureEvidence e;
  e.phase = "transient";
  e.dt_at_floor = true;
  e.dt_halvings = 40;
  e.tail.push_back(record_with(0, 1.0));
  EXPECT_EQ(classify_failure(e), FailureClass::kTimestepCollapse);

  // The same evidence in a DC phase is just non-convergence.
  e.phase = "dc";
  EXPECT_EQ(classify_failure(e), FailureClass::kNoConvergence);
}

TEST(RecordSolveHealth, SetsGaugesAndFillsResidualHistogram) {
  Registry& reg = registry();
  const std::size_t before =
      reg.histogram("nr.residual", -15.0, 5.0, 40).total();
  record_solve_health(1e-8, 2.5, 1e4);
  EXPECT_EQ(reg.gauge("lu.pivot_growth").value(), 2.5);
  EXPECT_EQ(reg.gauge("lu.cond_est").value(), 1e4);
  EXPECT_EQ(reg.histogram("nr.residual", -15.0, 5.0, 40).total(), before + 1);
  // Non-finite residuals must not poison the histogram.
  record_solve_health(std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0);
  EXPECT_EQ(reg.histogram("nr.residual", -15.0, 5.0, 40).total(), before + 1);
}

}  // namespace
}  // namespace sks::obs
