#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/timer.hpp"

namespace sks::obs {
namespace {

// The obs enable flag is process-global; every test restores it so test
// order cannot leak profiling mode into other suites.
struct ObsFlagGuard {
  bool saved = enabled();
  ~ObsFlagGuard() { set_enabled(saved); }
};

TEST(Counter, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TimerStat, AccumulatesMinMaxMean) {
  TimerStat t;
  EXPECT_EQ(t.min_ns(), 0u);  // empty: min reports 0, not the sentinel
  EXPECT_DOUBLE_EQ(t.mean_seconds(), 0.0);
  t.record_ns(100);
  t.record_ns(300);
  t.record_ns(200);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 600u);
  EXPECT_EQ(t.min_ns(), 100u);
  EXPECT_EQ(t.max_ns(), 300u);
  EXPECT_DOUBLE_EQ(t.mean_seconds(), 200e-9);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.min_ns(), 0u);
}

TEST(RegistryTest, GetOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("a");
  a.inc(7);
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  // reset() zeroes but does not invalidate: the cached reference still
  // points at the live entry.
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(RegistryTest, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_timer("nope"), nullptr);
  EXPECT_TRUE(reg.counters().empty());
  reg.counter("yes").inc();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(RegistryTest, SnapshotsAreSortedByName) {
  Registry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
}

TEST(RegistryTest, HistogramBinningFixedOnFirstUse) {
  Registry reg;
  util::Histogram& h = reg.histogram("h", 0.0, 10.0, 5);
  h.add(1.0);
  // A later call with a different range returns the same histogram.
  util::Histogram& again = reg.histogram("h", -99.0, 99.0, 50);
  EXPECT_EQ(&again, &h);
  EXPECT_DOUBLE_EQ(again.lo(), 0.0);
  EXPECT_DOUBLE_EQ(again.hi(), 10.0);
  reg.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(RegistryTest, HistogramRangeMismatchIsCountedNotSilent) {
  Registry reg;
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(reg.find_counter("obs.histogram_range_mismatch"), nullptr)
      << "first use fixes the binning without complaint";
  // Matching re-request: still no mismatch.
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(reg.find_counter("obs.histogram_range_mismatch"), nullptr);
  // Conflicting range, hi, and bin count each count once.
  reg.histogram("h", -1.0, 10.0, 5);
  reg.histogram("h", 0.0, 20.0, 5);
  reg.histogram("h", 0.0, 10.0, 7);
  const Counter* mismatches =
      reg.find_counter("obs.histogram_range_mismatch");
  ASSERT_NE(mismatches, nullptr);
  EXPECT_EQ(mismatches->value(), 3u);
}

TEST(ScopedTimerTest, DisabledRecordsNothing) {
  ObsFlagGuard guard;
  set_enabled(false);
  Registry reg;
  TimerStat& stat = reg.timer("region");
  {
    ScopedTimer t(stat);
    EXPECT_DOUBLE_EQ(t.stop(), 0.0);
  }
  EXPECT_EQ(stat.count(), 0u);
}

TEST(ScopedTimerTest, EnabledRecordsAndStopIsIdempotent) {
  ObsFlagGuard guard;
  set_enabled(true);
  Registry reg;
  TimerStat& stat = reg.timer("region");
  {
    ScopedTimer t(stat);
    t.stop();
    t.stop();  // second stop (and the destructor) must not double-count
  }
  EXPECT_EQ(stat.count(), 1u);
}

TEST(ScopedTimerTest, NestedScopesAccumulateInnerWithinOuter) {
  ObsFlagGuard guard;
  set_enabled(true);
  Registry reg;
  TimerStat& outer = reg.timer("outer");
  TimerStat& inner = reg.timer("inner");
  {
    ScopedTimer to(outer);
    for (int i = 0; i < 3; ++i) {
      ScopedTimer ti(inner);
      volatile double sink = 0.0;
      for (int k = 0; k < 1000; ++k) sink = sink + static_cast<double>(k);
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 3u);
  // The inner scopes are strictly contained in the outer one.
  EXPECT_LE(inner.total_ns(), outer.total_ns());
}

TEST(ScopedTimerTest, NamedTimerSkipsLookupWhenDisabled) {
  ObsFlagGuard guard;
  set_enabled(false);
  // With profiling off the named constructor must not create the entry.
  { ScopedTimer t("obs_test.never_created"); }
  EXPECT_EQ(registry().find_timer("obs_test.never_created"), nullptr);
  set_enabled(true);
  { ScopedTimer t("obs_test.created"); }
  const TimerStat* stat = registry().find_timer("obs_test.created");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count(), 1u);
}

}  // namespace
}  // namespace sks::obs
