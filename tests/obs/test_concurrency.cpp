// Concurrency stress for the obs layer — the TSan target exercising the
// guarantees documented in obs/metrics.hpp: sharded counters, lock-free
// timer stats, mutex-guarded registry/journal, all hammered from many
// threads with exact totals checked after the writers quiesce.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace sks::obs {
namespace {

constexpr int kThreads = 8;

void hammer(int per_thread, const std::function<void(int)>& op) {
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([per_thread, &op] {
      for (int i = 0; i < per_thread; ++i) op(i);
    });
  }
  for (auto& th : threads) th.join();
}

TEST(ObsConcurrency, CounterTotalExactAfterJoin) {
  Counter counter;
  hammer(100000, [&](int) { counter.inc(); });
  EXPECT_EQ(counter.value(), 800000u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsConcurrency, RegistryCounterSharedAcrossThreads) {
  Counter& counter = registry().counter("test.concurrency.shared");
  counter.reset();
  hammer(50000, [&](int) { counter.inc(2); });
  EXPECT_EQ(counter.value(), 800000u);
  counter.reset();
}

TEST(ObsConcurrency, RegistryEntryCreationRaceYieldsOneEntry) {
  // All threads request the same (new) names concurrently; every caller
  // must get the same stable entry.
  std::atomic<int> round{0};
  const int r = round.fetch_add(1);
  const std::string base =
      "test.concurrency.race." + std::to_string(r) + ".";
  hammer(64, [&](int i) {
    registry().counter(base + std::to_string(i % 8)).inc();
  });
  std::uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += registry().counter(base + std::to_string(i)).value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 64);
  for (int i = 0; i < 8; ++i) {
    registry().counter(base + std::to_string(i)).reset();
  }
}

TEST(ObsConcurrency, TimerStatCountAndTotalExact) {
  TimerStat stat;
  hammer(10000, [&](int i) {
    stat.record_ns(static_cast<std::uint64_t>(i % 100) + 1);
  });
  EXPECT_EQ(stat.count(), static_cast<std::uint64_t>(kThreads) * 10000);
  // Per thread: sum over i of (i % 100) + 1.
  std::uint64_t per_thread = 0;
  for (int i = 0; i < 10000; ++i) per_thread += (i % 100) + 1;
  EXPECT_EQ(stat.total_ns(), per_thread * kThreads);
  EXPECT_EQ(stat.min_ns(), 1u);
  EXPECT_EQ(stat.max_ns(), 100u);
}

TEST(ObsConcurrency, ScopedTimersFromManyThreads) {
  const bool was_enabled = enabled();
  set_enabled(true);
  TimerStat& stat = registry().timer("test.concurrency.scoped");
  stat.reset();
  hammer(1000, [&](int) { ScopedTimer timer(stat); });
  EXPECT_EQ(stat.count(), static_cast<std::uint64_t>(kThreads) * 1000);
  stat.reset();
  set_enabled(was_enabled);
}

TEST(ObsConcurrency, JournalRingStaysConsistentUnderContention) {
  Journal j(256);
  j.set_enabled(true);
  hammer(5000, [&](int i) {
    Event e;
    e.type = (i % 2 == 0) ? EventType::kNewtonConverged
                          : EventType::kDtHalved;
    e.t = static_cast<double>(i);
    j.record(e);
    if (i % 1000 == 0) (void)j.tail(16);  // concurrent snapshots
  });
  EXPECT_EQ(j.size(), 256u);
  EXPECT_EQ(j.total_recorded(), static_cast<std::size_t>(kThreads) * 5000);
  EXPECT_EQ(j.count(EventType::kNewtonConverged) +
                j.count(EventType::kDtHalved),
            j.size());
  const auto tail = j.tail(16);
  EXPECT_EQ(tail.size(), 16u);
}

TEST(ObsConcurrency, TracerSpansFromManyThreadsAllPublished) {
  tracer().set_enabled(false);
  tracer().set_buffer_capacity(8192);
  tracer().clear();
  tracer().set_enabled(true);
  // Each hammer thread records spans (with args) and instants into its own
  // buffer; a concurrent reader snapshots/exports throughout — the exact
  // totals after the join prove no event was torn or lost.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)tracer().event_count();
      (void)Json::parse(tracer().chrome_trace_json());
    }
  });
  hammer(1000, [&](int i) {
    {
      Span span("stress.span");
      span.arg("i", static_cast<double>(i));
    }
    if (i % 10 == 0) trace_instant("stress.marker");
  });
  stop.store(true);
  reader.join();
  const std::size_t expected =
      static_cast<std::size_t>(kThreads) * (1000 + 100);
  EXPECT_EQ(tracer().event_count(), expected);
  EXPECT_EQ(tracer().dropped(), 0u);
  // The final export is valid Chrome trace JSON with every event present:
  // metadata (1 process + one per buffer) plus the recorded events.
  const Json doc = Json::parse(tracer().chrome_trace_json());
  const std::size_t buffers = tracer().buffers().size();
  EXPECT_EQ(doc.at("traceEvents").array().size(), expected + 1 + buffers);
  tracer().set_enabled(false);
  tracer().set_buffer_capacity(65536);
  tracer().clear();
}

TEST(ObsConcurrency, TracerBufferOverflowUnderContentionIsExact) {
  tracer().set_enabled(false);
  tracer().set_buffer_capacity(64);
  tracer().clear();
  tracer().set_enabled(true);
  hammer(500, [&](int) { SKS_TRACE_SPAN("overflow.stress"); });
  // Per-thread accounting: every buffer individually holds capacity events
  // and dropped the rest — nothing is lost across threads.
  EXPECT_EQ(tracer().event_count(),
            static_cast<std::size_t>(kThreads) * 64);
  EXPECT_EQ(tracer().dropped(),
            static_cast<std::uint64_t>(kThreads) * (500 - 64));
  tracer().set_enabled(false);
  tracer().set_buffer_capacity(65536);
  tracer().clear();
}

TEST(ObsConcurrency, EnabledFlagToggledWhileTimersRun) {
  TimerStat& stat = registry().timer("test.concurrency.toggle");
  stat.reset();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 2000; ++i) set_enabled(i % 2 == 0);
    stop.store(true);
  });
  hammer(500, [&](int) { ScopedTimer timer(stat); });
  toggler.join();
  set_enabled(false);
  // No exact count here (gating raced by design) — the assertion is that
  // TSan sees no data race and the stat stayed internally consistent.
  EXPECT_LE(stat.count(), static_cast<std::uint64_t>(kThreads) * 500);
  stat.reset();
}

}  // namespace
}  // namespace sks::obs
